package antlayer

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"antlayer/internal/graphgen"
	"antlayer/internal/island"
)

// buildDemo constructs the quickstart dependency DAG.
func buildDemo(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph(6)
	g.MustAddEdge(5, 4)
	g.MustAddEdge(5, 3)
	g.MustAddEdge(4, 2)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(5, 0)
	return g
}

func TestAllLayerersProduceValidLayerings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layerers := map[string]Layerer{
		"lpl":          LongestPath(),
		"lpl+pl":       WithPromotion(LongestPath()),
		"minwidth":     MinWidth(MinWidthParams{UBW: 2, C: 2, DummyWidth: 1}),
		"minwidthbest": MinWidthBest(1),
		"cg":           CoffmanGraham(3),
		"aco":          AntColony(DefaultACOParams()),
		"aco+pl":       WithPromotion(AntColony(DefaultACOParams())),
	}
	for i := 0; i < 5; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(10+10*i), rng)
		if err != nil {
			t.Fatal(err)
		}
		for name, l := range layerers {
			lay, err := l.Layer(g)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := lay.Validate(); err != nil {
				t.Fatalf("%s produced invalid layering: %v", name, err)
			}
		}
	}
}

func TestAntColonyRunHistory(t *testing.T) {
	g := buildDemo(t)
	p := DefaultACOParams()
	p.Tours = 5
	res, err := AntColonyRun(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 5 {
		t.Fatalf("history = %d tours", len(res.History))
	}
	if res.Layering == nil || res.Layering.Validate() != nil {
		t.Fatal("bad result layering")
	}
}

func TestPromoteFacade(t *testing.T) {
	g := buildDemo(t)
	l, err := LongestPath().Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	improved := Promote(l)
	if improved.DummyCount() > l.DummyCount() {
		t.Fatal("Promote increased dummies")
	}
}

func TestDrawFacade(t *testing.T) {
	g := buildDemo(t)
	d, err := Draw(g, LongestPath(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var svg, ascii bytes.Buffer
	if err := d.WriteSVG(&svg); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteASCII(&ascii); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Fatal("no SVG output")
	}
	cfg := PipelineConfig{DummyWidth: 0.5, OrderingRounds: 2, HSpacing: 1, VSpacing: 1}
	if _, err := Draw(g, LongestPath(), &cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDOTFacadeRoundTrip(t *testing.T) {
	g := buildDemo(t)
	g.SetLabel(0, "sink")
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "demo"); err != nil {
		t.Fatal(err)
	}
	h, names, err := ReadDOT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d", h.N(), h.M())
	}
	if len(names) != h.N() {
		t.Fatalf("names = %d", len(names))
	}
	if _, _, err := ReadDOT(strings.NewReader("not dot")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEndToEndMetricsShape(t *testing.T) {
	// Integration: on a wide bipartite-ish graph the colony must not be
	// wider than LPL (incl. dummies), the core claim of the paper.
	g := graphgen.CompleteBipartite(3, 9)
	lpl, err := LongestPath().Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	aco, err := AntColony(DefaultACOParams()).Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	lm := lpl.ComputeMetrics(1)
	am := aco.ComputeMetrics(1)
	if am.WidthIncl > lm.WidthIncl {
		t.Fatalf("ACO width %g > LPL width %g", am.WidthIncl, lm.WidthIncl)
	}
	if float64(am.Height)+am.WidthIncl > float64(lm.Height)+lm.WidthIncl {
		t.Fatal("ACO H+W worse than LPL")
	}
}

// TestOptionsMigratorSeam pins the public pluggable-transport knob: a
// custom IslandMigrator wrapping the default ring plugs in through
// Options and changes nothing about the layering.
func TestOptionsMigratorSeam(t *testing.T) {
	g := buildDemo(t)
	ctx := context.Background()
	opts := Options{ACO: DefaultACOParams(), Islands: 2, MigrationInterval: 1}
	base, err := LayererByName(ctx, "island", opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Layer(g)
	if err != nil {
		t.Fatal(err)
	}

	ring := island.NewRing(2)
	calls := 0
	opts.Migrator = migratorFunc(func(ctx context.Context, epoch int, local []IslandElite) ([]IslandElite, bool, error) {
		calls++
		return ring.Exchange(ctx, epoch, local)
	})
	custom, err := LayererByName(ctx, "island", opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := custom.Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("custom migrator never consulted")
	}
	if fmt.Sprint(got.Layers()) != fmt.Sprint(want.Layers()) {
		t.Errorf("custom migrator changed the layering: %v vs %v", got.Layers(), want.Layers())
	}
}

type migratorFunc func(ctx context.Context, epoch int, local []IslandElite) ([]IslandElite, bool, error)

func (f migratorFunc) Exchange(ctx context.Context, epoch int, local []IslandElite) ([]IslandElite, bool, error) {
	return f(ctx, epoch, local)
}
