// Quickstart: build a small DAG, layer it with the ant colony and with the
// baselines, and compare the paper's quality metrics.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"antlayer"
)

func main() {
	// Ctrl-C cancels the colony run instead of killing it mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// A small module-dependency DAG. Edges point from dependent to
	// dependency: the layering puts every module above everything it
	// depends on (sinks end up on layer 1).
	labels := []string{"libc", "zlib", "ssl", "http", "json", "db", "cache", "api", "web", "cli"}
	g := antlayer.NewGraph(len(labels))
	for v, l := range labels {
		g.SetLabel(v, l)
	}
	deps := map[string][]string{
		"zlib":  {"libc"},
		"ssl":   {"libc"},
		"http":  {"ssl", "zlib"},
		"json":  {"libc"},
		"db":    {"libc", "zlib"},
		"cache": {"db"},
		"api":   {"http", "json", "db", "cache"},
		"web":   {"api", "http"},
		"cli":   {"api", "json"},
	}
	id := map[string]int{}
	for v, l := range labels {
		id[l] = v
	}
	for from, tos := range deps {
		for _, to := range tos {
			g.MustAddEdge(id[from], id[to])
		}
	}

	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.M())

	algorithms := []struct {
		name string
		l    antlayer.Layerer
	}{
		{"LongestPath", antlayer.LongestPath()},
		{"LongestPath+Promote", antlayer.WithPromotion(antlayer.LongestPath())},
		{"MinWidth", antlayer.MinWidthBest(1.0)},
		{"CoffmanGraham(w=3)", antlayer.CoffmanGraham(3)},
		{"NetworkSimplex", antlayer.NetworkSimplex()},
		{"AntColony", antlayer.AntColonyContext(ctx, antlayer.DefaultACOParams())},
	}
	fmt.Printf("%-22s %7s %11s %8s %8s\n", "algorithm", "height", "width(+d)", "dummies", "density")
	for _, a := range algorithms {
		l, err := a.l.Layer(g)
		if err != nil {
			log.Fatal(err)
		}
		m := l.ComputeMetrics(1.0)
		fmt.Printf("%-22s %7d %11.1f %8d %8d\n", a.name, m.Height, m.WidthIncl, m.DummyCount, m.EdgeDensity)
	}

	// Show the ant colony's layering layer by layer.
	l, err := antlayer.AntColonyContext(ctx, antlayer.DefaultACOParams()).Layer(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nant colony layering (top layer first):")
	layers := l.Layers()
	for i := len(layers) - 1; i >= 0; i-- {
		fmt.Printf("  L%d:", i+1)
		for _, v := range layers[i] {
			fmt.Printf(" %s", g.Label(v))
		}
		fmt.Println()
	}

	// And a full drawing through the Sugiyama pipeline.
	d, err := antlayer.Draw(g, antlayer.AntColonyContext(ctx, antlayer.DefaultACOParams()), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrawing:")
	if err := d.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
