// Widthbound: the §IV-C resource-capacity neighbourhood in action.
//
// The colony is run with decreasing layer-width bounds on the same task
// DAG. A bound models a hard resource limit (e.g. registers, agents,
// machines per time slot, incl. values carried across slots as dummy
// vertices); the ants respect it by construction, trading height for it.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"antlayer"
	"antlayer/internal/graphgen"
)

func main() {
	// Ctrl-C cancels the colony run instead of killing it mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rng := rand.New(rand.NewSource(21))
	g, err := graphgen.Generate(graphgen.Config{N: 50, EdgeFactor: 1.3, MaxDegree: 5, Connected: true}, rng)
	if err != nil {
		log.Fatal(err)
	}
	lpl, err := antlayer.LongestPath().Layer(g)
	if err != nil {
		log.Fatal(err)
	}
	lplW := lpl.WidthIncludingDummies(1)
	fmt.Printf("task graph: n=%d m=%d; LPL: height=%d width=%.1f\n\n",
		g.N(), g.M(), lpl.Height(), lplW)

	fmt.Printf("%-12s %8s %10s %8s\n", "bound", "height", "width", "dummies")
	for _, bound := range []float64{0, lplW, lplW * 0.8, lplW * 0.6} {
		p := antlayer.DefaultACOParams()
		p.Tours = 15
		p.WidthBound = bound
		l, err := antlayer.AntColonyContext(ctx, p).Layer(g)
		if err != nil {
			log.Fatal(err)
		}
		m := l.ComputeMetrics(1)
		name := "none"
		if bound > 0 {
			name = fmt.Sprintf("%.1f", bound)
		}
		fmt.Printf("%-12s %8d %10.1f %8d\n", name, m.Height, m.WidthIncl, m.DummyCount)
	}
	fmt.Println("\nTighter bounds trade height for guaranteed per-layer capacity;")
	fmt.Println("bounds below what the seed's dummy traffic allows freeze the seed.")
}
