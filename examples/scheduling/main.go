// Scheduling: layering as precedence-constrained scheduling.
//
// A layering of a task DAG is a schedule: layer = time slot, and the width
// of a layer is the number of workers busy in that slot (dummy vertices
// model results that must be kept alive across slots — exactly the paper's
// point that ignoring them understates resource use). This example builds a
// synthetic build-system DAG, schedules it with Coffman–Graham (the classic
// width-bounded scheduler), LPL (greedy ASAP), and the ant colony, and
// compares slot count (height) and peak resource use (width).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"

	"antlayer"
	"antlayer/internal/graphgen"
)

func main() {
	// Ctrl-C cancels the colony run instead of killing it mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rng := rand.New(rand.NewSource(11))
	// 60 build tasks, sparse dependencies, all reachable from a root.
	g, err := graphgen.Generate(graphgen.Config{N: 60, EdgeFactor: 1.5, MaxDegree: 5, Connected: true}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("task graph: %d tasks, %d dependencies\n\n", g.N(), g.M())

	schedulers := []struct {
		name string
		l    antlayer.Layerer
	}{
		{"ASAP (LongestPath)", antlayer.LongestPath()},
		{"ASAP+Promote", antlayer.WithPromotion(antlayer.LongestPath())},
		{"CoffmanGraham(w=4)", antlayer.CoffmanGraham(4)},
		{"CoffmanGraham(w=6)", antlayer.CoffmanGraham(6)},
		{"MinWidth", antlayer.MinWidthBest(1.0)},
		{"AntColony", antlayer.AntColonyContext(ctx, antlayer.DefaultACOParams())},
	}

	fmt.Printf("%-20s %6s %14s %16s %9s\n",
		"scheduler", "slots", "peak workers", "peak w/ carries", "carries")
	for _, s := range schedulers {
		l, err := s.l.Layer(g)
		if err != nil {
			log.Fatal(err)
		}
		m := l.ComputeMetrics(1.0)
		fmt.Printf("%-20s %6d %14.0f %16.1f %9d\n",
			s.name, m.Height, m.WidthExcl, m.WidthIncl, m.DummyCount)
	}

	fmt.Println("\nThe ant colony trades a few extra slots for a lower peak")
	fmt.Println("including carried results — the paper's Fig 4-7 trade-off.")
}
