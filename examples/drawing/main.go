// Drawing: the full Sugiyama pipeline on a graph WITH cycles, rendered to
// SVG — the hierarchical-drawing use case that motivates the paper (§I).
//
// The input models a small service-call graph (which contains call cycles);
// the pipeline removes cycles, layers with the ant colony, inserts dummy
// vertices, minimises crossings and writes service-graph.svg plus an ASCII
// sketch to stdout.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"antlayer"
)

func main() {
	// Ctrl-C cancels the colony run instead of killing it mid-print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	services := []string{
		"gateway", "auth", "users", "orders", "billing",
		"inventory", "shipping", "notify", "audit", "search",
	}
	calls := [][2]string{
		{"gateway", "auth"}, {"gateway", "users"}, {"gateway", "orders"},
		{"gateway", "search"}, {"auth", "users"}, {"orders", "users"},
		{"orders", "billing"}, {"orders", "inventory"}, {"billing", "notify"},
		{"inventory", "shipping"}, {"shipping", "notify"}, {"users", "audit"},
		{"billing", "audit"}, {"search", "inventory"},
		// Cycles: notify calls back into orders, audit into auth.
		{"notify", "orders"}, {"audit", "auth"},
	}
	g := antlayer.NewGraph(len(services))
	id := map[string]int{}
	for v, s := range services {
		id[s] = v
		g.SetLabel(v, s)
		// Vertex width proportional to the label so the width metric is
		// non-uniform (paper §II: label width matters).
		g.SetWidth(v, float64(len(s))*0.25)
	}
	for _, c := range calls {
		g.MustAddEdge(id[c[0]], id[c[1]])
	}

	p := antlayer.DefaultACOParams()
	p.Seed = 3
	d, err := antlayer.Draw(g, antlayer.AntColonyContext(ctx, p), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("drawing: height=%d width=%.1f crossings=%d reversed-edges=%d\n\n",
		d.Height, d.Width, d.Crossings, len(d.Reversed))
	if err := d.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}

	f, err := os.Create("service-graph.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote service-graph.svg")
}
