// Island: run the island-model multi-colony search against the single
// colony at an equal total tour budget, and watch the migration topology
// and determinism guarantees at work. K islands each run Tours tours; a
// fair single-colony comparison therefore gets K×Tours tours. The islands
// search from independent SplitMix64-derived seeds and exchange their
// elite layerings around a ring every MigrationInterval tours, so the
// archipelago behaves like seeded restarts that cooperate.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"antlayer"
	"antlayer/internal/graphgen"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// A dense profile (m/n ≈ 2.8) leaves the LPL seed plenty of slack, so
	// the colonies have real searching to do.
	rng := rand.New(rand.NewSource(9))
	g, err := graphgen.Generate(graphgen.Config{N: 90, EdgeFactor: 2.8, MaxDegree: 10, Connected: true}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n\n", g.N(), g.M())

	ip := antlayer.DefaultIslandParams()
	ip.Colony.Tours = 8
	ip.Colony.Seed = 3
	ip.Islands = 4
	ip.MigrationInterval = 2

	start := time.Now()
	ires, err := antlayer.IslandColonyRunContext(ctx, g, ip)
	if err != nil {
		log.Fatal(err)
	}
	islandTime := time.Since(start)

	// The single colony gets the same total number of tours.
	sp := ip.Colony
	sp.Tours = ip.Colony.Tours * ip.Islands
	start = time.Now()
	sres, err := antlayer.AntColonyRunContext(ctx, g, sp)
	if err != nil {
		log.Fatal(err)
	}
	singleTime := time.Since(start)

	fmt.Printf("island (K=%d, %d tours each, migrate every %d): H+W=%.1f in %s\n",
		ip.Islands, ip.Colony.Tours, ip.MigrationInterval,
		float64(ires.Height)+ires.Width, islandTime.Round(time.Millisecond))
	for _, st := range ires.PerIsland {
		marker := " "
		if st.Island == ires.BestIsland {
			marker = "*"
		}
		fmt.Printf("  %s island %d: seed=%-19d objective=%.5f (H+W=%.1f), best tour %d of %d\n",
			marker, st.Island, st.Seed, st.Objective, 1/st.Objective, st.BestTour, st.ToursRun)
	}
	fmt.Printf("single colony (%d tours):                    H+W=%.1f in %s\n\n",
		sp.Tours, float64(sres.Height)+sres.Width, singleTime.Round(time.Millisecond))

	// Determinism: the archipelago is a pure function of its parameters —
	// rerunning with sequential colonies (Workers=1) reproduces every
	// vertex's layer, not just the aggregates.
	seqp := ip
	seqp.Colony.Workers = 1
	seq, err := antlayer.IslandColonyRunContext(ctx, g, seqp)
	if err != nil {
		log.Fatal(err)
	}
	if seq.Objective != ires.Objective || seq.BestIsland != ires.BestIsland {
		log.Fatalf("determinism violated: workers=1 obj=%g island=%d vs obj=%g island=%d",
			seq.Objective, seq.BestIsland, ires.Objective, ires.BestIsland)
	}
	for v := 0; v < g.N(); v++ {
		if seq.Layering.Layer(v) != ires.Layering.Layer(v) {
			log.Fatalf("determinism violated at vertex %d", v)
		}
	}
	fmt.Println("workers=1 rerun matches the parallel archipelago exactly (same seeds, same layering)")
}
