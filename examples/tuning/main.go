// Tuning: explore the colony's α/β parameters and convergence behaviour on
// a single graph, mirroring the paper's §VIII study at micro scale. The
// grid runs with Workers=0 (one goroutine per CPU inside each colony),
// which speeds the sweep up without changing a single number: every cell
// below is identical to what a sequential run prints.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"

	"antlayer"
	"antlayer/internal/graphgen"
)

func main() {
	// The grid sweep runs 75 colonies; Ctrl-C cancels the one in flight
	// instead of leaving it to finish (AntColonyRunContext).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rng := rand.New(rand.NewSource(5))
	g, err := graphgen.Generate(graphgen.DefaultConfig(80), rng)
	if err != nil {
		log.Fatal(err)
	}
	lpl, err := antlayer.LongestPath().Layer(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d; LPL baseline: H=%d W=%.1f (H+W=%.1f)\n",
		g.N(), g.M(), lpl.Height(), lpl.WidthIncludingDummies(1),
		float64(lpl.Height())+lpl.WidthIncludingDummies(1))

	// Workers=0 resolves to one goroutine per CPU (never more than the
	// colony has ants); the determinism guarantee makes this purely a
	// speed knob, verified at the end of the run.
	fmt.Printf("Workers=0: parallel tour construction (%d CPUs available, %d ants)\n\n",
		runtime.GOMAXPROCS(0), antlayer.DefaultACOParams().Ants)

	// α/β grid as in §VIII (1..5); report H+W, lower is better.
	fmt.Println("mean H+W by (alpha, beta) over 3 seeds:")
	fmt.Printf("%8s", "a\\b")
	betas := []float64{1, 2, 3, 4, 5}
	for _, b := range betas {
		fmt.Printf("%8.0f", b)
	}
	fmt.Println()
	for _, a := range []float64{1, 2, 3, 4, 5} {
		fmt.Printf("%8.0f", a)
		for _, b := range betas {
			sum := 0.0
			for seed := int64(1); seed <= 3; seed++ {
				p := antlayer.DefaultACOParams()
				p.Alpha, p.Beta, p.Seed = a, b, seed
				res, err := antlayer.AntColonyRunContext(ctx, g, p)
				if err != nil {
					log.Fatal(err)
				}
				sum += float64(res.Height) + res.Width
			}
			fmt.Printf("%8.1f", sum/3)
		}
		fmt.Println()
	}

	// Convergence history for the adopted (1, 3).
	p := antlayer.DefaultACOParams()
	p.Tours = 15
	res, err := antlayer.AntColonyRunContext(ctx, g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconvergence with (alpha,beta)=(1,3), best tour %d:\n", res.BestTour)
	for _, t := range res.History {
		fmt.Printf("  tour %2d: best H+W=%6.1f (H=%d W=%.1f), mean obj=%.4f, pheromone conc=%.3f\n",
			t.Tour, 1/t.BestObjective, t.BestHeight, t.BestWidth, t.MeanObjective, t.PheromoneConcentration)
	}
	fmt.Printf("\nfinal: H=%d W=%.1f vs LPL H=%d W=%.1f\n",
		res.Height, res.Width, lpl.Height(), lpl.WidthIncludingDummies(1))

	// Determinism check: the same seed at Workers=1 must reproduce the
	// parallel run above bit for bit — the layer of every single vertex,
	// not just the aggregate metrics.
	p.Workers = 1
	seq, err := antlayer.AntColonyRunContext(ctx, g, p)
	if err != nil {
		log.Fatal(err)
	}
	if seq.Objective != res.Objective {
		log.Fatalf("determinism violated: sequential obj=%g vs parallel obj=%g", seq.Objective, res.Objective)
	}
	for v := 0; v < g.N(); v++ {
		if seq.Layering.Layer(v) != res.Layering.Layer(v) {
			log.Fatalf("determinism violated: vertex %d on layer %d sequentially, %d in parallel",
				v, seq.Layering.Layer(v), res.Layering.Layer(v))
		}
	}
	fmt.Println("workers=1 rerun matches the parallel run exactly (same seed, same layering)")
}
