// Tuning: explore the colony's α/β parameters and convergence behaviour on
// a single graph, mirroring the paper's §VIII study at micro scale.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"antlayer"
	"antlayer/internal/graphgen"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	g, err := graphgen.Generate(graphgen.DefaultConfig(80), rng)
	if err != nil {
		log.Fatal(err)
	}
	lpl, err := antlayer.LongestPath().Layer(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d; LPL baseline: H=%d W=%.1f (H+W=%.1f)\n\n",
		g.N(), g.M(), lpl.Height(), lpl.WidthIncludingDummies(1),
		float64(lpl.Height())+lpl.WidthIncludingDummies(1))

	// α/β grid as in §VIII (1..5); report H+W, lower is better.
	fmt.Println("mean H+W by (alpha, beta) over 3 seeds:")
	fmt.Printf("%8s", "a\\b")
	betas := []float64{1, 2, 3, 4, 5}
	for _, b := range betas {
		fmt.Printf("%8.0f", b)
	}
	fmt.Println()
	for _, a := range []float64{1, 2, 3, 4, 5} {
		fmt.Printf("%8.0f", a)
		for _, b := range betas {
			sum := 0.0
			for seed := int64(1); seed <= 3; seed++ {
				p := antlayer.DefaultACOParams()
				p.Alpha, p.Beta, p.Seed = a, b, seed
				res, err := antlayer.AntColonyRun(g, p)
				if err != nil {
					log.Fatal(err)
				}
				sum += float64(res.Height) + res.Width
			}
			fmt.Printf("%8.1f", sum/3)
		}
		fmt.Println()
	}

	// Convergence history for the adopted (1, 3).
	p := antlayer.DefaultACOParams()
	p.Tours = 15
	res, err := antlayer.AntColonyRun(g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconvergence with (alpha,beta)=(1,3), best tour %d:\n", res.BestTour)
	for _, t := range res.History {
		fmt.Printf("  tour %2d: best H+W=%6.1f (H=%d W=%.1f), mean obj=%.4f, pheromone conc=%.3f\n",
			t.Tour, 1/t.BestObjective, t.BestHeight, t.BestWidth, t.MeanObjective, t.PheromoneConcentration)
	}
	fmt.Printf("\nfinal: H=%d W=%.1f vs LPL H=%d W=%.1f\n",
		res.Height, res.Width, lpl.Height(), lpl.WidthIncludingDummies(1))
}
