package antlayer

import (
	"context"
	"fmt"
	"io"

	"antlayer/internal/coffmangraham"
	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/dot"
	"antlayer/internal/island"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
	"antlayer/internal/minwidth"
	"antlayer/internal/netsimplex"
	"antlayer/internal/promote"
	"antlayer/internal/sugiyama"
)

// Graph is a directed graph with dense integer vertices 0..N()-1. Edges
// (u, v) point from the higher layer to the lower one in every layering
// this library produces.
type Graph = dag.Graph

// Edge is a directed edge.
type Edge = dag.Edge

// Layering is a layer assignment over a Graph; layers are 1-based and every
// edge (u, v) satisfies Layer(u) > Layer(v).
type Layering = layering.Layering

// Metrics bundles the paper's five evaluation criteria for a layering.
type Metrics = layering.Metrics

// Proper is a layering made proper by dummy-vertex insertion.
type Proper = layering.Proper

// ACOParams configures the ant colony (see DefaultACOParams for the
// paper's settings).
type ACOParams = core.Params

// ACOResult is the full outcome of a colony run including per-tour history.
type ACOResult = core.Result

// ACOState is a colony's compact carryable search state — the pheromone
// matrix plus the elite layering — exported by a run with
// ACOParams.ExportState set and replayed into a later run through
// ACOParams.Warm. See MapVerticesByName for carrying a state across a
// graph edit.
type ACOState = core.State

// MapVerticesByName builds the vertex mapping ACOState.Remap consumes:
// mapping[new] is the index of the vertex with the same name in the old
// graph, or -1 when the vertex is new. Deterministic: duplicate names
// map to the lowest old index.
func MapVerticesByName(oldNames, newNames []string) []int {
	return core.MapByName(oldNames, newNames)
}

// IslandParams configures the island-model multi-colony search (see
// DefaultIslandParams and internal/island for the topology).
type IslandParams = island.Params

// IslandResult is the full outcome of an island run: the winning island's
// colony result plus per-island statistics.
type IslandResult = island.Result

// IslandMigrator is the island model's migration seam: it owns the epoch
// barrier and the elite exchange of an archipelago run. The default (a
// nil IslandParams.Migrator) is the in-process elite ring; the daemon's
// shard transport implements the same interface over a network so the
// archipelago spans processes, and tests inject fakes here. Whatever the
// transport, the layering produced is the same bitwise-deterministic
// function of (graph, IslandParams).
type IslandMigrator = island.Migrator

// IslandElite is one island's contribution to a migration barrier: its
// best stretched-space assignment so far and the objective that earned
// it.
type IslandElite = island.Elite

// MinWidthParams configures a single MinWidth run.
type MinWidthParams = minwidth.Params

// Drawing is the output of the Sugiyama pipeline.
type Drawing = sugiyama.Drawing

// PipelineConfig configures the Sugiyama pipeline (see Draw).
type PipelineConfig = sugiyama.Config

// Selection, stretch and heuristic modes for ACOParams.
const (
	SelectPseudoRandom  = core.SelectPseudoRandom
	SelectArgMax        = core.SelectArgMax
	SelectRoulette      = core.SelectRoulette
	StretchBetween      = core.StretchBetween
	StretchEnds         = core.StretchEnds
	HeuristicObjective  = core.HeuristicObjective
	HeuristicLayerWidth = core.HeuristicLayerWidth
)

// NewGraph returns a graph with n isolated vertices.
func NewGraph(n int) *Graph { return dag.New(n) }

// DefaultACOParams returns the parameters of the paper's main experiments
// (10 tours, alpha=1, beta=3, unit dummy width, argmax selection). The
// Workers field is 0, so tour construction runs on one goroutine per CPU;
// set Workers to 1 for a sequential colony. Either way the result is a
// pure function of the parameters: the same Seed yields the same layering
// at any worker count (see README.md "Parallelism").
func DefaultACOParams() ACOParams { return core.DefaultParams() }

// DefaultIslandParams returns the default archipelago: 4 islands running
// DefaultACOParams colonies with elite migration around the ring every 2
// tours. Like the single colony, an island run is a pure function of its
// parameters — bitwise-identical at any worker count — because each
// island's seed is derived SplitMix64-style from (Seed, island) and
// migration happens only at barriers.
func DefaultIslandParams() IslandParams { return island.DefaultParams() }

// Layerer is a layering algorithm. All constructors below return one.
type Layerer interface {
	Layer(g *Graph) (*Layering, error)
}

type layererFunc func(g *Graph) (*Layering, error)

func (f layererFunc) Layer(g *Graph) (*Layering, error) { return f(g) }

// LongestPath returns the Longest-Path Layering algorithm (Algorithm 1 of
// the paper): minimum height, linear time, often wide.
func LongestPath() Layerer {
	return layererFunc(longestpath.Layer)
}

// MinWidth returns the MinWidth heuristic (Algorithm 2 of the paper) with
// explicit parameters.
func MinWidth(p MinWidthParams) Layerer {
	return layererFunc(func(g *Graph) (*Layering, error) { return minwidth.Layer(g, p) })
}

// MinWidthBest returns MinWidth scanning the (UBW, C) parameter grid used
// in the paper's experiments and keeping the narrowest layering.
func MinWidthBest(dummyWidth float64) Layerer {
	return layererFunc(func(g *Graph) (*Layering, error) { return minwidth.LayerBest(g, dummyWidth) })
}

// CoffmanGraham returns the Coffman–Graham width-bounded layering with at
// most width real vertices per layer.
func CoffmanGraham(width int) Layerer {
	return layererFunc(func(g *Graph) (*Layering, error) { return coffmangraham.Layer(g, width) })
}

// NetworkSimplex returns the Gansner et al. network simplex layering,
// which minimises the total edge span (equivalently the dummy vertex
// count). It is the exact method the Promote Layering heuristic
// approximates.
func NetworkSimplex() Layerer {
	return layererFunc(netsimplex.Layer)
}

// NetworkSimplexBalanced is NetworkSimplex followed by the balance pass:
// vertices with equal in- and out-degree move to the least crowded layer
// of their span, evening out layer widths at unchanged total edge span.
func NetworkSimplexBalanced() Layerer {
	return layererFunc(func(g *Graph) (*Layering, error) { return netsimplex.LayerBalanced(g, true) })
}

// Options bundles every per-algorithm knob LayererByName needs — the
// vocabulary shared by cmd/daglayer and the HTTP daemon. Zero values fall
// back to the documented defaults; ACO must be a valid parameter set (start
// from DefaultACOParams) for the "aco" and "island" algorithms.
type Options struct {
	// DummyWidth is the dummy-vertex width used by "minwidth". 0 means 1.
	DummyWidth float64
	// CGWidth is the real-vertex width bound of "cg". 0 means 4.
	CGWidth int
	// ACO configures the colony of "aco" and every island of "island".
	ACO ACOParams
	// Islands is the colony count of "island". 0 means the
	// DefaultIslandParams count.
	Islands int
	// MigrationInterval is the tours between elite migrations of
	// "island". 0 means the DefaultIslandParams interval.
	MigrationInterval int
	// Migrator, when non-nil, replaces the in-process elite ring of
	// "island" — the pluggable-transport seam (see IslandMigrator). It
	// never changes the layering produced, only where the islands run.
	Migrator IslandMigrator
}

// IslandOf assembles the island parameters the "island" algorithm runs
// with: the ACO colony under the archipelago described by Islands and
// MigrationInterval, defaults applied.
func (o Options) IslandOf() IslandParams {
	p := DefaultIslandParams()
	p.Colony = o.ACO
	if o.Islands > 0 {
		p.Islands = o.Islands
	}
	if o.MigrationInterval > 0 {
		p.MigrationInterval = o.MigrationInterval
	}
	p.Migrator = o.Migrator
	return p
}

// LayererByName returns the layering algorithm with the given short name:
// "aco" (the paper's ant colony, configured by opts.ACO and bounded by
// ctx), "island" (the island-model multi-colony search over opts.ACO
// colonies, also bounded by ctx), "lpl" (LongestPath), "minwidth"
// (MinWidthBest at opts.DummyWidth), "cg" (CoffmanGraham at opts.CGWidth)
// or "ns" (NetworkSimplex).
func LayererByName(ctx context.Context, name string, opts Options) (Layerer, error) {
	if opts.DummyWidth == 0 {
		opts.DummyWidth = 1
	}
	if opts.CGWidth == 0 {
		opts.CGWidth = 4
	}
	switch name {
	case "aco":
		return AntColonyContext(ctx, opts.ACO), nil
	case "island":
		return IslandColonyContext(ctx, opts.IslandOf()), nil
	case "lpl":
		return LongestPath(), nil
	case "minwidth":
		return MinWidthBest(opts.DummyWidth), nil
	case "cg":
		return CoffmanGraham(opts.CGWidth), nil
	case "ns":
		return NetworkSimplex(), nil
	}
	return nil, fmt.Errorf("antlayer: unknown algorithm %q (want aco|island|lpl|minwidth|cg|ns)", name)
}

// AntColony returns the paper's ACO layering algorithm. The run cannot be
// cancelled; use AntColonyContext to bound it by a context.
func AntColony(p ACOParams) Layerer {
	return AntColonyContext(context.Background(), p)
}

// AntColonyContext returns the paper's ACO layering algorithm with every
// run bounded by ctx: when ctx is cancelled or its deadline expires the
// colony stops within one ant walk per worker and Layer returns an error
// wrapping ctx.Err(). A run that completes is unaffected by the context —
// the layering is the same bitwise-deterministic function of the
// parameters that AntColony computes.
func AntColonyContext(ctx context.Context, p ACOParams) Layerer {
	return layererFunc(func(g *Graph) (*Layering, error) { return core.Layer(ctx, g, p) })
}

// AntColonyRun runs the colony and returns the full result including the
// objective value and per-tour convergence history.
func AntColonyRun(g *Graph, p ACOParams) (*ACOResult, error) {
	return AntColonyRunContext(context.Background(), g, p)
}

// AntColonyRunContext is AntColonyRun bounded by ctx; see AntColonyContext
// for the cancellation semantics.
func AntColonyRunContext(ctx context.Context, g *Graph, p ACOParams) (*ACOResult, error) {
	return core.Run(ctx, g, p)
}

// IslandColony returns the island-model multi-colony layering algorithm:
// p.Islands cooperating colonies with elite ring migration every
// p.MigrationInterval tours (see IslandParams). The run cannot be
// cancelled; use IslandColonyContext to bound it by a context.
func IslandColony(p IslandParams) Layerer {
	return IslandColonyContext(context.Background(), p)
}

// IslandColonyContext is IslandColony with every run bounded by ctx; the
// cancellation semantics are those of AntColonyContext, applied to every
// island.
func IslandColonyContext(ctx context.Context, p IslandParams) Layerer {
	return layererFunc(func(g *Graph) (*Layering, error) { return island.Layer(ctx, g, p) })
}

// IslandColonyRun runs the archipelago and returns the full result
// including the winning island and per-island statistics.
func IslandColonyRun(g *Graph, p IslandParams) (*IslandResult, error) {
	return IslandColonyRunContext(context.Background(), g, p)
}

// IslandColonyRunContext is IslandColonyRun bounded by ctx.
func IslandColonyRunContext(ctx context.Context, g *Graph, p IslandParams) (*IslandResult, error) {
	return island.Run(ctx, g, p)
}

// WithPromotion wraps a layerer with the Promote Layering heuristic of
// Nikolov and Tarassov as post-processing, the "+PL" variants of the
// paper's evaluation.
func WithPromotion(base Layerer) Layerer {
	return layererFunc(func(g *Graph) (*Layering, error) {
		l, err := base.Layer(g)
		if err != nil {
			return nil, err
		}
		improved, _ := promote.Apply(l)
		return improved, nil
	})
}

// Promote applies the Promote Layering heuristic to an existing layering
// and returns the improved copy.
func Promote(l *Layering) *Layering {
	improved, _ := promote.Apply(l)
	return improved
}

// Draw runs the full Sugiyama pipeline (cycle removal, layering, dummy
// insertion, crossing minimisation, coordinates) on g, which may contain
// cycles, using the given layerer.
func Draw(g *Graph, l Layerer, cfg *PipelineConfig) (*Drawing, error) {
	var c sugiyama.Config
	if cfg != nil {
		c = *cfg
	} else {
		c = sugiyama.DefaultConfig(nil)
	}
	c.Layerer = sugiyama.LayererFunc(l.Layer)
	return sugiyama.Run(g, c)
}

// ReadDOT parses a digraph in DOT format and returns the graph together
// with the node-name mapping.
func ReadDOT(r io.Reader) (*Graph, []string, error) {
	named, err := dot.Read(r)
	if err != nil {
		return nil, nil, err
	}
	return named.Graph, named.Names, nil
}

// WriteDOT serialises g in DOT format.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	return dot.Write(w, g, name)
}
