// Package antlayer is a Go library for layering directed acyclic graphs,
// reproducing "Applying Ant Colony Optimization Metaheuristic to the DAG
// Layering Problem" (Andreev, Healy, Nikolov — IPPS 2007).
//
// The DAG layering problem assigns every vertex to an integer layer so that
// all edges point downward (layer(u) > layer(v) for each edge (u, v)); it is
// the step of the Sugiyama hierarchical-drawing framework that fixes the
// height and width of the final drawing. This package provides:
//
//   - the paper's contribution: an Ant Colony Optimization layering that
//     minimises height plus width while accounting for the width
//     contributed by dummy vertices (AntColony, ACOParams);
//   - the baselines it is evaluated against: Longest-Path Layering
//     (LongestPath), the MinWidth heuristic (MinWidth, MinWidthBest), the
//     Promote Layering post-processing step (WithPromotion) and
//     Coffman–Graham width-bounded layering (CoffmanGraham);
//   - the surrounding substrate: a DAG type (NewGraph), layering metrics
//     (Metrics), proper-layering dummy insertion, DOT and edge-list I/O,
//     and a full Sugiyama pipeline producing SVG/ASCII drawings (Draw);
//   - the benchmark harness regenerating every figure of the paper's
//     evaluation (see cmd/experiments, EXPERIMENTS.md and bench_test.go).
//
// # Quickstart
//
//	g := antlayer.NewGraph(4)
//	g.MustAddEdge(3, 2) // edges point from higher layers to lower ones
//	g.MustAddEdge(3, 1)
//	g.MustAddEdge(2, 0)
//	g.MustAddEdge(1, 0)
//
//	l, err := antlayer.AntColony(antlayer.DefaultACOParams()).Layer(g)
//	if err != nil { ... }
//	fmt.Println(l.Height(), l.WidthIncludingDummies(1.0))
//
// # Parallelism
//
// Ant tours are constructed on a goroutine worker pool sized by
// ACOParams.Workers (0 = one per CPU). The result is deterministic for a
// fixed Seed at any worker count: per-ant RNGs are derived independently
// from (Seed, tour, ant index), and pheromone updates happen between
// tours, never during one. See README.md ("Parallelism") for the full
// guarantee.
//
// Above the per-tour pool, IslandColony runs an island model: K colonies
// searching concurrently from independent derived seeds, migrating each
// island's elite layering around a ring as a pheromone deposit every few
// tours (IslandParams). Given an equal total tour budget the archipelago
// matches or improves the single colony's cost, and the determinism
// guarantee carries over unchanged; see README.md ("The island model")
// and DESIGN.md §8.
//
// The ring itself is pluggable: IslandParams.Migrator (an IslandMigrator)
// owns the migration barrier and the elite exchange, and the daemon's
// shard transport implements it over a network so the archipelago spans
// worker processes — byte-identical to the in-process run at any worker
// count and partition (`daglayer serve -coordinator` plus `daglayer
// worker`; see README.md "Cluster" and DESIGN.md §10).
//
// # Cancellation and serving
//
// Colony runs accept a context: AntColonyContext and AntColonyRunContext
// (and their Island counterparts) stop within one ant walk per worker of
// the context being cancelled or its deadline expiring, returning an
// error that wraps ctx.Err(). A context that never fires changes nothing
// — determinism holds. On top of this, `daglayer serve`
// (internal/server) exposes layering as an HTTP daemon with an exact LRU
// result cache, bounded concurrency, per-request deadlines, an
// asynchronous /jobs queue, /healthz and /metrics; `daglayer batch`
// layers whole directories on the same job queue. See README.md
// ("Serving", "Batch mode").
//
// See examples/ for runnable programs, README.md for a feature matrix of
// the layerers, and DESIGN.md for the system inventory and
// per-experiment index.
package antlayer
