package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: antlayer/internal/core
cpu: AMD EPYC 7B13
BenchmarkWalk/n=30/heur=objective-8         	     100	     11000 ns/op	       0 B/op	       0 allocs/op
BenchmarkWalk/n=30/heur=objective-8         	     100	     10000 ns/op	       0 B/op	       0 allocs/op
BenchmarkWalk/n=30/heur=objective-8         	     100	     12000 ns/op	       0 B/op	       0 allocs/op
BenchmarkChooseLayer/n=60/sel=pseudo-random-8	    100	      2500 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	antlayer/internal/core	1.234s
`

func TestParse(t *testing.T) {
	rec, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" || rec.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header: %+v", rec)
	}
	// The -8 procs suffix must be stripped so records from different
	// machines share keys.
	walk, ok := rec.Benchmarks["BenchmarkWalk/n=30/heur=objective"]
	if !ok {
		t.Fatalf("walk benchmark missing; keys: %v", keys(rec))
	}
	if len(walk.NsPerOp) != 3 || walk.MedianNsPerOp != 11000 || walk.MinNsPerOp != 10000 {
		t.Fatalf("walk aggregation wrong: %+v", walk)
	}
	cl, ok := rec.Benchmarks["BenchmarkChooseLayer/n=60/sel=pseudo-random"]
	if !ok || cl.MedianNsPerOp != 2500 {
		t.Fatalf("chooselayer: %+v ok=%v", cl, ok)
	}
}

func keys(r *Record) []string {
	var out []string
	for k := range r.Benchmarks {
		out = append(out, k)
	}
	return out
}

func rec(meds map[string]float64) *Record {
	r := &Record{Benchmarks: map[string]Benchmark{}}
	for k, v := range meds {
		r.Benchmarks[k] = Benchmark{NsPerOp: []float64{v}, MedianNsPerOp: v}
	}
	return r
}

func TestCompareWithinTolerance(t *testing.T) {
	report, failures := Compare(rec(map[string]float64{"A": 100}), rec(map[string]float64{"A": 115}), 0.20)
	if failures != 0 {
		t.Fatalf("15%% drift failed the 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "ok") {
		t.Fatalf("report: %s", report)
	}
}

func TestCompareRegression(t *testing.T) {
	report, failures := Compare(rec(map[string]float64{"A": 100, "B": 50}), rec(map[string]float64{"A": 130, "B": 50}), 0.20)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1:\n%s", failures, report)
	}
	if !strings.Contains(report, "REGRESSED") || !strings.Contains(report, "A") {
		t.Fatalf("report: %s", report)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	report, failures := Compare(rec(map[string]float64{"A": 100}), rec(map[string]float64{"B": 100}), 0.20)
	if failures != 1 {
		t.Fatalf("failures = %d, want 1:\n%s", failures, report)
	}
	if !strings.Contains(report, "MISSING") || !strings.Contains(report, "NEW") {
		t.Fatalf("report: %s", report)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	report, failures := Compare(rec(map[string]float64{"A": 100}), rec(map[string]float64{"A": 50}), 0.20)
	if failures != 0 {
		t.Fatalf("an improvement failed the gate:\n%s", report)
	}
	if !strings.Contains(report, "IMPROVED") {
		t.Fatalf("report: %s", report)
	}
}

func TestMedianEven(t *testing.T) {
	if m := median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
}

// TestCompareJudgesMinNotMedian pins the noise-robustness choice: a noisy
// run that drags the median up must not fail the gate as long as the
// fastest repetition holds.
func TestCompareJudgesMinNotMedian(t *testing.T) {
	base := &Record{Benchmarks: map[string]Benchmark{
		"A": {NsPerOp: []float64{100, 101, 102}, MedianNsPerOp: 101, MinNsPerOp: 100},
	}}
	noisy := &Record{Benchmarks: map[string]Benchmark{
		"A": {NsPerOp: []float64{105, 300, 400}, MedianNsPerOp: 300, MinNsPerOp: 105},
	}}
	report, failures := Compare(base, noisy, 0.20)
	if failures != 0 {
		t.Fatalf("noisy-but-fast run failed the gate:\n%s", report)
	}
	// Records without the min field (older baselines) fall back to median.
	old := &Record{Benchmarks: map[string]Benchmark{"A": {MedianNsPerOp: 101}}}
	slow := &Record{Benchmarks: map[string]Benchmark{"A": {MedianNsPerOp: 300}}}
	if _, failures := Compare(old, slow, 0.20); failures != 1 {
		t.Fatal("median fallback not applied for records lacking min")
	}
}

// TestEndToEnd drives the CLI exactly as CI does: parse two records, then
// compare them.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	current := filepath.Join(dir, "current.json")
	if err := run([]string{"parse", "-out", baseline, "-note", "test"}, strings.NewReader(sampleBench), sink()); err != nil {
		t.Fatal(err)
	}
	slower := strings.ReplaceAll(sampleBench, "2500 ns/op", "9900 ns/op")
	if err := run([]string{"parse", "-out", current}, strings.NewReader(slower), sink()); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"compare", "-tolerance", "0.20", baseline, current}, nil, &out)
	if err == nil {
		t.Fatalf("compare passed despite 4x regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("report: %s", out.String())
	}
	// Identical records pass.
	out.Reset()
	if err := run([]string{"compare", baseline, baseline}, nil, &out); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}

	// The emitted JSON is a valid Record with the note preserved.
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Note != "test" || len(r.Benchmarks) != 2 {
		t.Fatalf("record: %+v", r)
	}
}

func sink() *bytes.Buffer { return new(bytes.Buffer) }
