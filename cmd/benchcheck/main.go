// Command benchcheck turns `go test -bench` output into a JSON benchmark
// record and compares two records with a relative ns/op tolerance. CI uses
// it to pin the hot-path benchmarks (Walk, ChooseLayer, AntColonyWorkers):
// every push uploads a BENCH_<sha>.json artifact and fails when a pinned
// benchmark regresses by more than the tolerance against the committed
// baseline (.github/bench/baseline.json).
//
// Usage:
//
//	go test -bench 'Walk|ChooseLayer' -count 5 ./... | benchcheck parse -out BENCH_abc.json
//	benchcheck compare -tolerance 0.20 baseline.json BENCH_abc.json
//
// parse keys each benchmark by its name with the trailing -<GOMAXPROCS>
// suffix stripped, so records from machines with different core counts
// stay comparable, and stores all ns/op repetitions plus their median and
// minimum. compare judges the **minimum**: for a CPU-bound benchmark,
// scheduling noise and co-tenancy only ever add time, so the fastest of
// the -count repetitions is the most stable estimate of the code's true
// cost and the statistic least likely to flip the gate on a noisy runner
// (the baseline's own AntColonyWorkers samples spread >50% around their
// median; their minima are tight). compare exits 1 when a benchmark
// present in the baseline is missing from the new record or its min ns/op
// exceeds baseline × (1 + tolerance); improvements beyond the tolerance
// are reported as a hint to refresh the baseline but do not fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is the JSON document benchcheck writes and compares.
type Record struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Note carries provenance (e.g. which machine produced a committed
	// baseline); compare ignores it.
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark aggregates the -count repetitions of one benchmark.
type Benchmark struct {
	NsPerOp       []float64 `json:"ns_per_op"`
	MedianNsPerOp float64   `json:"median_ns_per_op"`
	MinNsPerOp    float64   `json:"min_ns_per_op"`
}

// gateValue is the statistic compare judges: the minimum, falling back to
// the median for records written before the min field existed.
func (b Benchmark) gateValue() float64 {
	if b.MinNsPerOp > 0 {
		return b.MinNsPerOp
	}
	return b.MedianNsPerOp
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchcheck parse [-out file] | benchcheck compare [-tolerance 0.20] baseline.json new.json")
	}
	switch args[0] {
	case "parse":
		return runParse(args[1:], stdin, stdout)
	case "compare":
		return runCompare(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want parse|compare)", args[0])
	}
}

func runParse(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchcheck parse", flag.ContinueOnError)
	out := fs.String("out", "", "write the JSON record here (default: stdout)")
	note := fs.String("note", "", "provenance note stored in the record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := Parse(stdin)
	if err != nil {
		return err
	}
	rec.Note = *note
	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// procSuffix matches the trailing -<GOMAXPROCS> go test appends to
// benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and aggregates ns/op per benchmark.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{Benchmarks: map[string]Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad ns/op value in %q: %w", line, err)
			}
			b := rec.Benchmarks[name]
			b.NsPerOp = append(b.NsPerOp, v)
			b.MedianNsPerOp = median(b.NsPerOp)
			if b.MinNsPerOp == 0 || v < b.MinNsPerOp {
				b.MinNsPerOp = v
			}
			rec.Benchmarks[name] = b
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rec, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func loadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

func runCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchcheck compare", flag.ContinueOnError)
	tolerance := fs.Float64("tolerance", 0.20, "allowed relative ns/op regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare wants exactly two files: baseline.json new.json")
	}
	base, err := loadRecord(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := loadRecord(fs.Arg(1))
	if err != nil {
		return err
	}
	report, failures := Compare(base, cur, *tolerance)
	fmt.Fprint(stdout, report)
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond the %.0f%% tolerance", failures, *tolerance*100)
	}
	return nil
}

// Compare judges cur against base, returning a human-readable report and
// the number of gate failures (regressions beyond tolerance plus pinned
// benchmarks missing from cur).
func Compare(base, cur *Record, tolerance float64) (report string, failures int) {
	var b strings.Builder
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bb := base.Benchmarks[name]
		cb, ok := cur.Benchmarks[name]
		if !ok {
			failures++
			fmt.Fprintf(&b, "MISSING   %-60s pinned in baseline but absent from the new record\n", name)
			continue
		}
		bv, cv := bb.gateValue(), cb.gateValue()
		ratio := cv / bv
		delta := (ratio - 1) * 100
		switch {
		case ratio > 1+tolerance:
			failures++
			fmt.Fprintf(&b, "REGRESSED %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", name, bv, cv, delta)
		case ratio < 1-tolerance:
			fmt.Fprintf(&b, "IMPROVED  %-60s %12.1f -> %12.1f ns/op (%+.1f%%) — consider refreshing the baseline\n", name, bv, cv, delta)
		default:
			fmt.Fprintf(&b, "ok        %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", name, bv, cv, delta)
		}
	}
	extra := make([]string, 0)
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(&b, "NEW       %-60s %12.1f ns/op (not in baseline)\n", name, cur.Benchmarks[name].gateValue())
	}
	return b.String(), failures
}
