package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"antlayer/internal/chaos"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("hot=3,cold=1,jobs=2")
	if err != nil {
		t.Fatal(err)
	}
	if mix != (chaos.Mix{Hot: 3, Cold: 1, Jobs: 2}) {
		t.Errorf("mix = %+v", mix)
	}
	mix, err = parseMix("dist=1, oversize=2")
	if err != nil {
		t.Fatal(err)
	}
	if mix != (chaos.Mix{Distributed: 1, Oversize: 2}) {
		t.Errorf("mix = %+v", mix)
	}
	for _, bad := range []string{"", "hot", "hot=x", "hot=-1", "nope=3"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestListScenarios pins the CLI contract the CI job depends on: -list
// names every scenario and marks the fast subset.
func TestListScenarios(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"worker-kill", "slow-worker", "coordinator-restart", "queue-full", "oversize-flood", "concurrent-runs"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list missing %q:\n%s", name, out.String())
		}
	}
	if !strings.Contains(out.String(), "fast ") {
		t.Errorf("-list does not mark the fast subset:\n%s", out.String())
	}
}

func TestUnknownScenarioExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-scenario", "no-such"}, &out, &errOut); code != 2 {
		t.Errorf("unknown scenario exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown scenario") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestNoArgsUsageExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), nil, &out, &errOut); code != 2 {
		t.Errorf("no args exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr: %s", errOut.String())
	}
}
