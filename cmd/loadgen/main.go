// Command loadgen drives a daglayer cluster under hostile traffic: it
// runs the chaos scenarios from internal/chaos — seeded load mixes with
// injected faults (killed workers, a restarted coordinator, a flooded
// job queue, oversize bodies) — samples per-phase latency percentiles and
// error classes, and gates on the scenarios' SLOs. CI runs the fast
// subset on every PR and the full matrix nightly; the slo_report.json it
// writes is the build artifact reviewers read when the gate trips.
//
//	loadgen -list
//	loadgen -scenario worker-kill
//	loadgen -scenario fast -out slo_report.json
//	loadgen -addr http://localhost:8645 -rps 50 -duration 30s -mix hot=3,cold=1,jobs=1
//
// The exit status is the gate: 0 when every SLO held, 1 when any phase
// missed one, 2 on harness errors (binary missing, cluster never came
// up).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"antlayer/internal/chaos"
	"antlayer/internal/obs"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "", "scenario to run: a name from -list, 'fast' (CI subset), or 'all'")
		list     = fs.Bool("list", false, "list scenarios and exit")
		out      = fs.String("out", "", "write slo_report.json here ('' = stdout only)")
		bin      = fs.String("bin", "", "daglayer binary to spawn (default: 'go build' it into a temp dir)")
		stretch  = fs.Float64("stretch", 1, "multiply every phase duration (nightly soak uses >1)")
		verbose  = fs.Bool("v", false, "stream the process tree's stderr instead of discarding it")

		addr     = fs.String("addr", "", "raw load mode: drive this already-running daemon instead of a scenario")
		rps      = fs.Float64("rps", 25, "raw load mode: request rate")
		duration = fs.Duration("duration", 10*time.Second, "raw load mode: how long to drive")
		mixFlag  = fs.String("mix", "hot=3,cold=1,jobs=1", "raw load mode: traffic weights hot,cold,distributed,jobs,events,oversize,edits")
		seed     = fs.Int64("seed", 1, "raw load mode: generator seed")
		slowest  = fs.Int("trace-slowest", 0, "raw load mode: after the run, fetch /traces and print the N slowest traces' span breakdowns")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, `usage: loadgen -scenario {name|fast|all} [flags]
       loadgen -addr http://host:port [-rps N -duration D -mix hot=3,cold=1] [flags]

Load/chaos harness for the daglayer cluster: spawns a real process tree
(daemon, coordinator, workers), drives a seeded traffic mix through
warmup/inject/recovery phases while injecting the scenario's fault, and
gates on per-phase SLOs — latency percentiles, unexpected-error rates,
recovery time, and byte-identical post-recovery answers. See DESIGN.md
§11.

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := log.New(stdout, "loadgen: ", log.LstdFlags)

	if *list {
		for _, sc := range chaos.Scenarios() {
			tag := "     "
			if sc.Fast {
				tag = "fast "
			}
			fmt.Fprintf(stdout, "%s%-20s %s\n", tag, sc.Name, sc.Description)
		}
		return 0
	}

	if *addr != "" {
		return rawLoad(ctx, logger, stdout, *addr, *rps, *duration, *mixFlag, *seed, *slowest)
	}

	if *scenario == "" {
		fs.Usage()
		return 2
	}
	var selected []chaos.Scenario
	switch *scenario {
	case "all":
		selected = chaos.Scenarios()
	case "fast":
		for _, sc := range chaos.Scenarios() {
			if sc.Fast {
				selected = append(selected, sc)
			}
		}
	default:
		sc, ok := chaos.Lookup(*scenario)
		if !ok {
			fmt.Fprintf(stderr, "loadgen: unknown scenario %q (try -list)\n", *scenario)
			return 2
		}
		selected = []chaos.Scenario{sc}
	}

	binary, cleanup, err := resolveBinary(*bin)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}
	defer cleanup()

	procLog := io.Writer(io.Discard)
	if *verbose {
		procLog = stderr
	}
	summary := chaos.Summary{Pass: true}
	for _, sc := range selected {
		report, err := chaos.Run(ctx, sc, chaos.RunOptions{
			Bin:        binary,
			Stretch:    *stretch,
			Log:        logger,
			ProcessLog: procLog,
		})
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: scenario %s: %v\n", sc.Name, err)
			return 2
		}
		summary.Reports = append(summary.Reports, *report)
		if !report.Pass {
			summary.Pass = false
		}
	}

	data, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "loadgen: %v\n", err)
			return 2
		}
		logger.Printf("report written to %s", *out)
	}
	printSummary(stdout, summary)
	if !summary.Pass {
		return 1
	}
	return 0
}

// printSummary renders the human-readable verdict table.
func printSummary(w io.Writer, s chaos.Summary) {
	for _, r := range s.Reports {
		fmt.Fprintf(w, "%-20s %s\n", r.Scenario, passFail(r.Pass))
		for _, p := range r.Phases {
			fmt.Fprintf(w, "  %-10s %5d req  p50 %7.1fms  p95 %7.1fms  p99 %7.1fms  err %.3f  %s\n",
				p.Name, p.Requests, p.P50Ms, p.P95Ms, p.P99Ms, p.ErrorRate, passFail(p.Pass))
			if p.SlowestTrace != nil {
				fmt.Fprintf(w, "  slowest %s-phase trace:\n", p.Name)
				printTrace(w, *p.SlowestTrace)
			}
		}
		if r.RecoverySeconds >= 0 {
			fmt.Fprintf(w, "  recovered in %.1fs\n", r.RecoverySeconds)
		}
		if r.ProbeIdentical != nil {
			fmt.Fprintf(w, "  post-recovery bytes identical: %t\n", *r.ProbeIdentical)
		}
		for _, f := range r.Failures {
			fmt.Fprintf(w, "  FAIL: %s\n", f)
		}
	}
	fmt.Fprintf(w, "overall: %s\n", passFail(s.Pass))
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// rawLoad is the scenario-less mode: drive an already-running daemon and
// print one phase report (no SLO gate — this is for eyeballing a live
// instance, not for CI).
func rawLoad(ctx context.Context, logger *log.Logger, stdout io.Writer, addr string, rps float64, d time.Duration, mixFlag string, seed int64, slowest int) int {
	mix, err := parseMix(mixFlag)
	if err != nil {
		logger.Printf("bad -mix: %v", err)
		return 2
	}
	logger.Printf("driving %s at %.0f rps for %s (mix %+v)", addr, rps, d, mix)
	gen := chaos.NewGenerator(addr, seed)
	samples := gen.Run(ctx, d, rps, mix)
	pr := chaos.PhaseFromSamples("raw", d.Seconds(), samples)
	data, err := json.MarshalIndent(pr, "", "  ")
	if err != nil {
		logger.Printf("%v", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s\n", data)
	if slowest > 0 {
		views, err := fetchSlowestTraces(ctx, addr, slowest)
		if err != nil {
			logger.Printf("fetching slowest traces: %v", err)
			return 2
		}
		fmt.Fprintf(stdout, "slowest %d trace(s):\n", len(views))
		for _, tv := range views {
			printTrace(stdout, tv)
		}
	}
	return 0
}

// fetchSlowestTraces pulls the daemon's slowest-first trace list.
func fetchSlowestTraces(ctx context.Context, addr string, n int) ([]obs.TraceView, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/traces?limit=%d", strings.TrimSuffix(addr, "/"), n)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var body struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Traces, nil
}

// printTrace renders one trace's span breakdown: where the request's
// wall-clock went, span by span, workers and epochs called out.
func printTrace(w io.Writer, tv obs.TraceView) {
	fmt.Fprintf(w, "  trace %s  %.1fms  (%d spans", tv.ID, tv.DurMS, len(tv.Spans))
	if tv.Dropped > 0 {
		fmt.Fprintf(w, ", %d dropped", tv.Dropped)
	}
	fmt.Fprintf(w, ")\n")
	for _, sp := range tv.Spans {
		tag := sp.Name
		if sp.Worker != "" {
			tag = fmt.Sprintf("%s[%s#%d]", sp.Name, sp.Worker, sp.Epoch)
		}
		fmt.Fprintf(w, "    %-28s +%8.2fms  %8.2fms\n",
			tag, float64(sp.StartUS)/1e3, float64(sp.DurUS)/1e3)
	}
}

// parseMix decodes "hot=3,cold=1,jobs=1" into weights.
func parseMix(s string) (chaos.Mix, error) {
	var mix chaos.Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return mix, fmt.Errorf("want class=weight, got %q", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 0 {
			return mix, fmt.Errorf("weight %q: want a non-negative integer", kv[1])
		}
		switch kv[0] {
		case "hot":
			mix.Hot = n
		case "cold":
			mix.Cold = n
		case "distributed", "dist":
			mix.Distributed = n
		case "jobs":
			mix.Jobs = n
		case "events", "sse":
			mix.Events = n
		case "oversize", "over":
			mix.Oversize = n
		case "edits":
			mix.Edits = n
		default:
			return mix, fmt.Errorf("unknown class %q (want hot|cold|distributed|jobs|events|oversize|edits)", kv[0])
		}
	}
	if mix.Hot+mix.Cold+mix.Distributed+mix.Jobs+mix.Events+mix.Oversize+mix.Edits == 0 {
		return mix, fmt.Errorf("empty mix")
	}
	return mix, nil
}

// resolveBinary returns the daglayer binary to spawn: the -bin flag, or a
// fresh `go build` into a temp dir (loadgen is expected to run from the
// module tree, as `go run ./cmd/loadgen` does).
func resolveBinary(bin string) (string, func(), error) {
	if bin != "" {
		if _, err := os.Stat(bin); err != nil {
			return "", nil, fmt.Errorf("-bin %s: %w", bin, err)
		}
		return bin, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "loadgen-*")
	if err != nil {
		return "", nil, err
	}
	out := filepath.Join(dir, "daglayer")
	cmd := exec.Command("go", "build", "-o", out, "antlayer/cmd/daglayer")
	if b, err := cmd.CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("go build daglayer: %v\n%s", err, b)
	}
	return out, func() { os.RemoveAll(dir) }, nil
}
