// Command experiments regenerates the paper's evaluation: figures 4-9
// (§VII), the α/β and nd_width parameter-tuning studies (§VIII) and the
// ablations documented in DESIGN.md, printing the same series the paper
// plots as aligned text tables.
//
// Usage:
//
//	experiments -all                 # everything (full corpus takes minutes)
//	experiments -fig 4               # one figure
//	experiments -tuning alphabeta    # §VIII α/β study
//	experiments -tuning ndwidth      # §VIII nd_width study
//	experiments -ablation            # selection/stretch/heuristic ablations
//	experiments -shapes              # qualitative checks vs the paper
//
// Common flags: -seed, -per-group (sample size per corpus group; 0 = the
// full 1277-graph corpus), -ants, -tours. Parallelism: -workers evaluates
// whole graphs concurrently, -aco-workers parallelises tour construction
// inside each colony run (both deterministic; keep both at 1 for the
// timing series, see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"antlayer/internal/core"
	"antlayer/internal/experiments"
	"antlayer/internal/graphgen"
	"antlayer/internal/stats"
)

// sum adds two measurements field-wise.
func sum(a, b experiments.Measurement) experiments.Measurement {
	return experiments.Measurement{
		WidthIncl:   a.WidthIncl + b.WidthIncl,
		WidthExcl:   a.WidthExcl + b.WidthExcl,
		Height:      a.Height + b.Height,
		Dummies:     a.Dummies + b.Dummies,
		EdgeDensity: a.EdgeDensity + b.EdgeDensity,
		Millis:      a.Millis + b.Millis,
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig      = fs.Int("fig", 0, "regenerate one figure (4..9)")
		tuning   = fs.String("tuning", "", "parameter study: alphabeta|ndwidth")
		ablation = fs.Bool("ablation", false, "run the ablation studies")
		extras   = fs.Bool("extras", false, "extended comparison incl. NetworkSimplex and Coffman-Graham")
		gap      = fs.Bool("gap", false, "optimality-gap study against the exact solver (small n)")
		gapN     = fs.Int("gap-n", 10, "graph size for the gap study (<= 16)")
		shapes   = fs.Bool("shapes", false, "check qualitative shapes against the paper")
		warm     = fs.Bool("warm", false, "warm-start study: pheromone reuse across graph edits (EXPERIMENTS.md)")
		all      = fs.Bool("all", false, "run everything")
		seed     = fs.Int64("seed", 7, "corpus seed")
		perGroup = fs.Int("per-group", 8, "graphs per corpus group (0 = full corpus)")
		ants     = fs.Int("ants", 10, "colony size")
		tours    = fs.Int("tours", 10, "tours per colony run")
		workers  = fs.Int("workers", 1, "parallel graph evaluations (timing series need 1)")
		acoWork  = fs.Int("aco-workers", 1, "goroutines per colony tour (0 = all CPUs; layerings are seed-deterministic at any value, timing series need 1)")
		family   = fs.String("family", "sparse", "corpus family: sparse|trees|layered|dense|series-parallel")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := graphgen.ParseFamily(*family)
	if err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed, PerGroup: *perGroup, DummyWidth: 1, ACO: core.DefaultParams(), Workers: *workers, Family: fam}
	opts.ACO.Ants = *ants
	opts.ACO.Tours = *tours
	opts.ACO.Workers = *acoWork

	if !*all && *fig == 0 && *tuning == "" && !*ablation && !*shapes && !*extras && !*gap && !*warm {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -fig N, -tuning X, -ablation, -extras, -gap, -warm or -shapes")
	}

	needComparison := *all || *fig != 0 || *shapes
	var res *experiments.Results
	if needComparison {
		fmt.Fprintf(w, "running corpus comparison (seed=%d, per-group=%d)...\n", *seed, *perGroup)
		var err error
		res, err = experiments.Run(opts)
		if err != nil {
			return err
		}
	}

	writeFig := func(n int) error {
		pair, err := res.Figure(n)
		if err != nil {
			return err
		}
		for _, f := range pair {
			fmt.Fprintln(w)
			if err := f.WriteTable(w); err != nil {
				return err
			}
		}
		return nil
	}

	switch {
	case *fig != 0:
		if err := writeFig(*fig); err != nil {
			return err
		}
	case *all:
		for n := 4; n <= 9; n++ {
			if err := writeFig(n); err != nil {
				return err
			}
		}
	}

	if *shapes || *all {
		fmt.Fprintln(w, "\nqualitative shape checks (paper §VII):")
		rep := res.CheckShapes()
		for _, c := range rep.Checks {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(w, "  [%s] %-7s %s (%s)\n", status, c.Figure, c.Claim, c.Detail)
		}
	}

	if *tuning == "alphabeta" || *all {
		fmt.Fprintln(w)
		alphas := []float64{1, 2, 3, 4, 5}
		betas := []float64{1, 2, 3, 4, 5}
		tOpts := opts
		if tOpts.PerGroup == 0 || tOpts.PerGroup > 4 {
			tOpts.PerGroup = 4 // 25 grid points; keep the study tractable
		}
		cells, err := experiments.AlphaBetaStudy(tOpts, alphas, betas)
		if err != nil {
			return err
		}
		if err := experiments.WriteAlphaBetaTable(w, cells, alphas, betas); err != nil {
			return err
		}
	}

	if *tuning == "ndwidth" || *all {
		fmt.Fprintln(w)
		values := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}
		tOpts := opts
		if tOpts.PerGroup == 0 || tOpts.PerGroup > 4 {
			tOpts.PerGroup = 4
		}
		cells, err := experiments.NdWidthStudy(tOpts, values)
		if err != nil {
			return err
		}
		if err := experiments.WriteNdWidthTable(w, cells); err != nil {
			return err
		}
	}

	if *extras || *all {
		fmt.Fprintln(w, "\nextended comparison (DESIGN.md E10):")
		ext, err := experiments.RunExtended(opts)
		if err != nil {
			return err
		}
		names := []string{
			experiments.NameLPL, experiments.NameLPLPL,
			experiments.NameMinWidthPL, experiments.NameAntColony,
			experiments.NameNetworkSimplex, experiments.NameCoffmanGraham,
		}
		headers := []string{"algorithm", "width incl", "width excl", "height", "dummies", "density", "ms"}
		var rows [][]string
		for _, name := range names {
			means := ext.Mean[name]
			total := experiments.Measurement{}
			for _, m := range means {
				total = sum(total, m)
			}
			k := float64(len(means))
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.2f", total.WidthIncl/k),
				fmt.Sprintf("%.2f", total.WidthExcl/k),
				fmt.Sprintf("%.2f", total.Height/k),
				fmt.Sprintf("%.2f", total.Dummies/k),
				fmt.Sprintf("%.2f", total.EdgeDensity/k),
				fmt.Sprintf("%.3f", total.Millis/k),
			})
		}
		if err := stats.WriteAligned(w, headers, rows); err != nil {
			return err
		}
		for _, c := range ext.CheckExtendedShapes().Checks {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(w, "  [%s] %s (%s)\n", status, c.Claim, c.Detail)
		}
	}

	if *gap || *all {
		fmt.Fprintln(w)
		instances := 20
		if *perGroup > 0 && *perGroup < 5 {
			instances = 4 * *perGroup
		}
		results, err := experiments.GapStudy(*gapN, instances, *seed)
		if err != nil {
			return err
		}
		if err := experiments.WriteGapTable(w, *gapN, results); err != nil {
			return err
		}
	}

	if *warm || *all {
		fmt.Fprintln(w)
		instances := 5
		if *perGroup > 0 && *perGroup < 5 {
			instances = *perGroup
		}
		wOpts := opts
		wOpts.ACO.Tours = 30 // a real cold budget, so 1/3 of it is a meaningful cut
		results, err := experiments.WarmStudy(wOpts,
			[]graphgen.Family{graphgen.Sparse, graphgen.PipelineFamily},
			[]int{0, 1, 5, 10}, instances)
		if err != nil {
			return err
		}
		if err := experiments.WriteWarmTable(w, results); err != nil {
			return err
		}
	}

	if *ablation || *all {
		fmt.Fprintln(w)
		sel, err := experiments.SelectionAblation(opts)
		if err != nil {
			return err
		}
		if err := experiments.WriteAblationTable(w, "Ablation: layer selection rule", sel); err != nil {
			return err
		}
		fmt.Fprintln(w)
		str, err := experiments.StretchAblation(opts)
		if err != nil {
			return err
		}
		if err := experiments.WriteAblationTable(w, "Ablation: stretch placement (paper Fig. 1 vs Fig. 2)", str); err != nil {
			return err
		}
		fmt.Fprintln(w)
		heur, err := experiments.HeuristicAblation(opts)
		if err != nil {
			return err
		}
		if err := experiments.WriteAblationTable(w, "Ablation: heuristic information", heur); err != nil {
			return err
		}
	}
	return nil
}
