package main

import (
	"bytes"
	"strings"
	"testing"
)

// fastArgs keeps CLI tests quick: one graph per group, tiny colony.
func fastArgs(extra ...string) []string {
	return append([]string{"-per-group", "1", "-ants", "2", "-tours", "2"}, extra...)
}

func TestRunFig(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-fig", "4"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig 4a") || !strings.Contains(s, "Fig 4b") {
		t.Fatalf("figure tables missing:\n%s", s)
	}
	if !strings.Contains(s, "AntColony") || !strings.Contains(s, "LPL") {
		t.Fatal("series missing")
	}
}

func TestRunShapes(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-shapes"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "qualitative shape checks") {
		t.Fatal("shape checks missing")
	}
}

func TestRunTuningAlphaBeta(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-tuning", "alphabeta"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "alpha\\beta") {
		t.Fatal("alpha/beta table missing")
	}
}

func TestRunTuningNdWidth(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-tuning", "ndwidth"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nd_width") {
		t.Fatal("nd_width table missing")
	}
}

func TestRunAblation(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-ablation"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"selection rule", "stretch placement", "heuristic information"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ablation %q missing:\n%s", want, s)
		}
	}
}

func TestRunExtras(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-extras"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "NetworkSimplex") || !strings.Contains(s, "CoffmanGraham") {
		t.Fatalf("extended comparison missing:\n%s", s)
	}
	if strings.Contains(s, "[FAIL]") {
		t.Fatalf("extended shape check failed:\n%s", s)
	}
}

func TestRunGap(t *testing.T) {
	var out bytes.Buffer
	if err := run(fastArgs("-gap", "-gap-n", "7"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Optimality gap") {
		t.Fatalf("gap table missing:\n%s", out.String())
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil, new(bytes.Buffer)); err == nil {
		t.Fatal("no-op invocation accepted")
	}
}

func TestRunBadFigure(t *testing.T) {
	if err := run(fastArgs("-fig", "12"), new(bytes.Buffer)); err == nil {
		t.Fatal("figure 12 accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, new(bytes.Buffer)); err == nil {
		t.Fatal("bad flag accepted")
	}
}
