// Command corpusgen materialises the synthetic benchmark corpus (the
// substitute for the paper's 1277 AT&T graphs, see DESIGN.md §4) as
// edge-list files in a directory tree:
//
//	<out>/n<vertices>/g<index>.edges
//
// Usage:
//
//	corpusgen -out corpus/ [-seed 7] [-per-group 0] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"antlayer/internal/dot"
	"antlayer/internal/graphgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	var (
		out      = fs.String("out", "corpus", "output directory")
		seed     = fs.Int64("seed", 7, "corpus seed")
		perGroup = fs.Int("per-group", 0, "graphs per group (0 = full corpus, 1277 total)")
		asDOT    = fs.Bool("dot", false, "write DOT files instead of edge lists")
		family   = fs.String("family", "sparse", "corpus family: sparse|trees|layered|dense|series-parallel|pipeline|delta (delta = per-group edit chains for warm-start workloads)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fam, err := graphgen.ParseFamily(*family)
	if err != nil {
		return err
	}
	groups, err := graphgen.CorpusFamily(*seed, *perGroup, fam)
	if err != nil {
		return err
	}
	total := 0
	for _, gr := range groups {
		dir := filepath.Join(*out, fmt.Sprintf("n%03d", gr.Vertices))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i, g := range gr.Graphs {
			ext := "edges"
			if *asDOT {
				ext = "dot"
			}
			path := filepath.Join(dir, fmt.Sprintf("g%04d.%s", i, ext))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if *asDOT {
				err = dot.Write(f, g, fmt.Sprintf("n%d_g%d", gr.Vertices, i))
			} else {
				err = dot.WriteEdgeList(f, g)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			total++
		}
	}
	st := graphgen.Stats(groups)
	fmt.Printf("wrote %d graphs in %d groups to %s (mean m/n = %.2f)\n",
		total, st.Groups, *out, st.MeanEdgeFactor)
	return nil
}
