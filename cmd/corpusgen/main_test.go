package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"antlayer/internal/dot"
)

func TestRunEdgeLists(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-per-group", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	groups, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 19 {
		t.Fatalf("group dirs = %d, want 19", len(groups))
	}
	// Every file parses back into a valid DAG of the advertised size.
	path := filepath.Join(dir, "n010", "g0000.edges")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := dot.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || !g.IsAcyclic() {
		t.Fatalf("n=%d acyclic=%v", g.N(), g.IsAcyclic())
	}
}

func TestRunDOTFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-per-group", "1", "-dot"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "n010", "g0000.dot"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph") {
		t.Fatal("not a DOT file")
	}
	if _, err := dot.ReadString(string(data)); err != nil {
		t.Fatalf("generated DOT unparsable: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunUnwritableDir(t *testing.T) {
	if err := run([]string{"-out", "/proc/definitely/not/writable", "-per-group", "1"}); err == nil {
		t.Fatal("unwritable output dir accepted")
	}
}
