// Command daglayer layers DAGs with a chosen algorithm — as a one-shot
// CLI, a directory batch runner, a long-running HTTP daemon, or a
// cluster worker hosting islands for a coordinator daemon.
//
// Usage:
//
//	daglayer [layer] [flags]   layer one graph from a DOT file (or stdin)
//	daglayer batch [flags] dir layer every .dot/.edges file in dir
//	daglayer serve  [flags]    run the layering HTTP service
//	daglayer worker [flags]    join a coordinator's archipelago
//	daglayer version           print the build version (also: -version)
//	daglayer help              print this overview
//
// One-shot layering reads a graph, reports the paper's quality metrics and
// optionally emits an SVG or ASCII drawing via the Sugiyama pipeline:
//
//	daglayer -algo aco [-in graph.dot] [-promote] [-svg out.svg] [-ascii]
//	         [-dummy-width 1.0] [-ants 10] [-tours 10] [-alpha 1] [-beta 3]
//	         [-seed 1] [-workers 0] [-cg-width 4] [-islands 4]
//	         [-migration-interval 2]
//
// Algorithms: aco (default), island (multi-colony with elite migration),
// lpl, minwidth, cg (Coffman–Graham), ns (network simplex). Interrupting
// a run (Ctrl-C) cancels the colony.
//
// Batch mode layers a whole directory concurrently on a bounded worker
// pool and writes one /layer-shaped JSON result per input:
//
//	daglayer batch -algo island -jobs 8 -out results/ corpus/n050
//
// The daemon answers POSTed graphs with layering JSON (synchronously on
// /layer, asynchronously via the /jobs queue), caches results and bounds
// every request by a deadline (see internal/server):
//
//	daglayer serve [-addr :8645] [-cache 256] [-cache-bytes 67108864]
//	               [-max-concurrent 0] [-timeout 30s] [-max-timeout 2m]
//	               [-job-workers 0] [-job-queue 64] [-job-retention 256]
//	               [-job-expiry 0] [-coordinator ""] [-quiet]
//
// A daemon started with -coordinator also coordinates a distributed
// archipelago: worker processes register with it and island runs with
// distributed=true shard across them, returning byte-identical results
// to in-process runs (README "Cluster"):
//
//	daglayer serve -coordinator :8650 &
//	daglayer worker -coordinator host:8650 [-name w1] [-retry 2s]
//
// Workers heartbeat to the coordinator (worker -heartbeat, serve
// -heartbeat-timeout) so dead processes are expelled promptly, and
// reconnect with capped exponential backoff (-retry, -retry-max) that
// resets after a successful registration. The chaos harness
// (cmd/loadgen, DESIGN.md §11) exercises all of it against real
// process trees; its fault knobs (worker -fault-epoch-delay, serve
// -fault-compute-delay) are for testing only.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"antlayer"
	"antlayer/internal/buildinfo"
	"antlayer/internal/dot"
)

// modes lists the subcommands for usage and unknown-subcommand errors.
const modes = `modes:
  layer    layer one graph and print metrics (default; see 'daglayer layer -h')
  batch    layer every .dot/.edges file in a directory (see 'daglayer batch -h')
  serve    run the layering HTTP daemon (see 'daglayer serve -h')
  worker   join a coordinator daemon's archipelago (see 'daglayer worker -h')
  version  print the build version (also: -version)
  help     print this overview`

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintln(os.Stderr, "daglayer:", err)
		os.Exit(1)
	}
}

// run dispatches on the subcommand. A leading non-flag argument selects
// the mode; anything else is the historical flag-only invocation, which
// stays the `layer` mode.
func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) > 0 && (args[0] == "-version" || args[0] == "--version") {
		return printVersion(stdout)
	}
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "layer":
			return runLayer(ctx, args[1:], stdin, stdout)
		case "batch":
			return runBatch(ctx, args[1:], stdout)
		case "serve":
			return runServe(ctx, args[1:], stdout)
		case "worker":
			return runWorker(ctx, args[1:], stdout)
		case "version":
			return printVersion(stdout)
		case "help":
			fmt.Fprintf(stdout, "usage: daglayer [mode] [flags]\n\n%s\n", modes)
			return nil
		default:
			return fmt.Errorf("unknown mode %q\n%s", args[0], modes)
		}
	}
	return runLayer(ctx, args, stdin, stdout)
}

// printVersion reports how the binary was built — module version, VCS
// revision and toolchain — the same description the daemon's /healthz
// serves.
func printVersion(stdout io.Writer) error {
	_, err := fmt.Fprintf(stdout, "daglayer %s\n", buildinfo.Get())
	return err
}

// buildACO assembles colony parameters from the CLI flags.
func buildACO(ants, tours, workers int, alpha, beta, dummyWidth float64, seed int64) antlayer.ACOParams {
	p := antlayer.DefaultACOParams()
	p.Ants = ants
	p.Tours = tours
	p.Workers = workers
	p.Alpha = alpha
	p.Beta = beta
	p.DummyWidth = dummyWidth
	p.Seed = seed
	return p
}

// runComparison layers g with every algorithm and prints one row each.
func runComparison(ctx context.Context, w io.Writer, g *antlayer.Graph, opts antlayer.Options) error {
	algos := []struct {
		name string
		l    antlayer.Layerer
	}{
		{"lpl", antlayer.LongestPath()},
		{"lpl+promote", antlayer.WithPromotion(antlayer.LongestPath())},
		{"minwidth", antlayer.MinWidthBest(opts.DummyWidth)},
		{fmt.Sprintf("cg(w=%d)", opts.CGWidth), antlayer.CoffmanGraham(opts.CGWidth)},
		{"netsimplex", antlayer.NetworkSimplex()},
		{"aco", antlayer.AntColonyContext(ctx, opts.ACO)},
		{"island", antlayer.IslandColonyContext(ctx, opts.IslandOf())},
	}
	fmt.Fprintf(w, "graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Fprintf(w, "%-12s %7s %11s %11s %8s %8s\n",
		"algorithm", "height", "width(+d)", "width(-d)", "dummies", "density")
	for _, a := range algos {
		l, err := a.l.Layer(g)
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		m := l.ComputeMetrics(opts.DummyWidth)
		fmt.Fprintf(w, "%-12s %7d %11.1f %11.1f %8d %8d\n",
			a.name, m.Height, m.WidthIncl, m.WidthExcl, m.DummyCount, m.EdgeDensity)
	}
	return nil
}

func runLayer(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer layer", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: daglayer [layer] [flags] (reads the graph from -in or stdin)\n\n%s\n\nflags of the layer mode:\n", modes)
		fs.PrintDefaults()
	}
	var (
		in         = fs.String("in", "", "input file (default: stdin)")
		format     = fs.String("format", "dot", "input format: dot | edges (corpusgen edge lists)")
		algo       = fs.String("algo", "aco", "layering algorithm: aco|island|lpl|minwidth|cg|ns")
		compare    = fs.Bool("compare", false, "run every algorithm and print a comparison table")
		doPromote  = fs.Bool("promote", false, "apply the Promote Layering post-processing step")
		svgOut     = fs.String("svg", "", "write an SVG drawing to this file")
		rankOut    = fs.String("rank-dot", "", "write a rank=same DOT file with the computed layering")
		ascii      = fs.Bool("ascii", false, "print an ASCII drawing")
		dummyWidth = fs.Float64("dummy-width", 1.0, "width of a dummy vertex (nd_width)")
		ants       = fs.Int("ants", 10, "aco: colony size")
		tours      = fs.Int("tours", 10, "aco: number of tours")
		alpha      = fs.Float64("alpha", 1, "aco: pheromone exponent")
		beta       = fs.Float64("beta", 3, "aco: heuristic exponent")
		seed       = fs.Int64("seed", 1, "aco: random seed")
		workers    = fs.Int("workers", 0, "aco: goroutines per tour (0 = all CPUs; same seed gives the same layering at any value)")
		cgWidth    = fs.Int("cg-width", 4, "cg: maximum real vertices per layer")
		islands    = fs.Int("islands", 4, "island: number of cooperating colonies")
		migrate    = fs.Int("migration-interval", 2, "island: tours between elite migrations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var g *antlayer.Graph
	var names []string
	var err error
	switch *format {
	case "dot":
		g, names, err = antlayer.ReadDOT(r)
	case "edges":
		// ReadEdgeListNamed synthesises v<N> names and labels, so the
		// SVG, rank-dot and ASCII outputs render labelled vertices too.
		g, names, err = dot.ReadEdgeListNamed(r)
	default:
		return fmt.Errorf("unknown input format %q (want dot|edges)", *format)
	}
	if err != nil {
		return err
	}

	if *compare {
		return runComparison(ctx, stdout, g, antlayer.Options{
			DummyWidth:        *dummyWidth,
			CGWidth:           *cgWidth,
			ACO:               buildACO(*ants, *tours, *workers, *alpha, *beta, *dummyWidth, *seed),
			Islands:           *islands,
			MigrationInterval: *migrate,
		})
	}

	layerer, err := antlayer.LayererByName(ctx, *algo, antlayer.Options{
		DummyWidth:        *dummyWidth,
		CGWidth:           *cgWidth,
		ACO:               buildACO(*ants, *tours, *workers, *alpha, *beta, *dummyWidth, *seed),
		Islands:           *islands,
		MigrationInterval: *migrate,
	})
	if err != nil {
		return err
	}
	if *doPromote {
		layerer = antlayer.WithPromotion(layerer)
	}

	l, err := layerer.Layer(g)
	if err != nil {
		return err
	}
	m := l.ComputeMetrics(*dummyWidth)
	fmt.Fprintf(stdout, "graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Fprintf(stdout, "algorithm: %s (promote=%v)\n", *algo, *doPromote)
	fmt.Fprintf(stdout, "height:           %d\n", m.Height)
	fmt.Fprintf(stdout, "width incl dummy: %.2f\n", m.WidthIncl)
	fmt.Fprintf(stdout, "width excl dummy: %.2f\n", m.WidthExcl)
	fmt.Fprintf(stdout, "dummy vertices:   %d\n", m.DummyCount)
	fmt.Fprintf(stdout, "edge density:     %d\n", m.EdgeDensity)
	for li, layer := range l.Layers() {
		fmt.Fprintf(stdout, "L%-3d", li+1)
		for _, v := range layer {
			name := names[v]
			if name == "" {
				name = fmt.Sprintf("v%d", v)
			}
			fmt.Fprintf(stdout, " %s", name)
		}
		fmt.Fprintln(stdout)
	}

	if *rankOut != "" {
		f, err := os.Create(*rankOut)
		if err != nil {
			return err
		}
		if err := dot.WriteLayered(f, l, "layered"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *rankOut)
	}

	if *svgOut != "" || *ascii {
		d, err := antlayer.Draw(g, layerer, nil)
		if err != nil {
			return err
		}
		if *ascii {
			if err := d.WriteASCII(stdout); err != nil {
				return err
			}
		}
		if *svgOut != "" {
			f, err := os.Create(*svgOut)
			if err != nil {
				return err
			}
			if err := d.WriteSVG(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *svgOut)
		}
	}
	return nil
}
