// Command daglayer layers a DAG read from a DOT file (or stdin) with a
// chosen algorithm and reports the paper's quality metrics, optionally
// emitting an SVG or ASCII drawing via the Sugiyama pipeline.
//
// Usage:
//
//	daglayer -algo aco [-in graph.dot] [-promote] [-svg out.svg] [-ascii]
//	         [-dummy-width 1.0] [-ants 10] [-tours 10] [-alpha 1] [-beta 3]
//	         [-seed 1] [-workers 0] [-cg-width 4]
//
// Algorithms: aco (default), lpl, minwidth, cg (Coffman–Graham), ns
// (network simplex).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"antlayer"
	"antlayer/internal/dot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "daglayer:", err)
		os.Exit(1)
	}
}

// buildACO assembles colony parameters from the CLI flags.
func buildACO(ants, tours, workers int, alpha, beta, dummyWidth float64, seed int64) antlayer.ACOParams {
	p := antlayer.DefaultACOParams()
	p.Ants = ants
	p.Tours = tours
	p.Workers = workers
	p.Alpha = alpha
	p.Beta = beta
	p.DummyWidth = dummyWidth
	p.Seed = seed
	return p
}

// runComparison layers g with every algorithm and prints one row each.
func runComparison(w io.Writer, g *antlayer.Graph, dummyWidth float64, cgWidth int, aco antlayer.ACOParams) error {
	algos := []struct {
		name string
		l    antlayer.Layerer
	}{
		{"lpl", antlayer.LongestPath()},
		{"lpl+promote", antlayer.WithPromotion(antlayer.LongestPath())},
		{"minwidth", antlayer.MinWidthBest(dummyWidth)},
		{fmt.Sprintf("cg(w=%d)", cgWidth), antlayer.CoffmanGraham(cgWidth)},
		{"netsimplex", antlayer.NetworkSimplex()},
		{"aco", antlayer.AntColony(aco)},
	}
	fmt.Fprintf(w, "graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Fprintf(w, "%-12s %7s %11s %11s %8s %8s\n",
		"algorithm", "height", "width(+d)", "width(-d)", "dummies", "density")
	for _, a := range algos {
		l, err := a.l.Layer(g)
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		m := l.ComputeMetrics(dummyWidth)
		fmt.Fprintf(w, "%-12s %7d %11.1f %11.1f %8d %8d\n",
			a.name, m.Height, m.WidthIncl, m.WidthExcl, m.DummyCount, m.EdgeDensity)
	}
	return nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input file (default: stdin)")
		format     = fs.String("format", "dot", "input format: dot | edges (corpusgen edge lists)")
		algo       = fs.String("algo", "aco", "layering algorithm: aco|lpl|minwidth|cg|ns")
		compare    = fs.Bool("compare", false, "run every algorithm and print a comparison table")
		doPromote  = fs.Bool("promote", false, "apply the Promote Layering post-processing step")
		svgOut     = fs.String("svg", "", "write an SVG drawing to this file")
		rankOut    = fs.String("rank-dot", "", "write a rank=same DOT file with the computed layering")
		ascii      = fs.Bool("ascii", false, "print an ASCII drawing")
		dummyWidth = fs.Float64("dummy-width", 1.0, "width of a dummy vertex (nd_width)")
		ants       = fs.Int("ants", 10, "aco: colony size")
		tours      = fs.Int("tours", 10, "aco: number of tours")
		alpha      = fs.Float64("alpha", 1, "aco: pheromone exponent")
		beta       = fs.Float64("beta", 3, "aco: heuristic exponent")
		seed       = fs.Int64("seed", 1, "aco: random seed")
		workers    = fs.Int("workers", 0, "aco: goroutines per tour (0 = all CPUs; same seed gives the same layering at any value)")
		cgWidth    = fs.Int("cg-width", 4, "cg: maximum real vertices per layer")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var g *antlayer.Graph
	var names []string
	var err error
	switch *format {
	case "dot":
		g, names, err = antlayer.ReadDOT(r)
	case "edges":
		g, err = dot.ReadEdgeList(r)
		if err == nil {
			// Edge lists carry no names; synthesise v<N> (the same
			// fallback dot.Write uses) and set them as labels so the SVG,
			// rank-dot and ASCII outputs render labelled vertices too.
			names = make([]string, g.N())
			for v := range names {
				names[v] = fmt.Sprintf("v%d", v)
				g.SetLabel(v, names[v])
			}
		}
	default:
		return fmt.Errorf("unknown input format %q (want dot|edges)", *format)
	}
	if err != nil {
		return err
	}

	if *compare {
		return runComparison(stdout, g, *dummyWidth, *cgWidth, buildACO(*ants, *tours, *workers, *alpha, *beta, *dummyWidth, *seed))
	}

	var layerer antlayer.Layerer
	switch *algo {
	case "aco":
		layerer = antlayer.AntColony(buildACO(*ants, *tours, *workers, *alpha, *beta, *dummyWidth, *seed))
	case "lpl":
		layerer = antlayer.LongestPath()
	case "minwidth":
		layerer = antlayer.MinWidthBest(*dummyWidth)
	case "cg":
		layerer = antlayer.CoffmanGraham(*cgWidth)
	case "ns":
		layerer = antlayer.NetworkSimplex()
	default:
		return fmt.Errorf("unknown algorithm %q (want aco|lpl|minwidth|cg|ns)", *algo)
	}
	if *doPromote {
		layerer = antlayer.WithPromotion(layerer)
	}

	l, err := layerer.Layer(g)
	if err != nil {
		return err
	}
	m := l.ComputeMetrics(*dummyWidth)
	fmt.Fprintf(stdout, "graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Fprintf(stdout, "algorithm: %s (promote=%v)\n", *algo, *doPromote)
	fmt.Fprintf(stdout, "height:           %d\n", m.Height)
	fmt.Fprintf(stdout, "width incl dummy: %.2f\n", m.WidthIncl)
	fmt.Fprintf(stdout, "width excl dummy: %.2f\n", m.WidthExcl)
	fmt.Fprintf(stdout, "dummy vertices:   %d\n", m.DummyCount)
	fmt.Fprintf(stdout, "edge density:     %d\n", m.EdgeDensity)
	for li, layer := range l.Layers() {
		fmt.Fprintf(stdout, "L%-3d", li+1)
		for _, v := range layer {
			name := names[v]
			if name == "" {
				name = fmt.Sprintf("v%d", v)
			}
			fmt.Fprintf(stdout, " %s", name)
		}
		fmt.Fprintln(stdout)
	}

	if *rankOut != "" {
		f, err := os.Create(*rankOut)
		if err != nil {
			return err
		}
		if err := dot.WriteLayered(f, l, "layered"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *rankOut)
	}

	if *svgOut != "" || *ascii {
		d, err := antlayer.Draw(g, layerer, nil)
		if err != nil {
			return err
		}
		if *ascii {
			if err := d.WriteASCII(stdout); err != nil {
				return err
			}
		}
		if *svgOut != "" {
			f, err := os.Create(*svgOut)
			if err != nil {
				return err
			}
			if err := d.WriteSVG(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", *svgOut)
		}
	}
	return nil
}
