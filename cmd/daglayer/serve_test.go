package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestUnknownModeListsModes(t *testing.T) {
	err := run(context.Background(), []string{"frobnicate"}, nil, new(bytes.Buffer))
	if err == nil {
		t.Fatal("unknown mode succeeded")
	}
	for _, want := range []string{"frobnicate", "layer", "serve"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestHelpMode(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"help"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"layer", "serve", "usage"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("help output missing %q:\n%s", want, out.String())
		}
	}
}

func TestExplicitLayerMode(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"layer", "-algo", "lpl"}, strings.NewReader(demoDOT), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "algorithm: lpl") {
		t.Fatalf("layer mode output:\n%s", out.String())
	}
}

func TestServeBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"serve", "-bogus"}, nil, new(bytes.Buffer)); err == nil {
		t.Fatal("serve with unknown flag succeeded")
	}
}

func TestServeStartsAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-quiet"}, nil, new(bytes.Buffer))
	}()
	// Give the listener a moment to come up, then trigger shutdown.
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}
}
