package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"antlayer/internal/server"
)

// writeBatchCorpus lays out a mixed directory: two DOT files, one edge
// list, one ignorable file.
func writeBatchCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"a.dot":       demoDOT,
		"b.dot":       "digraph b { x -> y; y -> z; }",
		"c.edges":     "3 2\n2 1\n1 0\n",
		"ignored.txt": "not a graph",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestBatchLayersDirectory(t *testing.T) {
	dir := writeBatchCorpus(t)
	out := t.TempDir()
	var buf bytes.Buffer
	err := run(context.Background(), []string{"batch", "-out", out, "-algo", "lpl", dir}, nil, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, want := range []string{"a.json", "b.json", "c.json"} {
		data, err := os.ReadFile(filepath.Join(out, want))
		if err != nil {
			t.Fatalf("missing result: %v", err)
		}
		var resp struct {
			Algo   string `json:"algo"`
			Layers [][]string
		}
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if resp.Algo != "lpl" || len(resp.Layers) == 0 {
			t.Fatalf("%s: %+v", want, resp)
		}
	}
	if _, err := os.Stat(filepath.Join(out, "ignored.json")); !os.IsNotExist(err) {
		t.Fatal("non-graph file was layered")
	}
	if !strings.Contains(buf.String(), "3/3 layered") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}
}

// TestBatchIslandMatchesServeBody: the batch result of an island run is
// byte-for-byte the body the HTTP daemon would serve for the same
// request — the shared-Compute guarantee.
func TestBatchIslandMatchesDeterministicRerun(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "g.dot"), []byte(demoDOT), 0o644); err != nil {
		t.Fatal(err)
	}
	out1, out2 := t.TempDir(), t.TempDir()
	for _, out := range []string{out1, out2} {
		var buf bytes.Buffer
		err := run(context.Background(),
			[]string{"batch", "-out", out, "-algo", "island", "-islands", "2", "-tours", "2", "-seed", "7", dir},
			nil, &buf)
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
	}
	b1, err := os.ReadFile(filepath.Join(out1, "g.json"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(out2, "g.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("island batch runs diverged:\n%s\n%s", b1, b2)
	}
	var resp struct {
		Algo       string `json:"algo"`
		BestIsland *int   `json:"best_island"`
	}
	if err := json.Unmarshal(b1, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algo != "island" || resp.BestIsland == nil {
		t.Fatalf("island result body: %s", b1)
	}
}

func TestBatchFailuresAreReported(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.dot"), []byte("this is not dot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "good.dot"), []byte(demoDOT), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run(context.Background(), []string{"batch", "-algo", "lpl", dir}, nil, &buf)
	if err == nil {
		t.Fatal("batch with a corrupt input succeeded")
	}
	if !strings.Contains(buf.String(), "FAILED") || !strings.Contains(buf.String(), "1/2 layered") {
		t.Fatalf("failure table wrong:\n%s", buf.String())
	}
	// The good input still produced its result next to the inputs.
	if _, err := os.Stat(filepath.Join(dir, "good.json")); err != nil {
		t.Fatal("good input result missing after partial failure")
	}
}

// TestBatchBaseNameCollision: g1.dot and g1.edges must not fight over
// g1.json — colliding bases keep their full input name.
func TestBatchBaseNameCollision(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "g1.dot"), []byte(demoDOT), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "g1.edges"), []byte("3 2\n2 1\n1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"batch", "-out", out, "-algo", "lpl", dir}, nil, &buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, want := range []string{"g1.dot.json", "g1.edges.json"} {
		if _, err := os.Stat(filepath.Join(out, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	if _, err := os.Stat(filepath.Join(out, "g1.json")); !os.IsNotExist(err) {
		t.Error("ambiguous g1.json written despite collision")
	}
}

func TestBatchArgValidation(t *testing.T) {
	if err := run(context.Background(), []string{"batch"}, nil, new(bytes.Buffer)); err == nil {
		t.Fatal("batch without a directory succeeded")
	}
	if err := run(context.Background(), []string{"batch", t.TempDir()}, nil, new(bytes.Buffer)); err == nil {
		t.Fatal("batch over an empty directory succeeded")
	}
	if err := run(context.Background(), []string{"batch", "-algo", "bogus", t.TempDir()}, nil, new(bytes.Buffer)); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestVersionMode(t *testing.T) {
	for _, arg := range []string{"version", "-version", "--version"} {
		var buf bytes.Buffer
		if err := run(context.Background(), []string{arg}, nil, &buf); err != nil {
			t.Fatalf("%s: %v", arg, err)
		}
		if !strings.HasPrefix(buf.String(), "daglayer ") || len(strings.TrimSpace(buf.String())) <= len("daglayer") {
			t.Fatalf("%s output: %q", arg, buf.String())
		}
	}
}

func TestLayerIslandAlgo(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"-algo", "island", "-islands", "2", "-tours", "2", "-migration-interval", "1"},
		strings.NewReader(demoDOT), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "algorithm: island") {
		t.Fatalf("island layer output:\n%s", out.String())
	}
}

// TestBatchStreamMode drives `daglayer batch -stream` end to end against
// a live daemon: every input goes up /jobs/bulk, results stream back, and
// each written file is byte-identical to what the local batch mode
// produces for the same flags — the full push pipeline under one test.
func TestBatchStreamMode(t *testing.T) {
	dir := writeBatchCorpus(t)
	localOut, streamOut := t.TempDir(), t.TempDir()
	flags := []string{"-algo", "aco", "-tours", "2", "-seed", "5"}

	var buf bytes.Buffer
	args := append(append([]string{"batch", "-out", localOut}, flags...), dir)
	if err := run(context.Background(), args, nil, &buf); err != nil {
		t.Fatalf("local batch: %v\n%s", err, buf.String())
	}

	s := server.New(server.Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	buf.Reset()
	args = append(append([]string{"batch", "-stream", "-addr", ts.URL, "-out", streamOut}, flags...), dir)
	if err := run(context.Background(), args, nil, &buf); err != nil {
		t.Fatalf("stream batch: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "3/3 layered (streamed via") {
		t.Fatalf("stream summary missing:\n%s", buf.String())
	}

	for _, name := range []string{"a.json", "b.json", "c.json"} {
		local, err := os.ReadFile(filepath.Join(localOut, name))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := os.ReadFile(filepath.Join(streamOut, name))
		if err != nil {
			t.Fatalf("stream result missing: %v", err)
		}
		if !bytes.Equal(local, streamed) {
			t.Fatalf("%s: streamed result differs from local batch:\n%s\nvs\n%s", name, streamed, local)
		}
	}
}

// TestBatchStreamNeedsAddr: -stream without -addr is refused up front.
func TestBatchStreamNeedsAddr(t *testing.T) {
	dir := writeBatchCorpus(t)
	var buf bytes.Buffer
	err := run(context.Background(), []string{"batch", "-stream", dir}, nil, &buf)
	if err == nil || !strings.Contains(err.Error(), "-addr") {
		t.Fatalf("err = %v, want a -addr complaint", err)
	}
}
