package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestClusterEndToEnd is the multi-process acceptance test: a coordinator
// daemon plus real worker processes on loopback must answer a
// distributed island request byte-identically to the same daemon's
// in-process answer — first with 2 workers, then with 3 (a different
// partition of the islands). The cache is disabled so every answer is a
// real computation.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	bin := buildDaglayer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serve := exec.CommandContext(ctx, bin, "serve",
		"-addr", "127.0.0.1:0", "-coordinator", "127.0.0.1:0", "-cache", "-1")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel() // deferred LIFO: kill the process tree before waiting on it
		_ = serve.Wait()
	}()
	httpAddr, coordAddr := scanServeAddrs(t, stdout)
	baseURL := "http://" + httpAddr

	startWorker := func(name string) {
		w := exec.CommandContext(ctx, bin, "worker", "-coordinator", coordAddr, "-name", name)
		w.Stdout = io.Discard
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Wait() }()
	}
	startWorker("w1")
	startWorker("w2")
	waitFleet(t, baseURL, 2)

	// warm=false: with the result cache off, the repeat requests below
	// would otherwise warm-start from the first answer's pheromone state
	// and run fewer tours — this test compares full recomputations.
	const query = "algo=island&islands=4&tours=3&migration-interval=1&seed=9&warm=false"
	want := postLayerHTTP(t, baseURL, query, demoDOT)
	got2 := postLayerHTTP(t, baseURL, query+"&distributed=true", demoDOT)
	if !bytes.Equal(got2, want) {
		t.Errorf("2-worker distributed body diverges from in-process:\n%s\n%s", got2, want)
	}

	startWorker("w3")
	waitFleet(t, baseURL, 3)
	got3 := postLayerHTTP(t, baseURL, query+"&distributed=true", demoDOT)
	if !bytes.Equal(got3, want) {
		t.Errorf("3-worker distributed body diverges from in-process:\n%s\n%s", got3, want)
	}

	// The cluster endpoint accounted the runs and shards.
	var cluster struct {
		Workers   int `json:"workers"`
		Runs      int64
		Epochs    int64
		PerWorker []struct {
			Name   string `json:"name"`
			Epochs int64  `json:"epochs"`
		} `json:"per_worker"`
	}
	getJSON(t, baseURL+"/cluster", &cluster)
	if cluster.Workers != 3 || cluster.Runs != 2 || cluster.Epochs == 0 {
		t.Errorf("cluster metrics: %+v", cluster)
	}
}

// TestClusterConcurrentRuns is the scheduler's multi-process acceptance
// test: on a 4-worker fleet whose epochs are slowed enough that runs
// demonstrably overlap, two K=2 distributed requests must (a) finish as
// a pair in well under 1.5x one run's wall-clock — i.e. actually run
// concurrently on disjoint leases — and (b) each answer byte-identically
// to the same daemon's in-process answer. A third run then has a leased
// worker SIGKILLed mid-flight and must still come back byte-identical.
func TestClusterConcurrentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	bin := buildDaglayer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// -max-concurrent is load-bearing: on a single-CPU machine the
	// GOMAXPROCS default is 1 and the HTTP compute semaphore would
	// serialize the pair before the scheduler ever saw the second run.
	serve := exec.CommandContext(ctx, bin, "serve",
		"-addr", "127.0.0.1:0", "-coordinator", "127.0.0.1:0",
		"-cache", "-1", "-max-concurrent", "8", "-heartbeat-timeout", "1s")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel()
		_ = serve.Wait()
	}()
	httpAddr, coordAddr := scanServeAddrs(t, stdout)
	baseURL := "http://" + httpAddr

	workers := make(map[string]*exec.Cmd, 4)
	for i := 1; i <= 4; i++ {
		name := fmt.Sprintf("cw%d", i)
		w := exec.CommandContext(ctx, bin, "worker", "-coordinator", coordAddr,
			"-name", name, "-fault-epoch-delay", "60ms", "-heartbeat", "250ms", "-quiet")
		w.Stdout = io.Discard
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers[name] = w
		go func() { _ = w.Wait() }()
	}
	waitFleet(t, baseURL, 4)

	// warm=false for the same reason as TestClusterEndToEnd: every body
	// here must be a full recomputation, not a warm resume of a twin.
	query := func(seed int) string {
		return fmt.Sprintf("algo=island&islands=2&tours=3&migration-interval=1&seed=%d&warm=false", seed)
	}
	// In-process references from the same daemon (cache disabled, so the
	// distributed twins below really compute).
	want41 := postLayerHTTP(t, baseURL, query(41), demoDOT)
	want42 := postLayerHTTP(t, baseURL, query(42), demoDOT)
	want43 := postLayerHTTP(t, baseURL, query(43), demoDOT)

	// Warm the distributed path, then time one run solo.
	postLayerHTTP(t, baseURL, query(40)+"&distributed=true", demoDOT)
	start := time.Now()
	got41 := postLayerHTTP(t, baseURL, query(41)+"&distributed=true", demoDOT)
	single := time.Since(start)
	if !bytes.Equal(got41, want41) {
		t.Errorf("solo distributed body diverges from in-process:\n%s\n%s", got41, want41)
	}

	// The pair: both K=2, both in flight at once on the 4-worker fleet.
	type answer struct {
		i    int
		body []byte
		err  error
	}
	results := make(chan answer, 2)
	post := func(i int, q string) {
		resp, err := http.Post(baseURL+"/layer?"+q, "text/plain", strings.NewReader(demoDOT))
		if err != nil {
			results <- answer{i, nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		results <- answer{i, body, err}
	}
	wantPair := [][]byte{want41, want42}
	start = time.Now()
	go post(0, query(41)+"&distributed=true")
	go post(1, query(42)+"&distributed=true")
	for i := 0; i < 2; i++ {
		a := <-results
		if a.err != nil {
			t.Fatalf("concurrent distributed request %d: %v", a.i, a.err)
		}
		if !bytes.Equal(a.body, wantPair[a.i]) {
			t.Errorf("concurrent distributed body %d diverges from in-process:\n%s\n%s", a.i, a.body, wantPair[a.i])
		}
	}
	pair := time.Since(start)
	if pair >= single*3/2 {
		t.Errorf("pair wall-clock %v vs single %v: want < 1.5x (the runs serialized)", pair, single)
	}
	var cluster struct {
		PeakConcurrentRuns int64 `json:"peak_concurrent_runs"`
		PerWorker          []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"per_worker"`
	}
	getJSON(t, baseURL+"/cluster", &cluster)
	if cluster.PeakConcurrentRuns < 2 {
		t.Errorf("peak_concurrent_runs = %d, want >= 2", cluster.PeakConcurrentRuns)
	}

	// Mid-run worker kill: start a third run, SIGKILL a worker while it
	// holds the lease, and the retried (or re-queued) run must still be
	// byte-identical.
	third := make(chan answer, 1)
	go func() {
		resp, err := http.Post(baseURL+"/layer?"+query(43)+"&distributed=true", "text/plain", strings.NewReader(demoDOT))
		if err != nil {
			third <- answer{2, nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		third <- answer{2, body, err}
	}()
	killed := false
	deadline := time.Now().Add(5 * time.Second)
	for !killed && time.Now().Before(deadline) {
		getJSON(t, baseURL+"/cluster", &cluster)
		for _, w := range cluster.PerWorker {
			if w.State == "leased" {
				if cmd, ok := workers[w.Name]; ok {
					_ = cmd.Process.Kill()
					delete(workers, w.Name)
					killed = true
				}
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !killed {
		t.Fatal("never caught a leased worker to kill — the run finished too fast")
	}
	a := <-third
	if a.err != nil {
		t.Fatalf("distributed run after worker kill: %v", a.err)
	}
	if !bytes.Equal(a.body, want43) {
		t.Errorf("post-kill distributed body diverges from in-process:\n%s\n%s", a.body, want43)
	}
}

// TestClusterSecretEndToEnd pins the -cluster-secret flags across real
// processes: a worker presenting the right secret joins the fleet, one
// with the wrong secret is rejected at registration (a clean close — it
// exits on its first attempt with -retry 0, no expel needed).
func TestClusterSecretEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	bin := buildDaglayer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serve := exec.CommandContext(ctx, bin, "serve",
		"-addr", "127.0.0.1:0", "-coordinator", "127.0.0.1:0", "-cluster-secret", "open-sesame")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel()
		_ = serve.Wait()
	}()
	httpAddr, coordAddr := scanServeAddrs(t, stdout)
	baseURL := "http://" + httpAddr

	intruder := exec.CommandContext(ctx, bin, "worker", "-coordinator", coordAddr,
		"-name", "intruder", "-cluster-secret", "wrong", "-retry", "0")
	intruder.Stdout = io.Discard
	intruder.Stderr = io.Discard
	if err := intruder.Start(); err != nil {
		t.Fatal(err)
	}
	if err := intruder.Wait(); err == nil {
		t.Error("worker with the wrong secret exited clean, want a rejection error")
	}

	member := exec.CommandContext(ctx, bin, "worker", "-coordinator", coordAddr,
		"-name", "member", "-cluster-secret", "open-sesame")
	member.Stdout = io.Discard
	member.Stderr = os.Stderr
	if err := member.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = member.Wait() }()
	waitFleet(t, baseURL, 1)

	var cluster struct {
		Workers   int `json:"workers"`
		PerWorker []struct {
			Name string `json:"name"`
		} `json:"per_worker"`
	}
	getJSON(t, baseURL+"/cluster", &cluster)
	if cluster.Workers != 1 || len(cluster.PerWorker) != 1 || cluster.PerWorker[0].Name != "member" {
		t.Errorf("fleet after rejected intruder: %+v", cluster)
	}
}

// buildDaglayer compiles the daglayer binary once per test binary.
var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

func buildDaglayer(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "daglayer-e2e-*")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "daglayer")
		cmd := exec.Command("go", "build", "-o", builtBin, ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

var (
	// The daemon announces its listen addresses via slog (text handler):
	// msg=listening for HTTP, msg="coordinator listening" for the shard
	// transport, each with the address as the addr attr.
	serveAddrRE = regexp.MustCompile(`\bmsg=listening addr=(\S+)`)
	coordAddrRE = regexp.MustCompile(`\bmsg="coordinator listening" addr=(\S+)`)
)

// scanServeAddrs reads the daemon's stdout until both the HTTP and the
// coordinator listen addresses have been logged, then keeps draining the
// pipe in the background.
func scanServeAddrs(t *testing.T, stdout io.Reader) (httpAddr, coordAddr string) {
	t.Helper()
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for (httpAddr == "" || coordAddr == "") && sc.Scan() {
		line := sc.Text()
		if m := coordAddrRE.FindStringSubmatch(line); m != nil {
			coordAddr = m[1]
			continue
		}
		if m := serveAddrRE.FindStringSubmatch(line); m != nil {
			httpAddr = m[1]
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if httpAddr == "" || coordAddr == "" {
		t.Fatalf("daemon never logged its addresses (http=%q coord=%q, scan err %v)", httpAddr, coordAddr, sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return httpAddr, coordAddr
}

func waitFleet(t *testing.T, baseURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cluster struct {
			Workers int `json:"workers"`
		}
		resp, err := http.Get(baseURL + "/cluster")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&cluster)
			resp.Body.Close()
		}
		if err == nil && cluster.Workers == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers (last err %v, have %d)", n, err, cluster.Workers)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postLayerHTTP(t *testing.T, baseURL, query, body string) []byte {
	t.Helper()
	resp, err := http.Post(baseURL+"/layer?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /layer?%s: status %d: %s", query, resp.StatusCode, data)
	}
	return data
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}
