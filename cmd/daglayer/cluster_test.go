package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestClusterEndToEnd is the multi-process acceptance test: a coordinator
// daemon plus real worker processes on loopback must answer a
// distributed island request byte-identically to the same daemon's
// in-process answer — first with 2 workers, then with 3 (a different
// partition of the islands). The cache is disabled so every answer is a
// real computation.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode")
	}
	bin := buildDaglayer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	serve := exec.CommandContext(ctx, bin, "serve",
		"-addr", "127.0.0.1:0", "-coordinator", "127.0.0.1:0", "-cache", "-1")
	stdout, err := serve.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	serve.Stderr = os.Stderr
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cancel() // deferred LIFO: kill the process tree before waiting on it
		_ = serve.Wait()
	}()
	httpAddr, coordAddr := scanServeAddrs(t, stdout)
	baseURL := "http://" + httpAddr

	startWorker := func(name string) {
		w := exec.CommandContext(ctx, bin, "worker", "-coordinator", coordAddr, "-name", name)
		w.Stdout = io.Discard
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		go func() { _ = w.Wait() }()
	}
	startWorker("w1")
	startWorker("w2")
	waitFleet(t, baseURL, 2)

	const query = "algo=island&islands=4&tours=3&migration-interval=1&seed=9"
	want := postLayerHTTP(t, baseURL, query, demoDOT)
	got2 := postLayerHTTP(t, baseURL, query+"&distributed=true", demoDOT)
	if !bytes.Equal(got2, want) {
		t.Errorf("2-worker distributed body diverges from in-process:\n%s\n%s", got2, want)
	}

	startWorker("w3")
	waitFleet(t, baseURL, 3)
	got3 := postLayerHTTP(t, baseURL, query+"&distributed=true", demoDOT)
	if !bytes.Equal(got3, want) {
		t.Errorf("3-worker distributed body diverges from in-process:\n%s\n%s", got3, want)
	}

	// The cluster endpoint accounted the runs and shards.
	var cluster struct {
		Workers   int `json:"workers"`
		Runs      int64
		Epochs    int64
		PerWorker []struct {
			Name   string `json:"name"`
			Epochs int64  `json:"epochs"`
		} `json:"per_worker"`
	}
	getJSON(t, baseURL+"/cluster", &cluster)
	if cluster.Workers != 3 || cluster.Runs != 2 || cluster.Epochs == 0 {
		t.Errorf("cluster metrics: %+v", cluster)
	}
}

// buildDaglayer compiles the daglayer binary once per test binary.
var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

func buildDaglayer(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "daglayer-e2e-*")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "daglayer")
		cmd := exec.Command("go", "build", "-o", builtBin, ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

var (
	serveAddrRE = regexp.MustCompile(`(?m)^daglayer: .*\blistening on (\S+)$`)
	coordAddrRE = regexp.MustCompile(`coordinator listening on (\S+)$`)
)

// scanServeAddrs reads the daemon's stdout until both the HTTP and the
// coordinator listen addresses have been logged, then keeps draining the
// pipe in the background.
func scanServeAddrs(t *testing.T, stdout io.Reader) (httpAddr, coordAddr string) {
	t.Helper()
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for (httpAddr == "" || coordAddr == "") && sc.Scan() {
		line := sc.Text()
		if m := coordAddrRE.FindStringSubmatch(line); m != nil {
			coordAddr = m[1]
			continue
		}
		if m := serveAddrRE.FindStringSubmatch(line); m != nil {
			httpAddr = m[1]
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if httpAddr == "" || coordAddr == "" {
		t.Fatalf("daemon never logged its addresses (http=%q coord=%q, scan err %v)", httpAddr, coordAddr, sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return httpAddr, coordAddr
}

func waitFleet(t *testing.T, baseURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cluster struct {
			Workers int `json:"workers"`
		}
		resp, err := http.Get(baseURL + "/cluster")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&cluster)
			resp.Body.Close()
		}
		if err == nil && cluster.Workers == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers (last err %v, have %d)", n, err, cluster.Workers)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func postLayerHTTP(t *testing.T, baseURL, query, body string) []byte {
	t.Helper()
	resp, err := http.Post(baseURL+"/layer?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /layer?%s: status %d: %s", query, resp.StatusCode, data)
	}
	return data
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}
