package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const demoDOT = `digraph demo {
	a -> b; a -> c; b -> d; c -> d; c -> e; d -> f; e -> f;
}`

func TestRunEdgeListFormat(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-format", "edges", "-algo", "ns"},
		strings.NewReader("3 2\n2 1\n1 0\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "height:           3") {
		t.Fatalf("edge-list input mishandled:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-format", "bogus"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bogus format accepted")
	}
}

func TestRunEdgeListNamesDrawings(t *testing.T) {
	// Edge-list inputs have no node names; the CLI must fall back to v<N>
	// so the layer listing, the SVG and the rank-dot output all render
	// labelled vertices instead of empty strings.
	dir := t.TempDir()
	svg := filepath.Join(dir, "out.svg")
	rank := filepath.Join(dir, "rank.dot")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-format", "edges", "-algo", "lpl", "-svg", svg, "-rank-dot", rank, "-ascii"},
		strings.NewReader("3 2\n2 1\n1 0\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "v2") {
		t.Fatalf("layer listing missing v2:\n%s", out.String())
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ">v0<") {
		t.Fatalf("SVG missing v0 label:\n%s", data)
	}
	rankData, err := os.ReadFile(rank)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rankData), "v1 -> v0") {
		t.Fatalf("rank-dot missing named edge:\n%s", rankData)
	}
}

func TestRunFromStdin(t *testing.T) {
	for _, algo := range []string{"aco", "lpl", "minwidth", "cg", "ns"} {
		var out bytes.Buffer
		err := run(context.Background(), []string{"-algo", algo}, strings.NewReader(demoDOT), &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		s := out.String()
		if !strings.Contains(s, "height:") || !strings.Contains(s, "L1") {
			t.Fatalf("%s output missing metrics:\n%s", algo, s)
		}
	}
}

func TestRunWithPromote(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-algo", "lpl", "-promote"}, strings.NewReader(demoDOT), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "promote=true") {
		t.Fatal("promote flag not reflected")
	}
}

func TestRunFromFileWithSVG(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "g.dot")
	if err := os.WriteFile(in, []byte(demoDOT), 0o644); err != nil {
		t.Fatal(err)
	}
	svg := filepath.Join(dir, "out.svg")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-in", in, "-algo", "aco", "-svg", svg, "-ascii"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Fatal("SVG file malformed")
	}
	if !strings.Contains(out.String(), "height=") {
		t.Fatal("ASCII drawing missing")
	}
}

func TestRunCompare(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-compare"}, strings.NewReader(demoDOT), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"lpl", "netsimplex", "aco", "dummies"} {
		if !strings.Contains(s, want) {
			t.Fatalf("comparison missing %q:\n%s", want, s)
		}
	}
	lines := strings.Count(s, "\n")
	if lines < 8 { // header + graph line + 6 algorithms
		t.Fatalf("comparison too short (%d lines):\n%s", lines, s)
	}
}

func TestRunRankDOT(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ranked.dot")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-algo", "lpl", "-rank-dot", out}, strings.NewReader(demoDOT), &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "rank=same") {
		t.Fatal("rank-dot output missing rank=same groups")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-algo", "nope"},
		{"-in", "/nonexistent/file.dot"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, strings.NewReader(demoDOT), new(bytes.Buffer)); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	if err := run(context.Background(), nil, strings.NewReader("garbage"), new(bytes.Buffer)); err == nil {
		t.Error("garbage DOT accepted")
	}
	if err := run(context.Background(), []string{"-bogus-flag"}, nil, new(bytes.Buffer)); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunCyclicInputViaACO(t *testing.T) {
	// daglayer layers directly (no cycle removal); cyclic input must be
	// rejected by the layerer.
	cyc := `digraph { a -> b; b -> a; }`
	if err := run(context.Background(), []string{"-algo", "lpl"}, strings.NewReader(cyc), new(bytes.Buffer)); err == nil {
		t.Fatal("cyclic input accepted")
	}
}
