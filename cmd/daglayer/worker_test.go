package main

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestReconnectBackoffSchedule pins the exact retry schedule: exponential
// doubling with the deterministic attempt-keyed jitter, capped at max.
func TestReconnectBackoffSchedule(t *testing.T) {
	b := &reconnectBackoff{base: 100 * time.Millisecond, max: 2 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond,    // 100ms, jitter 0
		212500 * time.Microsecond, // 200ms + 1*(200ms/16)
		450 * time.Millisecond,    // 400ms + 2*(400ms/16)
		950 * time.Millisecond,    // 800ms + 3*(800ms/16)
		2 * time.Second,           // 1600ms + 4*(1600ms/16) = 2s (at cap)
		2 * time.Second,           // 3200ms, jitter 0, capped
		2 * time.Second,           // capped forever after
	}
	for i, w := range want {
		if got := b.next(); got != w {
			t.Errorf("attempt %d: next() = %s, want %s", i, got, w)
		}
	}
	b.reset()
	if got := b.next(); got != 100*time.Millisecond {
		t.Errorf("after reset: next() = %s, want base 100ms", got)
	}
}

// TestWorkerLoopBackoffAndReset drives the reconnect loop with a fake run
// function and a fake clock: the sleeps must follow the backoff schedule,
// and a successful re-registration (OnRegister → reset) must snap the
// next outage's delay back to base.
func TestWorkerLoopBackoffAndReset(t *testing.T) {
	b := &reconnectBackoff{base: time.Second, max: 8 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var slept []time.Duration
	calls := 0
	run := func(context.Context) error {
		calls++
		switch calls {
		case 4:
			// The worker re-registered successfully this session; the
			// OnRegister callback fires reset before the session later dies.
			b.reset()
			return errors.New("lost after a healthy session")
		case 6:
			cancel()
			return errors.New("killed")
		}
		return errors.New("dial refused")
	}
	sleep := func(_ context.Context, d time.Duration) bool {
		slept = append(slept, d)
		return true
	}
	if err := workerLoop(ctx, "coord:1", run, b, sleep, nil); err != nil {
		t.Fatalf("workerLoop after ctx cancel = %v, want nil", err)
	}
	want := []time.Duration{
		time.Second,                          // attempt 0
		2*time.Second + 125*time.Millisecond, // attempt 1: 2s + 2s/16
		4*time.Second + 500*time.Millisecond, // attempt 2: 4s + 2*(4s/16)
		time.Second,                          // reset fired: back to attempt 0
		2*time.Second + 125*time.Millisecond, // attempt 1 again
	}
	if !reflect.DeepEqual(slept, want) {
		t.Errorf("sleep schedule = %v, want %v", slept, want)
	}
	if calls != 6 {
		t.Errorf("run called %d times, want 6", calls)
	}
}

// TestWorkerLoopNoRetry: a zero base disables retrying — the first
// connection error is returned as-is, with no sleep.
func TestWorkerLoopNoRetry(t *testing.T) {
	b := &reconnectBackoff{base: 0, max: 0}
	boom := errors.New("dial refused")
	slept := false
	err := workerLoop(context.Background(), "coord:1",
		func(context.Context) error { return boom },
		b,
		func(context.Context, time.Duration) bool { slept = true; return true },
		nil)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
	if slept {
		t.Error("workerLoop slept with retry disabled")
	}
}

// TestWorkerLoopStopsWhenSleepInterrupted: the loop exits cleanly (nil)
// when the context dies mid-backoff.
func TestWorkerLoopStopsWhenSleepInterrupted(t *testing.T) {
	b := &reconnectBackoff{base: time.Second, max: time.Second}
	err := workerLoop(context.Background(), "coord:1",
		func(context.Context) error { return errors.New("dial refused") },
		b,
		func(context.Context, time.Duration) bool { return false },
		nil)
	if err != nil {
		t.Errorf("err = %v, want nil when the sleep reports ctx death", err)
	}
}
