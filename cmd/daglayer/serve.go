package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"antlayer/internal/server"
)

// runServe starts the layering HTTP daemon and blocks until ctx is
// cancelled (Ctrl-C / SIGTERM in main), then shuts down gracefully.
func runServe(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8645", "listen address")
		cacheSize  = fs.Int("cache", 256, "result cache capacity in responses (negative disables)")
		maxConc    = fs.Int("max-concurrent", 0, "max concurrently computing requests (0 = GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout = fs.Duration("max-timeout", 2*time.Minute, "cap on the per-request timeout-ms override")
		maxBody    = fs.Int64("max-body", 8<<20, "request body size limit in bytes")
		grace      = fs.Duration("shutdown-grace", 10*time.Second, "how long shutdown waits for in-flight requests")
		jobWorkers = fs.Int("job-workers", 0, "async job worker pool size (0 = GOMAXPROCS)")
		jobQueue   = fs.Int("job-queue", 64, "async job backlog bound; POST /jobs beyond it answers 429")
		jobRetain  = fs.Int("job-retention", 256, "finished jobs kept pollable before eviction")
		quiet      = fs.Bool("quiet", false, "suppress per-request logging")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: daglayer serve [flags]

Runs the layering HTTP daemon:

  POST   /layer      layer a DOT (or edge-list) graph; see README "Serving"
  POST   /jobs       same request, asynchronously: 202 + job id
  GET    /jobs/{id}  poll a job (done jobs answer the /layer body)
  DELETE /jobs/{id}  cancel a job
  GET    /healthz    liveness + build info
  GET    /metrics    counters: requests, cache hit rate, tours, p50/p99
                     latency, job queue depth and per-state counts

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.Config{
		Addr:           *addr,
		CacheSize:      *cacheSize,
		MaxConcurrent:  *maxConc,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		ShutdownGrace:  *grace,
		JobWorkers:     *jobWorkers,
		JobQueueDepth:  *jobQueue,
		JobRetention:   *jobRetain,
	}
	if !*quiet {
		cfg.Log = log.New(stdout, "daglayer: ", log.LstdFlags)
	}
	return server.New(cfg).ListenAndServe(ctx)
}
