package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"time"

	"antlayer/internal/obs"
	"antlayer/internal/server"
	"antlayer/internal/shard"
)

// runServe starts the layering HTTP daemon and blocks until ctx is
// cancelled (Ctrl-C / SIGTERM in main), then shuts down gracefully.
func runServe(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8645", "listen address")
		cacheSize   = fs.Int("cache", 256, "result cache capacity in responses (negative disables)")
		cacheBytes  = fs.Int64("cache-bytes", 64<<20, "result cache body-byte budget; bodies over an eighth of it are never cached (negative = entry-counted only)")
		maxConc     = fs.Int("max-concurrent", 0, "max concurrently computing requests (0 = GOMAXPROCS)")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 2*time.Minute, "cap on the per-request timeout-ms override")
		maxBody     = fs.Int64("max-body", 8<<20, "request body size limit in bytes")
		grace       = fs.Duration("shutdown-grace", 10*time.Second, "how long shutdown waits for in-flight requests")
		jobWorkers  = fs.Int("job-workers", 0, "async job worker pool size (0 = GOMAXPROCS)")
		jobQueue    = fs.Int("job-queue", 64, "async job backlog bound; POST /jobs beyond it answers 429")
		jobRetain   = fs.Int("job-retention", 256, "finished jobs kept pollable before eviction")
		jobExpiry   = fs.Duration("job-expiry", 0, "additionally evict finished jobs older than this (0 = count bound only)")
		eventRing   = fs.Int("event-ring", 0, "job-event replay ring size; bounds how far back an SSE reconnect can resume (0 = default 1024)")
		sseHeart    = fs.Duration("sse-heartbeat", 0, "heartbeat-comment interval on idle SSE streams (0 = default 15s)")
		whRetries   = fs.Int("webhook-retries", 0, "delivery attempts per webhook event before giving up (0 = default 4)")
		coordinator = fs.String("coordinator", "", "also run a shard coordinator on this address (e.g. :8650); workers join with 'daglayer worker'")
		hbTimeout   = fs.Duration("heartbeat-timeout", 0, "expel workers silent longer than this (0 = library default, negative disables)")
		runQueue    = fs.Int("run-queue", 0, "distributed-run admission queue bound; runs beyond it answer 429 (0 = default 16, negative = dispatch-or-reject)")
		maxRuns     = fs.Int("max-runs", 0, "cap on concurrently dispatched distributed runs (0 = worker availability is the only bound)")
		secret      = fs.String("cluster-secret", "", "shared secret workers must present to register (empty = open cluster)")
		warmBytes   = fs.Int64("warm-cache-bytes", 0, "warm-start state cache budget in bytes (0 = default 64 MiB, negative disables warm starting)")
		warmFrac    = fs.Float64("warm-tours-frac", 0, "fraction of the cold tour budget a warm-started run gets (0 = default 1/3)")
		warmStall   = fs.Int("warm-stall-tours", 0, "stall-tours early stop injected into warm-started runs that set none (0 = default 3, negative disables)")
		warmMinSim  = fs.Float64("warm-min-similarity", 0, "minimum vertex-name overlap ratio the similarity probe requires (0 = default 0.5)")
		traceSample = fs.Float64("trace-sample", 1, "fraction of requests that get a trace (head sampling; 1 = every request)")
		faultDelay  = fs.Duration("fault-compute-delay", 0, "TESTING ONLY: add this delay to every computation, simulating a slow backend for chaos scenarios")
		quiet       = fs.Bool("quiet", false, "suppress per-request logging")
		logLevel    = fs.String("log-level", "info", "log threshold: debug|info|warn|error")
		logFormat   = fs.String("log-format", "text", "log line format: text|json")
		traceRing   = fs.Int("trace-ring", 0, "recent request traces retained for GET /traces (0 = default 256)")
		traceSlow   = fs.Int("trace-slowest", 0, "slowest traces additionally retained past the ring (0 = default 32, negative disables)")
		pprofOn     = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: daglayer serve [flags]

Runs the layering HTTP daemon:

  POST   /layer      layer a DOT (or edge-list) graph; see README "Serving"
                     (add distributed=true on a coordinator to shard
                     algo=island over the worker fleet; repeat or
                     lightly-edited colony requests warm-start from the
                     cached pheromone state of a prior answer — README
                     "Warm-start serving", opt out per request with
                     warm=false, pin a lineage with base=<graph key>)
  POST   /jobs       same request, asynchronously: 202 + job id
  POST   /jobs/bulk  ndjson of {query,graph} lines in, one result line
                     per job out, streamed in completion order
                     (?envelope=true wraps raw /layer bodies with
                     line/job/state; 'daglayer batch -stream' uses this)
  GET    /jobs       list tracked jobs (?state=queued|running|done|failed)
  GET    /jobs/{id}  poll a job (done jobs answer the /layer body)
  GET    /jobs/{id}/events
                     stream the job's state transitions as Server-Sent
                     Events; Last-Event-ID (or ?after=) replays missed
                     transitions from a bounded ring, exactly once
  DELETE /jobs/{id}  cancel a job
  GET    /events     SSE firehose of every job's transitions
                     (?topic= filters to one submission label)
  POST   /subscriptions
                     register a webhook {url, topic, job}; events POST
                     to the url with retries on the worker-reconnect
                     backoff schedule
  GET    /subscriptions
                     list webhooks + delivery stats (GET/DELETE
                     /subscriptions/{id} inspects/cancels one)
  GET    /healthz    liveness + build info
  GET    /metrics    counters: requests, cache hit rate + bytes, tours,
                     p50/p99 latency, job queue depth and per-state
                     counts, event/webhook delivery, cluster
                     epochs/migrations
  GET    /cluster    the shard coordinator's fleet (coordinator only)
  GET    /traces     retained request traces, slowest first
                     (?limit=N&min_ms=D); every /layer and /jobs answer
                     echoes X-Request-ID, and GET /traces/{id} breaks the
                     request into spans — parse, cache, queue, cluster
                     admission, per-worker epochs

With -coordinator the daemon also owns a distributed archipelago: worker
processes ('daglayer worker -coordinator host:port') register on that
address and island runs with distributed=true shard across them,
byte-identical to in-process runs (README "Cluster"). Distinct runs
lease disjoint worker subsets and proceed concurrently; -run-queue
bounds the admission backlog (beyond it /layer answers 429 with a
stats-derived Retry-After), -max-runs caps the overlap, and
-cluster-secret gates worker registration.

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := server.Config{
		Addr:              *addr,
		CacheSize:         *cacheSize,
		CacheMaxBytes:     *cacheBytes,
		MaxConcurrent:     *maxConc,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxBodyBytes:      *maxBody,
		ShutdownGrace:     *grace,
		JobWorkers:        *jobWorkers,
		JobQueueDepth:     *jobQueue,
		JobRetention:      *jobRetain,
		JobExpiry:         *jobExpiry,
		EventRing:         *eventRing,
		SSEHeartbeat:      *sseHeart,
		WebhookRetries:    *whRetries,
		FaultComputeDelay: *faultDelay,
		TraceRing:         *traceRing,
		TraceSlowest:      *traceSlow,
		TraceSample:       *traceSample,
		WarmCacheBytes:    *warmBytes,
		WarmToursFrac:     *warmFrac,
		WarmStallTours:    *warmStall,
		WarmMinSimilarity: *warmMinSim,
		EnablePprof:       *pprofOn,
	}
	if *traceSample == 0 {
		// On the flag, 0 reads as "trace nothing"; in the Config, 0 is the
		// zero value and means the default (1). Translate.
		cfg.TraceSample = -1
	}
	if !*quiet {
		logger, err := obs.NewLogger(stdout, *logLevel, *logFormat)
		if err != nil {
			return err
		}
		cfg.Log = logger
	}
	if *coordinator != "" {
		// The coordinator listens on its own port with its own accept
		// loop; the daemon only uses it for distributed compute and
		// metrics. Both shut down with ctx.
		coord := shard.NewCoordinator(shard.CoordinatorConfig{
			Log:               cfg.Log,
			HeartbeatTimeout:  *hbTimeout,
			QueueDepth:        *runQueue,
			MaxConcurrentRuns: *maxRuns,
			Secret:            *secret,
		})
		ln, err := net.Listen("tcp", *coordinator)
		if err != nil {
			return fmt.Errorf("coordinator: %w", err)
		}
		if cfg.Log != nil {
			cfg.Log.Info("coordinator listening", "addr", ln.Addr().String())
		}
		coordErr := make(chan error, 1)
		go func() { coordErr <- coord.Serve(ctx, ln) }()
		cfg.Coordinator = coord
		serveErr := server.New(cfg).ListenAndServe(ctx)
		if err := <-coordErr; err != nil && serveErr == nil {
			return fmt.Errorf("coordinator: %w", err)
		}
		return serveErr
	}
	return server.New(cfg).ListenAndServe(ctx)
}
