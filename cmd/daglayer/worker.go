package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"antlayer/internal/obs"
	"antlayer/internal/shard"
)

// reconnectBackoff computes the worker's retry schedule: exponential
// doubling from base up to max, plus a deterministic jitter keyed off the
// attempt counter — so a restarted fleet doesn't redial in lockstep, yet
// the exact schedule is pinned by a unit test. reset() (wired to the
// worker's OnRegister callback) snaps the schedule back to base after a
// successful registration, so one long outage doesn't make the worker
// sluggish about the next brief one.
type reconnectBackoff struct {
	base, max time.Duration

	mu      sync.Mutex
	attempt int
}

// next returns the delay before the upcoming reconnect attempt and
// advances the schedule. Attempt k waits base<<k plus (k%5) sixteenths of
// that doubled delay, capped at max.
func (b *reconnectBackoff) next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.base
	for i := 0; i < b.attempt && d < b.max; i++ {
		d *= 2
	}
	d += time.Duration(b.attempt%5) * (d / 16)
	if d > b.max {
		d = b.max
	}
	b.attempt++
	return d
}

// reset snaps the schedule back to the base delay.
func (b *reconnectBackoff) reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// sleepCtx waits d or returns false when ctx dies first. workerLoop takes
// it as a parameter so tests can run the schedule against a fake clock.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// workerLoop is the reconnect loop, factored out of runWorker so the
// backoff behaviour is unit-testable: run performs one registration
// session and returns when the connection is lost; sleep waits out the
// backoff delay (or reports the context died). A zero or negative base
// disables retrying — the first connection error is returned as-is.
func workerLoop(ctx context.Context, coordinator string, run func(context.Context) error, b *reconnectBackoff, sleep func(context.Context, time.Duration) bool, logger *slog.Logger) error {
	if logger == nil {
		logger = obs.Discard()
	}
	for {
		err := run(ctx)
		if ctx.Err() != nil {
			return nil
		}
		if b.base <= 0 {
			return err
		}
		d := b.next()
		logger.Warn("connection lost; retrying",
			"coordinator", coordinator, "err", err, "backoff", d)
		if !sleep(ctx, d) {
			return nil
		}
	}
}

// runWorker joins a coordinator's archipelago: dial, register, and host
// assigned island slices until ctx is cancelled. A lost connection is
// retried with capped exponential backoff that resets after a successful
// registration — the coordinator expels dead workers and re-registration
// is all it takes to rejoin the fleet.
func runWorker(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer worker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator address to register with (required), e.g. host:8650")
		name        = fs.String("name", "", "worker name in the coordinator's logs and /cluster (default: worker-<id>)")
		retry       = fs.Duration("retry", 2*time.Second, "base backoff between reconnect attempts (doubles per failure); 0 exits on the first connection error")
		retryMax    = fs.Duration("retry-max", 30*time.Second, "cap on the reconnect backoff")
		heartbeat   = fs.Duration("heartbeat", 0, "liveness heartbeat interval (0 = library default, negative disables)")
		secret      = fs.String("cluster-secret", "", "shared secret to present at registration (must match the coordinator's -cluster-secret)")
		faultDelay  = fs.Duration("fault-epoch-delay", 0, "TESTING ONLY: sleep this long every epoch, simulating a slow worker for chaos scenarios")
		quiet       = fs.Bool("quiet", false, "suppress per-run logging")
		logLevel    = fs.String("log-level", "info", "log threshold: debug|info|warn|error")
		logFormat   = fs.String("log-format", "text", "log line format: text|json")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: daglayer worker -coordinator host:port [flags]

Joins a layering cluster as a worker process: registers with the
coordinator (a daemon started with 'daglayer serve -coordinator'), then
hosts the islands assigned to it — the coordinator exchanges elites with
every worker at each migration barrier, so the cluster's answer is
byte-identical to a single-process run (see README "Cluster").

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		fs.Usage()
		return fmt.Errorf("worker: -coordinator is required")
	}
	var logger *slog.Logger
	if !*quiet {
		lg, err := obs.NewLogger(stdout, *logLevel, *logFormat)
		if err != nil {
			return err
		}
		logger = lg
	}
	b := &reconnectBackoff{base: *retry, max: *retryMax}
	if b.max < b.base {
		b.max = b.base
	}
	wcfg := shard.WorkerConfig{
		Name:              *name,
		Secret:            *secret,
		Log:               logger,
		HeartbeatInterval: *heartbeat,
		// A successful registration resets the backoff: the next outage
		// starts the schedule from the base delay again.
		OnRegister: func(int) { b.reset() },
	}
	if *faultDelay > 0 {
		wcfg.Fault = &shard.FaultPlan{EpochDelay: *faultDelay}
	}
	w := shard.NewWorker(wcfg)
	return workerLoop(ctx, *coordinator, func(ctx context.Context) error {
		return w.Run(ctx, *coordinator)
	}, b, sleepCtx, logger)
}
