package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"antlayer/internal/shard"
)

// runWorker joins a coordinator's archipelago: dial, register, and host
// assigned island slices until ctx is cancelled. A lost connection is
// retried with a fixed backoff — the coordinator expels dead workers and
// re-registration is all it takes to rejoin the fleet.
func runWorker(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer worker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator address to register with (required), e.g. host:8650")
		name        = fs.String("name", "", "worker name in the coordinator's logs and /cluster (default: worker-<id>)")
		retry       = fs.Duration("retry", 2*time.Second, "backoff between reconnect attempts; 0 exits on the first connection error")
		quiet       = fs.Bool("quiet", false, "suppress per-run logging")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: daglayer worker -coordinator host:port [flags]

Joins a layering cluster as a worker process: registers with the
coordinator (a daemon started with 'daglayer serve -coordinator'), then
hosts the islands assigned to it — the coordinator exchanges elites with
every worker at each migration barrier, so the cluster's answer is
byte-identical to a single-process run (see README "Cluster").

flags:
`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		fs.Usage()
		return fmt.Errorf("worker: -coordinator is required")
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(stdout, "daglayer worker: ", log.LstdFlags)
	}
	w := shard.NewWorker(shard.WorkerConfig{Name: *name, Log: logger})
	for {
		err := w.Run(ctx, *coordinator)
		if ctx.Err() != nil {
			return nil
		}
		if *retry <= 0 {
			return err
		}
		if logger != nil {
			logger.Printf("connection to %s lost (%v); retrying in %s", *coordinator, err, *retry)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*retry):
		}
	}
}
