package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"antlayer"
	"antlayer/internal/batch"
	"antlayer/internal/server"
)

// runBatch implements `daglayer batch <dir>`: layer every .dot and .edges
// file in the directory concurrently on a bounded job queue and write one
// JSON result per input — the same body the HTTP daemon's /layer (and a
// done /jobs/{id}) serves, so downstream tooling parses one shape
// everywhere. Interrupting the run (Ctrl-C) cancels the in-flight
// colonies; already-written results stay on disk.
func runBatch(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer batch", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: daglayer batch [flags] <dir>

Layers every .dot and .edges file in <dir> concurrently and writes a
<name>.json result per input (the same JSON the HTTP daemon serves).

flags:
`)
		fs.PrintDefaults()
	}
	var (
		out        = fs.String("out", "", "output directory (default: the input directory)")
		jobs       = fs.Int("jobs", 0, "concurrent layering jobs (0 = all CPUs)")
		timeout    = fs.Duration("timeout", 0, "per-file deadline (0 = none)")
		algo       = fs.String("algo", "aco", "layering algorithm: aco|island|lpl|minwidth|cg|ns")
		doPromote  = fs.Bool("promote", false, "apply the Promote Layering post-processing step")
		dummyWidth = fs.Float64("dummy-width", 1.0, "width of a dummy vertex (nd_width)")
		ants       = fs.Int("ants", 10, "aco: colony size")
		tours      = fs.Int("tours", 10, "aco: number of tours")
		alpha      = fs.Float64("alpha", 1, "aco: pheromone exponent")
		beta       = fs.Float64("beta", 3, "aco: heuristic exponent")
		seed       = fs.Int64("seed", 1, "aco: random seed")
		workers    = fs.Int("workers", 0, "aco: goroutines per tour (0 = all CPUs)")
		cgWidth    = fs.Int("cg-width", 4, "cg: maximum real vertices per layer")
		islands    = fs.Int("islands", 4, "island: number of cooperating colonies")
		migrate    = fs.Int("migration-interval", 2, "island: tours between elite migrations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("batch wants exactly one directory argument, got %d", fs.NArg())
	}
	dir := fs.Arg(0)
	outDir := *out
	if outDir == "" {
		outDir = dir
	}

	req := server.DefaultRequest()
	req.Algo = *algo
	req.Promote = *doPromote
	req.DummyWidth = *dummyWidth
	req.CGWidth = *cgWidth
	req.ACO = buildACO(*ants, *tours, *workers, *alpha, *beta, *dummyWidth, *seed)
	req.Islands = *islands
	req.MigrationInterval = *migrate
	// Fail on a bad algorithm name up front, not once per file — and let
	// LayererByName own the valid-name list instead of keeping a copy.
	if _, err := antlayer.LayererByName(ctx, req.Algo, antlayer.Options{
		DummyWidth:        req.DummyWidth,
		CGWidth:           req.CGWidth,
		ACO:               req.ACO,
		Islands:           req.Islands,
		MigrationInterval: req.MigrationInterval,
	}); err != nil {
		return err
	}

	inputs, err := batchInputs(dir)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no .dot or .edges files in %s", dir)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	q := batch.New(batch.Config{
		Workers: *jobs,
		// The whole work list is submitted up front, so the backlog bound
		// is the input count — the queue paces the workers, not Submit.
		Depth:  len(inputs),
		Retain: len(inputs),
	})
	defer q.Close()

	// Cancel the queue's jobs when ctx dies (Ctrl-C): the colonies abort
	// within one ant walk per worker and the run reports the failures.
	stop := context.AfterFunc(ctx, func() { q.Close() })
	defer stop()

	type submission struct {
		name string
		job  *batch.Job
	}
	subs := make([]submission, 0, len(inputs))
	for _, name := range inputs {
		freq := req // copy; Format differs per file
		if strings.HasSuffix(name, ".dot") {
			freq.Format = "dot"
		} else {
			freq.Format = "edges"
		}
		path := filepath.Join(dir, name)
		j, err := q.Submit(func(jctx context.Context) ([]byte, error) {
			if *timeout > 0 {
				var cancel context.CancelFunc
				jctx, cancel = context.WithTimeout(jctx, *timeout)
				defer cancel()
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			g, names, err := server.ParseGraph(freq, f)
			if err != nil {
				return nil, fmt.Errorf("parse: %w", err)
			}
			body, _, err := server.Compute(jctx, freq, g, names)
			return body, err
		})
		if err != nil {
			return fmt.Errorf("submit %s: %w", name, err)
		}
		subs = append(subs, submission{name: name, job: j})
	}

	dest := destNames(inputs)
	failed := 0
	for _, sub := range subs {
		snap, _ := sub.job.Wait(context.Background()) // jobs settle even on cancel
		switch snap.State {
		case batch.StateDone:
			dst := filepath.Join(outDir, dest[sub.name])
			if err := os.WriteFile(dst, snap.Result, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-30s ok     %s (%s)\n", sub.name, summarize(snap.Result), snap.Finished.Sub(snap.Started).Round(time.Millisecond))
		default:
			failed++
			fmt.Fprintf(stdout, "%-30s FAILED %v\n", sub.name, snap.Err)
		}
	}
	fmt.Fprintf(stdout, "batch: %d/%d layered (algo=%s, %d jobs)\n", len(subs)-failed, len(subs), req.Algo, *jobs)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("batch interrupted: %w", err)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d inputs failed", failed, len(subs))
	}
	return nil
}

// destNames maps each input to its result filename: <base>.json, except
// when two inputs share a base (g1.dot and g1.edges), which keep their
// full name — g1.dot.json, g1.edges.json — so neither result silently
// overwrites the other.
func destNames(inputs []string) map[string]string {
	bases := map[string]int{}
	for _, name := range inputs {
		bases[strings.TrimSuffix(name, filepath.Ext(name))]++
	}
	dest := make(map[string]string, len(inputs))
	for _, name := range inputs {
		base := strings.TrimSuffix(name, filepath.Ext(name))
		if bases[base] > 1 {
			dest[name] = name + ".json"
		} else {
			dest[name] = base + ".json"
		}
	}
	return dest
}

// batchInputs lists the layerable files of dir in sorted order, so runs
// are reproducible and the result table is stable.
func batchInputs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var inputs []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".dot", ".edges":
			inputs = append(inputs, e.Name())
		}
	}
	sort.Strings(inputs)
	return inputs, nil
}

// summarize renders the one-line metrics digest of a result body for the
// progress table.
func summarize(body []byte) string {
	var resp struct {
		Graph   struct{ Vertices, Edges int }
		Metrics struct {
			Height    int     `json:"height"`
			WidthIncl float64 `json:"width_incl"`
		}
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return "?"
	}
	return fmt.Sprintf("n=%d m=%d H=%d W=%.1f",
		resp.Graph.Vertices, resp.Graph.Edges, resp.Metrics.Height, resp.Metrics.WidthIncl)
}
