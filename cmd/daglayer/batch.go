package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"antlayer"
	"antlayer/internal/batch"
	"antlayer/internal/server"
)

// runBatch implements `daglayer batch <dir>`: layer every .dot and .edges
// file in the directory concurrently on a bounded job queue and write one
// JSON result per input — the same body the HTTP daemon's /layer (and a
// done /jobs/{id}) serves, so downstream tooling parses one shape
// everywhere. Interrupting the run (Ctrl-C) cancels the in-flight
// colonies; already-written results stay on disk.
func runBatch(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("daglayer batch", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `usage: daglayer batch [flags] <dir>

Layers every .dot and .edges file in <dir> concurrently and writes a
<name>.json result per input (the same JSON the HTTP daemon serves).

With -stream, the files are submitted to a running daemon's POST
/jobs/bulk instead of computing locally: one ndjson line per input goes
up, results stream back in completion order, and each is written as it
arrives. Requires -addr; -jobs is ignored (the daemon's job pool is the
bound).

flags:
`)
		fs.PrintDefaults()
	}
	var (
		out        = fs.String("out", "", "output directory (default: the input directory)")
		jobs       = fs.Int("jobs", 0, "concurrent layering jobs (0 = all CPUs)")
		stream     = fs.Bool("stream", false, "submit through a daemon's POST /jobs/bulk and stream results back (requires -addr)")
		addr       = fs.String("addr", "", "daemon base URL for -stream, e.g. http://localhost:8645")
		timeout    = fs.Duration("timeout", 0, "per-file deadline (0 = none)")
		algo       = fs.String("algo", "aco", "layering algorithm: aco|island|lpl|minwidth|cg|ns")
		doPromote  = fs.Bool("promote", false, "apply the Promote Layering post-processing step")
		dummyWidth = fs.Float64("dummy-width", 1.0, "width of a dummy vertex (nd_width)")
		ants       = fs.Int("ants", 10, "aco: colony size")
		tours      = fs.Int("tours", 10, "aco: number of tours")
		alpha      = fs.Float64("alpha", 1, "aco: pheromone exponent")
		beta       = fs.Float64("beta", 3, "aco: heuristic exponent")
		seed       = fs.Int64("seed", 1, "aco: random seed")
		workers    = fs.Int("workers", 0, "aco: goroutines per tour (0 = all CPUs)")
		cgWidth    = fs.Int("cg-width", 4, "cg: maximum real vertices per layer")
		islands    = fs.Int("islands", 4, "island: number of cooperating colonies")
		migrate    = fs.Int("migration-interval", 2, "island: tours between elite migrations")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("batch wants exactly one directory argument, got %d", fs.NArg())
	}
	dir := fs.Arg(0)
	outDir := *out
	if outDir == "" {
		outDir = dir
	}

	req := server.DefaultRequest()
	req.Algo = *algo
	req.Promote = *doPromote
	req.DummyWidth = *dummyWidth
	req.CGWidth = *cgWidth
	req.ACO = buildACO(*ants, *tours, *workers, *alpha, *beta, *dummyWidth, *seed)
	req.Islands = *islands
	req.MigrationInterval = *migrate
	// Fail on a bad algorithm name up front, not once per file — and let
	// LayererByName own the valid-name list instead of keeping a copy.
	if _, err := antlayer.LayererByName(ctx, req.Algo, antlayer.Options{
		DummyWidth:        req.DummyWidth,
		CGWidth:           req.CGWidth,
		ACO:               req.ACO,
		Islands:           req.Islands,
		MigrationInterval: req.MigrationInterval,
	}); err != nil {
		return err
	}

	inputs, err := batchInputs(dir)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no .dot or .edges files in %s", dir)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	if *stream {
		if *addr == "" {
			return fmt.Errorf("-stream needs -addr (the daemon's base URL)")
		}
		return runBatchStream(ctx, *addr, dir, outDir, inputs, streamQuery(req, *timeout), stdout)
	}

	q := batch.New(batch.Config{
		Workers: *jobs,
		// The whole work list is submitted up front, so the backlog bound
		// is the input count — the queue paces the workers, not Submit.
		Depth:  len(inputs),
		Retain: len(inputs),
	})
	defer q.Close()

	// Cancel the queue's jobs when ctx dies (Ctrl-C): the colonies abort
	// within one ant walk per worker and the run reports the failures.
	stop := context.AfterFunc(ctx, func() { q.Close() })
	defer stop()

	type submission struct {
		name string
		job  *batch.Job
	}
	subs := make([]submission, 0, len(inputs))
	for _, name := range inputs {
		freq := req // copy; Format differs per file
		if strings.HasSuffix(name, ".dot") {
			freq.Format = "dot"
		} else {
			freq.Format = "edges"
		}
		path := filepath.Join(dir, name)
		j, err := q.Submit(func(jctx context.Context) ([]byte, error) {
			if *timeout > 0 {
				var cancel context.CancelFunc
				jctx, cancel = context.WithTimeout(jctx, *timeout)
				defer cancel()
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			g, names, err := server.ParseGraph(freq, f)
			if err != nil {
				return nil, fmt.Errorf("parse: %w", err)
			}
			body, _, err := server.Compute(jctx, freq, g, names)
			return body, err
		})
		if err != nil {
			return fmt.Errorf("submit %s: %w", name, err)
		}
		subs = append(subs, submission{name: name, job: j})
	}

	dest := destNames(inputs)
	failed := 0
	for _, sub := range subs {
		snap, _ := sub.job.Wait(context.Background()) // jobs settle even on cancel
		switch snap.State {
		case batch.StateDone:
			dst := filepath.Join(outDir, dest[sub.name])
			if err := os.WriteFile(dst, snap.Result, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-30s ok     %s (%s)\n", sub.name, summarize(snap.Result), snap.Finished.Sub(snap.Started).Round(time.Millisecond))
		default:
			failed++
			fmt.Fprintf(stdout, "%-30s FAILED %v\n", sub.name, snap.Err)
		}
	}
	fmt.Fprintf(stdout, "batch: %d/%d layered (algo=%s, %d jobs)\n", len(subs)-failed, len(subs), req.Algo, *jobs)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("batch interrupted: %w", err)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d inputs failed", failed, len(subs))
	}
	return nil
}

// destNames maps each input to its result filename: <base>.json, except
// when two inputs share a base (g1.dot and g1.edges), which keep their
// full name — g1.dot.json, g1.edges.json — so neither result silently
// overwrites the other.
func destNames(inputs []string) map[string]string {
	bases := map[string]int{}
	for _, name := range inputs {
		bases[strings.TrimSuffix(name, filepath.Ext(name))]++
	}
	dest := make(map[string]string, len(inputs))
	for _, name := range inputs {
		base := strings.TrimSuffix(name, filepath.Ext(name))
		if bases[base] > 1 {
			dest[name] = name + ".json"
		} else {
			dest[name] = base + ".json"
		}
	}
	return dest
}

// batchInputs lists the layerable files of dir in sorted order, so runs
// are reproducible and the result table is stable.
func batchInputs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var inputs []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".dot", ".edges":
			inputs = append(inputs, e.Name())
		}
	}
	sort.Strings(inputs)
	return inputs, nil
}

// streamQuery renders the parsed batch flags as the /layer query string a
// bulk line carries (format is filled in per file).
func streamQuery(req server.Request, timeout time.Duration) url.Values {
	v := url.Values{}
	v.Set("algo", req.Algo)
	if req.Promote {
		v.Set("promote", "true")
	}
	v.Set("dummy-width", strconv.FormatFloat(req.DummyWidth, 'g', -1, 64))
	v.Set("cg-width", strconv.Itoa(req.CGWidth))
	v.Set("ants", strconv.Itoa(req.ACO.Ants))
	v.Set("tours", strconv.Itoa(req.ACO.Tours))
	v.Set("alpha", strconv.FormatFloat(req.ACO.Alpha, 'g', -1, 64))
	v.Set("beta", strconv.FormatFloat(req.ACO.Beta, 'g', -1, 64))
	v.Set("seed", strconv.FormatInt(req.ACO.Seed, 10))
	if req.ACO.Workers > 0 {
		v.Set("workers", strconv.Itoa(req.ACO.Workers))
	}
	v.Set("islands", strconv.Itoa(req.Islands))
	v.Set("migration-interval", strconv.Itoa(req.MigrationInterval))
	if timeout > 0 {
		v.Set("timeout-ms", strconv.FormatInt(timeout.Milliseconds(), 10))
	}
	return v
}

// runBatchStream is `daglayer batch -stream`: ship every input to a
// daemon's POST /jobs/bulk?envelope=true as ndjson and write each result
// as its line streams back, in completion order. The envelope mode is
// what correlates a result to its input file (raw mode's lines are
// /layer bodies with no line number); the body inside the envelope is
// byte-identical to what /layer — and the local batch mode — would have
// produced.
func runBatchStream(ctx context.Context, addr, dir, outDir string, inputs []string, query url.Values, stdout io.Writer) error {
	dest := destNames(inputs)
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, name := range inputs {
		graph, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		q := url.Values{}
		for k, vs := range query {
			q[k] = vs
		}
		if strings.HasSuffix(name, ".dot") {
			q.Set("format", "dot")
		} else {
			q.Set("format", "edges")
		}
		// Encode emits one compact JSON document plus '\n' — one ndjson line.
		if err := enc.Encode(map[string]string{"query": q.Encode(), "graph": string(graph)}); err != nil {
			return err
		}
	}

	u := strings.TrimSuffix(addr, "/") + "/jobs/bulk?envelope=true"
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &body)
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return fmt.Errorf("bulk request to %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("bulk request to %s: %s: %s", addr, resp.Status, strings.TrimSpace(string(msg)))
	}

	done, failed := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		var res struct {
			Line       int             `json:"line"`
			State      string          `json:"state"`
			Error      string          `json:"error"`
			RetryAfter int             `json:"retry_after"`
			Body       json.RawMessage `json:"body"`
		}
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			return fmt.Errorf("bad result line %q: %w", sc.Text(), err)
		}
		name := fmt.Sprintf("line %d", res.Line)
		if res.Line >= 1 && res.Line <= len(inputs) {
			name = inputs[res.Line-1]
		}
		if res.State == "done" {
			// The envelope compacts the body; restore the trailing newline
			// the non-stream mode's result files carry.
			out := append(append([]byte(nil), res.Body...), '\n')
			if err := os.WriteFile(filepath.Join(outDir, dest[name]), out, 0o644); err != nil {
				return err
			}
			done++
			fmt.Fprintf(stdout, "%-30s ok     %s\n", name, summarize(out))
			continue
		}
		failed++
		reason := res.Error
		if res.RetryAfter > 0 {
			reason = fmt.Sprintf("%s (retry in %ds)", res.Error, res.RetryAfter)
		}
		fmt.Fprintf(stdout, "%-30s FAILED %s\n", name, reason)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading bulk results: %w", err)
	}
	fmt.Fprintf(stdout, "batch: %d/%d layered (streamed via %s)\n", done, len(inputs), addr)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("batch interrupted: %w", err)
	}
	if failed > 0 || done != len(inputs) {
		return fmt.Errorf("%d of %d inputs failed", len(inputs)-done, len(inputs))
	}
	return nil
}

// summarize renders the one-line metrics digest of a result body for the
// progress table.
func summarize(body []byte) string {
	var resp struct {
		Graph   struct{ Vertices, Edges int }
		Metrics struct {
			Height    int     `json:"height"`
			WidthIncl float64 `json:"width_incl"`
		}
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return "?"
	}
	return fmt.Sprintf("n=%d m=%d H=%d W=%.1f",
		resp.Graph.Vertices, resp.Graph.Edges, resp.Metrics.Height, resp.Metrics.WidthIncl)
}
