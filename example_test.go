package antlayer_test

import (
	"fmt"

	"antlayer"
)

// The diamond DAG: 3 -> {2, 1} -> 0. Edges point from the dependent vertex
// to its dependency, so sinks land on layer 1.
func diamond() *antlayer.Graph {
	g := antlayer.NewGraph(4)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	return g
}

func ExampleLongestPath() {
	l, err := antlayer.LongestPath().Layer(diamond())
	if err != nil {
		panic(err)
	}
	fmt.Println("height:", l.Height())
	fmt.Println("layer of source:", l.Layer(3))
	// Output:
	// height: 3
	// layer of source: 3
}

func ExampleAntColony() {
	p := antlayer.DefaultACOParams() // 10 tours, alpha=1, beta=3
	l, err := antlayer.AntColony(p).Layer(diamond())
	if err != nil {
		panic(err)
	}
	m := l.ComputeMetrics(1.0)
	fmt.Printf("height=%d width=%.0f dummies=%d\n", m.Height, m.WidthIncl, m.DummyCount)
	// Output:
	// height=3 width=2 dummies=0
}

func ExampleWithPromotion() {
	// 4 -> 3 -> 0 plus two leaves hanging off 4; LPL leaves the leaves on
	// layer 1, promotion lifts them next to their source.
	g := antlayer.NewGraph(5)
	g.MustAddEdge(4, 3)
	g.MustAddEdge(3, 0)
	g.MustAddEdge(4, 1)
	g.MustAddEdge(4, 2)

	plain, _ := antlayer.LongestPath().Layer(g)
	promoted, _ := antlayer.WithPromotion(antlayer.LongestPath()).Layer(g)
	fmt.Println("LPL dummies:", plain.DummyCount())
	fmt.Println("LPL+PL dummies:", promoted.DummyCount())
	// Output:
	// LPL dummies: 2
	// LPL+PL dummies: 0
}

func ExampleNetworkSimplex() {
	g := antlayer.NewGraph(5)
	g.MustAddEdge(4, 3)
	g.MustAddEdge(3, 0)
	g.MustAddEdge(4, 1)
	g.MustAddEdge(4, 2)
	l, err := antlayer.NetworkSimplex().Layer(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("minimum dummy count:", l.DummyCount())
	// Output:
	// minimum dummy count: 0
}

func ExampleDraw() {
	d, err := antlayer.Draw(diamond(), antlayer.LongestPath(), nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("layers=%d crossings=%d\n", d.Height, d.Crossings)
	// Output:
	// layers=3 crossings=0
}
