package antlayer

// Benchmark harness regenerating the paper's evaluation (DESIGN.md §3).
//
// One benchmark per paper figure (4-9) runs the figure's algorithm set
// over a deterministic corpus sample and reports the figure's headline
// metric per series as custom benchmark units, so `go test -bench=.`
// reproduces both the relative running times (Figs 8b/9b) and the quality
// series (who wins, by how much) of every table and figure. The §VIII
// parameter studies and the DESIGN.md ablations have their own benchmarks,
// and micro-benchmarks cover the individual algorithms per graph size.

import (
	"fmt"
	"math/rand"
	"testing"

	"antlayer/internal/core"
	"antlayer/internal/experiments"
	"antlayer/internal/graphgen"
)

// benchOptions is the corpus configuration shared by the figure benches:
// a 3-graph sample per group keeps one bench iteration around a second
// while preserving the figures' qualitative shape. The colony runs
// sequentially so the Millis series stays per-call sequential cost;
// BenchmarkAntColonyWorkers* covers the parallel colony.
func benchOptions() experiments.Options {
	opts := experiments.Options{Seed: 7, PerGroup: 3, DummyWidth: 1, ACO: core.DefaultParams()}
	opts.ACO.Workers = 1
	return opts
}

// reportFigure re-runs the comparison and reports the mean of the figure's
// two metrics per algorithm as custom units.
func reportFigure(b *testing.B, fig int) {
	b.Helper()
	opts := benchOptions()
	var res *experiments.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	pair, err := res.Figure(fig)
	if err != nil {
		b.Fatal(err)
	}
	for pi, f := range pair {
		for _, s := range f.Series {
			mean := 0.0
			for _, y := range s.Y {
				mean += y
			}
			mean /= float64(len(s.Y))
			b.ReportMetric(mean, fmt.Sprintf("fig%d%c_%s", fig, 'a'+pi, sanitize(s.Name)))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFig4 — width incl./excl. dummies: LPL, LPL+PL, AntColony.
func BenchmarkFig4(b *testing.B) { reportFigure(b, 4) }

// BenchmarkFig5 — width incl./excl. dummies: MinWidth, MinWidth+PL, AntColony.
func BenchmarkFig5(b *testing.B) { reportFigure(b, 5) }

// BenchmarkFig6 — height and DVC: LPL, LPL+PL, AntColony.
func BenchmarkFig6(b *testing.B) { reportFigure(b, 6) }

// BenchmarkFig7 — height and DVC: MinWidth, MinWidth+PL, AntColony.
func BenchmarkFig7(b *testing.B) { reportFigure(b, 7) }

// BenchmarkFig8 — edge density and running time: LPL, LPL+PL, AntColony.
func BenchmarkFig8(b *testing.B) { reportFigure(b, 8) }

// BenchmarkFig9 — edge density and running time: MinWidth, MinWidth+PL, AntColony.
func BenchmarkFig9(b *testing.B) { reportFigure(b, 9) }

// BenchmarkFig8RunningTime isolates the running-time series of Fig 8 as
// real per-algorithm wall-clock sub-benchmarks over graph sizes (the
// paper's x axis), complementing the aggregated series above.
func BenchmarkFig8RunningTime(b *testing.B) {
	for _, n := range []int{10, 40, 70, 100} {
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := graphgen.Generate(graphgen.DefaultConfig(n), rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("LPL/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := LongestPath().Layer(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("LPL+PL/n=%d", n), func(b *testing.B) {
			l := WithPromotion(LongestPath())
			for i := 0; i < b.N; i++ {
				if _, err := l.Layer(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("AntColony/n=%d", n), func(b *testing.B) {
			// Sequential colony: the figure compares per-call sequential
			// cost against LPL; BenchmarkAntColonyWorkers* covers the pool.
			p := DefaultACOParams()
			p.Workers = 1
			l := AntColony(p)
			for i := 0; i < b.N; i++ {
				if _, err := l.Layer(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9RunningTime is the MinWidth counterpart of Fig 9's
// running-time plot.
func BenchmarkFig9RunningTime(b *testing.B) {
	for _, n := range []int{10, 40, 70, 100} {
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := graphgen.Generate(graphgen.DefaultConfig(n), rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("MinWidth/n=%d", n), func(b *testing.B) {
			l := MinWidthBest(1)
			for i := 0; i < b.N; i++ {
				if _, err := l.Layer(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("MinWidth+PL/n=%d", n), func(b *testing.B) {
			l := WithPromotion(MinWidthBest(1))
			for i := 0; i < b.N; i++ {
				if _, err := l.Layer(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTuningAlphaBeta regenerates the §VIII α/β study on a micro
// sample, reporting mean H+W per grid point.
func BenchmarkTuningAlphaBeta(b *testing.B) {
	opts := benchOptions()
	opts.PerGroup = 1
	alphas := []float64{1, 3, 5}
	betas := []float64{1, 3, 5}
	var cells []experiments.TuningCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.AlphaBetaStudy(opts, alphas, betas)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		b.ReportMetric(c.HPlusW, fmt.Sprintf("HW_a%g_b%g", c.Alpha, c.Beta))
	}
}

// BenchmarkTuningDummyWidth regenerates the §VIII nd_width study.
func BenchmarkTuningDummyWidth(b *testing.B) {
	opts := benchOptions()
	opts.PerGroup = 1
	values := []float64{0.1, 0.5, 1.0, 1.2}
	var cells []experiments.NdWidthCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.NdWidthStudy(opts, values)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		b.ReportMetric(c.HPlusW, fmt.Sprintf("HW_nd%g", c.NdWidth))
	}
}

// BenchmarkAblationSelection compares the three layer-selection rules
// (DESIGN.md E9).
func BenchmarkAblationSelection(b *testing.B) {
	opts := benchOptions()
	opts.PerGroup = 2
	var res []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.SelectionAblation(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.Mean.Height+r.Mean.WidthIncl, "HW_"+sanitize(r.Name))
	}
}

// BenchmarkAblationStretch compares stretch-between (paper Fig. 2) against
// stretch-ends (paper Fig. 1).
func BenchmarkAblationStretch(b *testing.B) {
	opts := benchOptions()
	opts.PerGroup = 2
	var res []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.StretchAblation(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.Mean.Height+r.Mean.WidthIncl, "HW_"+sanitize(r.Name))
	}
}

// BenchmarkAblationHeuristic compares the objective-delta heuristic with
// the literal §IV-D layer-width formula.
func BenchmarkAblationHeuristic(b *testing.B) {
	opts := benchOptions()
	opts.PerGroup = 2
	var res []experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.HeuristicAblation(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.Mean.Height+r.Mean.WidthIncl, "HW_"+sanitize(r.Name))
		b.ReportMetric(r.Mean.Dummies, "DVC_"+sanitize(r.Name))
	}
}

// BenchmarkExtendedComparison runs the E10 extended algorithm set
// (NetworkSimplex, Coffman–Graham) alongside the paper's five.
func BenchmarkExtendedComparison(b *testing.B) {
	opts := benchOptions()
	opts.PerGroup = 2
	var res *experiments.Results
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunExtended(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range []string{experiments.NameNetworkSimplex, experiments.NameCoffmanGraham, experiments.NameAntColony} {
		means := res.Mean[name]
		d := 0.0
		for _, m := range means {
			d += m.Dummies
		}
		b.ReportMetric(d/float64(len(means)), "DVC_"+sanitize(name))
	}
}

// BenchmarkOptimalityGap runs the E11 gap study: heuristics vs the exact
// branch-and-bound optimum on small instances, reporting mean gaps.
func BenchmarkOptimalityGap(b *testing.B) {
	var results []experiments.GapResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.GapStudy(9, 10, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.Mean*100, "gapPct_"+sanitize(r.Name))
	}
}

// benchmarkAntColonyWorkers is the shared body of the worker-scaling
// benchmarks: one colony run on a fixed 200-vertex graph with a colony
// large enough (32 ants) to keep every worker busy. The layering produced
// is identical across the three benchmarks — only the wall clock moves —
// so comparing BenchmarkAntColonyWorkers{1,4,8} ns/op isolates the
// speedup of parallel tour construction.
func benchmarkAntColonyWorkers(b *testing.B, workers int) {
	b.Helper()
	rng := rand.New(rand.NewSource(200))
	g, err := graphgen.Generate(graphgen.DefaultConfig(200), rng)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultACOParams()
	p.Ants = 32
	p.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AntColonyRun(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAntColonyWorkers1(b *testing.B) { benchmarkAntColonyWorkers(b, 1) }
func BenchmarkAntColonyWorkers4(b *testing.B) { benchmarkAntColonyWorkers(b, 4) }
func BenchmarkAntColonyWorkers8(b *testing.B) { benchmarkAntColonyWorkers(b, 8) }

// BenchmarkIsland pins the island-model archipelago on a fixed 100-vertex
// graph: 4 islands × 4 tours of 8 ants with a migration every 2 tours,
// sequential colonies so the measurement isolates the island machinery
// (stepping, barriers, elite migration) rather than the tour worker pool.
// It is part of the CI benchmark-regression gate alongside the walk and
// worker benchmarks.
func BenchmarkIsland(b *testing.B) {
	rng := rand.New(rand.NewSource(100))
	g, err := graphgen.Generate(graphgen.DefaultConfig(100), rng)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultIslandParams()
	p.Colony.Ants = 8
	p.Colony.Tours = 4
	p.Colony.Workers = 1
	p.Islands = 4
	p.MigrationInterval = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IslandColonyRun(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColonyScaling measures one colony run across graph sizes and
// worker counts (the repository's parallel-execution extension).
func BenchmarkColonyScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := graphgen.Generate(graphgen.DefaultConfig(n), rng)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				p := DefaultACOParams()
				p.Workers = workers
				for i := 0; i < b.N; i++ {
					if _, err := AntColonyRun(g, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAntWalk isolates one ant's solution construction through the
// public API (colony setup included); BenchmarkWalk/BenchmarkChooseLayer
// in internal/core measure the walk and the per-vertex decision alone,
// with allocation counts.
func BenchmarkAntWalk(b *testing.B) {
	for _, n := range []int{50, 100} {
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := graphgen.Generate(graphgen.DefaultConfig(n), rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := DefaultACOParams()
			p.Ants = 1
			p.Tours = 1
			for i := 0; i < b.N; i++ {
				if _, err := AntColonyRun(g, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselines measures the non-ACO layering algorithms.
func BenchmarkBaselines(b *testing.B) {
	rng := rand.New(rand.NewSource(100))
	g, err := graphgen.Generate(graphgen.DefaultConfig(100), rng)
	if err != nil {
		b.Fatal(err)
	}
	algos := []struct {
		name string
		l    Layerer
	}{
		{"LongestPath", LongestPath()},
		{"MinWidthBest", MinWidthBest(1)},
		{"CoffmanGraham4", CoffmanGraham(4)},
		{"Promote", WithPromotion(LongestPath())},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.l.Layer(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSugiyamaPipeline measures the full drawing pipeline.
func BenchmarkSugiyamaPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(101))
	g, err := graphgen.Generate(graphgen.DefaultConfig(80), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("lpl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Draw(g, LongestPath(), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aco", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Draw(g, AntColony(DefaultACOParams()), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCorpusGeneration measures the synthetic corpus substitute.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := graphgen.CorpusSample(7, 8); err != nil {
			b.Fatal(err)
		}
	}
}
