package longestpath

import (
	"errors"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
)

func TestLayerDiamond(t *testing.T) {
	g := dag.New(4)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	l, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 2, 3}
	for v, w := range want {
		if l.Layer(v) != w {
			t.Fatalf("Layer(%d) = %d, want %d", v, l.Layer(v), w)
		}
	}
}

func TestLayerCyclic(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, err := Layer(g); !errors.Is(err, dag.ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	if _, err := LayerList(g); !errors.Is(err, dag.ErrCyclic) {
		t.Fatalf("LayerList err = %v, want ErrCyclic", err)
	}
}

func TestLayerEmptyAndIsolated(t *testing.T) {
	l, err := Layer(dag.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if l.NumLayers() != 0 {
		t.Fatalf("empty graph layers = %d", l.NumLayers())
	}
	l, err = Layer(dag.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() != 1 {
		t.Fatalf("isolated vertices height = %d, want 1", l.Height())
	}
}

func TestMinimumHeightProperty(t *testing.T) {
	// LPL height equals longest path length + 1, the minimum possible.
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 30; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("invalid LPL layering: %v", err)
		}
		dist, _ := g.LongestPathToSink()
		maxDist := 0
		for _, d := range dist {
			if d > maxDist {
				maxDist = d
			}
		}
		if l.Height() != maxDist+1 {
			t.Fatalf("height = %d, want %d", l.Height(), maxDist+1)
		}
		// No layering can be shorter than the longest path.
		if l.NumLayers() != l.Height() {
			t.Fatal("LPL produced empty layers")
		}
	}
}

func TestSinksOnLayerOne(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range g.Sinks() {
		if l.Layer(s) != 1 {
			t.Fatalf("sink %d on layer %d", s, l.Layer(s))
		}
	}
	// Every non-sink sits exactly one above its highest successor.
	for v := 0; v < g.N(); v++ {
		if g.OutDegree(v) == 0 {
			continue
		}
		maxSucc := 0
		for _, w := range g.Succ(v) {
			if l.Layer(w) > maxSucc {
				maxSucc = l.Layer(w)
			}
		}
		if l.Layer(v) != maxSucc+1 {
			t.Fatalf("vertex %d on layer %d, max successor on %d", v, l.Layer(v), maxSucc)
		}
	}
}

func TestLayerListMatchesLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 25; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(30)), rng)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := LayerList(g)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if a.Layer(v) != b.Layer(v) {
				t.Fatalf("vertex %d: closed-form %d, list-scheduling %d", v, a.Layer(v), b.Layer(v))
			}
		}
	}
}
