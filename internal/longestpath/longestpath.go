// Package longestpath implements the Longest-Path Layering algorithm
// (Algorithm 1 of the paper), the classic linear-time list-scheduling
// layering that produces a minimum-height layering.
//
// Sinks are placed on layer 1 and every other vertex v on layer p+1 where p
// is the maximum number of edges on a path from v to a sink. Layerings tend
// to be wide — LPL is one of the two baselines the ACO layering is
// evaluated against, and also the seed layering the ant colony stretches.
package longestpath

import (
	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Layer computes the longest-path layering of g. It returns dag.ErrCyclic
// for cyclic input.
func Layer(g *dag.Graph) (*layering.Layering, error) {
	dist, err := g.LongestPathToSink()
	if err != nil {
		return nil, err
	}
	assign := make([]int, g.N())
	for v, d := range dist {
		assign[v] = d + 1
	}
	return layering.FromAssignment(g, assign), nil
}

// LayerList computes the same layering with the explicit list-scheduling
// loop of Algorithm 1 (select vertices whose successors are all placed in
// lower layers). It exists so tests can verify the closed-form Layer
// against the paper's literal procedure; Layer is the one callers use.
func LayerList(g *dag.Graph) (*layering.Layering, error) {
	if !g.IsAcyclic() {
		return nil, dag.ErrCyclic
	}
	n := g.N()
	assign := make([]int, n)
	placed := make([]bool, n)  // U in the paper
	settled := make([]bool, n) // Z in the paper: layers strictly below current
	// remaining[v] counts successors of v not yet in Z.
	remaining := make([]int, n)
	for v := 0; v < n; v++ {
		remaining[v] = g.OutDegree(v)
	}
	currentLayer := 1
	numPlaced := 0
	// current holds the vertices placed on the current layer, so they can
	// be moved into Z when the layer closes.
	var current []int
	for numPlaced < n {
		selected := -1
		for v := 0; v < n; v++ {
			if !placed[v] && remaining[v] == 0 {
				selected = v
				break
			}
		}
		if selected >= 0 {
			assign[selected] = currentLayer
			placed[selected] = true
			current = append(current, selected)
			numPlaced++
			continue
		}
		currentLayer++
		for _, v := range current {
			settled[v] = true
			for _, u := range g.Pred(v) {
				remaining[u]--
			}
		}
		current = current[:0]
	}
	_ = settled
	return layering.FromAssignment(g, assign), nil
}
