package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"antlayer/internal/obs"
)

// RunOptions configures a scenario run.
type RunOptions struct {
	// Bin is the daglayer binary to spawn.
	Bin string
	// Stretch multiplies every phase duration (1 = as declared; the
	// nightly run uses a larger factor for longer soak).
	Stretch float64
	// Log narrates progress (nil = silent).
	Log *log.Logger
	// ProcessLog receives the process tree's stderr (nil = os.Stderr).
	ProcessLog io.Writer
}

func (o RunOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log.Printf(format, args...)
	}
}

// probeQuery is the byte-identical check's request: an island run with a
// seed outside the load generator's range, so it never collides with
// generated traffic. warm=false pins the cold path — the probe asserts
// distribution invariance of a from-scratch run, and with the result
// cache disabled the second (distributed) probe would otherwise
// warm-start off the anchor the first one just published.
const probeQuery = "algo=island&islands=4&tours=3&migration-interval=1&seed=701&warm=false"

// Run executes one scenario end to end: start the process tree, record
// the fault-free reference, drive the three phases (injecting the fault
// and the recovery at their boundaries), measure recovery-to-healthy,
// re-probe, and fold everything into a Report. The returned error covers
// harness failures (binary missing, cluster never started); SLO misses
// are not errors — they are the Report's Pass=false.
func Run(ctx context.Context, sc Scenario, opt RunOptions) (*Report, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	stretch := opt.Stretch
	if stretch <= 0 {
		stretch = 1
	}
	report := &Report{
		Scenario:        sc.Name,
		Description:     sc.Description,
		Seed:            sc.Seed,
		RecoverySeconds: -1,
	}

	cluster, err := StartCluster(ctx, &Cluster{
		Bin:         opt.Bin,
		Coordinator: sc.Workers > 0,
		// Not -quiet: the daemon's stdout is where the harness learns the
		// listen addresses.
		ServeArgs:  sc.ServeArgs,
		WorkerArgs: sc.WorkerArgs,
		Log:        opt.ProcessLog,
	})
	if err != nil {
		return nil, fmt.Errorf("%s: start cluster: %w", sc.Name, err)
	}
	defer cluster.Close()
	if err := cluster.WaitHealthy(ctx, 15*time.Second); err != nil {
		return nil, fmt.Errorf("%s: %w", sc.Name, err)
	}
	for i := 0; i < sc.Workers; i++ {
		if err := cluster.StartWorker(ctx, fmt.Sprintf("w%d", i+1)); err != nil {
			return nil, fmt.Errorf("%s: start worker: %w", sc.Name, err)
		}
	}
	if sc.Workers > 0 {
		if err := cluster.WaitFleet(ctx, sc.Workers, 15*time.Second); err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
	}
	opt.logf("%s: cluster up at %s (%d workers)", sc.Name, cluster.BaseURL, sc.Workers)

	// The fault-free reference for the byte-identical probe: the healthy
	// fleet's distributed answer, sanity-checked against the in-process
	// one (the standing determinism guarantee).
	var reference []byte
	if sc.Probe {
		local, err := postProbe(ctx, cluster.BaseURL, probeQuery)
		if err != nil {
			return nil, fmt.Errorf("%s: reference probe: %w", sc.Name, err)
		}
		reference, err = postProbe(ctx, cluster.BaseURL, probeQuery+"&distributed=true")
		if err != nil {
			return nil, fmt.Errorf("%s: reference probe (distributed): %w", sc.Name, err)
		}
		if !bytes.Equal(local, reference) {
			return nil, fmt.Errorf("%s: healthy cluster already diverges from in-process — not a chaos finding, a broken build", sc.Name)
		}
	}

	gen := NewGenerator(cluster.BaseURL, sc.Seed)
	healthy := sc.Healthy
	if healthy == nil {
		healthy = func(ctx context.Context, c *Cluster) bool {
			if err := c.WaitHealthy(ctx, time.Millisecond); err != nil {
				return false
			}
			return sc.Workers == 0 || c.FleetSize() == sc.Workers
		}
	}

	for _, ph := range sc.Phases {
		switch ph.Name {
		case "inject":
			if sc.Inject != nil {
				opt.logf("%s: injecting fault", sc.Name)
				if err := sc.Inject(ctx, cluster); err != nil {
					return nil, fmt.Errorf("%s: inject: %w", sc.Name, err)
				}
			}
		case "recovery":
			if sc.Recover != nil {
				opt.logf("%s: recovering", sc.Name)
				if err := sc.Recover(ctx, cluster); err != nil {
					return nil, fmt.Errorf("%s: recover: %w", sc.Name, err)
				}
			}
		}

		// Recovery-to-healthy is measured concurrently with the phase's
		// load: the clock starts at the recovery action and stops at the
		// first healthy poll.
		var healthyAt chan time.Duration
		phaseStart := time.Now()
		if ph.Name == "recovery" {
			healthyAt = make(chan time.Duration, 1)
			go func() {
				timeout := sc.RecoveryTimeout
				if timeout <= 0 {
					timeout = 20 * time.Second
				}
				deadline := time.Now().Add(time.Duration(float64(timeout) * stretch))
				for {
					if healthy(ctx, cluster) {
						healthyAt <- time.Since(phaseStart)
						return
					}
					if time.Now().After(deadline) || ctx.Err() != nil {
						healthyAt <- -1
						return
					}
					time.Sleep(50 * time.Millisecond)
				}
			}()
		}

		rps := ph.RPS
		if rps == 0 {
			rps = sc.RPS
		}
		mix := sc.Mix
		if ph.Mix != nil {
			mix = *ph.Mix
		}
		before, beforeErr := cluster.Metrics()
		duration := time.Duration(float64(ph.Duration) * stretch)
		opt.logf("%s: phase %s — %.0f rps for %s", sc.Name, ph.Name, rps, duration)
		samples := gen.Run(ctx, duration, rps, mix)
		seconds := time.Since(phaseStart).Seconds()

		hitRate := -1.0
		if after, err := cluster.Metrics(); err == nil && beforeErr == nil {
			hits := after.CacheHits - before.CacheHits
			misses := after.CacheMisses - before.CacheMisses
			if hits+misses > 0 {
				hitRate = float64(hits) / float64(hits+misses)
			}
		}

		pr := buildPhaseReport(ph.Name, seconds, samples, ph.Expected, ph.SLO, hitRate)
		if ph.Name == "recovery" {
			// The self-diagnosis hook: pull the span breakdown of the
			// phase's slowest traced request, so a recovery-phase SLO miss
			// ships with where the time went instead of just a number.
			if id, ms := samples.SlowestTrace(); id != "" {
				if tv, err := fetchTrace(ctx, cluster.BaseURL, id); err == nil {
					pr.SlowestTrace = tv
				} else {
					opt.logf("%s: slowest recovery trace %s (%.1fms) unavailable: %v", sc.Name, id, ms, err)
				}
			}
			if d := <-healthyAt; d >= 0 {
				report.RecoverySeconds = d.Seconds()
				if ph.SLO.MaxRecoverySeconds > 0 && d.Seconds() > ph.SLO.MaxRecoverySeconds*stretch {
					pr.Violations = append(pr.Violations, fmt.Sprintf("recovered in %.1fs, want <= %.1fs", d.Seconds(), ph.SLO.MaxRecoverySeconds*stretch))
				}
			} else if ph.SLO.MaxRecoverySeconds > 0 {
				pr.Violations = append(pr.Violations, "cluster never reported healthy after recovery")
			}
			pr.Pass = len(pr.Violations) == 0
		}
		opt.logf("%s: phase %s — %d requests, p50 %.1fms p95 %.1fms p99 %.1fms, classes %v",
			sc.Name, ph.Name, pr.Requests, pr.P50Ms, pr.P95Ms, pr.P99Ms, pr.Classes)
		report.Phases = append(report.Phases, pr)
	}

	// Whole-run assertions against the still-running cluster — e.g. the
	// concurrent-runs scenario reading the peak overlap gauge.
	if sc.Verify != nil {
		if err := sc.Verify(ctx, cluster); err != nil {
			report.Failures = append(report.Failures, fmt.Sprintf("verify: %v", err))
		}
	}

	// The byte-identical probe: after the dust settles, the same request
	// answered by the recovered fleet must match the fault-free bytes.
	if sc.Probe {
		got, err := postProbe(ctx, cluster.BaseURL, probeQuery+"&distributed=true")
		identical := err == nil && bytes.Equal(got, reference)
		report.ProbeIdentical = &identical
		if !identical {
			if err != nil {
				report.Failures = append(report.Failures, fmt.Sprintf("post-recovery probe failed: %v", err))
			} else {
				report.Failures = append(report.Failures, "post-recovery distributed answer diverges from the fault-free reference")
			}
		}
	}

	report.Pass = len(report.Failures) == 0
	for _, pr := range report.Phases {
		if !pr.Pass {
			report.Pass = false
			report.Failures = append(report.Failures, fmt.Sprintf("phase %s: %s", pr.Name, strings.Join(pr.Violations, "; ")))
		}
	}
	opt.logf("%s: %s", sc.Name, verdict(report.Pass))
	return report, nil
}

func verdict(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}

// fetchTrace pulls one trace's span breakdown from the daemon.
func fetchTrace(ctx context.Context, baseURL, id string) (*obs.TraceView, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/traces/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trace %s: status %d", id, resp.StatusCode)
	}
	var tv obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		return nil, err
	}
	return &tv, nil
}

// postProbe issues the byte-identical check's request with generous
// bounds (the probe asserts correctness, not latency).
func postProbe(ctx context.Context, baseURL, query string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/layer?"+query, strings.NewReader(loadDOT))
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("probe status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}
