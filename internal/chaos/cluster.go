package chaos

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"time"
)

// Cluster owns a real daglayer process tree on loopback: the serve daemon
// (optionally with an embedded shard coordinator) plus worker processes.
// Scenarios manipulate it mid-run — SIGKILL a worker, restart the daemon
// on its original ports — and the load generator measures the fallout.
type Cluster struct {
	// Bin is the daglayer binary to spawn.
	Bin string
	// Coordinator selects whether serve also runs a shard coordinator.
	Coordinator bool
	// ServeArgs / WorkerArgs are appended to the respective command lines
	// (chaos knobs like -fault-compute-delay, -heartbeat, -retry).
	ServeArgs  []string
	WorkerArgs []string
	// Log receives the process tree's stderr (nil = inherit os.Stderr).
	Log io.Writer

	// BaseURL / CoordAddr are set once the daemon logs its listen
	// addresses; restarts pin the same ports so workers can redial.
	BaseURL   string
	httpAddr  string
	CoordAddr string

	mu      sync.Mutex
	serve   *exec.Cmd
	workers map[string]*exec.Cmd
}

// StartCluster spawns the daemon (and nothing else; workers are started
// explicitly so scenarios control the fleet) and waits for its listen
// addresses.
func StartCluster(ctx context.Context, c *Cluster) (*Cluster, error) {
	if c.workers == nil {
		c.workers = make(map[string]*exec.Cmd)
	}
	if err := c.StartServe(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

var (
	// The daemon announces its listen addresses via slog (text handler):
	// msg=listening for HTTP, msg="coordinator listening" for the shard
	// transport, each with the address as the addr attr.
	serveAddrRE = regexp.MustCompile(`\bmsg=listening addr=(\S+)`)
	coordAddrRE = regexp.MustCompile(`\bmsg="coordinator listening" addr=(\S+)`)
)

// StartServe launches the serve daemon. The first start listens on :0
// (the kernel picks free ports); restarts reuse the addresses learned the
// first time, so a recovering fleet redials the same coordinator port.
func (c *Cluster) StartServe(ctx context.Context) error {
	c.mu.Lock()
	httpAddr, coordAddr := c.httpAddr, c.CoordAddr
	c.mu.Unlock()
	if httpAddr == "" {
		httpAddr = "127.0.0.1:0"
	}
	args := []string{"serve", "-addr", httpAddr}
	if c.Coordinator {
		if coordAddr == "" {
			coordAddr = "127.0.0.1:0"
		}
		args = append(args, "-coordinator", coordAddr)
	}
	args = append(args, c.ServeArgs...)
	cmd := exec.CommandContext(ctx, c.Bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = c.stderr()
	if err := cmd.Start(); err != nil {
		return err
	}
	gotHTTP, gotCoord, err := scanAddrs(stdout, c.Coordinator)
	if err != nil {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		return fmt.Errorf("serve never logged its addresses: %w", err)
	}
	c.mu.Lock()
	c.serve = cmd
	c.httpAddr = gotHTTP
	c.BaseURL = "http://" + gotHTTP
	if c.Coordinator {
		c.CoordAddr = gotCoord
	}
	c.mu.Unlock()
	return nil
}

// scanAddrs reads the daemon's stdout until the HTTP (and, when asked,
// coordinator) listen addresses appear, then drains the pipe forever.
func scanAddrs(stdout io.Reader, wantCoord bool) (httpAddr, coordAddr string, err error) {
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for (httpAddr == "" || (wantCoord && coordAddr == "")) && sc.Scan() {
		line := sc.Text()
		if m := coordAddrRE.FindStringSubmatch(line); m != nil {
			coordAddr = m[1]
			continue
		}
		if m := serveAddrRE.FindStringSubmatch(line); m != nil {
			httpAddr = m[1]
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if httpAddr == "" || (wantCoord && coordAddr == "") {
		return "", "", fmt.Errorf("http=%q coord=%q (scan err %v)", httpAddr, coordAddr, sc.Err())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return httpAddr, coordAddr, nil
}

// KillServe SIGKILLs the daemon — no graceful shutdown, this is chaos —
// and reaps it.
func (c *Cluster) KillServe() error {
	c.mu.Lock()
	cmd := c.serve
	c.serve = nil
	c.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("serve is not running")
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	_ = cmd.Wait()
	return nil
}

// RestartServe is KillServe (when running) followed by StartServe on the
// pinned ports. A freed port can briefly linger, so the bind is retried.
func (c *Cluster) RestartServe(ctx context.Context) error {
	c.mu.Lock()
	running := c.serve != nil
	c.mu.Unlock()
	if running {
		if err := c.KillServe(); err != nil {
			return err
		}
	}
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if err = c.StartServe(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
	return fmt.Errorf("restart on %s: %w", c.httpAddr, err)
}

// StartWorker launches one worker process registered with the pinned
// coordinator address. extra args come after WorkerArgs (so a scenario
// can add per-worker chaos knobs like -fault-epoch-delay).
func (c *Cluster) StartWorker(ctx context.Context, name string, extra ...string) error {
	c.mu.Lock()
	coordAddr := c.CoordAddr
	c.mu.Unlock()
	if coordAddr == "" {
		return fmt.Errorf("cluster has no coordinator")
	}
	args := []string{"worker", "-coordinator", coordAddr, "-name", name}
	args = append(args, c.WorkerArgs...)
	args = append(args, extra...)
	cmd := exec.CommandContext(ctx, c.Bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = c.stderr()
	if err := cmd.Start(); err != nil {
		return err
	}
	c.mu.Lock()
	c.workers[name] = cmd
	c.mu.Unlock()
	go func() { _ = cmd.Wait() }()
	return nil
}

// KillWorker SIGKILLs a worker mid-whatever-it-was-doing. The coordinator
// must detect the death (read error or heartbeat silence) and expel it.
func (c *Cluster) KillWorker(name string) error {
	c.mu.Lock()
	cmd, ok := c.workers[name]
	delete(c.workers, name)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("no worker %q", name)
	}
	return cmd.Process.Kill()
}

// Close tears the whole tree down.
func (c *Cluster) Close() {
	c.mu.Lock()
	serve := c.serve
	c.serve = nil
	workers := c.workers
	c.workers = make(map[string]*exec.Cmd)
	c.mu.Unlock()
	for _, cmd := range workers {
		_ = cmd.Process.Kill()
	}
	if serve != nil {
		_ = serve.Process.Kill()
		_ = serve.Wait()
	}
}

func (c *Cluster) stderr() io.Writer {
	if c.Log != nil {
		return c.Log
	}
	return os.Stderr
}

// metricsCounters is the slice of /metrics the harness scrapes: enough to
// compute a phase's cache hit rate and read the job gauges.
type metricsCounters struct {
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	WarmHits       int64 `json:"warm_hits"`
	WarmMisses     int64 `json:"warm_misses"`
	WarmToursSaved int64 `json:"warm_tours_saved"`
	Jobs           struct {
		Queued  int64 `json:"queued"`
		Running int64 `json:"running"`
	} `json:"jobs"`
	Cluster *struct {
		Workers            int   `json:"workers"`
		PeakConcurrentRuns int64 `json:"peak_concurrent_runs"`
		RunsQueued         int64 `json:"runs_queued"`
		RunsRejected       int64 `json:"runs_rejected"`
	} `json:"cluster"`
}

// postBytes posts a body to a daemon path and returns the response
// bytes; a non-200 answer is an error (Verify hooks replay requests the
// traffic already proved serviceable).
func (c *Cluster) postBytes(ctx context.Context, path, body string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, data)
	}
	return data, nil
}

// Metrics scrapes /metrics; an unreachable daemon (mid-chaos) returns an
// error, not a panic.
func (c *Cluster) Metrics() (metricsCounters, error) {
	var m metricsCounters
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	return m, json.NewDecoder(resp.Body).Decode(&m)
}

// FleetSize reports the coordinator's registered worker count (0 with no
// coordinator or an unreachable daemon).
func (c *Cluster) FleetSize() int {
	m, err := c.Metrics()
	if err != nil || m.Cluster == nil {
		return 0
	}
	return m.Cluster.Workers
}

// WaitFleet blocks until the coordinator reports exactly n workers.
func (c *Cluster) WaitFleet(ctx context.Context, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if c.FleetSize() == n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet never reached %d workers (have %d)", n, c.FleetSize())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// WaitHealthy blocks until /healthz answers 200.
func (c *Cluster) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(c.BaseURL + "/healthz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			drain(resp)
			if ok {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon never became healthy: %v", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
}
