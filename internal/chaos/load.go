package chaos

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
)

// loadDOT is the graph every generated request posts: small enough that a
// single layering answers in milliseconds, large enough that the colony
// actually walks. Matching bodies + differing seed query parameters give
// cache-cold traffic; a pinned seed gives cache-hot traffic.
const loadDOT = `digraph load {
  a -> b; a -> c; a -> d;
  b -> e; b -> f; c -> f; c -> g; d -> g; d -> h;
  e -> i; f -> i; f -> j; g -> j; g -> k; h -> k;
  i -> l; j -> l; j -> m; k -> m;
  l -> n; m -> n;
}
`

// Mix weights the traffic classes the generator draws from. Weights are
// relative; a zero weight disables the class.
type Mix struct {
	// Hot posts /layer with a pinned seed: after the first answer, a
	// cache hit every time (when the daemon's cache is enabled).
	Hot int `json:"hot"`
	// Cold posts /layer with a never-repeated seed: always a fresh
	// computation.
	Cold int `json:"cold"`
	// Distributed posts algo=island&distributed=true — sharded over the
	// worker fleet on a coordinator daemon.
	Distributed int `json:"distributed"`
	// Jobs exercises the async path: POST /jobs, then poll to a terminal
	// state (a fraction of submissions are cancelled instead).
	Jobs int `json:"jobs"`
	// Events exercises the push path: POST /jobs with a topic label, then
	// follow the job over its SSE stream (GET /jobs/{id}/events) to a
	// terminal state instead of polling.
	Events int `json:"events"`
	// Oversize posts a body beyond the daemon's -max-body, expecting 413.
	Oversize int `json:"oversize"`
	// Edits walks a deterministic edit chain: each request posts the next
	// graph of a precomputed mutation sequence (cycling), so consecutive
	// requests share most vertex names and the daemon's warm-start probe
	// keeps finding a usable pheromone state — the repeat-with-edits
	// traffic shape the warm serving path exists for.
	Edits int `json:"edits"`
}

func (m Mix) total() int {
	return m.Hot + m.Cold + m.Distributed + m.Jobs + m.Events + m.Oversize + m.Edits
}

// pick draws a traffic class from the mix: "hot", "cold", "dist",
// "jobs", "events", "over" or "edits".
func (m Mix) pick(rng *rand.Rand) string {
	n := m.total()
	if n <= 0 {
		return "hot"
	}
	r := rng.Intn(n)
	switch {
	case r < m.Hot:
		return "hot"
	case r < m.Hot+m.Cold:
		return "cold"
	case r < m.Hot+m.Cold+m.Distributed:
		return "dist"
	case r < m.Hot+m.Cold+m.Distributed+m.Jobs:
		return "jobs"
	case r < m.Hot+m.Cold+m.Distributed+m.Jobs+m.Events:
		return "events"
	case r < m.Hot+m.Cold+m.Distributed+m.Jobs+m.Events+m.Oversize:
		return "over"
	default:
		return "edits"
	}
}

// SampleSet accumulates one phase's request outcomes: latencies (ms) and
// an outcome-class histogram. Safe for concurrent recording.
type SampleSet struct {
	mu        sync.Mutex
	latencies []float64
	classes   map[string]int64
	shed      int64
	slowMS    float64
	slowTrace string
}

func newSampleSet() *SampleSet {
	return &SampleSet{classes: make(map[string]int64)}
}

func (s *SampleSet) record(ms float64, class, traceID string) {
	s.mu.Lock()
	s.latencies = append(s.latencies, ms)
	s.classes[class]++
	if traceID != "" && ms > s.slowMS {
		s.slowMS, s.slowTrace = ms, traceID
	}
	s.mu.Unlock()
}

// SlowestTrace returns the trace ID of the slowest traced request this
// set saw and its latency; empty when no sampled request carried one.
func (s *SampleSet) SlowestTrace() (id string, ms float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slowTrace, s.slowMS
}

func (s *SampleSet) recordShed() {
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
}

// snapshot returns a copy of the accumulated samples.
func (s *SampleSet) snapshot() (lats []float64, classes map[string]int64, shed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lats = append([]float64(nil), s.latencies...)
	classes = make(map[string]int64, len(s.classes))
	for k, v := range s.classes {
		classes[k] = v
	}
	return lats, classes, s.shed
}

// Generator drives a daglayer daemon at a target rate with a seeded
// traffic mix. One Generator serves a whole scenario; each phase calls
// Run with its own duration/rate/mix, and the cold-seed counter persists
// across phases so no cold request ever repeats a cache key.
type Generator struct {
	BaseURL string
	Seed    int64
	// Concurrency caps in-flight requests (default 16). Ticks arriving
	// with every slot busy are shed (counted, not errored).
	Concurrency int
	Client      *http.Client

	coldSeq atomic.Int64

	editOnce  sync.Once
	editChain []string
	editSeq   atomic.Int64
}

// NewGenerator builds a generator with a per-request HTTP client timeout
// matched to chaos use: long enough for a computation, short enough that
// a hung daemon turns into "timeout" samples instead of a stuck phase.
func NewGenerator(baseURL string, seed int64) *Generator {
	return &Generator{
		BaseURL:     baseURL,
		Seed:        seed,
		Concurrency: 16,
		Client:      &http.Client{Timeout: 10 * time.Second},
	}
}

// Run drives the daemon for d at rps with the given mix, returning the
// phase's samples. It blocks until the duration elapses and all in-flight
// requests resolve (or ctx dies).
func (g *Generator) Run(ctx context.Context, d time.Duration, rps float64, mix Mix) *SampleSet {
	s := newSampleSet()
	if rps <= 0 {
		rps = 20
	}
	conc := g.Concurrency
	if conc <= 0 {
		conc = 16
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Workers pull ticks from a buffered channel; a tick that finds the
	// buffer full (every worker busy, buffer drained) is shed.
	ticks := make(chan int64, conc)
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		// Each worker owns a deterministic rng: the scenario seed and the
		// worker index, so a scenario replays the same request sequence
		// per worker regardless of scheduling.
		rng := rand.New(rand.NewSource(g.Seed + int64(i)*7919))
		go func() {
			defer wg.Done()
			for range ticks {
				g.one(ctx, rng, mix, s)
			}
		}()
	}

	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	deadline := time.NewTimer(d)
	defer ticker.Stop()
	defer deadline.Stop()
	var n int64
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			n++
			select {
			case ticks <- n:
			default:
				s.recordShed()
			}
		}
	}
	close(ticks)
	wg.Wait()
	return s
}

// one issues a single request drawn from the mix and records its outcome.
func (g *Generator) one(ctx context.Context, rng *rand.Rand, mix Mix, s *SampleSet) {
	start := time.Now()
	var class, trace string
	switch mix.pick(rng) {
	case "hot":
		class, trace = g.postLayer(ctx, "algo=aco&tours=2&seed=1", loadDOT)
	case "cold":
		class, trace = g.postLayer(ctx, fmt.Sprintf("algo=aco&tours=2&seed=%d", 1000+g.coldSeq.Add(1)), loadDOT)
	case "dist":
		// Mixed K: islands 2..4, so on a 4-worker fleet some runs lease a
		// strict subset and the scheduler can overlap them. The draw comes
		// from the worker's deterministic rng, so a scenario replays the
		// same K sequence per worker.
		class, trace = g.postLayer(ctx, fmt.Sprintf("algo=island&islands=%d&tours=2&migration-interval=1&distributed=true&seed=%d", 2+rng.Intn(3), 1000+g.coldSeq.Add(1)), loadDOT)
	case "jobs":
		class = g.oneJob(ctx, rng)
	case "events":
		class = g.oneEventJob(ctx)
	case "over":
		class = g.postOversize(ctx)
	case "edits":
		class, trace = g.postLayer(ctx, editQuery, g.nextEditBody())
	}
	s.record(float64(time.Since(start).Nanoseconds())/1e6, class, trace)
}

// editQuery pins the edit-chain request parameters: the same algorithm,
// budget and seed on every chain step, so the only thing that varies
// between requests is the graph — exactly the repeat-with-edits shape,
// and the shape a later deterministic replay can reproduce.
const editQuery = "algo=aco&tours=6&seed=9"

// EditChain returns the generator's precomputed edit-chain bodies, built
// once from the scenario seed: a sparse base and successive small
// mutations, every step renaming almost nothing — so consecutive posts
// keep clearing the daemon's warm similarity bar. Exposed so scenario
// Verify hooks can replay exact chain steps.
func (g *Generator) EditChain() []string {
	g.editOnce.Do(func() {
		graphs, names, err := graphgen.DeltaChain(g.Seed, 40, 8, 2)
		if err != nil {
			// A generation failure surfaces as malformed traffic ("4xx"
			// samples), never a panicking load generator.
			g.editChain = []string{loadDOT}
			return
		}
		g.editChain = make([]string, len(graphs))
		for i := range graphs {
			g.editChain[i] = chainDOT(graphs[i], names[i])
		}
	})
	return g.editChain
}

// nextEditBody advances the shared chain cursor (cycling), so the posted
// graph sequence walks edit by edit regardless of which worker draws the
// class.
func (g *Generator) nextEditBody() string {
	chain := g.EditChain()
	return chain[int(g.editSeq.Add(1))%len(chain)]
}

// chainDOT serializes a named graph as DOT. Every vertex gets a node
// statement (isolated vertices survive the round trip) and names are
// plain identifiers by construction ("v3", "m1"), so no quoting.
func chainDOT(gr *dag.Graph, names []string) string {
	var b strings.Builder
	b.WriteString("digraph chain {\n")
	for _, n := range names {
		fmt.Fprintf(&b, "  %s;\n", n)
	}
	for _, e := range gr.Edges() {
		fmt.Fprintf(&b, "  %s -> %s;\n", names[e.U], names[e.V])
	}
	b.WriteString("}\n")
	return b.String()
}

// classify maps a completed HTTP exchange to an outcome class.
func classify(resp *http.Response, err error) string {
	if err != nil {
		var nerr interface{ Timeout() bool }
		if errors.As(err, &nerr) && nerr.Timeout() {
			return "timeout"
		}
		if errors.Is(err, context.DeadlineExceeded) {
			return "timeout"
		}
		return "conn"
	}
	switch {
	case resp.StatusCode < 300:
		return "ok"
	case resp.StatusCode == http.StatusTooManyRequests:
		// The 429 contract: a Retry-After header derived from queue
		// stats. A 429 without one is a distinct (never-expected) class.
		if after, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || after < 1 {
			return "429_no_retry_after"
		}
		return "429"
	case resp.StatusCode == http.StatusRequestEntityTooLarge:
		return "413"
	case resp.StatusCode == http.StatusGatewayTimeout:
		return "timeout"
	case resp.StatusCode < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// postLayer posts one /layer request; alongside the outcome class it
// returns the daemon-echoed X-Request-ID so the slowest request of a
// phase can be looked up in GET /traces/{id} afterwards.
func (g *Generator) postLayer(ctx context.Context, query, body string) (class, traceID string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.BaseURL+"/layer?"+query, strings.NewReader(body))
	if err != nil {
		return "conn", ""
	}
	resp, err := g.Client.Do(req)
	class = classify(resp, err)
	if resp != nil {
		traceID = resp.Header.Get("X-Request-ID")
	}
	drain(resp)
	return class, traceID
}

// postOversize posts a body built to exceed the daemon's -max-body bound.
func (g *Generator) postOversize(ctx context.Context) string {
	body := "digraph big {\n" + strings.Repeat("  x -> y; // padding padding padding\n", 4096) + "}\n"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.BaseURL+"/layer", strings.NewReader(body))
	if err != nil {
		return "conn"
	}
	resp, err := g.Client.Do(req)
	class := classify(resp, err)
	drain(resp)
	return class
}

// oneJob submits an async job and follows it to a terminal state; a
// fraction of submissions are cancelled instead of polled to done.
func (g *Generator) oneJob(ctx context.Context, rng *rand.Rand) string {
	cancelIt := rng.Intn(8) == 0
	query := fmt.Sprintf("algo=aco&tours=2&seed=%d", 1000+g.coldSeq.Add(1))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.BaseURL+"/jobs?"+query, strings.NewReader(loadDOT))
	if err != nil {
		return "conn"
	}
	resp, err := g.Client.Do(req)
	if class := classify(resp, err); class != "ok" {
		drain(resp)
		return class
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil || status.ID == "" {
		return "job_bad_submit"
	}
	if cancelIt {
		return g.cancelJob(ctx, status.ID)
	}
	return g.pollJob(ctx, status.ID)
}

func (g *Generator) cancelJob(ctx context.Context, id string) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, g.BaseURL+"/jobs/"+id, nil)
	if err != nil {
		return "conn"
	}
	resp, err := g.Client.Do(req)
	class := classify(resp, err)
	drain(resp)
	if class == "ok" {
		return "ok" // a cancel acknowledged is a successful exchange
	}
	return class
}

// oneEventJob submits a labeled async job and follows it over its SSE
// stream instead of polling — the push path under load. A full queue
// answers the submission with the usual 429 (an expected class wherever
// Jobs rejections are expected).
func (g *Generator) oneEventJob(ctx context.Context) string {
	query := fmt.Sprintf("algo=aco&tours=2&seed=%d&label=chaos", 1000+g.coldSeq.Add(1))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.BaseURL+"/jobs?"+query, strings.NewReader(loadDOT))
	if err != nil {
		return "conn"
	}
	resp, err := g.Client.Do(req)
	if class := classify(resp, err); class != "ok" {
		drain(resp)
		return class
	}
	var status struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil || status.ID == "" {
		return "job_bad_submit"
	}
	return g.watchJob(ctx, status.ID)
}

// watchJob is the push analogue of pollJob: read the job's SSE stream
// until the terminal event (the per-job stream ends itself right after
// it). The deadline matches pollJob's, so a wedged stream becomes a
// sample, not a stuck worker.
func (g *Generator) watchJob(ctx context.Context, id string) string {
	ctx, cancel := context.WithTimeout(ctx, 8*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.BaseURL+"/jobs/"+id+"/events", nil)
	if err != nil {
		return "conn"
	}
	resp, err := g.Client.Do(req)
	if class := classify(resp, err); class != "ok" {
		drain(resp)
		return class
	}
	defer drain(resp)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		switch strings.TrimSpace(strings.TrimPrefix(sc.Text(), "event:")) {
		case "done":
			return "ok"
		case "failed", "expired":
			return "job_failed"
		case "shutdown":
			return "sse_shutdown"
		}
	}
	if ctx.Err() != nil {
		return "timeout"
	}
	// The stream ended without a terminal event: a push-contract breach.
	return "sse_truncated"
}

// pollJob follows a job to done/failed, bounded so a stuck queue turns
// into a sample instead of a wedged worker.
func (g *Generator) pollJob(ctx context.Context, id string) string {
	deadline := time.Now().Add(8 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.BaseURL+"/jobs/"+id, nil)
		if err != nil {
			return "conn"
		}
		resp, err := g.Client.Do(req)
		if class := classify(resp, err); class != "ok" {
			drain(resp)
			return class
		}
		state := resp.Header.Get("X-Job-State")
		drain(resp)
		switch state {
		case "done":
			return "ok"
		case "failed":
			return "job_failed"
		}
		if time.Now().After(deadline) {
			return "job_poll_timeout"
		}
		select {
		case <-ctx.Done():
			return "timeout"
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// drain discards and closes a response body (nil-safe) so the transport
// reuses connections.
func drain(resp *http.Response) {
	if resp != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
