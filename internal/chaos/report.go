// Package chaos is the load/chaos/SLO harness: it drives a real daglayer
// process tree (HTTP daemon, optionally a shard coordinator plus worker
// fleet) with a seeded traffic mix while injecting declarative faults —
// killed workers, slow workers, a restarted coordinator, a flooded job
// queue, oversize request floods — and asserts service-level objectives
// per phase. Every scenario runs three phases, warmup → inject →
// recovery, and produces a machine-readable Report; cmd/loadgen is the
// CLI front end and CI gates on the fast scenario subset.
//
// The methodology follows the SLO-gated chaos pattern: fixed seeds make a
// scenario's traffic reproducible, the fault is injected at a phase
// boundary (not a random instant), and the release gate is the SLO
// evaluation — p99 ceilings, unexpected-error rates, recovery-to-healthy
// time, and byte-identical post-recovery results (DESIGN.md §11).
package chaos

import (
	"fmt"
	"sort"

	"antlayer/internal/obs"
)

// SLO is the per-phase service-level objective. Zero-valued bounds are
// not asserted (except MaxErrorRate, where zero genuinely means "no
// unexpected errors tolerated" — chaos phases that tolerate some set it
// explicitly).
type SLO struct {
	// MaxP99Ms bounds the phase's p99 request latency, milliseconds.
	MaxP99Ms float64 `json:"max_p99_ms,omitempty"`
	// MaxErrorRate bounds the fraction of requests answering with an
	// unexpected class (an error class not in the phase's expected list).
	MaxErrorRate float64 `json:"max_error_rate"`
	// MinRequests guards against a vacuous pass: a phase that completed
	// fewer requests did not actually exercise the system.
	MinRequests int64 `json:"min_requests,omitempty"`
	// MaxRecoverySeconds bounds recovery-to-healthy time; evaluated on
	// the recovery phase only (0 = not asserted).
	MaxRecoverySeconds float64 `json:"max_recovery_seconds,omitempty"`
}

// PhaseReport is the measured outcome of one phase of a scenario.
type PhaseReport struct {
	Name     string  `json:"name"`
	Seconds  float64 `json:"seconds"`
	Requests int64   `json:"requests"`
	// Shed counts load-generator ticks dropped because the in-flight cap
	// was reached — backpressure in the generator, not a server error.
	Shed int64 `json:"shed"`
	// Classes histograms request outcomes: "ok" plus error classes
	// ("conn", "timeout", "429", "413", "4xx", "5xx", "job_failed", ...).
	Classes map[string]int64 `json:"classes"`
	// ErrorRate is the unexpected-error fraction: classes that are
	// neither "ok" nor in the phase's expected list, over all requests.
	ErrorRate float64 `json:"error_rate"`
	// Expected lists the error classes this phase tolerates (excluded
	// from ErrorRate) — e.g. "429" during a queue-full flood.
	Expected []string `json:"expected,omitempty"`
	P50Ms    float64  `json:"p50_ms"`
	P95Ms    float64  `json:"p95_ms"`
	P99Ms    float64  `json:"p99_ms"`
	MaxMs    float64  `json:"max_ms"`
	// CacheHitRate is the serve daemon's hit rate over this phase
	// (delta of /metrics counters); -1 when unmeasurable (daemon down,
	// or no cacheable traffic).
	CacheHitRate float64 `json:"cache_hit_rate"`
	SLO          SLO     `json:"slo"`
	// SlowestTrace is the span breakdown of the phase's slowest traced
	// request, fetched from GET /traces/{id} — attached to the recovery
	// phase so an SLO miss is self-diagnosing (where did the time go:
	// queue, lease, a slow worker epoch?).
	SlowestTrace *obs.TraceView `json:"slowest_trace,omitempty"`
	// Violations lists every SLO bound this phase broke, empty on pass.
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// Report is the outcome of one scenario run — the unit slo_report.json
// aggregates.
type Report struct {
	Scenario    string        `json:"scenario"`
	Description string        `json:"description"`
	Seed        int64         `json:"seed"`
	Phases      []PhaseReport `json:"phases"`
	// RecoverySeconds is the time from the recovery action to the
	// cluster reporting healthy again; -1 when the scenario has no
	// recovery measurement, or the cluster never recovered in bounds.
	RecoverySeconds float64 `json:"recovery_seconds"`
	// ProbeIdentical reports the byte-identical post-recovery check:
	// nil = not run, true = post-recovery distributed result matched the
	// fault-free reference byte for byte.
	ProbeIdentical *bool    `json:"probe_identical,omitempty"`
	Pass           bool     `json:"pass"`
	Failures       []string `json:"failures,omitempty"`
}

// Summary is the slo_report.json document: every scenario run and the
// overall verdict CI gates on.
type Summary struct {
	Pass    bool     `json:"pass"`
	Reports []Report `json:"reports"`
}

// percentile returns the nearest-rank q-quantile of latencies (ms). The
// slice is sorted in place. Zero samples yield zero.
func percentile(lats []float64, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	i := int(q * float64(len(lats)))
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

// buildPhaseReport folds a phase's raw samples into the report row and
// evaluates the SLO. expected lists tolerated error classes.
func buildPhaseReport(name string, seconds float64, s *SampleSet, expected []string, slo SLO, cacheHitRate float64) PhaseReport {
	lats, classes, shed := s.snapshot()
	tolerated := make(map[string]bool, len(expected)+1)
	tolerated["ok"] = true
	for _, c := range expected {
		tolerated[c] = true
	}
	var total, unexpected int64
	for class, n := range classes {
		total += n
		if !tolerated[class] {
			unexpected += n
		}
	}
	rate := 0.0
	if total > 0 {
		rate = float64(unexpected) / float64(total)
	}
	p := PhaseReport{
		Name:         name,
		Seconds:      seconds,
		Requests:     total,
		Shed:         shed,
		Classes:      classes,
		ErrorRate:    rate,
		Expected:     expected,
		P50Ms:        percentile(lats, 0.50),
		P95Ms:        percentile(lats, 0.95),
		P99Ms:        percentile(lats, 0.99),
		CacheHitRate: cacheHitRate,
		SLO:          slo,
	}
	if n := len(lats); n > 0 {
		p.MaxMs = lats[n-1] // percentile sorted the slice
	}
	p.Violations = evaluateSLO(p, slo)
	p.Pass = len(p.Violations) == 0
	return p
}

// PhaseFromSamples folds raw generator samples into a report row with no
// SLO asserted — cmd/loadgen's raw mode, for eyeballing a live daemon.
func PhaseFromSamples(name string, seconds float64, s *SampleSet) PhaseReport {
	return buildPhaseReport(name, seconds, s, nil, SLO{MaxErrorRate: 1}, -1)
}

// evaluateSLO returns one violation string per broken bound (recovery
// time is evaluated by the runner, which owns the measurement).
func evaluateSLO(p PhaseReport, slo SLO) []string {
	var v []string
	if slo.MaxP99Ms > 0 && p.P99Ms > slo.MaxP99Ms {
		v = append(v, fmt.Sprintf("p99 %.1fms exceeds %.1fms", p.P99Ms, slo.MaxP99Ms))
	}
	if p.ErrorRate > slo.MaxErrorRate {
		v = append(v, fmt.Sprintf("unexpected-error rate %.3f exceeds %.3f (classes %v)", p.ErrorRate, slo.MaxErrorRate, p.Classes))
	}
	if slo.MinRequests > 0 && p.Requests < slo.MinRequests {
		v = append(v, fmt.Sprintf("only %d requests completed, want >= %d (phase did not exercise the system)", p.Requests, slo.MinRequests))
	}
	return v
}
