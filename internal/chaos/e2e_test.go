package chaos

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// buildDaglayer compiles the daglayer binary once per test binary.
var (
	buildOnce sync.Once
	builtBin  string
	buildErr  error
)

func buildDaglayer(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "chaos-e2e-*")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "daglayer")
		cmd := exec.Command("go", "build", "-o", builtBin, "antlayer/cmd/daglayer")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

// TestOversizeFloodScenarioEndToEnd runs the cheapest real scenario — a
// single daemon, no fleet — through the full 3-phase runner and asserts
// the SLOs hold: oversize bodies 413 cheaply while normal traffic keeps
// flowing.
func TestOversizeFloodScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos e2e skipped in -short mode")
	}
	sc, ok := Lookup("oversize-flood")
	if !ok {
		t.Fatal("oversize-flood missing from the registry")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	report, err := Run(ctx, sc, RunOptions{
		Bin:        buildDaglayer(t),
		Log:        log.New(testWriter{t}, "chaos: ", 0),
		ProcessLog: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Pass {
		t.Errorf("oversize-flood failed its SLOs: %v", report.Failures)
	}
	if len(report.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(report.Phases))
	}
	inject := report.Phases[1]
	if inject.Classes["413"] == 0 {
		t.Errorf("inject phase saw no 413s — the flood never happened: %v", inject.Classes)
	}
	if inject.Classes["ok"] == 0 {
		t.Errorf("inject phase starved well-formed traffic: %v", inject.Classes)
	}
}

// TestQueueFullScenarioEndToEnd exercises the async-path chaos: the
// bounded queue must reject with stats-derived Retry-After under flood
// and drain afterwards.
func TestQueueFullScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos e2e skipped in -short mode")
	}
	sc, ok := Lookup("queue-full")
	if !ok {
		t.Fatal("queue-full missing from the registry")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	report, err := Run(ctx, sc, RunOptions{
		Bin:        buildDaglayer(t),
		Log:        log.New(testWriter{t}, "chaos: ", 0),
		ProcessLog: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Pass {
		t.Errorf("queue-full failed its SLOs: %v", report.Failures)
	}
	inject := report.Phases[1]
	if inject.Classes["429"] == 0 {
		t.Errorf("inject phase saw no 429s — the queue never filled: %v", inject.Classes)
	}
	if inject.Classes["429_no_retry_after"] != 0 {
		t.Errorf("429s without a usable Retry-After: %v", inject.Classes)
	}
	if report.RecoverySeconds < 0 {
		t.Error("queue never drained after the flood")
	}
}

// TestConcurrentRunsScenarioEndToEnd runs the scheduler-overlap scenario
// through the full 3-phase runner with real processes: mixed-K
// distributed traffic on a 4-worker fleet, one worker killed mid-phase.
// The scenario's own Verify hook asserts the overlap (scraped
// peak_concurrent_runs >= 2) and the probe asserts byte-identity, so a
// passing report IS the acceptance check.
func TestConcurrentRunsScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos e2e skipped in -short mode")
	}
	sc, ok := Lookup("concurrent-runs")
	if !ok {
		t.Fatal("concurrent-runs missing from the registry")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	report, err := Run(ctx, sc, RunOptions{
		Bin:        buildDaglayer(t),
		Log:        log.New(testWriter{t}, "chaos: ", 0),
		ProcessLog: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Pass {
		t.Errorf("concurrent-runs failed: %v", report.Failures)
	}
	if report.ProbeIdentical == nil || !*report.ProbeIdentical {
		t.Error("post-recovery distributed answer not byte-identical to the fault-free reference")
	}
	for _, ph := range report.Phases {
		if ph.Classes["ok"] == 0 {
			t.Errorf("phase %s served nothing: %v", ph.Name, ph.Classes)
		}
	}
}

// TestEditStreamScenarioEndToEnd runs the warm-start chaos: a
// deterministic edit chain through a daemon kill. The scenario's Verify
// hook asserts the scraped warm counters (warm_hits and warm_tours_saved
// both positive after the restart wiped the state cache) and replays one
// chain step twice to pin byte-identical answers, so a passing report IS
// the acceptance check.
func TestEditStreamScenarioEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos e2e skipped in -short mode")
	}
	sc, ok := Lookup("edit-stream")
	if !ok {
		t.Fatal("edit-stream missing from the registry")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	report, err := Run(ctx, sc, RunOptions{
		Bin:        buildDaglayer(t),
		Log:        log.New(testWriter{t}, "chaos: ", 0),
		ProcessLog: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Pass {
		t.Errorf("edit-stream failed: %v", report.Failures)
	}
	if report.Phases[0].Classes["ok"] == 0 || report.Phases[2].Classes["ok"] == 0 {
		t.Errorf("edit traffic never served: warmup %v, recovery %v",
			report.Phases[0].Classes, report.Phases[2].Classes)
	}
}

// testWriter adapts t.Logf so the chaos narration lands in test output.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
