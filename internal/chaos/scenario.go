package chaos

import (
	"context"
	"fmt"
	"time"
)

// Phase is one third of a scenario: a duration of generated load with its
// own rate, mix, tolerated error classes, and SLO. The runner executes
// the scenario's fault action at the start of the inject phase and its
// recovery action at the start of the recovery phase.
type Phase struct {
	Name     string
	Duration time.Duration
	// RPS overrides the scenario rate for this phase (0 = inherit).
	RPS float64
	// Mix overrides the scenario mix for this phase (nil = inherit).
	Mix *Mix
	// Expected lists error classes this phase tolerates — they do not
	// count toward the SLO's error rate. ("conn" during a coordinator
	// restart, "429" during a queue flood.)
	Expected []string
	SLO      SLO
}

// Scenario is a declarative chaos experiment: cluster shape, traffic,
// the fault, the recovery, and the per-phase SLOs. Scenarios are fully
// deterministic in their inputs (fixed Seed, fixed phase boundaries);
// the measured latencies of course are not — that is what the SLOs
// bound.
type Scenario struct {
	Name        string
	Description string
	// Fast marks the scenario for the per-PR CI subset (seconds, not
	// minutes); the nightly run executes every scenario.
	Fast bool
	Seed int64
	// Workers is the fleet size (0 = plain daemon, no coordinator).
	Workers    int
	ServeArgs  []string
	WorkerArgs []string
	RPS        float64
	Mix        Mix
	// Probe enables the byte-identical check: a distributed reference
	// answer is recorded pre-fault and the same request must return the
	// same bytes post-recovery. Scenarios using it disable the daemon's
	// cache so both answers are real computations.
	Probe bool
	// RecoveryTimeout bounds the recovery-to-healthy wait (default 20s).
	RecoveryTimeout time.Duration
	// Healthy overrides the recovery predicate (default: /healthz 200
	// and the fleet back to Workers).
	Healthy func(ctx context.Context, c *Cluster) bool
	// Inject applies the fault; Recover undoes it (either may be nil).
	Inject  func(ctx context.Context, c *Cluster) error
	Recover func(ctx context.Context, c *Cluster) error
	// Verify runs after the three phases (before the byte-identical
	// probe) against the still-running cluster; a returned error is a
	// scenario failure. Scenarios use it for whole-run assertions that no
	// single phase SLO can express — e.g. "the scheduler actually
	// overlapped runs", read from the scraped peak gauge.
	Verify func(ctx context.Context, c *Cluster) error
	Phases []Phase
}

// fastWorkerArgs makes chaos-scale timing: quick redials and chatty
// heartbeats, so fault detection and recovery fit in a seconds-long
// phase.
var fastWorkerArgs = []string{"-retry", "100ms", "-retry-max", "1s", "-heartbeat", "250ms", "-quiet"}

// Scenarios returns the registry, in a stable order.
func Scenarios() []Scenario {
	return []Scenario{workerKill(), slowWorker(), coordinatorRestart(), queueFull(), oversizeFlood(), concurrentRuns(), editStream()}
}

// Lookup finds a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// workerKill: SIGKILL one of two workers mid-traffic. The coordinator
// must detect the death (read error or heartbeat silence), expel it, and
// retry in-flight runs on the survivor — so distributed requests keep
// succeeding with zero unexpected errors even during the fault. Recovery
// starts a replacement worker. The cache is disabled so the probe's
// post-recovery answer is a real computation.
func workerKill() Scenario {
	return Scenario{
		Name:        "worker-kill",
		Description: "SIGKILL 1 of 2 workers during distributed traffic; expel-and-retry keeps answers flowing; a replacement restores the fleet",
		Fast:        true,
		Seed:        61,
		Workers:     2,
		ServeArgs:   []string{"-cache", "-1", "-heartbeat-timeout", "1s"},
		WorkerArgs:  fastWorkerArgs,
		RPS:         25,
		Mix:         Mix{Cold: 2, Distributed: 3},
		Probe:       true,
		Inject: func(ctx context.Context, c *Cluster) error {
			return c.KillWorker("w1")
		},
		Recover: func(ctx context.Context, c *Cluster) error {
			return c.StartWorker(ctx, "w1b")
		},
		Phases: []Phase{
			{Name: "warmup", Duration: 2 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10}},
			// During the kill, a distributed run caught mid-epoch retries
			// on the survivor: slower, but still correct — the SLO allows
			// latency, not errors.
			{Name: "inject", Duration: 3 * time.Second, SLO: SLO{MaxP99Ms: 9000, MaxErrorRate: 0.02, MinRequests: 10}},
			{Name: "recovery", Duration: 3 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10, MaxRecoverySeconds: 10}},
		},
	}
}

// slowWorker: a third worker joins with an injected per-epoch delay. The
// barrier makes every distributed run as slow as its slowest shard, so
// p99 rises — but the answers stay byte-identical (the probe pins it),
// and heartbeats keep the slow worker from being mistaken for dead.
// Recovery kills the laggard.
func slowWorker() Scenario {
	return Scenario{
		Name:        "slow-worker",
		Description: "a worker with an injected epoch delay joins the fleet; latency degrades, correctness and liveness do not",
		Fast:        false,
		Seed:        62,
		Workers:     2,
		ServeArgs:   []string{"-cache", "-1", "-heartbeat-timeout", "1s"},
		WorkerArgs:  fastWorkerArgs,
		RPS:         20,
		Mix:         Mix{Cold: 2, Distributed: 3},
		Probe:       true,
		Inject: func(ctx context.Context, c *Cluster) error {
			if err := c.StartWorker(ctx, "laggard", "-fault-epoch-delay", "40ms"); err != nil {
				return err
			}
			return c.WaitFleet(ctx, 3, 10*time.Second)
		},
		Recover: func(ctx context.Context, c *Cluster) error {
			return c.KillWorker("laggard")
		},
		Phases: []Phase{
			{Name: "warmup", Duration: 2 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10}},
			// The laggard drags the barrier but must not break anything:
			// zero unexpected errors, and no heartbeat expulsion (it is
			// slow, not dead).
			{Name: "inject", Duration: 4 * time.Second, SLO: SLO{MaxP99Ms: 9000, MaxErrorRate: 0, MinRequests: 10}},
			{Name: "recovery", Duration: 3 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0.02, MinRequests: 10, MaxRecoverySeconds: 10}},
		},
	}
}

// coordinatorRestart: SIGKILL the daemon itself, then restart it on the
// same ports. During the outage every request fails at the transport
// ("conn" is the expected class); afterwards the workers' backoff redial
// must rebuild the fleet without manual help, and answers must match the
// pre-fault reference.
func coordinatorRestart() Scenario {
	return Scenario{
		Name:        "coordinator-restart",
		Description: "SIGKILL the daemon mid-traffic, restart on the same ports; workers redial with backoff and the fleet self-heals",
		Fast:        false,
		Seed:        63,
		Workers:     2,
		ServeArgs:   []string{"-cache", "-1", "-heartbeat-timeout", "1s"},
		WorkerArgs:  fastWorkerArgs,
		RPS:         25,
		Mix:         Mix{Cold: 2, Distributed: 3},
		Probe:       true,
		Inject: func(ctx context.Context, c *Cluster) error {
			return c.KillServe()
		},
		Recover: func(ctx context.Context, c *Cluster) error {
			return c.RestartServe(ctx)
		},
		Phases: []Phase{
			{Name: "warmup", Duration: 2 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10}},
			// The daemon is down: refused connections are the point. The
			// SLO asserts the failure is *clean* — fast transport errors,
			// not hangs or garbage answers.
			{Name: "inject", Duration: 2 * time.Second, Expected: []string{"conn", "timeout"}, SLO: SLO{MaxErrorRate: 0, MinRequests: 10}},
			{Name: "recovery", Duration: 5 * time.Second, Expected: []string{"conn", "timeout"}, SLO: SLO{MaxP99Ms: 9000, MaxErrorRate: 0, MinRequests: 10, MaxRecoverySeconds: 12}},
		},
	}
}

// queueFull: a deliberately tiny job queue over a slowed backend, flooded
// with submissions. Beyond the backlog bound every submit must answer 429
// with a stats-derived Retry-After (a 429 without one is the distinct,
// never-tolerated class "429_no_retry_after"); once the flood stops the
// queue drains and service recovers without a restart.
func queueFull() Scenario {
	healthy := func(ctx context.Context, c *Cluster) bool {
		m, err := c.Metrics()
		return err == nil && m.Jobs.Queued == 0
	}
	return Scenario{
		Name:        "queue-full",
		Description: "flood a bounded job queue over a slow backend; 429s carry stats-derived Retry-After and the queue drains after the flood",
		Fast:        true,
		Seed:        64,
		Workers:     0,
		ServeArgs:   []string{"-job-workers", "1", "-job-queue", "2", "-fault-compute-delay", "150ms"},
		RPS:         10,
		// A slice of the job traffic watches its submissions over SSE
		// instead of polling, so the flood also proves the push path keeps
		// its contract (and its 429s) under queue pressure.
		Mix:     Mix{Hot: 1, Jobs: 3, Events: 1},
		Healthy: healthy,
		Phases: []Phase{
			{Name: "warmup", Duration: 2 * time.Second, RPS: 4, Expected: []string{"429"}, SLO: SLO{MaxErrorRate: 0, MinRequests: 5}},
			// The flood: submissions far outrun one 150ms-per-job worker.
			// Rejections are expected; job timeouts are not, and the
			// synchronous path must stay responsive.
			{Name: "inject", Duration: 3 * time.Second, RPS: 40, Expected: []string{"429"}, SLO: SLO{MaxErrorRate: 0.02, MinRequests: 40}},
			{Name: "recovery", Duration: 3 * time.Second, RPS: 3, Expected: []string{"429"}, SLO: SLO{MaxErrorRate: 0, MinRequests: 5, MaxRecoverySeconds: 10}},
		},
	}
}

// oversizeFlood: bodies beyond -max-body mixed into normal traffic. The
// daemon must reject each with 413 at the size limit — cheaply, without
// reading the world — while the well-formed share of traffic keeps its
// latency.
func oversizeFlood() Scenario {
	return Scenario{
		Name:        "oversize-flood",
		Description: "flood the daemon with bodies over -max-body; 413s are cheap and well-formed traffic keeps flowing",
		Fast:        true,
		Seed:        65,
		Workers:     0,
		ServeArgs:   []string{"-max-body", "16384"},
		RPS:         25,
		Mix:         Mix{Hot: 3, Cold: 2},
		Phases: []Phase{
			{Name: "warmup", Duration: 2 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10}},
			{Name: "inject", Duration: 3 * time.Second, RPS: 40, Mix: &Mix{Hot: 2, Cold: 1, Oversize: 3}, Expected: []string{"413"}, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 40}},
			{Name: "recovery", Duration: 2 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10, MaxRecoverySeconds: 5}},
		},
	}
}

// concurrentRuns: the cluster scheduler under mixed-K distributed
// traffic on a 4-worker fleet. Runs with islands < fleet lease a strict
// subset of the workers, so the scheduler must overlap them — the
// Verify hook reads the scraped peak_concurrent_runs gauge and fails
// the scenario if everything serialized. Mid-phase one leased worker is
// SIGKILLed: the affected run retries within its lease (or re-queues),
// and the probe pins that every answer stays byte-identical through it.
func concurrentRuns() Scenario {
	return Scenario{
		Name:        "concurrent-runs",
		Description: "mixed-K distributed traffic on 4 workers; the scheduler overlaps runs on disjoint leases and a mid-phase worker kill costs latency, not answers",
		Fast:        true,
		Seed:        66,
		Workers:     4,
		// -max-concurrent 8 is load-bearing: on a single-CPU CI machine
		// the GOMAXPROCS default is 1 and the HTTP compute semaphore
		// would serialize requests before the scheduler ever saw a second
		// run — no overlap could be observed no matter how the scheduler
		// behaves.
		ServeArgs: []string{"-cache", "-1", "-heartbeat-timeout", "1s", "-max-concurrent", "8"},
		// The epoch delay keeps each distributed run in flight for
		// ~50ms; at 40 rps the arrival interval is 25ms, so overlapping
		// K=2 runs are the norm, not a lucky race.
		WorkerArgs: append([]string{"-fault-epoch-delay", "25ms"}, fastWorkerArgs...),
		RPS:        40,
		Mix:        Mix{Cold: 1, Distributed: 4},
		Probe:      true,
		Inject: func(ctx context.Context, c *Cluster) error {
			return c.KillWorker("w3")
		},
		Recover: func(ctx context.Context, c *Cluster) error {
			return c.StartWorker(ctx, "w3b")
		},
		Verify: func(ctx context.Context, c *Cluster) error {
			m, err := c.Metrics()
			if err != nil {
				return fmt.Errorf("scrape /metrics: %w", err)
			}
			if m.Cluster == nil {
				return fmt.Errorf("/metrics has no cluster block")
			}
			if m.Cluster.PeakConcurrentRuns < 2 {
				return fmt.Errorf("peak_concurrent_runs=%d, want >= 2 — the scheduler serialized every run", m.Cluster.PeakConcurrentRuns)
			}
			return nil
		},
		Phases: []Phase{
			// A saturated admission queue answering 429 (with Retry-After)
			// is back-pressure working as designed, not a failure class.
			{Name: "warmup", Duration: 2 * time.Second, Expected: []string{"429"}, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10}},
			{Name: "inject", Duration: 3 * time.Second, Expected: []string{"429"}, SLO: SLO{MaxP99Ms: 9000, MaxErrorRate: 0.02, MinRequests: 10}},
			{Name: "recovery", Duration: 3 * time.Second, Expected: []string{"429"}, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10, MaxRecoverySeconds: 10}},
		},
	}
}

// editStream: repeat-with-edits traffic — the warm-start serving path's
// reason to exist — through a daemon kill. Requests walk a deterministic
// edit chain (Mix.Edits), so after the first cold anchor nearly every
// computation warm-starts from a cached pheromone state. The kill wipes
// that state cache; recovery traffic must transparently re-anchor cold
// and resume warm-hitting, which the Verify hook reads off the
// post-restart counters. Verify then replays one chain step twice and
// pins the answers byte-identical: warm planning against a quiescent
// state cache is deterministic, so warm serving never turns repeatable
// answers into drifting ones. The result cache is disabled so every
// replay is a real computation, not a stored body.
func editStream() Scenario {
	return Scenario{
		Name:        "edit-stream",
		Description: "repeat-with-edits traffic through a daemon kill; warm-starts resume after the state cache is wiped and replayed answers stay byte-identical",
		Fast:        true,
		Seed:        67,
		Workers:     0,
		ServeArgs:   []string{"-cache", "-1"},
		RPS:         25,
		Mix:         Mix{Edits: 4, Cold: 1},
		Inject: func(ctx context.Context, c *Cluster) error {
			return c.KillServe()
		},
		Recover: func(ctx context.Context, c *Cluster) error {
			return c.RestartServe(ctx)
		},
		Verify: func(ctx context.Context, c *Cluster) error {
			m, err := c.Metrics()
			if err != nil {
				return fmt.Errorf("scrape /metrics: %w", err)
			}
			if m.WarmHits < 1 {
				return fmt.Errorf("warm_hits=%d after the restart — the edit stream never warm-started", m.WarmHits)
			}
			if m.WarmToursSaved < 1 {
				return fmt.Errorf("warm_hits=%d but warm_tours_saved=%d — warm runs burned full budgets", m.WarmHits, m.WarmToursSaved)
			}
			// The chain is a pure function of the scenario seed, so a
			// throwaway generator reproduces the exact graphs the traffic
			// posted. Replay one step twice with a pinned query: both
			// requests warm-plan against the same (now idle) state cache,
			// and the colony is bitwise deterministic given (state, graph,
			// seed) — any byte drift is a warm-serving bug.
			body := NewGenerator(c.BaseURL, 67).EditChain()[1]
			first, err := c.postBytes(ctx, "/layer?algo=aco&tours=6&seed=11", body)
			if err != nil {
				return fmt.Errorf("replay 1: %w", err)
			}
			second, err := c.postBytes(ctx, "/layer?algo=aco&tours=6&seed=11", body)
			if err != nil {
				return fmt.Errorf("replay 2: %w", err)
			}
			if string(first) != string(second) {
				return fmt.Errorf("replayed edit-chain answers diverge:\n%s\n%s", first, second)
			}
			return nil
		},
		Phases: []Phase{
			{Name: "warmup", Duration: 2 * time.Second, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10}},
			// The daemon is down: clean transport failures, nothing wedged.
			{Name: "inject", Duration: 2 * time.Second, Expected: []string{"conn", "timeout"}, SLO: SLO{MaxErrorRate: 0, MinRequests: 10}},
			{Name: "recovery", Duration: 3 * time.Second, Expected: []string{"conn", "timeout"}, SLO: SLO{MaxP99Ms: 5000, MaxErrorRate: 0, MinRequests: 10, MaxRecoverySeconds: 10}},
		},
	}
}

// validate sanity-checks a scenario definition (used by tests and the
// runner so a typo'd registry entry fails loudly).
func (sc Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario has no name")
	}
	if len(sc.Phases) != 3 {
		return fmt.Errorf("%s: want 3 phases (warmup/inject/recovery), have %d", sc.Name, len(sc.Phases))
	}
	for i, want := range []string{"warmup", "inject", "recovery"} {
		if sc.Phases[i].Name != want {
			return fmt.Errorf("%s: phase %d is %q, want %q", sc.Name, i, sc.Phases[i].Name, want)
		}
	}
	if sc.Mix.total() <= 0 {
		return fmt.Errorf("%s: empty traffic mix", sc.Name)
	}
	if sc.Probe && sc.Workers == 0 {
		return fmt.Errorf("%s: byte-identical probe needs a coordinator fleet", sc.Name)
	}
	if sc.Mix.Distributed > 0 && sc.Workers == 0 {
		return fmt.Errorf("%s: distributed traffic needs workers", sc.Name)
	}
	return nil
}
