package chaos

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	lats := []float64{5, 1, 4, 2, 3}
	if got := percentile(lats, 0.50); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := percentile(lats, 0.99); got != 5 {
		t.Errorf("p99 = %v, want 5", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("p50 of empty = %v, want 0", got)
	}
}

func TestMixPickDeterministicAndWeighted(t *testing.T) {
	mix := Mix{Hot: 1, Cold: 1, Jobs: 2}
	draw := func() map[string]int {
		rng := rand.New(rand.NewSource(42))
		counts := map[string]int{}
		for i := 0; i < 4000; i++ {
			counts[mix.pick(rng)]++
		}
		return counts
	}
	a, b := draw(), draw()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("same seed, different draws: %v vs %v", a, b)
		}
	}
	if a["over"] != 0 || a["dist"] != 0 {
		t.Errorf("zero-weight classes drawn: %v", a)
	}
	// Jobs is weighted 2 of 4: expect roughly half, and strictly more
	// than either single-weight class.
	if a["jobs"] <= a["hot"] || a["jobs"] <= a["cold"] {
		t.Errorf("weights not respected: %v", a)
	}
}

func TestBuildPhaseReportSLO(t *testing.T) {
	s := newSampleSet()
	for i := 0; i < 96; i++ {
		s.record(10, "ok", "")
	}
	s.record(5000, "timeout", "t-slow")
	s.record(12, "429", "")
	s.record(12, "429", "")
	s.record(12, "429", "")
	// 100 samples: 96 ok, 1 timeout (unexpected), 3 tolerated 429s.
	if id, ms := s.SlowestTrace(); id != "t-slow" || ms != 5000 {
		t.Errorf("SlowestTrace() = (%q, %v), want (t-slow, 5000)", id, ms)
	}
	pr := buildPhaseReport("inject", 3.0, s, []string{"429"}, SLO{MaxP99Ms: 100, MaxErrorRate: 0.02, MinRequests: 50}, -1)
	if pr.Requests != 100 {
		t.Fatalf("requests = %d, want 100", pr.Requests)
	}
	if pr.ErrorRate != 0.01 {
		t.Errorf("error rate = %v, want 0.01 (429s tolerated)", pr.ErrorRate)
	}
	// p99 nearest-rank over 100 samples lands on the 5000ms outlier.
	if pr.P99Ms != 5000 {
		t.Errorf("p99 = %v, want 5000", pr.P99Ms)
	}
	if pr.Pass {
		t.Error("phase passed despite p99 5000ms > 100ms bound")
	}
	if len(pr.Violations) != 1 {
		t.Errorf("violations = %v, want exactly the p99 breach", pr.Violations)
	}

	// The same samples under a permissive SLO pass.
	pr2 := buildPhaseReport("inject", 3.0, s, []string{"429"}, SLO{MaxP99Ms: 6000, MaxErrorRate: 0.02, MinRequests: 50}, -1)
	if !pr2.Pass {
		t.Errorf("phase failed a satisfiable SLO: %v", pr2.Violations)
	}

	// MinRequests guards vacuous passes.
	empty := newSampleSet()
	pr3 := buildPhaseReport("warmup", 2.0, empty, nil, SLO{MinRequests: 10}, -1)
	if pr3.Pass {
		t.Error("empty phase passed a MinRequests SLO")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		code   int
		header string
		want   string
	}{
		{200, "", "ok"},
		{202, "", "ok"},
		{400, "", "4xx"},
		{404, "", "4xx"},
		{413, "", "413"},
		{429, "3", "429"},
		{429, "", "429_no_retry_after"},
		{429, "0", "429_no_retry_after"},
		{500, "", "5xx"},
		{503, "", "5xx"},
		{504, "", "timeout"},
	}
	for _, c := range cases {
		resp := &http.Response{StatusCode: c.code, Header: http.Header{}}
		if c.header != "" {
			resp.Header.Set("Retry-After", c.header)
		}
		if got := classify(resp, nil); got != c.want {
			t.Errorf("classify(%d, Retry-After=%q) = %q, want %q", c.code, c.header, got, c.want)
		}
	}
}

// TestScenarioRegistryValid pins the registry: every scenario validates,
// names are unique, and the fast subset is non-empty (CI gates on it).
func TestScenarioRegistryValid(t *testing.T) {
	seen := map[string]bool{}
	fast := 0
	for _, sc := range Scenarios() {
		if err := sc.validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Fast {
			fast++
		}
	}
	if fast == 0 {
		t.Error("no fast scenarios: the CI gate would run nothing")
	}
	for _, name := range []string{"worker-kill", "slow-worker", "coordinator-restart", "queue-full", "oversize-flood", "concurrent-runs"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("scenario %q missing from the registry", name)
		}
	}
	if _, ok := Lookup("no-such"); ok {
		t.Error("Lookup invented a scenario")
	}
}

// TestSummaryJSONShape pins slo_report.json's top-level shape — the CI
// artifact consumers key off these names.
func TestSummaryJSONShape(t *testing.T) {
	identical := true
	sum := Summary{
		Pass: false,
		Reports: []Report{{
			Scenario:        "worker-kill",
			Seed:            61,
			RecoverySeconds: 1.5,
			ProbeIdentical:  &identical,
			Phases: []PhaseReport{{
				Name: "warmup", Requests: 10, Classes: map[string]int64{"ok": 10},
				CacheHitRate: -1, Pass: true,
			}},
			Pass:     false,
			Failures: []string{"phase inject: p99"},
		}},
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pass", "reports"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("summary JSON missing %q: %s", key, data)
		}
	}
	var rep []map[string]json.RawMessage
	if err := json.Unmarshal(doc["reports"], &rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scenario", "seed", "phases", "recovery_seconds", "probe_identical", "pass", "failures"} {
		if _, ok := rep[0][key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, doc["reports"])
		}
	}
}

func TestScenarioValidateCatchesBadDefinitions(t *testing.T) {
	good := oversizeFlood()
	if err := good.validate(); err != nil {
		t.Fatalf("known-good scenario invalid: %v", err)
	}
	bad := good
	bad.Phases = bad.Phases[:2]
	if bad.validate() == nil {
		t.Error("2-phase scenario validated")
	}
	bad = good
	bad.Mix = Mix{}
	if bad.validate() == nil {
		t.Error("empty-mix scenario validated")
	}
	bad = good
	bad.Probe = true // no workers
	if bad.validate() == nil {
		t.Error("probe without a fleet validated")
	}
	bad = good
	bad.Mix.Distributed = 1 // no workers
	if bad.validate() == nil {
		t.Error("distributed traffic without workers validated")
	}
}
