// Package sugiyama implements the hierarchical drawing framework the paper
// situates its layering step in (§I): cycle removal, layering (pluggable —
// this is where the ACO layering slots in), dummy-vertex insertion,
// crossing minimisation by barycenter sweeps, x-coordinate assignment and
// ASCII/SVG rendering.
package sugiyama

import (
	"antlayer/internal/dag"
)

// AcyclicResult is the outcome of cycle removal: an acyclic graph over the
// same vertices, plus the set of original edges that were reversed to break
// cycles.
type AcyclicResult struct {
	Graph *dag.Graph
	// Reversed holds edges in their *original* orientation (u, v); the
	// acyclic graph contains them as (v, u).
	Reversed []dag.Edge
}

// MakeAcyclic removes cycles with the Eades–Lin–Smyth greedy heuristic,
// which computes a vertex sequence minimising (heuristically) the number of
// backward edges and reverses those. Acyclic inputs come back unchanged
// (no reversals). Self-loops cannot occur (the graph type rejects them).
func MakeAcyclic(g *dag.Graph) *AcyclicResult {
	if g.IsAcyclic() {
		return &AcyclicResult{Graph: g.Clone()}
	}
	order := greedyFASOrder(g)
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	out := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		out.SetWidth(v, g.Width(v))
		out.SetLabel(v, g.Label(v))
	}
	var reversed []dag.Edge
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if pos[u] > pos[v] {
			// Backward edge: reverse it. Drop it if the reversal already
			// exists (parallel opposite edges collapse).
			if !out.HasEdge(v, u) {
				out.MustAddEdge(v, u)
			}
			reversed = append(reversed, e)
			continue
		}
		if !out.HasEdge(u, v) {
			out.MustAddEdge(u, v)
		}
	}
	return &AcyclicResult{Graph: out, Reversed: reversed}
}

// greedyFASOrder computes the Eades–Lin–Smyth vertex sequence: sinks are
// appended to the tail, sources to the head, and otherwise the vertex
// maximising outdeg-indeg moves to the head. Edges from head-side to
// tail-side of the sequence are "forward".
func greedyFASOrder(g *dag.Graph) []int {
	n := g.N()
	outdeg := make([]int, n)
	indeg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		outdeg[v] = g.OutDegree(v)
		indeg[v] = g.InDegree(v)
	}
	head := make([]int, 0, n)
	tail := make([]int, 0, n) // built in reverse
	remaining := n

	remove := func(v int) {
		removed[v] = true
		remaining--
		for _, w := range g.Succ(v) {
			if !removed[w] {
				indeg[w]--
			}
		}
		for _, u := range g.Pred(v) {
			if !removed[u] {
				outdeg[u]--
			}
		}
	}

	for remaining > 0 {
		progress := true
		for progress {
			progress = false
			for v := 0; v < n; v++ {
				if !removed[v] && outdeg[v] == 0 {
					tail = append(tail, v)
					remove(v)
					progress = true
				}
			}
			for v := 0; v < n; v++ {
				if !removed[v] && indeg[v] == 0 {
					head = append(head, v)
					remove(v)
					progress = true
				}
			}
		}
		if remaining == 0 {
			break
		}
		best, bestDelta := -1, 0
		for v := 0; v < n; v++ {
			if removed[v] {
				continue
			}
			d := outdeg[v] - indeg[v]
			if best == -1 || d > bestDelta {
				best, bestDelta = v, d
			}
		}
		head = append(head, best)
		remove(best)
	}
	// order = head ++ reverse(tail)
	order := head
	for i := len(tail) - 1; i >= 0; i-- {
		order = append(order, tail[i])
	}
	return order
}
