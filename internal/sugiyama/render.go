package sugiyama

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteSVG renders the drawing as a standalone SVG document. Real vertices
// become labelled boxes, dummy vertices vanish into their edge polylines,
// and edges reversed during cycle removal are drawn dashed.
func (d *Drawing) WriteSVG(w io.Writer) error {
	const scale = 24.0
	const pad = 30.0
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, n := range d.Nodes {
		minX = math.Min(minX, n.X-n.W/2)
		maxX = math.Max(maxX, n.X+n.W/2)
		maxY = math.Max(maxY, n.Y)
	}
	if len(d.Nodes) == 0 {
		minX, maxX = 0, 0
	}
	tx := func(x float64) float64 { return (x-minX)*scale + pad }
	ty := func(y float64) float64 { return y*scale + pad }

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`+"\n",
		(maxX-minX)*scale+2*pad, maxY*scale+2*pad)
	fmt.Fprintln(bw, `<style>text{font:10px monospace;text-anchor:middle;dominant-baseline:central}</style>`)

	for _, e := range d.Edges {
		var b strings.Builder
		for i, p := range e.Points {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.1f,%.1f", tx(p.X), ty(p.Y))
		}
		dash := ""
		if e.Reversed {
			dash = ` stroke-dasharray="4 2"`
		}
		fmt.Fprintf(bw, `<polyline points="%s" fill="none" stroke="#555"%s/>`+"\n", b.String(), dash)
	}
	for _, n := range d.Nodes {
		if n.Dummy {
			continue
		}
		wpx := n.W * scale * 0.8
		hpx := 0.8 * scale
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" rx="3" fill="#e8f0fe" stroke="#333"/>`+"\n",
			tx(n.X)-wpx/2, ty(n.Y)-hpx/2, wpx, hpx)
		label := n.Label
		if label == "" {
			label = fmt.Sprintf("%d", n.V)
		}
		fmt.Fprintf(bw, `<text x="%.1f" y="%.1f">%s</text>`+"\n", tx(n.X), ty(n.Y), escapeXML(label))
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteASCII renders a coarse text view: one text row per layer, top layer
// first, listing real vertices in drawing order with dummy vertices shown
// as '|'. It is meant for terminal inspection and examples, not precision.
func (d *Drawing) WriteASCII(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := 0
	for _, n := range d.Nodes {
		if n.Layer > h {
			h = n.Layer
		}
	}
	byLayer := make([][]Node, h+1)
	for _, n := range d.Nodes {
		byLayer[n.Layer] = append(byLayer[n.Layer], n)
	}
	for li := h; li >= 1; li-- {
		fmt.Fprintf(bw, "L%-3d ", li)
		for i, n := range byLayer[li] {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			if n.Dummy {
				fmt.Fprint(bw, "|")
				continue
			}
			label := n.Label
			if label == "" {
				label = fmt.Sprintf("%d", n.V)
			}
			fmt.Fprintf(bw, "[%s]", label)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "height=%d width=%.1f crossings=%d\n", d.Height, d.Width, d.Crossings)
	return bw.Flush()
}
