package sugiyama

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
)

func TestMakeAcyclicOnAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	g, err := graphgen.Generate(graphgen.DefaultConfig(25), rng)
	if err != nil {
		t.Fatal(err)
	}
	res := MakeAcyclic(g)
	if len(res.Reversed) != 0 {
		t.Fatalf("acyclic input got %d reversals", len(res.Reversed))
	}
	if !res.Graph.Equal(g) {
		t.Fatal("acyclic input changed")
	}
}

func TestMakeAcyclicBreaksCycles(t *testing.T) {
	g := dag.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	res := MakeAcyclic(g)
	if !res.Graph.IsAcyclic() {
		t.Fatal("result still cyclic")
	}
	if len(res.Reversed) == 0 {
		t.Fatal("no reversals recorded")
	}
	if res.Graph.M() != 3 {
		t.Fatalf("edge count changed: %d", res.Graph.M())
	}
	// The greedy heuristic should reverse exactly one edge of a triangle.
	if len(res.Reversed) != 1 {
		t.Fatalf("reversed %d edges, want 1", len(res.Reversed))
	}
}

func TestMakeAcyclicRandomDigraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 25; i++ {
		n := 4 + rng.Intn(30)
		g := dag.New(n)
		for tries := 0; tries < n*3; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		res := MakeAcyclic(g)
		if !res.Graph.IsAcyclic() {
			t.Fatal("result cyclic")
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		// Every original edge is present in one direction or was a
		// duplicate collapse.
		for _, e := range g.Edges() {
			if !res.Graph.HasEdge(e.U, e.V) && !res.Graph.HasEdge(e.V, e.U) {
				t.Fatalf("edge (%d,%d) vanished", e.U, e.V)
			}
		}
	}
}

func TestMakeAcyclicTwoCycle(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	res := MakeAcyclic(g)
	if !res.Graph.IsAcyclic() {
		t.Fatal("2-cycle not broken")
	}
	// One edge survives; the reversal of the other collapses into it.
	if res.Graph.M() != 1 {
		t.Fatalf("M = %d, want 1", res.Graph.M())
	}
}

// bruteCrossings counts crossings between adjacent layers by checking every
// edge pair.
func bruteCrossings(g *dag.Graph, l interface{ Layer(int) int }, o *Ordering) int {
	type edge struct{ ul, up, vl, vp int }
	var es []edge
	for _, e := range g.Edges() {
		es = append(es, edge{l.Layer(e.U), o.Pos[e.U], l.Layer(e.V), o.Pos[e.V]})
	}
	count := 0
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			a, b := es[i], es[j]
			if a.ul != b.ul || a.vl != b.vl {
				continue
			}
			if (a.up-b.up)*(a.vp-b.vp) < 0 {
				count++
			}
		}
	}
	return count
}

func TestCrossingsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for i := 0; i < 20; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(25)), rng)
		if err != nil {
			t.Fatal(err)
		}
		l, err := longestpath.Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		proper, err := l.MakeProper(1)
		if err != nil {
			t.Fatal(err)
		}
		o := newOrdering(proper.Layering)
		got := o.Crossings(proper.Graph, proper.Layering)
		want := bruteCrossings(proper.Graph, proper.Layering, o)
		if got != want {
			t.Fatalf("Crossings = %d, brute force = %d", got, want)
		}
	}
}

func TestMinimizeCrossingsImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	worse, total := 0, 0
	for i := 0; i < 15; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(20+rng.Intn(30)), rng)
		if err != nil {
			t.Fatal(err)
		}
		l, _ := longestpath.Layer(g)
		proper, err := l.MakeProper(1)
		if err != nil {
			t.Fatal(err)
		}
		before := newOrdering(proper.Layering).Crossings(proper.Graph, proper.Layering)
		_, after := MinimizeCrossings(proper.Graph, proper.Layering, 4)
		if after > before {
			worse++
		}
		total++
	}
	if worse > 0 {
		t.Fatalf("MinimizeCrossings worsened %d/%d graphs (must keep best seen)", worse, total)
	}
}

func TestCountInversions(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{nil, 0},
		{[]int{1}, 0},
		{[]int{1, 2, 3}, 0},
		{[]int{3, 2, 1}, 3},
		{[]int{2, 1, 3, 1}, 3},
		{[]int{5, 4, 3, 2, 1}, 10},
	}
	for _, c := range cases {
		if got := countInversions(c.in); got != c.want {
			t.Errorf("countInversions(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRunPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(LayererFunc(longestpath.Layer))
	d, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Height <= 0 || d.Width <= 0 {
		t.Fatalf("drawing H=%d W=%g", d.Height, d.Width)
	}
	if len(d.Edges) != g.M() {
		t.Fatalf("drawn edges = %d, want %d", len(d.Edges), g.M())
	}
	// Every original vertex appears exactly once among the nodes.
	seen := map[int]bool{}
	for _, nd := range d.Nodes {
		if nd.V < g.N() && !nd.Dummy {
			if seen[nd.V] {
				t.Fatalf("vertex %d drawn twice", nd.V)
			}
			seen[nd.V] = true
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("drew %d real vertices, want %d", len(seen), g.N())
	}
	// Edge polylines are y-monotone (drawn downward).
	for _, e := range d.Edges {
		for i := 1; i < len(e.Points); i++ {
			if e.Points[i].Y <= e.Points[i-1].Y {
				t.Fatalf("edge (%d,%d) not drawn downward", e.From, e.To)
			}
		}
	}
}

func TestRunPipelineCyclicInput(t *testing.T) {
	g := dag.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0) // cycle
	d, err := Run(g, DefaultConfig(LayererFunc(longestpath.Layer)))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Reversed) == 0 {
		t.Fatal("no edges recorded as reversed")
	}
	// Reversed edges are drawn bottom-up.
	found := false
	for _, e := range d.Edges {
		if e.Reversed {
			found = true
			for i := 1; i < len(e.Points); i++ {
				if e.Points[i].Y >= e.Points[i-1].Y {
					t.Fatal("reversed edge not drawn upward")
				}
			}
		}
	}
	if !found {
		t.Fatal("no drawn edge marked reversed")
	}
}

func TestRunPipelineErrors(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	if _, err := Run(g, Config{}); err == nil {
		t.Fatal("missing layerer accepted")
	}
	// A layerer returning an invalid layering must be rejected.
	bad := LayererFunc(func(g *dag.Graph) (*layering.Layering, error) {
		assign := make([]int, g.N())
		for v := range assign {
			assign[v] = 1 // flat: violates every edge
		}
		return layering.FromAssignment(g, assign), nil
	})
	if _, err := Run(g, DefaultConfig(bad)); err == nil {
		t.Fatal("invalid layering accepted by pipeline")
	}
	// A failing layerer propagates its error.
	boom := LayererFunc(func(g *dag.Graph) (*layering.Layering, error) {
		return nil, errFailingLayerer
	})
	if _, err := Run(g, DefaultConfig(boom)); err == nil {
		t.Fatal("layerer error swallowed")
	}
}

var errFailingLayerer = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "injected layerer failure" }

func TestWriteSVG(t *testing.T) {
	g := dag.New(3)
	g.SetLabel(0, "end <&>")
	g.MustAddEdge(2, 1)
	g.MustAddEdge(2, 0)
	d, err := Run(g, DefaultConfig(LayererFunc(longestpath.Layer)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "&lt;&amp;&gt;") {
		t.Fatal("labels not XML-escaped")
	}
	if strings.Count(svg, "<rect") != 3 {
		t.Fatalf("want 3 rects, got %d", strings.Count(svg, "<rect"))
	}
}

func TestWriteASCII(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	d, err := Run(g, DefaultConfig(LayererFunc(longestpath.Layer)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "L2") || !strings.Contains(out, "height=2") {
		t.Fatalf("ASCII output missing layers:\n%s", out)
	}
}
