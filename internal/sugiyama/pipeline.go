package sugiyama

import (
	"errors"
	"fmt"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Layerer is any layering algorithm usable as the pipeline's second phase.
// All algorithm packages of this repository satisfy it via small adapters
// (see the root antlayer package).
type Layerer interface {
	// Layer assigns the vertices of an acyclic g to layers.
	Layer(g *dag.Graph) (*layering.Layering, error)
}

// LayererFunc adapts a function to the Layerer interface.
type LayererFunc func(g *dag.Graph) (*layering.Layering, error)

// Layer calls f.
func (f LayererFunc) Layer(g *dag.Graph) (*layering.Layering, error) { return f(g) }

// Config parameterises the pipeline.
type Config struct {
	// Layerer is the layering algorithm; required.
	Layerer Layerer
	// DummyWidth is the width of inserted dummy vertices.
	DummyWidth float64
	// OrderingRounds bounds the crossing-minimisation down/up sweep rounds.
	OrderingRounds int
	// Ordering selects the sweep key (Barycenter or Median).
	Ordering OrderingMethod
	// CoordinateSweeps is the number of priority-method x-coordinate
	// refinement sweeps after initial packing; 0 keeps the packed layout.
	CoordinateSweeps int
	// HSpacing and VSpacing are the drawing grid spacings.
	HSpacing, VSpacing float64
}

// DefaultConfig returns a pipeline around the given layerer with unit dummy
// width, 4 barycenter ordering rounds and 2 coordinate sweeps.
func DefaultConfig(l Layerer) Config {
	return Config{Layerer: l, DummyWidth: 1, OrderingRounds: 4, CoordinateSweeps: 2, HSpacing: 2, VSpacing: 2}
}

// Node is a positioned vertex of the drawing.
type Node struct {
	V     int     // vertex in the proper graph
	X, Y  float64 // centre position
	W     float64 // drawing width
	Layer int     // 1-based layer (Y = (height-Layer)*VSpacing)
	Dummy bool
	Label string
}

// DrawnEdge is an edge of the original graph routed through its dummy
// chain.
type DrawnEdge struct {
	From, To int // original vertices
	Points   []Point
	Reversed bool // true when cycle removal flipped the original edge
}

// Point is a drawing coordinate.
type Point struct{ X, Y float64 }

// Drawing is the pipeline output.
type Drawing struct {
	Nodes     []Node
	Edges     []DrawnEdge
	Crossings int
	Height    int     // layers
	Width     float64 // max layer width incl. dummies
	// Layering is the (normalized) layering of the original graph.
	Layering *layering.Layering
	// Reversed lists original edges flipped by cycle removal.
	Reversed []dag.Edge
}

// Run executes the full pipeline on g, which may contain cycles.
func Run(g *dag.Graph, cfg Config) (*Drawing, error) {
	if cfg.Layerer == nil {
		return nil, errors.New("sugiyama: Config.Layerer is required")
	}
	if cfg.DummyWidth <= 0 {
		cfg.DummyWidth = 1
	}
	if cfg.OrderingRounds <= 0 {
		cfg.OrderingRounds = 4
	}
	if cfg.HSpacing <= 0 {
		cfg.HSpacing = 2
	}
	if cfg.VSpacing <= 0 {
		cfg.VSpacing = 2
	}

	// Phase 1: cycle removal.
	acyclic := MakeAcyclic(g)
	reversedSet := make(map[dag.Edge]bool, len(acyclic.Reversed))
	for _, e := range acyclic.Reversed {
		reversedSet[e] = true
	}

	// Phase 2: layering.
	l, err := cfg.Layerer.Layer(acyclic.Graph)
	if err != nil {
		return nil, fmt.Errorf("sugiyama: layering failed: %w", err)
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("sugiyama: layerer returned invalid layering: %w", err)
	}
	l.Normalize()

	// Phase 3: dummy insertion (proper layering).
	proper, err := l.MakeProper(cfg.DummyWidth)
	if err != nil {
		return nil, fmt.Errorf("sugiyama: %w", err)
	}

	// Phase 4: crossing minimisation.
	ord, crossings := MinimizeCrossingsWith(proper.Graph, proper.Layering, cfg.OrderingRounds, cfg.Ordering)

	// Phase 5: coordinates.
	nodes := assignCoordinates(proper, ord, cfg)

	// Route original edges through their chains.
	pos := make(map[int]Point, len(nodes))
	for _, nd := range nodes {
		pos[nd.V] = Point{nd.X, nd.Y}
	}
	var edges []DrawnEdge
	for _, e := range g.Edges() {
		ae := e
		rev := reversedSet[e]
		if rev {
			ae = dag.Edge{U: e.V, V: e.U}
		}
		if !acyclic.Graph.HasEdge(ae.U, ae.V) {
			// Duplicate collapsed during cycle removal; draw directly.
			edges = append(edges, DrawnEdge{From: e.U, To: e.V, Points: []Point{pos[e.U], pos[e.V]}, Reversed: rev})
			continue
		}
		chain, ok := proper.Chains[ae]
		if !ok {
			chain = []int{ae.U, ae.V}
		}
		pts := make([]Point, len(chain))
		for i, v := range chain {
			pts[i] = pos[v]
		}
		if rev {
			for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
		edges = append(edges, DrawnEdge{From: e.U, To: e.V, Points: pts, Reversed: rev})
	}

	return &Drawing{
		Nodes:     nodes,
		Edges:     edges,
		Crossings: crossings,
		Height:    l.Height(),
		Width:     l.WidthIncludingDummies(cfg.DummyWidth),
		Layering:  l,
		Reversed:  acyclic.Reversed,
	}, nil
}

// assignCoordinates places each layer's vertices left-to-right in ordering
// order, packs them with HSpacing gaps centred around x = 0, optionally
// refines the packing with the priority method, and emits the node list.
// y grows downward like SVG: layer h (sources) at y = 0, layer 1 (sinks)
// at the bottom.
func assignCoordinates(proper *layering.Proper, ord *Ordering, cfg Config) []Node {
	h := proper.Layering.NumLayers()
	x := make([]float64, proper.Graph.N())
	for li := h; li >= 1; li-- {
		row := ord.Order[li-1]
		total := 0.0
		for i, v := range row {
			if i > 0 {
				total += cfg.HSpacing
			}
			total += proper.Graph.Width(v)
		}
		cx := -total / 2
		for _, v := range row {
			w := proper.Graph.Width(v)
			x[v] = cx + w/2
			cx += w + cfg.HSpacing
		}
	}
	if cfg.CoordinateSweeps > 0 {
		refineCoordinates(proper, ord, x, cfg, cfg.CoordinateSweeps)
	}
	var nodes []Node
	for li := h; li >= 1; li-- {
		y := float64(h-li) * cfg.VSpacing
		for _, v := range ord.Order[li-1] {
			nodes = append(nodes, Node{
				V:     v,
				X:     x[v],
				Y:     y,
				W:     proper.Graph.Width(v),
				Layer: li,
				Dummy: proper.IsDummy[v],
				Label: proper.Graph.Label(v),
			})
		}
	}
	return nodes
}
