package sugiyama

import "math"

// Bounds returns the drawing's bounding box (min and max corner). An empty
// drawing returns zeros.
func (d *Drawing) Bounds() (min, max Point) {
	if len(d.Nodes) == 0 {
		return Point{}, Point{}
	}
	min = Point{math.Inf(1), math.Inf(1)}
	max = Point{math.Inf(-1), math.Inf(-1)}
	for _, n := range d.Nodes {
		min.X = math.Min(min.X, n.X-n.W/2)
		max.X = math.Max(max.X, n.X+n.W/2)
		min.Y = math.Min(min.Y, n.Y)
		max.Y = math.Max(max.Y, n.Y)
	}
	return min, max
}

// Area returns the bounding-box area of the drawing — the quantity the
// paper's introduction motivates minimising via the width/height trade-off.
func (d *Drawing) Area() float64 {
	min, max := d.Bounds()
	return (max.X - min.X) * (max.Y - min.Y)
}

// AspectRatio returns width/height of the bounding box (0 for degenerate
// drawings).
func (d *Drawing) AspectRatio() float64 {
	min, max := d.Bounds()
	h := max.Y - min.Y
	if h == 0 {
		return 0
	}
	return (max.X - min.X) / h
}

// TotalEdgeLength sums the polyline lengths of all drawn edges, a common
// secondary readability metric.
func (d *Drawing) TotalEdgeLength() float64 {
	total := 0.0
	for _, e := range d.Edges {
		for i := 1; i < len(e.Points); i++ {
			dx := e.Points[i].X - e.Points[i-1].X
			dy := e.Points[i].Y - e.Points[i-1].Y
			total += math.Hypot(dx, dy)
		}
	}
	return total
}
