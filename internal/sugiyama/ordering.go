package sugiyama

import (
	"sort"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Ordering holds the vertex order of every layer of a proper layering.
// Order[i] lists the vertices of layer i+1 from left to right; Pos[v] is
// the index of v within its layer.
type Ordering struct {
	Order [][]int
	Pos   []int
}

// newOrdering builds the initial ordering (vertices ascending within each
// layer).
func newOrdering(l *layering.Layering) *Ordering {
	o := &Ordering{Order: l.Layers(), Pos: make([]int, l.Graph().N())}
	for _, layer := range o.Order {
		for i, v := range layer {
			o.Pos[v] = i
		}
	}
	return o
}

// Crossings counts edge crossings between all pairs of adjacent layers for
// a proper layering under the ordering.
func (o *Ordering) Crossings(g *dag.Graph, l *layering.Layering) int {
	total := 0
	for li := 2; li <= len(o.Order); li++ {
		total += o.crossingsBetween(g, l, li)
	}
	return total
}

// crossingsBetween counts crossings of edges from layer li (upper) to layer
// li-1 using the standard sorted-endpoint inversion count.
func (o *Ordering) crossingsBetween(g *dag.Graph, l *layering.Layering, li int) int {
	upper := o.Order[li-1]
	var targets []int
	for _, u := range upper {
		// Collect positions of the lower endpoints, grouped by upper
		// position, lower positions ascending within a group.
		var ts []int
		for _, v := range g.Succ(u) {
			if l.Layer(v) == li-1 {
				ts = append(ts, o.Pos[v])
			}
		}
		sort.Ints(ts)
		targets = append(targets, ts...)
	}
	return countInversions(targets)
}

// countInversions counts pairs i<j with a[i] > a[j] by merge sort.
func countInversions(a []int) int {
	if len(a) < 2 {
		return 0
	}
	buf := make([]int, len(a))
	work := append([]int(nil), a...)
	return mergeCount(work, buf)
}

func mergeCount(a, buf []int) int {
	n := len(a)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(a[:mid], buf[:mid]) + mergeCount(a[mid:], buf[mid:])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[i] <= a[j] {
			buf[k] = a[i]
			i++
		} else {
			buf[k] = a[j]
			inv += mid - i
			j++
		}
		k++
	}
	copy(buf[k:], a[i:mid])
	copy(buf[k+mid-i:], a[j:])
	copy(a, buf[:n])
	return inv
}

// OrderingMethod selects the key used when reordering a layer during the
// crossing-minimisation sweeps.
type OrderingMethod int

const (
	// Barycenter orders by the mean neighbour position (Sugiyama et al.).
	Barycenter OrderingMethod = iota
	// Median orders by the median neighbour position (Eades–Wormald);
	// median keys are more robust against outlier neighbours.
	Median
)

// MinimizeCrossings runs alternating down/up barycenter sweeps on a proper
// layering, keeping the best ordering seen, for the given number of rounds
// (one round = one down sweep + one up sweep). It returns the crossing
// count of the best ordering.
func MinimizeCrossings(g *dag.Graph, l *layering.Layering, rounds int) (*Ordering, int) {
	return MinimizeCrossingsWith(g, l, rounds, Barycenter)
}

// MinimizeCrossingsWith is MinimizeCrossings with an explicit ordering
// method. After the sweeps a greedy-switch pass exchanges adjacent vertices
// whenever that strictly reduces crossings, which cleans up the local
// optima barycenter/median sweeps are known to leave behind.
func MinimizeCrossingsWith(g *dag.Graph, l *layering.Layering, rounds int, method OrderingMethod) (*Ordering, int) {
	o := newOrdering(l)
	best := o.clone()
	bestCross := o.Crossings(g, l)
	for r := 0; r < rounds && bestCross > 0; r++ {
		// Downward sweep: order each layer by its neighbours on the layer
		// above (vertices on higher layer numbers).
		for li := len(o.Order) - 1; li >= 1; li-- {
			o.sortByNeighbours(g, l, li, li+1, method)
		}
		if c := o.Crossings(g, l); c < bestCross {
			bestCross = c
			best = o.clone()
		}
		// Upward sweep.
		for li := 2; li <= len(o.Order); li++ {
			o.sortByNeighbours(g, l, li, li-1, method)
		}
		if c := o.Crossings(g, l); c < bestCross {
			bestCross = c
			best = o.clone()
		}
	}
	if bestCross > 0 {
		if c := best.greedySwitch(g, l, bestCross); c < bestCross {
			bestCross = c
		}
	}
	return best, bestCross
}

// greedySwitch repeatedly exchanges adjacent vertices within a layer when
// the exchange strictly reduces the total crossing count, until a full
// pass finds no improving swap. It returns the resulting crossing count.
// The O(e log e) recount per candidate swap is acceptable at the corpus
// sizes; passes are bounded to keep worst cases predictable.
func (o *Ordering) greedySwitch(g *dag.Graph, l *layering.Layering, current int) int {
	for pass := 0; pass < 8; pass++ {
		improved := false
		for li := 1; li <= len(o.Order); li++ {
			row := o.Order[li-1]
			for i := 0; i+1 < len(row); i++ {
				before := o.crossingsAround(g, l, li)
				o.swap(li, i)
				after := o.crossingsAround(g, l, li)
				if after < before {
					current += after - before
					improved = true
					continue
				}
				o.swap(li, i) // revert
			}
		}
		if !improved {
			break
		}
	}
	return current
}

// swap exchanges positions i and i+1 of layer li (1-based).
func (o *Ordering) swap(li, i int) {
	row := o.Order[li-1]
	row[i], row[i+1] = row[i+1], row[i]
	o.Pos[row[i]] = i
	o.Pos[row[i+1]] = i + 1
}

// crossingsAround counts the crossings in the (at most two) gaps adjacent
// to layer li — the only counts an intra-layer swap can change.
func (o *Ordering) crossingsAround(g *dag.Graph, l *layering.Layering, li int) int {
	total := 0
	if li+1 <= len(o.Order) {
		total += o.crossingsBetween(g, l, li+1)
	}
	if li >= 2 {
		total += o.crossingsBetween(g, l, li)
	}
	return total
}

// sortByNeighbours reorders layer `li` by the barycenter or median of each
// vertex's neighbour positions on layer `ref` (both 1-based). Vertices
// without neighbours on ref keep their relative position via a stable sort
// on their current position.
func (o *Ordering) sortByNeighbours(g *dag.Graph, l *layering.Layering, li, ref int, method OrderingMethod) {
	layer := o.Order[li-1]
	type keyed struct {
		v   int
		key float64
	}
	ks := make([]keyed, len(layer))
	var positions []int
	for i, v := range layer {
		positions = positions[:0]
		for _, w := range g.Succ(v) {
			if l.Layer(w) == ref {
				positions = append(positions, o.Pos[w])
			}
		}
		for _, w := range g.Pred(v) {
			if l.Layer(w) == ref {
				positions = append(positions, o.Pos[w])
			}
		}
		if len(positions) == 0 {
			ks[i] = keyed{v, float64(o.Pos[v])}
			continue
		}
		ks[i] = keyed{v, neighbourKey(positions, method)}
	}
	sort.SliceStable(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
	for i, k := range ks {
		layer[i] = k.v
		o.Pos[k.v] = i
	}
}

// neighbourKey reduces neighbour positions to an ordering key.
func neighbourKey(positions []int, method OrderingMethod) float64 {
	if method == Median {
		sort.Ints(positions)
		mid := len(positions) / 2
		if len(positions)%2 == 1 {
			return float64(positions[mid])
		}
		return (float64(positions[mid-1]) + float64(positions[mid])) / 2
	}
	sum := 0
	for _, p := range positions {
		sum += p
	}
	return float64(sum) / float64(len(positions))
}

func (o *Ordering) clone() *Ordering {
	c := &Ordering{
		Order: make([][]int, len(o.Order)),
		Pos:   append([]int(nil), o.Pos...),
	}
	for i := range o.Order {
		c.Order[i] = append([]int(nil), o.Order[i]...)
	}
	return c
}
