package sugiyama

import (
	"math"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
)

// layerOrderPreserved verifies that within every layer the drawing order
// matches the crossing-minimised ordering and the minimum spacing holds.
func layerOrderPreserved(t *testing.T, d *Drawing, hspacing float64) {
	t.Helper()
	byLayer := map[int][]Node{}
	maxLayer := 0
	for _, n := range d.Nodes {
		byLayer[n.Layer] = append(byLayer[n.Layer], n)
		if n.Layer > maxLayer {
			maxLayer = n.Layer
		}
	}
	for li := 1; li <= maxLayer; li++ {
		row := byLayer[li]
		for i := 1; i < len(row); i++ {
			gap := (row[i].X - row[i].W/2) - (row[i-1].X + row[i-1].W/2)
			if gap < hspacing-1e-6 {
				t.Fatalf("layer %d: spacing %.3f < %.3f between %d and %d",
					li, gap, hspacing, row[i-1].V, row[i].V)
			}
		}
	}
}

func TestRefinedCoordinatesKeepOrderAndSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for i := 0; i < 10; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(20+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(LayererFunc(longestpath.Layer))
		cfg.CoordinateSweeps = 3
		d, err := Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		layerOrderPreserved(t, d, cfg.HSpacing)
	}
}

// edgeDisplacement sums |x(parent) - x(child)| over all drawn edge
// segments; the priority refinement should not make it worse than the
// plain packing.
func edgeDisplacement(d *Drawing) float64 {
	total := 0.0
	for _, e := range d.Edges {
		for i := 1; i < len(e.Points); i++ {
			total += math.Abs(e.Points[i].X - e.Points[i-1].X)
		}
	}
	return total
}

func TestRefinementStraightensEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	improved, total := 0, 0
	for i := 0; i < 10; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
		if err != nil {
			t.Fatal(err)
		}
		base := DefaultConfig(LayererFunc(longestpath.Layer))
		base.CoordinateSweeps = 0
		d0, err := Run(g, base)
		if err != nil {
			t.Fatal(err)
		}
		ref := base
		ref.CoordinateSweeps = 3
		d1, err := Run(g, ref)
		if err != nil {
			t.Fatal(err)
		}
		if edgeDisplacement(d1) <= edgeDisplacement(d0)+1e-9 {
			improved++
		}
		total++
	}
	if improved < total*7/10 {
		t.Fatalf("refinement improved displacement on only %d/%d graphs", improved, total)
	}
}

func TestMedianOrderingWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := longestpath.Layer(g)
	proper, err := l.MakeProper(1)
	if err != nil {
		t.Fatal(err)
	}
	before := newOrdering(proper.Layering).Crossings(proper.Graph, proper.Layering)
	_, med := MinimizeCrossingsWith(proper.Graph, proper.Layering, 4, Median)
	_, bar := MinimizeCrossingsWith(proper.Graph, proper.Layering, 4, Barycenter)
	if med > before || bar > before {
		t.Fatalf("sweeps worsened crossings: before=%d median=%d barycenter=%d", before, med, bar)
	}
}

func TestNeighbourKey(t *testing.T) {
	if k := neighbourKey([]int{5, 1, 3}, Median); k != 3 {
		t.Fatalf("odd median = %g", k)
	}
	if k := neighbourKey([]int{4, 1, 3, 2}, Median); k != 2.5 {
		t.Fatalf("even median = %g", k)
	}
	if k := neighbourKey([]int{1, 2, 3}, Barycenter); k != 2 {
		t.Fatalf("barycenter = %g", k)
	}
}

func TestRefineSingleVertexLayer(t *testing.T) {
	// A lone vertex between two fixed layers centres on its neighbours.
	g := dag.New(3)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(1, 0)
	cfg := DefaultConfig(LayererFunc(longestpath.Layer))
	d, err := Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	layerOrderPreserved(t, d, cfg.HSpacing)
}
