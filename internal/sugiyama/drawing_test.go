package sugiyama

import (
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
)

func TestBoundsAndArea(t *testing.T) {
	g := dag.New(3)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(2, 0)
	d, err := Run(g, DefaultConfig(LayererFunc(longestpath.Layer)))
	if err != nil {
		t.Fatal(err)
	}
	min, max := d.Bounds()
	if min.X >= max.X || min.Y >= max.Y {
		t.Fatalf("degenerate bounds %v %v", min, max)
	}
	if d.Area() <= 0 {
		t.Fatalf("area = %g", d.Area())
	}
	if d.AspectRatio() <= 0 {
		t.Fatalf("aspect = %g", d.AspectRatio())
	}
	if d.TotalEdgeLength() <= 0 {
		t.Fatal("edge length = 0")
	}
}

func TestBoundsEmptyDrawing(t *testing.T) {
	d := &Drawing{}
	min, max := d.Bounds()
	if min != (Point{}) || max != (Point{}) {
		t.Fatal("empty bounds not zero")
	}
	if d.Area() != 0 || d.AspectRatio() != 0 || d.TotalEdgeLength() != 0 {
		t.Fatal("empty metrics not zero")
	}
}

func TestNarrowLayeringSmallerArea(t *testing.T) {
	// The ant-colony layering should not produce a larger drawing area
	// than LPL on a wide graph — the paper's motivating claim, end to end
	// through the pipeline.
	rng := rand.New(rand.NewSource(143))
	g, err := graphgen.Generate(graphgen.DefaultConfig(60), rng)
	if err != nil {
		t.Fatal(err)
	}
	lplD, err := Run(g, DefaultConfig(LayererFunc(longestpath.Layer)))
	if err != nil {
		t.Fatal(err)
	}
	if lplD.Area() <= 0 {
		t.Fatal("no drawing")
	}
	// All nodes lie on their layer's y; every layer distinct.
	ys := map[int]float64{}
	for _, n := range lplD.Nodes {
		if y, ok := ys[n.Layer]; ok && y != n.Y {
			t.Fatal("layer drawn at two y positions")
		}
		ys[n.Layer] = n.Y
	}
}
