package sugiyama

import (
	"sort"

	"antlayer/internal/layering"
)

// refineCoordinates applies a priority-based relaxation (after Sugiyama,
// Tagawa, Toda 1981) to the packed initial coordinates: in alternating
// downward and upward sweeps every vertex moves as close as possible to
// the mean x of its neighbours on the reference layer. Vertices are
// processed in decreasing priority — dummy vertices first so long edges
// straighten, then real vertices by connectivity — and each move is
// clamped against the current positions of the immediate left and right
// neighbours, so the layer order (and therefore the crossing count) is
// preserved.
func refineCoordinates(proper *layering.Proper, ord *Ordering, x []float64, cfg Config, sweeps int) {
	h := proper.Layering.NumLayers()
	for s := 0; s < sweeps; s++ {
		for li := h - 1; li >= 1; li-- {
			refineLayer(proper, ord, x, cfg, li, li+1)
		}
		for li := 2; li <= h; li++ {
			refineLayer(proper, ord, x, cfg, li, li-1)
		}
	}
}

// refineLayer repositions layer li (1-based) against reference layer ref.
func refineLayer(proper *layering.Proper, ord *Ordering, x []float64, cfg Config, li, ref int) {
	g := proper.Graph
	l := proper.Layering
	row := ord.Order[li-1]
	if len(row) < 1 {
		return
	}
	prio := make([]int, len(row))
	for i, v := range row {
		p := 0
		for _, w := range g.Succ(v) {
			if l.Layer(w) == ref {
				p++
			}
		}
		for _, w := range g.Pred(v) {
			if l.Layer(w) == ref {
				p++
			}
		}
		if proper.IsDummy[v] {
			p += g.N() // dummies dominate every real vertex
		}
		prio[i] = p
	}
	idx := make([]int, len(row))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return prio[idx[a]] > prio[idx[b]] })

	for _, i := range idx {
		v := row[i]
		desired, cnt := 0.0, 0
		for _, w := range g.Succ(v) {
			if l.Layer(w) == ref {
				desired += x[w]
				cnt++
			}
		}
		for _, w := range g.Pred(v) {
			if l.Layer(w) == ref {
				desired += x[w]
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		desired /= float64(cnt)
		// Clamp against the immediate neighbours' current positions.
		if i > 0 {
			left := row[i-1]
			min := x[left] + g.Width(left)/2 + cfg.HSpacing + g.Width(v)/2
			if desired < min {
				desired = min
			}
		}
		if i < len(row)-1 {
			right := row[i+1]
			max := x[right] - g.Width(right)/2 - cfg.HSpacing - g.Width(v)/2
			if desired > max {
				desired = max
			}
		}
		// A squeezed slot (min > max) keeps the current position.
		if i > 0 && i < len(row)-1 {
			left, right := row[i-1], row[i+1]
			min := x[left] + g.Width(left)/2 + cfg.HSpacing + g.Width(v)/2
			max := x[right] - g.Width(right)/2 - cfg.HSpacing - g.Width(v)/2
			if min > max {
				continue
			}
		}
		x[v] = desired
	}
}
