package experiments

import (
	"context"
	"fmt"
	"io"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/layering"
	"antlayer/internal/stats"
)

// AblationVariant names one colony configuration of an ablation study.
type AblationVariant struct {
	Name   string
	Mutate func(*core.Params)
}

// AblationResult is the mean measurement of one variant over the corpus
// sample, flattened across groups.
type AblationResult struct {
	Name string
	Mean Measurement
}

// SelectionAblation compares the paper's argmax layer choice against
// classic roulette sampling (DESIGN.md E9).
func SelectionAblation(opts Options) ([]AblationResult, error) {
	return RunAblation(opts, []AblationVariant{
		{"pseudo-random q0=0.9 (default)", func(p *core.Params) { p.Selection = core.SelectPseudoRandom; p.Q0 = 0.9 }},
		{"argmax (literal Alg. 4)", func(p *core.Params) { p.Selection = core.SelectArgMax }},
		{"roulette (Ant System)", func(p *core.Params) { p.Selection = core.SelectRoulette }},
	})
}

// StretchAblation compares inserting the new layers between the LPL layers
// (paper Fig. 2) against stacking them above and below (paper Fig. 1).
func StretchAblation(opts Options) ([]AblationResult, error) {
	return RunAblation(opts, []AblationVariant{
		{"between (paper)", func(p *core.Params) { p.Stretch = core.StretchBetween }},
		{"ends", func(p *core.Params) { p.Stretch = core.StretchEnds }},
	})
}

// HeuristicAblation compares the objective-delta heuristic (default, see
// core.HeuristicObjective) against the literal layer-width reciprocal of
// the paper's §IV-D formula.
func HeuristicAblation(opts Options) ([]AblationResult, error) {
	return RunAblation(opts, []AblationVariant{
		{"objective-delta (default)", func(p *core.Params) { p.Heuristic = core.HeuristicObjective }},
		{"layer-width (literal §IV-D)", func(p *core.Params) { p.Heuristic = core.HeuristicLayerWidth }},
	})
}

// ToursAblation scans the tour budget to show convergence of the search.
func ToursAblation(opts Options, tours []int) ([]AblationResult, error) {
	var variants []AblationVariant
	for _, t := range tours {
		t := t
		variants = append(variants, AblationVariant{
			Name:   fmt.Sprintf("tours=%d", t),
			Mutate: func(p *core.Params) { p.Tours = t },
		})
	}
	return RunAblation(opts, variants)
}

// RunAblation evaluates each variant of the colony over the corpus sample
// and returns per-variant means across all graphs.
func RunAblation(opts Options, variants []AblationVariant) ([]AblationResult, error) {
	opts = opts.normalized()
	var algos []Algorithm
	for _, v := range variants {
		v := v
		algos = append(algos, Algorithm{
			Name: v.Name,
			Layer: func(g *dag.Graph, seed int64) (*layering.Layering, error) {
				p := opts.ACO
				v.Mutate(&p)
				p.Seed = opts.ACO.Seed + seed
				return core.Layer(context.Background(), g, p)
			},
		})
	}
	res, err := RunAlgorithms(algos, opts)
	if err != nil {
		return nil, err
	}
	var out []AblationResult
	for _, v := range variants {
		means := res.Mean[v.Name]
		total := Measurement{}
		for _, m := range means {
			total.add(m)
		}
		if len(means) > 0 {
			total.scale(1 / float64(len(means)))
		}
		out = append(out, AblationResult{Name: v.Name, Mean: total})
	}
	return out, nil
}

// WriteAblationTable formats ablation results.
func WriteAblationTable(w io.Writer, title string, results []AblationResult) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	headers := []string{"variant", "width incl", "width excl", "height", "dummies", "density", "ms"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.Mean.WidthIncl),
			fmt.Sprintf("%.2f", r.Mean.WidthExcl),
			fmt.Sprintf("%.2f", r.Mean.Height),
			fmt.Sprintf("%.2f", r.Mean.Dummies),
			fmt.Sprintf("%.2f", r.Mean.EdgeDensity),
			fmt.Sprintf("%.3f", r.Mean.Millis),
		})
	}
	return stats.WriteAligned(w, headers, rows)
}
