package experiments

import (
	"fmt"

	"antlayer/internal/stats"
)

// ShapeReport collects qualitative checks of the reproduced figures against
// the relationships the paper reports (§VII). Absolute values differ — the
// corpus is synthetic — but the orderings and ratios should hold.
type ShapeReport struct {
	Checks []ShapeCheck
}

// ShapeCheck is one paper claim and whether the reproduction matches it.
type ShapeCheck struct {
	Figure string
	Claim  string
	Pass   bool
	Detail string
}

// Failed returns the failing checks.
func (r *ShapeReport) Failed() []ShapeCheck {
	var out []ShapeCheck
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// overallMean averages a metric over all groups for one algorithm.
func (r *Results) overallMean(name string, get func(Measurement) float64) float64 {
	means := r.Mean[name]
	if len(means) == 0 {
		return 0
	}
	ys := make([]float64, len(means))
	for i, m := range means {
		ys[i] = get(m)
	}
	return stats.Mean(ys)
}

// CheckShapes verifies the figure-level relationships the paper reports.
// The tolerances are deliberately loose: the corpus is synthetic and the
// claims are about orderings, not absolute values.
func (r *Results) CheckShapes() *ShapeReport {
	rep := &ShapeReport{}
	widthIncl := func(m Measurement) float64 { return m.WidthIncl }
	height := func(m Measurement) float64 { return m.Height }
	dummies := func(m Measurement) float64 { return m.Dummies }
	density := func(m Measurement) float64 { return m.EdgeDensity }
	millis := func(m Measurement) float64 { return m.Millis }

	ac := func(get func(Measurement) float64) float64 { return r.overallMean(NameAntColony, get) }
	lpl := func(get func(Measurement) float64) float64 { return r.overallMean(NameLPL, get) }
	lplPL := func(get func(Measurement) float64) float64 { return r.overallMean(NameLPLPL, get) }
	mw := func(get func(Measurement) float64) float64 { return r.overallMean(NameMinWidth, get) }
	mwPL := func(get func(Measurement) float64) float64 { return r.overallMean(NameMinWidthPL, get) }

	add := func(fig, claim string, pass bool, detail string) {
		rep.Checks = append(rep.Checks, ShapeCheck{Figure: fig, Claim: claim, Pass: pass, Detail: detail})
	}

	// Fig 4: AC width (incl. dummies) smaller than LPL, comparable to LPL+PL.
	add("Fig 4", "AntColony width (incl. dummies) < LPL width",
		ac(widthIncl) < lpl(widthIncl),
		fmt.Sprintf("AC=%.2f LPL=%.2f", ac(widthIncl), lpl(widthIncl)))
	add("Fig 4", "AntColony width within 25%% of LPL+PL width",
		ac(widthIncl) <= 1.25*lplPL(widthIncl),
		fmt.Sprintf("AC=%.2f LPL+PL=%.2f", ac(widthIncl), lplPL(widthIncl)))

	// Fig 5: MinWidth+PL best on width incl. dummies, AC close behind and
	// ahead of plain MinWidth.
	add("Fig 5", "AntColony width (incl. dummies) <= MinWidth width",
		ac(widthIncl) <= 1.05*mw(widthIncl),
		fmt.Sprintf("AC=%.2f MinWidth=%.2f", ac(widthIncl), mw(widthIncl)))
	add("Fig 5", "MinWidth+PL width within 25%% of AntColony width",
		mwPL(widthIncl) <= 1.25*ac(widthIncl) && ac(widthIncl) <= 1.6*mwPL(widthIncl),
		fmt.Sprintf("AC=%.2f MinWidth+PL=%.2f", ac(widthIncl), mwPL(widthIncl)))

	// Fig 6: LPL wins height; AC is 20-30% (allow up to 60%) taller; AC
	// keeps roughly the LPL dummy count.
	add("Fig 6", "LPL height <= AntColony height",
		lpl(height) <= ac(height)+1e-9,
		fmt.Sprintf("LPL=%.2f AC=%.2f", lpl(height), ac(height)))
	add("Fig 6", "AntColony height within 60%% above LPL height",
		ac(height) <= 1.6*lpl(height)+1,
		fmt.Sprintf("AC=%.2f LPL=%.2f", ac(height), lpl(height)))
	add("Fig 6", "AntColony DVC within 50%% of plain LPL DVC",
		ac(dummies) <= 1.5*lpl(dummies)+2,
		fmt.Sprintf("AC=%.2f LPL=%.2f", ac(dummies), lpl(dummies)))
	add("Fig 6", "AntColony DVC >= LPL+PL DVC",
		ac(dummies) >= lplPL(dummies)-1e-9,
		fmt.Sprintf("AC=%.2f LPL+PL=%.2f", ac(dummies), lplPL(dummies)))

	// Fig 8/9: AC edge density no worse than LPL's, between the MinWidth
	// variants (loosely).
	add("Fig 8", "AntColony edge density <= LPL edge density",
		ac(density) <= lpl(density)+0.5,
		fmt.Sprintf("AC=%.2f LPL=%.2f", ac(density), lpl(density)))
	add("Fig 9", "AntColony edge density within band of MinWidth variants",
		ac(density) <= maxF(mw(density), mwPL(density))+0.5,
		fmt.Sprintf("AC=%.2f MW=%.2f MW+PL=%.2f", ac(density), mw(density), mwPL(density)))

	// Fig 8/9 runtime: the bases are fastest; AC slower but within a small
	// constant factor of the PL-combined pipelines (paper: "not much
	// higher").
	add("Fig 8", "LPL faster than AntColony",
		lpl(millis) < ac(millis),
		fmt.Sprintf("LPL=%.3fms AC=%.3fms", lpl(millis), ac(millis)))
	add("Fig 9", "MinWidth faster than AntColony",
		mw(millis) < ac(millis),
		fmt.Sprintf("MW=%.3fms AC=%.3fms", mw(millis), ac(millis)))

	return rep
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
