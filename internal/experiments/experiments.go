// Package experiments regenerates the paper's evaluation (§VII, §VIII):
// the six figures comparing the Ant Colony layering against LPL, MinWidth
// and their Promote-Layering combinations, the α/β and nd_width parameter
// tuning tables, and the ablation studies called out in DESIGN.md.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
	"antlayer/internal/minwidth"
	"antlayer/internal/promote"
)

// Canonical algorithm names used in figures and tables; they mirror the
// paper's plot legends.
const (
	NameLPL        = "LPL"
	NameLPLPL      = "LPL+PL"
	NameMinWidth   = "MinWidth"
	NameMinWidthPL = "MinWidth+PL"
	NameAntColony  = "AntColony"
)

// Algorithm is a named layering procedure under evaluation. Layer receives
// a per-invocation seed derived from the graph's position in the corpus,
// so stochastic algorithms stay deterministic even when the harness
// evaluates graphs concurrently; deterministic algorithms ignore it.
type Algorithm struct {
	Name  string
	Layer func(g *dag.Graph, seed int64) (*layering.Layering, error)
}

// Options configures a corpus evaluation.
type Options struct {
	// Seed generates the corpus (and the ACO runs, offset per graph so
	// every run differs but the whole experiment is reproducible).
	Seed int64
	// PerGroup caps the corpus sample per group; 0 means the full 1277
	// graphs. The harness's statistical shape is stable from ~8 per group.
	PerGroup int
	// DummyWidth is the dummy vertex width used for metrics and ACO.
	DummyWidth float64
	// ACO holds the colony parameters (DefaultParams when zero-valued).
	ACO core.Params
	// Family selects the corpus profile (default: the AT&T-like Sparse).
	Family graphgen.Family
	// Workers evaluates the graphs of a group concurrently when > 1.
	// Results are deterministic regardless of Workers: the per-graph ACO
	// seed depends only on the graph's position in the corpus. Running
	// time measurements remain per-call wall clock and therefore gain
	// noise under contention; use Workers=1 for the timing figures.
	// ACO.Workers controls parallelism *inside* each colony run the same
	// way; DefaultOptions and the zero-ACO fallback pin it to 1 so Millis
	// measures sequential per-call cost unless a caller opts out.
	Workers int
}

// DefaultOptions uses the paper's parameters with a corpus sample sized for
// interactive runs. The colony is pinned to ACO.Workers=1 (not the
// library's all-CPUs default) so the Millis series stays the sequential
// per-call cost the paper's timing figures report; opt into a parallel
// colony by setting ACO.Workers explicitly.
func DefaultOptions() Options {
	o := Options{Seed: 7, PerGroup: 8, DummyWidth: 1, ACO: core.DefaultParams()}
	o.ACO.Workers = 1
	return o
}

func (o Options) normalized() Options {
	if o.DummyWidth <= 0 {
		o.DummyWidth = 1
	}
	if o.ACO.Tours == 0 {
		// Zero-valued ACO: adopt the defaults, sequential for the same
		// reason as DefaultOptions. An explicitly provided ACO keeps its
		// Workers setting untouched.
		o.ACO = core.DefaultParams()
		o.ACO.Workers = 1
	}
	o.ACO.DummyWidth = o.DummyWidth
	return o
}

// Measurement is the per-graph observation vector; aggregated values keep
// the same shape.
type Measurement struct {
	WidthIncl   float64 // width including dummy vertices
	WidthExcl   float64 // width excluding dummy vertices
	Height      float64
	Dummies     float64
	EdgeDensity float64
	Millis      float64 // running time of the layering call
}

func (m *Measurement) add(o Measurement) {
	m.WidthIncl += o.WidthIncl
	m.WidthExcl += o.WidthExcl
	m.Height += o.Height
	m.Dummies += o.Dummies
	m.EdgeDensity += o.EdgeDensity
	m.Millis += o.Millis
}

func (m *Measurement) scale(f float64) {
	m.WidthIncl *= f
	m.WidthExcl *= f
	m.Height *= f
	m.Dummies *= f
	m.EdgeDensity *= f
	m.Millis *= f
}

// Results holds per-group means for every algorithm.
type Results struct {
	// X is the vertex count of each group (10, 15, ..., 100).
	X []int
	// Mean[name][i] is the mean measurement of the algorithm over group i.
	Mean map[string][]Measurement
	// GraphsPerGroup records the sample size used.
	GraphsPerGroup []int
	// Options echoes the configuration.
	Options Options
}

// StandardAlgorithms returns the five algorithms of the paper's
// experiments. The ant colony derives its seed from the harness-provided
// per-graph seed, so the whole experiment is deterministic regardless of
// evaluation order or concurrency.
func StandardAlgorithms(opts Options) []Algorithm {
	opts = opts.normalized()
	acoSeed := opts.ACO.Seed
	return []Algorithm{
		{NameLPL, func(g *dag.Graph, _ int64) (*layering.Layering, error) {
			return longestpath.Layer(g)
		}},
		{NameLPLPL, func(g *dag.Graph, _ int64) (*layering.Layering, error) {
			l, err := longestpath.Layer(g)
			if err != nil {
				return nil, err
			}
			improved, _ := promote.Apply(l)
			return improved, nil
		}},
		{NameMinWidth, func(g *dag.Graph, _ int64) (*layering.Layering, error) {
			return minwidth.LayerBest(g, opts.DummyWidth)
		}},
		{NameMinWidthPL, func(g *dag.Graph, _ int64) (*layering.Layering, error) {
			l, err := minwidth.LayerBest(g, opts.DummyWidth)
			if err != nil {
				return nil, err
			}
			improved, _ := promote.Apply(l)
			return improved, nil
		}},
		{NameAntColony, func(g *dag.Graph, seed int64) (*layering.Layering, error) {
			p := opts.ACO
			p.Seed = acoSeed + seed
			return core.Layer(context.Background(), g, p)
		}},
	}
}

// Run evaluates the standard algorithms over the corpus and returns the
// per-group means that the figures plot.
func Run(opts Options) (*Results, error) {
	opts = opts.normalized()
	return RunAlgorithms(StandardAlgorithms(opts), opts)
}

// RunAlgorithms evaluates a custom algorithm set over the corpus.
func RunAlgorithms(algos []Algorithm, opts Options) (*Results, error) {
	opts = opts.normalized()
	groups, err := graphgen.CorpusFamily(opts.Seed, opts.PerGroup, opts.Family)
	if err != nil {
		return nil, err
	}
	res := &Results{
		Mean:    make(map[string][]Measurement, len(algos)),
		Options: opts,
	}
	for _, a := range algos {
		res.Mean[a.Name] = make([]Measurement, len(groups))
	}
	for gi, group := range groups {
		res.X = append(res.X, group.Vertices)
		res.GraphsPerGroup = append(res.GraphsPerGroup, len(group.Graphs))
		for _, a := range algos {
			ms, err := measureGroup(a, group, gi, opts)
			if err != nil {
				return nil, err
			}
			mean := Measurement{}
			for _, m := range ms {
				mean.add(m)
			}
			if len(ms) > 0 {
				mean.scale(1 / float64(len(ms)))
			}
			res.Mean[a.Name][gi] = mean
		}
	}
	return res, nil
}

// measureGroup evaluates one algorithm over a corpus group, optionally
// with Workers goroutines. The per-graph seed is gi*1e6 + graph index, so
// results do not depend on scheduling.
func measureGroup(a Algorithm, group graphgen.Group, gi int, opts Options) ([]Measurement, error) {
	ms := make([]Measurement, len(group.Graphs))
	errs := make([]error, len(group.Graphs))
	seedOf := func(j int) int64 { return int64(gi)*1_000_000 + int64(j) }
	if opts.Workers <= 1 {
		for j, g := range group.Graphs {
			ms[j], errs[j] = MeasureOne(a, g, seedOf(j), opts.DummyWidth)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					ms[j], errs[j] = MeasureOne(a, group.Graphs[j], seedOf(j), opts.DummyWidth)
				}
			}()
		}
		for j := range group.Graphs {
			next <- j
		}
		close(next)
		wg.Wait()
	}
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on group n=%d graph %d: %w", a.Name, group.Vertices, j, err)
		}
	}
	return ms, nil
}

// MeasureOne runs one algorithm on one graph and evaluates all criteria.
func MeasureOne(a Algorithm, g *dag.Graph, seed int64, dummyWidth float64) (Measurement, error) {
	start := time.Now()
	l, err := a.Layer(g, seed)
	elapsed := time.Since(start)
	if err != nil {
		return Measurement{}, err
	}
	if err := l.Validate(); err != nil {
		return Measurement{}, fmt.Errorf("invalid layering: %w", err)
	}
	met := l.ComputeMetrics(dummyWidth)
	return Measurement{
		WidthIncl:   met.WidthIncl,
		WidthExcl:   met.WidthExcl,
		Height:      float64(met.Height),
		Dummies:     float64(met.DummyCount),
		EdgeDensity: float64(met.EdgeDensity),
		Millis:      float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}
