package experiments

import (
	"bytes"
	"strings"
	"testing"

	"antlayer/internal/core"
)

// microOptions: single graph per group would still be 19 colonies per grid
// point; shrink further by sampling one graph per group and a tiny colony.
func microOptions() Options {
	opts := Options{Seed: 7, PerGroup: 1, DummyWidth: 1, ACO: core.DefaultParams()}
	opts.ACO.Ants = 3
	opts.ACO.Tours = 3
	opts.ACO.Workers = 1
	return opts
}

func TestAlphaBetaStudy(t *testing.T) {
	alphas := []float64{1, 3}
	betas := []float64{1, 3}
	cells, err := AlphaBetaStudy(microOptions(), alphas, betas)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Objective <= 0 || c.HPlusW <= 0 {
			t.Fatalf("cell %+v not populated", c)
		}
		// Objective and H+W are reciprocal views of the same quantity
		// only per-run; aggregated they must still be consistent in sign
		// and rough magnitude.
		if c.Objective > 1 {
			t.Fatalf("objective %g > 1", c.Objective)
		}
	}
	var buf bytes.Buffer
	if err := WriteAlphaBetaTable(&buf, cells, alphas, betas); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alpha\\beta") {
		t.Fatalf("table header missing:\n%s", buf.String())
	}
}

func TestNdWidthStudy(t *testing.T) {
	values := []float64{0.5, 1.0}
	cells, err := NdWidthStudy(microOptions(), values)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for i, c := range cells {
		if c.NdWidth != values[i] {
			t.Fatalf("cell %d nd_width = %g", i, c.NdWidth)
		}
		if c.WidthIncl <= 0 || c.Height <= 0 {
			t.Fatalf("cell %+v not populated", c)
		}
	}
	var buf bytes.Buffer
	if err := WriteNdWidthTable(&buf, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nd_width") {
		t.Fatal("table header missing")
	}
}

func TestAblations(t *testing.T) {
	opts := microOptions()
	sel, err := SelectionAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("selection variants = %d", len(sel))
	}
	str, err := StretchAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(str) != 2 {
		t.Fatalf("stretch variants = %d", len(str))
	}
	heur, err := HeuristicAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(heur) != 2 {
		t.Fatalf("heuristic variants = %d", len(heur))
	}
	// The objective-delta heuristic must dominate the literal layer-width
	// formula on H+W — the motivating observation of the reproduction.
	objHW := heur[0].Mean.Height + heur[0].Mean.WidthIncl
	litHW := heur[1].Mean.Height + heur[1].Mean.WidthIncl
	if objHW > litHW {
		t.Fatalf("objective heuristic H+W %.1f worse than literal %.1f", objHW, litHW)
	}
	var buf bytes.Buffer
	if err := WriteAblationTable(&buf, "t", heur); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "variant") {
		t.Fatal("ablation table header missing")
	}
	tours, err := ToursAblation(opts, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tours) != 2 {
		t.Fatalf("tour variants = %d", len(tours))
	}
}
