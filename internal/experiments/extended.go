package experiments

import (
	"fmt"

	"antlayer/internal/coffmangraham"
	"antlayer/internal/dag"
	"antlayer/internal/layering"
	"antlayer/internal/netsimplex"
)

// Extra algorithm names (DESIGN.md E10).
const (
	NameNetworkSimplex = "NetworkSimplex"
	NameCoffmanGraham  = "CoffmanGraham(w=4)"
)

// ExtendedAlgorithms returns the paper's five algorithms plus the two
// extension baselines: the exact network simplex layering (the method the
// Promote heuristic approximates) and Coffman–Graham with width 4.
func ExtendedAlgorithms(opts Options) []Algorithm {
	algos := StandardAlgorithms(opts)
	algos = append(algos,
		Algorithm{NameNetworkSimplex, func(g *dag.Graph, _ int64) (*layering.Layering, error) {
			return netsimplex.Layer(g)
		}},
		Algorithm{NameCoffmanGraham, func(g *dag.Graph, _ int64) (*layering.Layering, error) {
			return coffmangraham.Layer(g, 4)
		}},
	)
	return algos
}

// RunExtended evaluates the extended algorithm set over the corpus.
func RunExtended(opts Options) (*Results, error) {
	opts = opts.normalized()
	return RunAlgorithms(ExtendedAlgorithms(opts), opts)
}

// CheckExtendedShapes verifies the relationships the extension baselines
// must satisfy by construction:
//
//   - NetworkSimplex achieves the minimum dummy count, so neither LPL,
//     LPL+PL nor the ant colony can beat it;
//   - Promote Layering approximates network simplex from above;
//   - Coffman–Graham respects its width bound on real vertices.
func (r *Results) CheckExtendedShapes() *ShapeReport {
	rep := &ShapeReport{}
	dummies := func(m Measurement) float64 { return m.Dummies }
	widthExcl := func(m Measurement) float64 { return m.WidthExcl }

	ns := r.overallMean(NameNetworkSimplex, dummies)
	lplPL := r.overallMean(NameLPLPL, dummies)
	lpl := r.overallMean(NameLPL, dummies)
	ac := r.overallMean(NameAntColony, dummies)
	cgW := r.overallMean(NameCoffmanGraham, widthExcl)

	add := func(claim string, pass bool, detail string) {
		rep.Checks = append(rep.Checks, ShapeCheck{Figure: "E10", Claim: claim, Pass: pass, Detail: detail})
	}
	add("NetworkSimplex DVC <= LPL+PL DVC", ns <= lplPL+1e-9,
		fmt.Sprintf("NS=%.2f LPL+PL=%.2f", ns, lplPL))
	add("NetworkSimplex DVC <= LPL DVC", ns <= lpl+1e-9,
		fmt.Sprintf("NS=%.2f LPL=%.2f", ns, lpl))
	add("NetworkSimplex DVC <= AntColony DVC", ns <= ac+1e-9,
		fmt.Sprintf("NS=%.2f AC=%.2f", ns, ac))
	add("CoffmanGraham mean real width <= 4", cgW <= 4+1e-9,
		fmt.Sprintf("CG=%.2f bound=4", cgW))
	return rep
}
