package experiments

import (
	"testing"
)

func TestRunExtended(t *testing.T) {
	opts := tinyOptions()
	res, err := RunExtended(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{NameNetworkSimplex, NameCoffmanGraham} {
		means, ok := res.Mean[name]
		if !ok || len(means) == 0 {
			t.Fatalf("series %q missing", name)
		}
	}
	rep := res.CheckExtendedShapes()
	if len(rep.Checks) != 4 {
		t.Fatalf("checks = %d, want 4", len(rep.Checks))
	}
	for _, c := range rep.Failed() {
		t.Errorf("[%s] %s failed: %s", c.Figure, c.Claim, c.Detail)
	}
}

func TestExtendedDVCOrdering(t *testing.T) {
	// Per-group: network simplex is the exact optimum, so it lower-bounds
	// every other algorithm group-wise, not just on average.
	res, err := RunExtended(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	ns := res.Mean[NameNetworkSimplex]
	for _, other := range []string{NameLPL, NameLPLPL, NameMinWidth, NameMinWidthPL, NameAntColony} {
		series := res.Mean[other]
		for gi := range ns {
			if ns[gi].Dummies > series[gi].Dummies+1e-9 {
				t.Fatalf("group %d: NetworkSimplex DVC %.2f above %s's %.2f",
					gi, ns[gi].Dummies, other, series[gi].Dummies)
			}
		}
	}
}
