package experiments

import (
	"bytes"
	"strings"
	"testing"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/layering"
)

// Short aliases for injected-failure test algorithms.
type (
	dagGraph         = dag.Graph
	layeringLayering = layering.Layering
)

func layeringFrom(g *dag.Graph, assign []int) *layering.Layering {
	return layering.FromAssignment(g, assign)
}

// tinyOptions keeps experiment tests fast: a 2-graph sample per group and a
// small colony, sequential so timing-based assertions measure per-call cost.
func tinyOptions() Options {
	opts := Options{Seed: 7, PerGroup: 2, DummyWidth: 1, ACO: core.DefaultParams()}
	opts.ACO.Ants = 4
	opts.ACO.Tours = 4
	opts.ACO.Workers = 1
	return opts
}

func TestRunProducesAllSeries(t *testing.T) {
	res, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.X) != graphgen.GroupCount {
		t.Fatalf("groups = %d", len(res.X))
	}
	for _, name := range []string{NameLPL, NameLPLPL, NameMinWidth, NameMinWidthPL, NameAntColony} {
		means, ok := res.Mean[name]
		if !ok || len(means) != graphgen.GroupCount {
			t.Fatalf("series %q missing or short", name)
		}
		for gi, m := range means {
			if m.Height <= 0 || m.WidthIncl <= 0 {
				t.Fatalf("%s group %d: %+v", name, gi, m)
			}
			if m.WidthExcl > m.WidthIncl {
				t.Fatalf("%s group %d: widthExcl %g > widthIncl %g", name, gi, m.WidthExcl, m.WidthIncl)
			}
		}
	}
	if res.GraphsPerGroup[0] != 2 {
		t.Fatalf("sample size = %d", res.GraphsPerGroup[0])
	}
}

func TestFigures(t *testing.T) {
	res, err := Run(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for n := 4; n <= 9; n++ {
		pair, err := res.Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range pair {
			if len(f.Series) != 3 {
				t.Fatalf("figure %d has %d series", n, len(f.Series))
			}
			if len(f.X) != graphgen.GroupCount {
				t.Fatalf("figure %d has %d x values", n, len(f.X))
			}
			var buf bytes.Buffer
			if err := f.WriteTable(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), NameAntColony) {
				t.Fatalf("figure %d table missing AntColony", n)
			}
		}
	}
	if _, err := res.Figure(3); err == nil {
		t.Fatal("figure 3 accepted")
	}
	if _, err := res.Figure(10); err == nil {
		t.Fatal("figure 10 accepted")
	}
	all, err := res.AllFigures()
	if err != nil || len(all) != 6 {
		t.Fatalf("AllFigures: %d, %v", len(all), err)
	}
}

func TestShapeChecksPass(t *testing.T) {
	// The qualitative relationships the paper reports must hold on the
	// synthetic corpus with a modest sample.
	// Sequential colony: the "faster than AntColony" timing checks compare
	// per-call wall clock and must not race a GOMAXPROCS pool.
	opts := Options{Seed: 7, PerGroup: 4, DummyWidth: 1, ACO: core.DefaultParams()}
	opts.ACO.Workers = 1
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.CheckShapes()
	if len(rep.Checks) < 10 {
		t.Fatalf("only %d checks", len(rep.Checks))
	}
	for _, c := range rep.Failed() {
		t.Errorf("[%s] %s failed: %s", c.Figure, c.Claim, c.Detail)
	}
}

func TestMeasureOneRejectsInvalid(t *testing.T) {
	bad := Algorithm{
		Name: "broken",
		Layer: func(g *dagGraph, _ int64) (*layeringLayering, error) {
			assign := make([]int, g.N())
			for i := range assign {
				assign[i] = 1
			}
			return layeringFrom(g, assign), nil
		},
	}
	groups, err := graphgen.CorpusSample(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := groups[0].Graphs[0]
	if _, err := MeasureOne(bad, g, 0, 1); err == nil {
		t.Fatal("invalid layering accepted")
	}
}

func TestRunAlgorithmsPropagatesErrors(t *testing.T) {
	failing := Algorithm{
		Name: "fail",
		Layer: func(g *dagGraph, _ int64) (*layeringLayering, error) {
			return nil, errBoom{}
		},
	}
	if _, err := RunAlgorithms([]Algorithm{failing}, tinyOptions()); err == nil {
		t.Fatal("error not propagated")
	}
	// Errors surface from parallel evaluation too.
	opts := tinyOptions()
	opts.Workers = 4
	if _, err := RunAlgorithms([]Algorithm{failing}, opts); err == nil {
		t.Fatal("parallel error not propagated")
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	seq := tinyOptions()
	par := tinyOptions()
	par.Workers = 4
	a, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	for name, sa := range a.Mean {
		sb := b.Mean[name]
		for gi := range sa {
			// Everything except the timing must agree exactly.
			x, y := sa[gi], sb[gi]
			x.Millis, y.Millis = 0, 0
			if x != y {
				t.Fatalf("%s group %d differs between sequential and parallel: %+v vs %+v", name, gi, x, y)
			}
		}
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestFamilySensitivity(t *testing.T) {
	// The colony's never-worse-than-LPL guarantee holds across corpus
	// families, not just the default sparse profile.
	for _, fam := range []graphgen.Family{graphgen.Trees, graphgen.Dense} {
		opts := tinyOptions()
		opts.Family = fam
		res, err := Run(opts)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		for gi := range res.X {
			lpl := res.Mean[NameLPL][gi]
			ac := res.Mean[NameAntColony][gi]
			if ac.Height+ac.WidthIncl > lpl.Height+lpl.WidthIncl+1e-9 {
				t.Fatalf("%v group %d: ACO H+W %.2f worse than LPL %.2f",
					fam, gi, ac.Height+ac.WidthIncl, lpl.Height+lpl.WidthIncl)
			}
		}
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.DummyWidth != 1 {
		t.Fatalf("DummyWidth = %g", o.DummyWidth)
	}
	if o.ACO.Tours == 0 {
		t.Fatal("ACO not defaulted")
	}
	if o.ACO.DummyWidth != o.DummyWidth {
		t.Fatal("ACO dummy width not synced")
	}
}
