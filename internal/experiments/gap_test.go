package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestGapStudy(t *testing.T) {
	results, err := GapStudy(8, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4 heuristics", len(results))
	}
	for _, r := range results {
		if r.Total == 0 {
			t.Fatalf("%s measured zero instances", r.Name)
		}
		if r.Mean < -1e-9 {
			t.Fatalf("%s negative mean gap %g (heuristic beat the optimum?)", r.Name, r.Mean)
		}
		if r.Max < r.Mean-1e-9 {
			t.Fatalf("%s max gap %g below mean %g", r.Name, r.Max, r.Mean)
		}
	}
	var buf bytes.Buffer
	if err := WriteGapTable(&buf, 8, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean gap") {
		t.Fatal("gap table header missing")
	}
}

func TestGapStudyACOBeatsLPL(t *testing.T) {
	// On small instances the colony should close at least as much of the
	// gap as plain LPL on average.
	results, err := GapStudy(9, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]GapResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if byName[NameAntColony].Mean > byName[NameLPL].Mean+1e-9 {
		t.Fatalf("ACO mean gap %.3f worse than LPL %.3f",
			byName[NameAntColony].Mean, byName[NameLPL].Mean)
	}
}

func TestGapStudyTooLarge(t *testing.T) {
	if _, err := GapStudy(40, 1, 1); err == nil {
		t.Fatal("oversized gap study accepted")
	}
}
