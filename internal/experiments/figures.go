package experiments

import (
	"fmt"

	"antlayer/internal/stats"
)

// metric extracts one criterion from a Measurement.
type metric struct {
	label string
	get   func(Measurement) float64
}

var (
	metricWidthIncl = metric{"Width (including Dummy Vertices)", func(m Measurement) float64 { return m.WidthIncl }}
	metricWidthExcl = metric{"Width (excluding Dummy Vertices)", func(m Measurement) float64 { return m.WidthExcl }}
	metricHeight    = metric{"Height (number of layers)", func(m Measurement) float64 { return m.Height }}
	metricDummies   = metric{"Number of dummy vertices", func(m Measurement) float64 { return m.Dummies }}
	metricDensity   = metric{"Edge Density", func(m Measurement) float64 { return m.EdgeDensity }}
	metricTime      = metric{"Running Time (ms)", func(m Measurement) float64 { return m.Millis }}
)

// lplSet and mwSet are the two algorithm triples the paper plots.
var (
	lplSet = []string{NameLPL, NameLPLPL, NameAntColony}
	mwSet  = []string{NameMinWidth, NameMinWidthPL, NameAntColony}
)

// figure assembles one plot of a paper figure from the results.
func (r *Results) figure(title string, names []string, m metric) stats.Figure {
	f := stats.Figure{
		Title:  title,
		XLabel: "Vertex count",
		YLabel: m.label,
		X:      append([]int(nil), r.X...),
	}
	for _, name := range names {
		means, ok := r.Mean[name]
		if !ok {
			continue
		}
		ys := make([]float64, len(means))
		for i, mm := range means {
			ys[i] = m.get(mm)
		}
		f.Series = append(f.Series, stats.Series{Name: name, Y: ys})
	}
	return f
}

// Figure returns the two plots of paper figure n (4..9). Each paper figure
// stacks two plots:
//
//	Fig 4: width incl./excl. dummies — LPL set
//	Fig 5: width incl./excl. dummies — MinWidth set
//	Fig 6: height and DVC — LPL set
//	Fig 7: height and DVC — MinWidth set
//	Fig 8: edge density and running time — LPL set
//	Fig 9: edge density and running time — MinWidth set
func (r *Results) Figure(n int) ([2]stats.Figure, error) {
	var out [2]stats.Figure
	switch n {
	case 4:
		out[0] = r.figure("Fig 4a: Width of Ant Colony vs LPL and LPL+PL", lplSet, metricWidthIncl)
		out[1] = r.figure("Fig 4b: Width of Ant Colony vs LPL and LPL+PL", lplSet, metricWidthExcl)
	case 5:
		out[0] = r.figure("Fig 5a: Width of Ant Colony vs MinWidth and MinWidth+PL", mwSet, metricWidthIncl)
		out[1] = r.figure("Fig 5b: Width of Ant Colony vs MinWidth and MinWidth+PL", mwSet, metricWidthExcl)
	case 6:
		out[0] = r.figure("Fig 6a: Height of Ant Colony vs LPL and LPL+PL", lplSet, metricHeight)
		out[1] = r.figure("Fig 6b: DVC of Ant Colony vs LPL and LPL+PL", lplSet, metricDummies)
	case 7:
		out[0] = r.figure("Fig 7a: Height of Ant Colony vs MinWidth and MinWidth+PL", mwSet, metricHeight)
		out[1] = r.figure("Fig 7b: DVC of Ant Colony vs MinWidth and MinWidth+PL", mwSet, metricDummies)
	case 8:
		out[0] = r.figure("Fig 8a: Edge density of Ant Colony vs LPL and LPL+PL", lplSet, metricDensity)
		out[1] = r.figure("Fig 8b: Running time of Ant Colony vs LPL and LPL+PL", lplSet, metricTime)
	case 9:
		out[0] = r.figure("Fig 9a: Edge density of Ant Colony vs MinWidth and MinWidth+PL", mwSet, metricDensity)
		out[1] = r.figure("Fig 9b: Running time of Ant Colony vs MinWidth and MinWidth+PL", mwSet, metricTime)
	default:
		return out, fmt.Errorf("experiments: no figure %d (paper figures are 4..9)", n)
	}
	return out, nil
}

// AllFigures returns figures 4..9 in order.
func (r *Results) AllFigures() ([][2]stats.Figure, error) {
	var out [][2]stats.Figure
	for n := 4; n <= 9; n++ {
		f, err := r.Figure(n)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
