package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/exact"
	"antlayer/internal/graphgen"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
	"antlayer/internal/minwidth"
	"antlayer/internal/promote"
	"antlayer/internal/stats"
)

// GapResult summarises a heuristic's optimality gap on small instances
// (DESIGN.md E11): relative excess of H+W over the proven optimum.
type GapResult struct {
	Name    string
	Mean    float64 // mean relative gap, e.g. 0.08 = 8% above optimal
	Max     float64
	Optimal int // instances solved exactly by the heuristic
	Total   int
}

// GapStudy solves `instances` random DAGs with n vertices to optimality
// and measures the heuristics against the optimum. n must be within the
// exact solver's limit.
func GapStudy(n, instances int, seed int64) ([]GapResult, error) {
	if n > exact.MaxVertices {
		return nil, fmt.Errorf("experiments: gap study needs n <= %d, got %d", exact.MaxVertices, n)
	}
	rng := rand.New(rand.NewSource(seed))
	type heuristic struct {
		name string
		run  func(g *dag.Graph) (*layering.Layering, error)
	}
	acoParams := core.DefaultParams()
	// The gap graphs are tiny (n <= exact.MaxVertices); a per-tour worker
	// pool costs more in scheduling than the walks it would parallelise.
	acoParams.Workers = 1
	heuristics := []heuristic{
		{NameLPL, func(g *dag.Graph) (*layering.Layering, error) { return longestpath.Layer(g) }},
		{NameLPLPL, func(g *dag.Graph) (*layering.Layering, error) {
			l, err := longestpath.Layer(g)
			if err != nil {
				return nil, err
			}
			improved, _ := promote.Apply(l)
			return improved, nil
		}},
		{NameMinWidth, func(g *dag.Graph) (*layering.Layering, error) { return minwidth.LayerBest(g, 1) }},
		{NameAntColony, func(g *dag.Graph) (*layering.Layering, error) {
			p := acoParams
			p.Seed++
			acoParams = p
			return core.Layer(context.Background(), g, p)
		}},
	}
	gaps := make(map[string][]float64, len(heuristics))

	for i := 0; i < instances; i++ {
		g, err := graphgen.Generate(graphgen.Config{N: n, EdgeFactor: 1.3, MaxDegree: 5, Connected: true}, rng)
		if err != nil {
			return nil, err
		}
		opt, err := exact.Minimize(g, exact.Options{DummyWidth: 1, NodeLimit: 5_000_000})
		if err != nil {
			return nil, err
		}
		if !opt.Proven {
			continue // skip unproven instances; the study needs true optima
		}
		for _, h := range heuristics {
			l, err := h.run(g)
			if err != nil {
				return nil, err
			}
			gaps[h.name] = append(gaps[h.name], exact.Gap(opt, l, 1))
		}
	}

	var out []GapResult
	for _, h := range heuristics {
		gs := gaps[h.name]
		r := GapResult{Name: h.name, Total: len(gs)}
		for _, g := range gs {
			if g <= 1e-9 {
				r.Optimal++
			}
			if g > r.Max {
				r.Max = g
			}
		}
		r.Mean = stats.Mean(gs)
		out = append(out, r)
	}
	return out, nil
}

// WriteGapTable formats a gap study.
func WriteGapTable(w io.Writer, n int, results []GapResult) error {
	if _, err := fmt.Fprintf(w, "Optimality gap vs exact H+W optimum (n=%d, DESIGN.md E11)\n", n); err != nil {
		return err
	}
	headers := []string{"heuristic", "mean gap", "max gap", "exact hits"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%.1f%%", r.Mean*100),
			fmt.Sprintf("%.1f%%", r.Max*100),
			fmt.Sprintf("%d/%d", r.Optimal, r.Total),
		})
	}
	return stats.WriteAligned(w, headers, rows)
}
