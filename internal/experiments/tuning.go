package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"antlayer/internal/core"
	"antlayer/internal/graphgen"
	"antlayer/internal/stats"
)

// TuningCell is one grid point of a parameter study.
type TuningCell struct {
	Alpha, Beta float64
	// Objective is the mean 1/(H+W) over the sample (higher is better).
	Objective float64
	// HPlusW is the mean H+W (lower is better; what the paper discusses).
	HPlusW float64
	// Millis is the mean colony running time.
	Millis float64
}

// AlphaBetaStudy reproduces the §VIII α/β tuning: the colony runs over the
// sample for every (α, β) in the given ranges. The paper scanned 1..5 for
// both and reported (3,5) best with (1,3) the runtime-friendly runner-up.
func AlphaBetaStudy(opts Options, alphas, betas []float64) ([]TuningCell, error) {
	opts = opts.normalized()
	groups, err := graphgen.CorpusSample(opts.Seed, opts.PerGroup)
	if err != nil {
		return nil, err
	}
	var cells []TuningCell
	for _, a := range alphas {
		for _, b := range betas {
			p := opts.ACO
			p.Alpha, p.Beta = a, b
			cell := TuningCell{Alpha: a, Beta: b}
			count := 0
			for _, group := range groups {
				for gi, g := range group.Graphs {
					p.Seed = opts.ACO.Seed + int64(gi) + int64(group.Vertices)*1000
					start := time.Now()
					res, err := core.Run(context.Background(), g, p)
					if err != nil {
						return nil, fmt.Errorf("experiments: alpha-beta (%g,%g): %w", a, b, err)
					}
					cell.Millis += float64(time.Since(start).Nanoseconds()) / 1e6
					cell.Objective += res.Objective
					cell.HPlusW += float64(res.Height) + res.Width
					count++
				}
			}
			if count > 0 {
				cell.Objective /= float64(count)
				cell.HPlusW /= float64(count)
				cell.Millis /= float64(count)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// WriteAlphaBetaTable formats the study as a β-by-α matrix of mean H+W.
func WriteAlphaBetaTable(w io.Writer, cells []TuningCell, alphas, betas []float64) error {
	if _, err := fmt.Fprintln(w, "Parameter tuning (§VIII): mean H+W by (alpha, beta); lower is better"); err != nil {
		return err
	}
	headers := []string{"alpha\\beta"}
	for _, b := range betas {
		headers = append(headers, fmt.Sprintf("%g", b))
	}
	lookup := make(map[[2]float64]TuningCell, len(cells))
	for _, c := range cells {
		lookup[[2]float64{c.Alpha, c.Beta}] = c
	}
	var rows [][]string
	for _, a := range alphas {
		row := []string{fmt.Sprintf("%g", a)}
		for _, b := range betas {
			row = append(row, fmt.Sprintf("%.2f", lookup[[2]float64{a, b}].HPlusW))
		}
		rows = append(rows, row)
	}
	return stats.WriteAligned(w, headers, rows)
}

// NdWidthCell is one dummy-width grid point of the §VIII nd_width study.
type NdWidthCell struct {
	NdWidth float64
	// WidthIncl and Height are means over the sample, both evaluated with
	// the *same* reference dummy width (1.0) so the cells are comparable;
	// NdWidth only steers the colony's heuristic.
	WidthIncl float64
	Height    float64
	HPlusW    float64
	Millis    float64
}

// NdWidthStudy reproduces the dummy-vertex-width sweep: the colony is run
// with nd_width from the given values (paper: 0.1..1.2 step 0.1; best 1.1,
// adopted 1.0).
func NdWidthStudy(opts Options, values []float64) ([]NdWidthCell, error) {
	opts = opts.normalized()
	groups, err := graphgen.CorpusSample(opts.Seed, opts.PerGroup)
	if err != nil {
		return nil, err
	}
	const referenceWidth = 1.0
	var cells []NdWidthCell
	for _, nd := range values {
		p := opts.ACO
		p.DummyWidth = nd
		cell := NdWidthCell{NdWidth: nd}
		count := 0
		for _, group := range groups {
			for gi, g := range group.Graphs {
				p.Seed = opts.ACO.Seed + int64(gi) + int64(group.Vertices)*1000
				start := time.Now()
				res, err := core.Run(context.Background(), g, p)
				if err != nil {
					return nil, fmt.Errorf("experiments: nd_width %g: %w", nd, err)
				}
				cell.Millis += float64(time.Since(start).Nanoseconds()) / 1e6
				w := res.Layering.WidthIncludingDummies(referenceWidth)
				h := float64(res.Layering.Height())
				cell.WidthIncl += w
				cell.Height += h
				cell.HPlusW += h + w
				count++
			}
		}
		if count > 0 {
			cell.WidthIncl /= float64(count)
			cell.Height /= float64(count)
			cell.HPlusW /= float64(count)
			cell.Millis /= float64(count)
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// WriteNdWidthTable formats the nd_width study.
func WriteNdWidthTable(w io.Writer, cells []NdWidthCell) error {
	if _, err := fmt.Fprintln(w, "Parameter tuning (§VIII): layering quality by nd_width (metrics at reference dummy width 1.0)"); err != nil {
		return err
	}
	headers := []string{"nd_width", "mean width", "mean height", "mean H+W", "mean ms"}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", c.NdWidth),
			fmt.Sprintf("%.2f", c.WidthIncl),
			fmt.Sprintf("%.2f", c.Height),
			fmt.Sprintf("%.2f", c.HPlusW),
			fmt.Sprintf("%.3f", c.Millis),
		})
	}
	return stats.WriteAligned(w, headers, rows)
}
