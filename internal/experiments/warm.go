package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/stats"
)

// WarmResult is one row of the warm-vs-cold study: for one corpus family
// and edit distance, means over the study's instances. "Cold" runs the
// full tour budget from the LPL seed on the edited graph; "warm" seeds
// the colony with the pheromone state exported by a full-budget run on
// the pre-edit base graph (remapped by vertex name), with a third of the
// tour budget and the stall-tours early stop — the serving daemon's
// warm-start configuration.
type WarmResult struct {
	Family string
	Edits  int
	// ColdObjective / WarmObjective are mean best objectives f=1/(H+W).
	ColdObjective float64
	WarmObjective float64
	// ColdTours / WarmTours are mean executed tours (early stop counts).
	ColdTours float64
	WarmTours float64
	// ColdMillis / WarmMillis are mean wall-clock times of the runs.
	ColdMillis float64
	WarmMillis float64
	// ReachedPct is the share of instances whose warm run matched or beat
	// the cold reference's objective.
	ReachedPct float64
}

// warmBase builds one base graph of the family for the study. Only the
// families the warm-start acceptance pins (sparse and pipeline) are
// supported; anything else falls back to sparse.
func warmBase(family graphgen.Family, n int, rng *rand.Rand) (*dag.Graph, error) {
	if family == graphgen.PipelineFamily {
		return graphgen.Pipeline(n, 0.4, rng)
	}
	return graphgen.Generate(graphgen.DefaultConfig(n), rng)
}

// WarmStudy measures pheromone-reuse: for each family and edit count it
// runs `instances` independent (base, edited) pairs and compares a warm
// third-budget run against a cold full-budget reference on the same
// edited graph with the same seed.
func WarmStudy(opts Options, families []graphgen.Family, editCounts []int, instances int) ([]WarmResult, error) {
	opts = opts.normalized()
	if instances < 1 {
		instances = 1
	}
	const n = 50
	var out []WarmResult
	for _, family := range families {
		for _, edits := range editCounts {
			row := WarmResult{Family: family.String(), Edits: edits}
			reached := 0
			for i := 0; i < instances; i++ {
				rng := rand.New(rand.NewSource(opts.Seed + int64(i)*101 + int64(edits)))
				base, err := warmBase(family, n, rng)
				if err != nil {
					return nil, err
				}
				names := make([]string, base.N())
				for v := range names {
					names[v] = fmt.Sprintf("v%d", v)
				}
				edited, editedNames := base, names
				if edits > 0 {
					edited, editedNames, _, err = graphgen.Mutate(base, names, edits, rng)
					if err != nil {
						return nil, err
					}
				}

				// Full-budget run on the base graph, exporting its state.
				src := opts.ACO
				src.Seed = opts.Seed + int64(i)
				src.ExportState = true
				srcCol, err := core.NewColony(base, src)
				if err != nil {
					return nil, err
				}
				srcRes, err := srcCol.Run()
				if err != nil {
					return nil, err
				}

				// Cold reference on the edited graph.
				cold := opts.ACO
				cold.Seed = opts.Seed + int64(i) + 7
				coldCol, err := core.NewColony(edited, cold)
				if err != nil {
					return nil, err
				}
				coldStart := time.Now()
				coldRes, err := coldCol.Run()
				if err != nil {
					return nil, err
				}
				row.ColdMillis += float64(time.Since(coldStart).Nanoseconds()) / 1e6 / float64(instances)
				row.ColdObjective += coldRes.Objective / float64(instances)
				row.ColdTours += float64(coldCol.ToursRun()) / float64(instances)

				// Warm run: same edited graph and seed, the base state
				// remapped by name, a third of the budget, stall early stop.
				warm := cold
				warm.Warm = srcRes.State.Remap(core.MapByName(names, editedNames), edited.N())
				warm.Tours = int(math.Ceil(float64(cold.Tours) / 3))
				if warm.Tours < 1 {
					warm.Tours = 1
				}
				warm.StopAfterStagnantTours = 3
				warmCol, err := core.NewColony(edited, warm)
				if err != nil {
					return nil, err
				}
				warmStart := time.Now()
				warmRes, err := warmCol.Run()
				if err != nil {
					return nil, err
				}
				row.WarmMillis += float64(time.Since(warmStart).Nanoseconds()) / 1e6 / float64(instances)
				row.WarmObjective += warmRes.Objective / float64(instances)
				row.WarmTours += float64(warmCol.ToursRun()) / float64(instances)
				if warmRes.Objective >= coldRes.Objective {
					reached++
				}
			}
			row.ReachedPct = 100 * float64(reached) / float64(instances)
			out = append(out, row)
		}
	}
	return out, nil
}

// WriteWarmTable formats the warm-vs-cold study.
func WriteWarmTable(w io.Writer, results []WarmResult) error {
	if _, err := fmt.Fprintln(w, "Warm-start study: pheromone reuse across graph edits (cold = full budget, warm = 1/3 budget + stall stop)"); err != nil {
		return err
	}
	headers := []string{"family", "edits", "cold obj", "warm obj", "reached", "cold tours", "warm tours", "cold ms", "warm ms"}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Family,
			fmt.Sprintf("%d", r.Edits),
			fmt.Sprintf("%.6f", r.ColdObjective),
			fmt.Sprintf("%.6f", r.WarmObjective),
			fmt.Sprintf("%.0f%%", r.ReachedPct),
			fmt.Sprintf("%.1f", r.ColdTours),
			fmt.Sprintf("%.1f", r.WarmTours),
			fmt.Sprintf("%.3f", r.ColdMillis),
			fmt.Sprintf("%.3f", r.WarmMillis),
		})
	}
	return stats.WriteAligned(w, headers, rows)
}
