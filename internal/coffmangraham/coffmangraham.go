// Package coffmangraham implements the Coffman–Graham width-bounded
// layering algorithm ("Optimal scheduling for two processor systems", Acta
// Informatica 1972 — reference [2] of the paper).
//
// Coffman–Graham bounds the number of *real* vertices per layer by W and is
// provided as an additional baseline for the ablation benchmarks: it
// targets the same width/height trade-off the ACO layering negotiates, but
// ignores dummy vertices entirely, which is exactly the weakness the paper
// motivates.
//
// Phase 1 labels vertices: a vertex becomes labelable once all its
// successors are labeled, and among labelable vertices the one whose
// decreasing sequence of successor labels is lexicographically smallest is
// labeled next. Phase 2 fills layers bottom-up (layer 1 first), placing at
// most W vertices per layer and starting a new layer whenever a vertex has
// a successor on the current layer.
package coffmangraham

import (
	"fmt"
	"sort"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Layer computes the Coffman–Graham layering of g with at most width real
// vertices per layer. The input must be acyclic; width must be >= 1.
//
// The classic algorithm assumes a transitively reduced input; callers that
// want the textbook behaviour can pass g.TransitiveReduction(). Layer works
// on any DAG.
func Layer(g *dag.Graph, width int) (*layering.Layering, error) {
	if width < 1 {
		return nil, fmt.Errorf("coffmangraham: width must be >= 1, got %d", width)
	}
	if !g.IsAcyclic() {
		return nil, dag.ErrCyclic
	}
	n := g.N()
	labels := labelVertices(g)

	// Phase 2: fill layers from the sinks up. A vertex is ready when all
	// its successors are placed. Among ready vertices pick the one with the
	// highest label.
	assign := make([]int, n)
	placedCount := 0
	remaining := make([]int, n)
	for v := 0; v < n; v++ {
		remaining[v] = g.OutDegree(v)
	}
	currentLayer := 1
	currentCount := 0
	for placedCount < n {
		pick := -1
		for v := 0; v < n; v++ {
			if assign[v] != 0 || remaining[v] != 0 {
				continue
			}
			// A successor on the current layer forces v to a higher layer;
			// it is not ready for this layer.
			if hasSuccOnLayer(g, assign, v, currentLayer) {
				continue
			}
			if pick == -1 || labels[v] > labels[pick] {
				pick = v
			}
		}
		if pick == -1 || currentCount == width {
			currentLayer++
			currentCount = 0
			continue
		}
		assign[pick] = currentLayer
		currentCount++
		placedCount++
		for _, u := range g.Pred(pick) {
			remaining[u]--
		}
	}
	l := layering.FromAssignment(g, assign)
	l.Normalize()
	return l, nil
}

func hasSuccOnLayer(g *dag.Graph, assign []int, v, layer int) bool {
	for _, w := range g.Succ(v) {
		if assign[w] == layer {
			return true
		}
	}
	return false
}

// labelVertices computes Coffman–Graham labels 1..n. Vertices whose
// successors are all labeled compete; the winner is the vertex whose
// decreasing successor-label sequence is lexicographically smallest.
func labelVertices(g *dag.Graph) []int {
	n := g.N()
	labels := make([]int, n) // 0 = unlabeled
	unlabeledSucc := make([]int, n)
	for v := 0; v < n; v++ {
		unlabeledSucc[v] = g.OutDegree(v)
	}
	for next := 1; next <= n; next++ {
		pick := -1
		var pickSeq []int
		for v := 0; v < n; v++ {
			if labels[v] != 0 || unlabeledSucc[v] != 0 {
				continue
			}
			seq := succLabelsDesc(g, labels, v)
			if pick == -1 || lexLess(seq, pickSeq) {
				pick, pickSeq = v, seq
			}
		}
		labels[pick] = next
		for _, u := range g.Pred(pick) {
			unlabeledSucc[u]--
		}
	}
	return labels
}

func succLabelsDesc(g *dag.Graph, labels []int, v int) []int {
	seq := make([]int, 0, g.OutDegree(v))
	for _, w := range g.Succ(v) {
		seq = append(seq, labels[w])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(seq)))
	return seq
}

// lexLess reports whether a < b lexicographically, with a missing element
// (shorter sequence) ordering before any present element.
func lexLess(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
