package coffmangraham

import (
	"errors"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
)

func TestLayerRespectsWidthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for i := 0; i < 25; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 3, 5} {
			l, err := Layer(g, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("invalid CG layering: %v", err)
			}
			for li, layer := range l.Layers() {
				if len(layer) > w {
					t.Fatalf("layer %d holds %d vertices, bound %d", li+1, len(layer), w)
				}
			}
		}
	}
}

func TestLayerErrors(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	if _, err := Layer(g, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	cyc := dag.New(2)
	cyc.MustAddEdge(0, 1)
	cyc.MustAddEdge(1, 0)
	if _, err := Layer(cyc, 2); !errors.Is(err, dag.ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestLayerWidthOne(t *testing.T) {
	// Width 1 forces a total order: height equals n.
	g := dag.New(5)
	g.MustAddEdge(4, 1)
	g.MustAddEdge(3, 0)
	l, err := Layer(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() != 5 {
		t.Fatalf("height = %d, want 5", l.Height())
	}
}

func TestLayerChain(t *testing.T) {
	g := graphgen.Path(4)
	l, err := Layer(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() != 4 {
		t.Fatalf("chain height = %d, want 4", l.Height())
	}
}

func TestLayerTwoProcessorOptimal(t *testing.T) {
	// Coffman–Graham is optimal for width 2 on reduced DAGs: the diamond
	// plus a tail fits in ceil(5/2)+... verify a concrete minimal case.
	// 4 -> {3, 2}, 3 -> 1, 2 -> 1, 1 -> 0: CG with width 2 needs 4 layers.
	g := dag.New(5)
	g.MustAddEdge(4, 3)
	g.MustAddEdge(4, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(1, 0)
	l, err := Layer(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Height() != 4 {
		t.Fatalf("height = %d, want 4", l.Height())
	}
}

func TestLabelsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g, err := graphgen.Generate(graphgen.DefaultConfig(20), rng)
	if err != nil {
		t.Fatal(err)
	}
	labels := labelVertices(g)
	seen := make([]bool, g.N()+1)
	for _, l := range labels {
		if l < 1 || l > g.N() || seen[l] {
			t.Fatalf("labels not a permutation: %v", labels)
		}
		seen[l] = true
	}
	// Labels respect topology: every vertex has a smaller label than all
	// its predecessors (successors are labeled first).
	for _, e := range g.Edges() {
		if labels[e.V] >= labels[e.U] {
			t.Fatalf("edge (%d,%d): labels %d >= %d", e.U, e.V, labels[e.V], labels[e.U])
		}
	}
}

func TestLexLess(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{}, []int{1}, true},
		{[]int{1}, []int{}, false},
		{[]int{1, 2}, []int{1, 3}, true},
		{[]int{2}, []int{1, 9}, false},
		{[]int{1, 2}, []int{1, 2}, false},
	}
	for _, c := range cases {
		if got := lexLess(c.a, c.b); got != c.want {
			t.Errorf("lexLess(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	l, err := Layer(dag.New(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumLayers() != 0 {
		t.Fatal("empty graph got layers")
	}
}
