package promote

import (
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
)

func TestApplyReducesDummiesOnKnownGraph(t *testing.T) {
	// 4 -> 3 -> 0 and 4 -> {1, 2}, LPL puts 1 and 2 on layer 1 creating
	// span-2 edges; promotion lifts them to layer 2.
	g := dag.New(5)
	g.MustAddEdge(4, 3)
	g.MustAddEdge(3, 0)
	g.MustAddEdge(4, 1)
	g.MustAddEdge(4, 2)
	lpl, err := longestpath.Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	if lpl.DummyCount() != 2 {
		t.Fatalf("LPL dummies = %d, want 2", lpl.DummyCount())
	}
	improved, res := Apply(lpl)
	if improved.DummyCount() != 0 {
		t.Fatalf("promoted dummies = %d, want 0", improved.DummyCount())
	}
	if res.Promotions == 0 || res.DummyDelta != -2 {
		t.Fatalf("result = %+v", res)
	}
	if err := improved.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyNeverIncreasesDummies(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 40; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(50)), rng)
		if err != nil {
			t.Fatal(err)
		}
		lpl, err := longestpath.Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		before := lpl.DummyCount()
		improved, res := Apply(lpl)
		after := improved.DummyCount()
		if after > before {
			t.Fatalf("promotion increased dummies: %d -> %d", before, after)
		}
		if res.DummyDelta != after-before {
			t.Fatalf("DummyDelta = %d, actual change = %d", res.DummyDelta, after-before)
		}
		if err := improved.Validate(); err != nil {
			t.Fatalf("invalid after promotion: %v", err)
		}
	}
}

// applyCloneReference is the pre-undo-log implementation of Apply: a full
// clone per candidate vertex, restored wholesale on rejection. It is the
// behavioural reference the O(N) undo-log implementation must match
// layer for layer.
func applyCloneReference(l *layering.Layering) (*layering.Layering, Result) {
	work := l.Clone()
	res := Result{}
	n := work.Graph().N()
	for {
		res.Rounds++
		improved := false
		for v := 0; v < n; v++ {
			if work.Graph().InDegree(v) == 0 {
				continue
			}
			backup := work.Clone()
			var undo []undoEntry
			if delta := promoteVertex(work, v, &undo); delta < 0 {
				improved = true
				res.Promotions++
				res.DummyDelta += delta
			} else {
				work = backup
			}
		}
		if !improved {
			break
		}
	}
	work.Normalize()
	return work, res
}

func TestApplyMatchesCloneReference(t *testing.T) {
	// The undo-log rollback must be observationally identical to restoring
	// a clone, across the corpus generator's graph shapes.
	sample, err := graphgen.CorpusSample(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	graphs := 0
	for _, group := range sample {
		for _, g := range group.Graphs {
			lpl, err := longestpath.Layer(g)
			if err != nil {
				t.Fatal(err)
			}
			got, gotRes := Apply(lpl)
			want, wantRes := applyCloneReference(lpl)
			if gotRes != wantRes {
				t.Fatalf("n=%d: result %+v, reference %+v", g.N(), gotRes, wantRes)
			}
			for v := 0; v < g.N(); v++ {
				if got.Layer(v) != want.Layer(v) {
					t.Fatalf("n=%d: layer of v%d = %d, reference %d",
						g.N(), v, got.Layer(v), want.Layer(v))
				}
			}
			graphs++
		}
	}
	if graphs == 0 {
		t.Fatal("corpus sample empty")
	}
}

func TestApplyDoesNotModifyInput(t *testing.T) {
	g := dag.New(3)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(2, 0)
	lpl, _ := longestpath.Layer(g)
	orig := lpl.Assignment()
	Apply(lpl)
	for v, l := range lpl.Assignment() {
		if l != orig[v] {
			t.Fatal("Apply mutated its input")
		}
	}
}

func TestApplyFixpoint(t *testing.T) {
	// Running Apply twice must not find further improvements.
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 10; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(20), rng)
		if err != nil {
			t.Fatal(err)
		}
		lpl, _ := longestpath.Layer(g)
		once, _ := Apply(lpl)
		twice, res := Apply(once)
		if res.Promotions != 0 {
			t.Fatalf("second Apply made %d promotions", res.Promotions)
		}
		if twice.DummyCount() != once.DummyCount() {
			t.Fatal("second Apply changed dummy count")
		}
	}
}

func TestApplyNormalizes(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	l := layering.FromAssignment(g, []int{1, 2})
	improved, _ := Apply(l)
	if improved.NumLayers() != improved.Height() {
		t.Fatal("Apply returned un-normalized layering")
	}
}

func TestApplyEdgelessGraph(t *testing.T) {
	g := dag.New(4)
	l := layering.FromAssignment(g, []int{1, 1, 1, 1})
	improved, res := Apply(l)
	if res.Promotions != 0 {
		t.Fatalf("promotions on edgeless graph: %d", res.Promotions)
	}
	if improved.Height() != 1 {
		t.Fatal("edgeless layering changed")
	}
}
