// Package promote implements the Promote Layering (PL) heuristic of Nikolov
// and Tarassov ("Graph layering by promotion of nodes", Discrete Applied
// Mathematics 2006), used by the paper as a post-processing step on top of
// both LPL and MinWidth.
//
// A promotion moves a vertex one layer up (towards the sources, i.e.
// layer+1 in this repository's convention where edges point from higher to
// lower layers). Promoting v shortens all its incoming edges by one and
// lengthens all its outgoing edges by one; predecessors that would end up
// on the same layer are promoted recursively first. A promotion is kept
// only when it strictly decreases the total dummy vertex count, and the
// heuristic iterates over all vertices until a full pass yields no
// improvement.
package promote

import (
	"antlayer/internal/layering"
)

// Result reports what a promotion pass achieved.
type Result struct {
	// Rounds is the number of full passes executed (including the final
	// pass that found no improvement).
	Rounds int
	// Promotions is the number of accepted (kept) promotions.
	Promotions int
	// DummyDelta is the total change in dummy vertex count (<= 0).
	DummyDelta int
}

// undoEntry records one SetLayer performed by promoteVertex so a rejected
// candidate promotion can be rolled back without cloning the layering.
type undoEntry struct {
	v     int
	layer int // layer of v before the promotion
}

// Apply runs the promotion heuristic on a copy of l and returns the
// improved layering (normalized) together with statistics. The input
// layering is not modified.
//
// Rejected candidates are rolled back through an undo log of
// (vertex, old layer) pairs instead of restoring a full clone, so one pass
// costs O(N + total promotion work) rather than the O(N²) time and
// allocations of a clone per candidate vertex.
func Apply(l *layering.Layering) (*layering.Layering, Result) {
	work := l.Clone()
	res := Result{}
	n := work.Graph().N()
	var undo []undoEntry // reused across candidates
	for {
		res.Rounds++
		improved := false
		for v := 0; v < n; v++ {
			// Only vertices with incoming edges can profit: promoting a
			// source only lengthens its outgoing edges.
			if work.Graph().InDegree(v) == 0 {
				continue
			}
			undo = undo[:0]
			if delta := promoteVertex(work, v, &undo); delta < 0 {
				improved = true
				res.Promotions++
				res.DummyDelta += delta
			} else {
				// Replay in reverse so a vertex promoted repeatedly in one
				// recursive cascade ends up on its original layer.
				for i := len(undo) - 1; i >= 0; i-- {
					work.SetLayer(undo[i].v, undo[i].layer)
				}
			}
		}
		if !improved {
			break
		}
	}
	work.Normalize()
	return work, res
}

// promoteVertex moves v one layer up, recursively promoting predecessors
// that sit exactly one layer above, and returns the change in the total
// dummy vertex count. Every layer change is appended to the undo log.
func promoteVertex(l *layering.Layering, v int, undo *[]undoEntry) int {
	g := l.Graph()
	delta := 0
	for _, u := range g.Pred(v) {
		if l.Layer(u) == l.Layer(v)+1 {
			delta += promoteVertex(l, u, undo)
		}
	}
	*undo = append(*undo, undoEntry{v, l.Layer(v)})
	l.SetLayer(v, l.Layer(v)+1)
	// Incoming spans shrink by one each, outgoing spans grow by one each.
	delta += g.OutDegree(v) - g.InDegree(v)
	return delta
}
