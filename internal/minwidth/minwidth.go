// Package minwidth implements the MinWidth heuristic of Nikolov, Tarassov
// and Branke ("In Search for Efficient Heuristics for Minimum-Width Graph
// Layering with Consideration of Dummy Nodes", ACM JEA 2005), reproduced as
// Algorithm 2 of the paper. MinWidth is the second baseline the ACO
// layering is evaluated against.
//
// MinWidth is a list-scheduling variant of Longest-Path Layering that keeps
// two running estimates while filling the current layer:
//
//   - widthCurrent — the width of the layer under construction: the widths
//     of the real vertices already placed there plus one potential dummy
//     vertex for every edge from an unplaced vertex into the layers below;
//   - widthUp — an estimate of the width of any layer above the current
//     one: one potential dummy vertex for every edge from an unplaced
//     vertex into a placed one.
//
// Among the placeable candidates it selects the vertex of maximum
// out-degree (ConditionSelect), which maximally reduces widthCurrent, and
// it closes the layer early (ConditionGoUp) when widthCurrent exceeds the
// upper bound UBW while placing more vertices cannot reduce it, or when the
// dummy-vertex pressure widthUp exceeds c·UBW.
package minwidth

import (
	"fmt"
	"math"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Params configures one MinWidth run.
type Params struct {
	// UBW is the upper bound on layer width the heuristic aims for. The
	// JEA study (and the paper's experiments) scan UBW in 1..4.
	UBW float64
	// C scales the widthUp bound: the layer is closed when
	// widthUp >= C*UBW. The JEA study scans C in {1, 2}.
	C float64
	// DummyWidth is the width wd of a potential dummy vertex. The paper
	// uses 1.0 by default.
	DummyWidth float64
}

// DefaultParams mirror the best-performing grid point reported by the JEA
// study for unit-width vertices.
func DefaultParams() Params {
	return Params{UBW: 2, C: 2, DummyWidth: 1}
}

// Layer runs MinWidth once with the given parameters.
func Layer(g *dag.Graph, p Params) (*layering.Layering, error) {
	if p.UBW <= 0 || p.C <= 0 {
		return nil, fmt.Errorf("minwidth: UBW and C must be positive, got %g, %g", p.UBW, p.C)
	}
	if p.DummyWidth <= 0 {
		return nil, fmt.Errorf("minwidth: dummy width must be positive, got %g", p.DummyWidth)
	}
	if !g.IsAcyclic() {
		return nil, dag.ErrCyclic
	}
	n := g.N()
	assign := make([]int, n)
	placed := make([]bool, n)  // U: already assigned to some layer
	settled := make([]bool, n) // Z: assigned to a layer strictly below current
	remaining := make([]int, n)
	for v := 0; v < n; v++ {
		remaining[v] = g.OutDegree(v)
	}
	currentLayer := 1
	widthCurrent, widthUp := 0.0, 0.0
	var current []int // vertices on the layer under construction
	numPlaced := 0

	for numPlaced < n {
		// Select among candidates (unplaced, successors all settled) the
		// vertex with maximum out-degree; ties break to the smallest id
		// for determinism.
		selected := -1
		for v := 0; v < n; v++ {
			if placed[v] || remaining[v] != 0 {
				continue
			}
			if selected == -1 || g.OutDegree(v) > g.OutDegree(selected) {
				selected = v
			}
		}
		goUp := false
		if selected >= 0 {
			assign[selected] = currentLayer
			placed[selected] = true
			current = append(current, selected)
			numPlaced++
			// Placing v turns its outgoing potential dummies into v itself
			// and creates potential dummies above for its incoming edges.
			widthCurrent += g.Width(selected) - p.DummyWidth*float64(g.OutDegree(selected))
			widthUp += p.DummyWidth * float64(g.InDegree(selected)-g.OutDegree(selected))
			// ConditionGoUp, first disjunct: the layer is over-wide and the
			// just-placed vertex no longer reduces width (out-degree < 1).
			if widthCurrent >= p.UBW && g.OutDegree(selected) < 1 {
				goUp = true
			}
			// Second disjunct: dummy pressure from above.
			if widthUp >= p.C*p.UBW {
				goUp = true
			}
		} else {
			goUp = true
		}
		if goUp && numPlaced < n {
			currentLayer++
			for _, v := range current {
				settled[v] = true
				for _, u := range g.Pred(v) {
					remaining[u]--
				}
			}
			current = current[:0]
			// Every edge from an unplaced vertex into a placed one crosses
			// the fresh empty layer, so the estimate carries over.
			widthCurrent = widthUp
		}
	}
	return layering.FromAssignment(g, assign), nil
}

// LayerBest scans the (UBW, C) grid used in the paper's experiments
// (UBW in 1..4, C in {1, 2}) and returns the layering with the smallest
// width including dummy vertices, breaking ties by smaller height.
func LayerBest(g *dag.Graph, dummyWidth float64) (*layering.Layering, error) {
	if dummyWidth <= 0 {
		return nil, fmt.Errorf("minwidth: dummy width must be positive, got %g", dummyWidth)
	}
	var best *layering.Layering
	bestW := math.Inf(1)
	bestH := math.MaxInt
	for ubw := 1; ubw <= 4; ubw++ {
		for c := 1; c <= 2; c++ {
			l, err := Layer(g, Params{UBW: float64(ubw), C: float64(c), DummyWidth: dummyWidth})
			if err != nil {
				return nil, err
			}
			w := l.WidthIncludingDummies(dummyWidth)
			h := l.Height()
			if w < bestW || (w == bestW && h < bestH) {
				best, bestW, bestH = l, w, h
			}
		}
	}
	return best, nil
}
