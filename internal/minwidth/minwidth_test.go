package minwidth

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
)

func TestLayerValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 30; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Params{
			{UBW: 1, C: 1, DummyWidth: 1},
			{UBW: 2, C: 2, DummyWidth: 1},
			{UBW: 4, C: 1, DummyWidth: 0.5},
		} {
			l, err := Layer(g, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("invalid layering for %+v: %v", p, err)
			}
			if l.NumLayers() != l.Height() {
				t.Fatalf("empty layers for %+v", p)
			}
		}
	}
}

func TestParamErrors(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	bad := []Params{
		{UBW: 0, C: 1, DummyWidth: 1},
		{UBW: 1, C: 0, DummyWidth: 1},
		{UBW: 1, C: 1, DummyWidth: 0},
		{UBW: -1, C: 1, DummyWidth: 1},
	}
	for _, p := range bad {
		if _, err := Layer(g, p); err == nil {
			t.Errorf("Layer(%+v) succeeded, want error", p)
		}
	}
	if _, err := LayerBest(g, 0); err == nil {
		t.Error("LayerBest with zero dummy width succeeded")
	}
}

func TestCyclicInput(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, err := Layer(g, DefaultParams()); !errors.Is(err, dag.ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestPathGraph(t *testing.T) {
	g := graphgen.Path(6)
	l, err := Layer(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// A path admits exactly one layering: one vertex per layer.
	if l.Height() != 6 || l.WidthExcludingDummies() != 1 {
		t.Fatalf("path: height=%d width=%g", l.Height(), l.WidthExcludingDummies())
	}
}

func TestEmptyAndSingle(t *testing.T) {
	l, err := Layer(dag.New(0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if l.NumLayers() != 0 {
		t.Fatal("empty graph got layers")
	}
	l, err = Layer(dag.New(1), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if l.Layer(0) != 1 {
		t.Fatal("single vertex not on layer 1")
	}
}

func TestMinWidthNarrowerThanLPLWhenWide(t *testing.T) {
	// Star: one source over many sinks. LPL packs all sinks on layer 1
	// (width n-1); MinWidth with UBW=2 must split them.
	g := dag.New(9)
	for v := 0; v < 8; v++ {
		g.MustAddEdge(8, v)
	}
	lpl, err := longestpath.Layer(g)
	if err != nil {
		t.Fatal(err)
	}
	mw, err := Layer(g, Params{UBW: 2, C: 2, DummyWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mw.WidthExcludingDummies() >= lpl.WidthExcludingDummies() {
		t.Fatalf("MinWidth %g not narrower than LPL %g",
			mw.WidthExcludingDummies(), lpl.WidthExcludingDummies())
	}
}

func TestLayerBestIsBestOfGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 15; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(10+rng.Intn(30)), rng)
		if err != nil {
			t.Fatal(err)
		}
		best, err := LayerBest(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		bestW := best.WidthIncludingDummies(1)
		gridMin := math.Inf(1)
		for ubw := 1; ubw <= 4; ubw++ {
			for c := 1; c <= 2; c++ {
				l, err := Layer(g, Params{UBW: float64(ubw), C: float64(c), DummyWidth: 1})
				if err != nil {
					t.Fatal(err)
				}
				if w := l.WidthIncludingDummies(1); w < gridMin {
					gridMin = w
				}
			}
		}
		if bestW != gridMin {
			t.Fatalf("LayerBest width %g != grid minimum %g", bestW, gridMin)
		}
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Layer(g, DefaultParams())
	b, _ := Layer(g, DefaultParams())
	for v := 0; v < g.N(); v++ {
		if a.Layer(v) != b.Layer(v) {
			t.Fatal("MinWidth not deterministic")
		}
	}
}
