package core

// Deterministic per-ant seed derivation.
//
// Every ant owns an independent rand.Rand whose seed is a pure function of
// (master seed, tour number, ant index). Because no RNG stream is shared
// between ants — or between the colony and its ants — the layering an ant
// constructs depends only on those three values, never on which goroutine
// ran it or in what order the worker pool scheduled the colony. That is
// what makes a parallel run bitwise-identical to a sequential one at any
// Workers setting, and it also keeps early stopping seed-stable: skipping
// the tail of a run cannot shift the seeds of the tours that did execute.

// mix64 is the SplitMix64 finalizer (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): a bijective 64-bit mixer
// with full avalanche, so inputs differing in a single bit map to
// statistically independent outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SubSeed derives the master seed of independent search stream `stream`
// (0-based) from a master seed — the same SplitMix64 discipline antSeed
// applies inside one colony, lifted one level up. The island model uses it
// to give every island a statistically independent colony seed that is a
// pure function of (master seed, island index), so an island run is
// reproducible and no two islands ever share an RNG stream with each other
// or with any single-colony run on the same master seed (the stream
// multiplier differs from both antSeed multipliers). The result is masked
// to 63 bits for the same rand.NewSource reason as antSeed.
func SubSeed(master int64, stream int) int64 {
	z := mix64(uint64(master) ^ 0xD1B54A32D192ED03*uint64(stream+1))
	return int64(z & (1<<63 - 1))
}

// antSeed derives the RNG seed of ant `ant` (0-based) in tour `tour`
// (1-based) of a run whose master seed is `master`. Each coordinate is
// spread over all 64 bits by a large odd multiplier before being absorbed,
// with a full mix between absorptions, so small (tour, ant) indices cannot
// cancel against each other and every pair receives an unrelated seed.
//
// The result is masked to 63 bits: rand.NewSource folds negative seeds
// through a Mersenne-prime reduction, and keeping the value non-negative
// sidesteps that sign-dependent aliasing.
func antSeed(master int64, tour, ant int) int64 {
	z := uint64(master)
	z = mix64(z ^ 0xA24BAED4963EE407*uint64(tour+1))
	z = mix64(z ^ 0x9FB21C651E98DF25*uint64(ant+1))
	return int64(z & (1<<63 - 1))
}
