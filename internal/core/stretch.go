package core

import (
	"antlayer/internal/dag"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
)

// Stretch builds the ant search space from a graph: the LPL layering with
// extra empty layers inserted until the layer count reaches maxLayers
// (paper §V-A). It returns the stretched layering (still valid: relative
// order of the LPL layers is preserved).
//
// With StretchBetween the nnl = maxLayers - nLPL new layers are divided as
// evenly as possible over the nLPL-1 interlayer gaps (paper Fig. 2), which
// uniformly enlarges every vertex's layer span. With StretchEnds half the
// layers go below layer 1 and half above layer nLPL (paper Fig. 1, kept for
// ablation). When the LPL layering has a single layer there are no gaps and
// both modes place all new layers above it.
func Stretch(g *dag.Graph, maxLayers int, mode StretchMode) (*layering.Layering, error) {
	lpl, err := longestpath.Layer(g)
	if err != nil {
		return nil, err
	}
	return StretchLayering(lpl, maxLayers, mode), nil
}

// StretchLayering stretches an existing layering (normally the LPL one) to
// maxLayers layers without modifying the input. If the layering already has
// at least maxLayers layers it is returned unchanged (as a clone).
func StretchLayering(l *layering.Layering, maxLayers int, mode StretchMode) *layering.Layering {
	nLPL := l.NumLayers()
	if maxLayers <= nLPL || l.Graph().N() == 0 {
		return l.Clone()
	}
	nnl := maxLayers - nLPL
	gaps := nLPL - 1

	// offset[k] is the new 1-based position of old layer k.
	offset := make([]int, nLPL+1)
	switch {
	case mode == StretchBetween && gaps > 0:
		// Distribute nnl layers over the gaps below layers 2..nLPL: gap i
		// (between old layers i and i+1) receives base extra layers, the
		// first rem gaps one more.
		base := nnl / gaps
		rem := nnl % gaps
		shift := 0
		offset[1] = 1
		for k := 2; k <= nLPL; k++ {
			extra := base
			if k-1 <= rem {
				extra++
			}
			shift += extra
			offset[k] = k + shift
		}
	default:
		// StretchEnds, or a single-layer LPL with no gaps: put half the
		// layers below layer 1 (shifting everything up) and the rest above.
		below := nnl / 2
		if gaps == 0 {
			below = 0 // nothing can move below a single layer usefully
		}
		for k := 1; k <= nLPL; k++ {
			offset[k] = k + below
		}
	}

	assign := make([]int, l.Graph().N())
	for v := 0; v < l.Graph().N(); v++ {
		assign[v] = offset[l.Layer(v)]
	}
	s := layering.FromAssignment(l.Graph(), assign)
	// Record the full stretched layer count even though the top layers may
	// be empty, so the ants see the whole search space.
	s.SetNumLayers(maxLayers)
	return s
}
