package core

import (
	"math"
	"math/rand"

	"antlayer/internal/dag"
)

// ant is a single computational agent. Each ant owns a copy of the base
// layer assignment and of the layer widths (paper §IV-E: an ant memorises
// its partial solution and keeps its own heuristic state) and mutates them
// during its walk. The pheromone matrix is shared read-only during a tour.
//
// The walk is the hot path of the whole system (Ants×Tours walks per run,
// one span evaluation per vertex per walk), so the ant is built to do no
// heap allocation after construction: the colony resets and reuses the
// same ant objects across tours, every evaluation works in preallocated
// scratch buffers, and the prefix/suffix width maxima that evalRange needs
// are maintained incrementally by move instead of being rebuilt from
// scratch for every decision. See DESIGN.md (hot path).
type ant struct {
	g *dag.Graph
	p *Params
	// powTau[v][l-1] is τ[v][l]^α, snapshotted once per tour by the colony
	// (the pheromone matrix is immutable while a tour's ants walk). With
	// α = 1 it aliases the colony's τ matrix itself. Shared, read-only.
	powTau [][]float64
	L      int       // number of layers in the stretched search space
	assign []int     // current layer per vertex (1-based)
	widths []float64 // widths[l-1] = width of layer l incl. dummies
	occ    []int     // occ[l-1] = number of real vertices on layer l
	h      int       // number of occupied layers
	rng    *rand.Rand

	// Prefix/suffix maxima over occupied layer widths (1-based layers;
	// preMax[0] = sufMax[L+1] = -inf sentinel). Maintained incrementally:
	// rebuilt once per reset, then repaired by move over just the layer
	// range a move touches.
	preMax []float64 // preMax[i] = max occupied width among layers 1..i
	sufMax []float64 // sufMax[i] = max occupied width among layers i..L

	// Scratch buffers reused across vertices and walks.
	etas     []float64
	deltas   []float64
	affected []float64
	scores   []float64
	perm     []int

	// Beta fast path: when β is a small non-negative integer, η^β is
	// computed by direct multiplication instead of math.Pow.
	betaInt   int
	betaIsInt bool

	objective float64 // f = 1/(H+W) after the walk
	height    int
	width     float64
}

// newAnt allocates an ant over the shared search space and prepares it for
// its first walk. powTau must be τ^α (the raw matrix is fine when α = 1).
// baseAssign and baseWidths are copied.
func newAnt(g *dag.Graph, p *Params, powTau [][]float64, L int, baseAssign []int, baseWidths []float64, seed int64) *ant {
	n := g.N()
	a := &ant{
		g:        g,
		p:        p,
		L:        L,
		assign:   make([]int, n),
		widths:   make([]float64, L),
		occ:      make([]int, L),
		rng:      rand.New(rand.NewSource(seed)),
		preMax:   make([]float64, L+2),
		sufMax:   make([]float64, L+2),
		etas:     make([]float64, L),
		deltas:   make([]float64, L),
		affected: make([]float64, L),
		scores:   make([]float64, L),
		perm:     make([]int, n),
	}
	if bi := int(p.Beta); float64(bi) == p.Beta && bi >= 0 && bi <= 5 {
		a.betaInt, a.betaIsInt = bi, true
	}
	a.reset(baseAssign, baseWidths, powTau, seed)
	return a
}

// reset re-points the ant at a new base layering, pheromone snapshot and
// RNG seed without allocating, so the colony can reuse one set of ants for
// every tour. newAnt calls it for the first tour.
func (a *ant) reset(baseAssign []int, baseWidths []float64, powTau [][]float64, seed int64) {
	a.powTau = powTau
	copy(a.assign, baseAssign)
	copy(a.widths, baseWidths)
	for i := range a.occ {
		a.occ[i] = 0
	}
	a.h = 0
	for _, l := range baseAssign {
		if a.occ[l-1] == 0 {
			a.h++
		}
		a.occ[l-1]++
	}
	a.rng.Seed(seed)
	a.rebuildMaxima()
}

// rebuildMaxima recomputes the prefix/suffix occupied-width maxima from
// scratch: once per reset, O(L).
func (a *ant) rebuildMaxima() {
	negInf := math.Inf(-1)
	a.preMax[0] = negInf
	for l := 1; l <= a.L; l++ {
		m := a.preMax[l-1]
		if a.occ[l-1] > 0 && a.widths[l-1] > m {
			m = a.widths[l-1]
		}
		a.preMax[l] = m
	}
	a.sufMax[a.L+1] = negInf
	for l := a.L; l >= 1; l-- {
		m := a.sufMax[l+1]
		if a.occ[l-1] > 0 && a.widths[l-1] > m {
			m = a.widths[l-1]
		}
		a.sufMax[l] = m
	}
}

// repairMaxima restores preMax/sufMax after widths/occ changed only on the
// layers [lo, hi]. The prefix maxima are recomputed forward from lo and the
// suffix maxima backward from hi; past the dirty range the scan stops as
// soon as a recomputed value matches the stored one, because every later
// entry depends only on that value and on unchanged widths. Cost: O(hi-lo)
// plus the convergence tail, instead of O(L) per decision.
func (a *ant) repairMaxima(lo, hi int) {
	for l := lo; l <= a.L; l++ {
		m := a.preMax[l-1]
		if a.occ[l-1] > 0 && a.widths[l-1] > m {
			m = a.widths[l-1]
		}
		if l > hi && m == a.preMax[l] {
			break
		}
		a.preMax[l] = m
	}
	for l := hi; l >= 1; l-- {
		m := a.sufMax[l+1]
		if a.occ[l-1] > 0 && a.widths[l-1] > m {
			m = a.widths[l-1]
		}
		if l < lo && m == a.sufMax[l] {
			break
		}
		a.sufMax[l] = m
	}
}

// walk performs one solution construction (paper §IV-A): the ant visits
// every vertex in random order and reassigns it to the best layer of its
// span according to the random proportional rule. It finishes by computing
// the objective value f = 1/(H+W).
//
// The visiting order is an in-place Fisher–Yates over the reused perm
// buffer, drawing exactly the Intn sequence rand.Perm draws so walks are
// bitwise-identical to the allocating formulation.
func (a *ant) walk() {
	n := a.g.N()
	perm := a.perm[:n]
	// The i = 0 iteration swaps perm[0] with itself but still draws from
	// the RNG — rand.Perm does the same, and skipping the draw would shift
	// the stream and change every walk.
	for i := 0; i < n; i++ {
		j := a.rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	for _, v := range perm {
		lo, hi := a.span(v)
		best := a.chooseLayer(v, lo, hi)
		a.move(v, best)
	}
	a.scoreWalk()
}

// span returns the feasible neighbourhood of v: the layers between the
// topmost successor+1 and the bottommost predecessor-1 under the ant's
// current assignment, clamped to [1, L]. For a valid assignment the span
// always contains the current layer of v.
func (a *ant) span(v int) (lo, hi int) {
	lo, hi = 1, a.L
	for _, w := range a.g.Succ(v) {
		if a.assign[w]+1 > lo {
			lo = a.assign[w] + 1
		}
	}
	for _, u := range a.g.Pred(v) {
		if a.assign[u]-1 < hi {
			hi = a.assign[u] - 1
		}
	}
	return lo, hi
}

// chooseLayer applies the random proportional rule over the span [lo, hi]:
// the probability of layer l is proportional to τ[v][l]^α · η[v][l]^β.
// With SelectArgMax it returns the most probable layer (Algorithm 4,
// line 6); with SelectRoulette it samples.
//
// The heuristic information η is dynamic (§IV-D): it is recomputed from the
// ant's current layer widths for every decision. Two concretizations are
// provided, see HeuristicMode.
func (a *ant) chooseLayer(v, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	var deltas, affected []float64
	if a.p.Heuristic != HeuristicLayerWidth || a.p.WidthBound > 0 {
		deltas, affected = a.evalRange(v, lo, hi)
	}
	etas := a.etas[:hi-lo+1]
	if a.p.Heuristic == HeuristicLayerWidth {
		for l := lo; l <= hi; l++ {
			etas[l-lo] = 1 / (a.widths[l-1] + a.p.DummyWidth)
		}
	} else {
		for i, d := range deltas {
			etas[i] = math.Exp(-d)
		}
	}
	if a.p.WidthBound > 0 {
		// §IV-C resource capacities: candidates whose move would push any
		// widened occupied layer beyond the bound get zero desirability.
		// The current layer stays admissible so feasibility is never lost.
		cur := a.assign[v]
		for l := lo; l <= hi; l++ {
			if l != cur && affected[l-lo] > a.p.WidthBound {
				etas[l-lo] = 0
			}
		}
	}
	switch a.p.Selection {
	case SelectRoulette:
		return a.rouletteLayer(v, lo, hi, etas)
	case SelectArgMax:
		return a.argmaxLayer(v, lo, hi, etas)
	default: // SelectPseudoRandom
		if a.rng.Float64() < a.p.Q0 {
			return a.argmaxLayer(v, lo, hi, etas)
		}
		return a.rouletteLayer(v, lo, hi, etas)
	}
}

// etaRange computes η[v][l] for every l in [lo, hi], indexed l-lo.
//
// HeuristicLayerWidth is the literal formula of §IV-D: η = 1/W(l) with the
// layer's current width (regularised by one dummy width so empty layers
// have finite desirability).
//
// HeuristicObjective (the default) makes η the exact desirability of the
// move under the paper's objective: η = exp(-Δ(v,l)) where Δ(v,l) is the
// change in H+W the reassignment causes, measured after the final
// empty-layer removal (§VI note): H counts layers holding real vertices
// and W is the maximum width over those layers including the dummy
// vertices crossing them (Algorithm 5 bookkeeping). A small tie-break term
// charges 0.05·wd per net dummy vertex created so plateau moves do not
// silently inflate the dummy count. Staying put always has Δ = 0, so a
// pheromone-neutral ant never worsens its solution; pheromone
// accumulated over tours can still push it across small uphill steps.
// §IV-E (items 3-4) requires exactly this information to be maintained:
// the widths of all affected layers and the dummy vertices an assignment
// would cause.
//
// chooseLayer inlines this computation to share evalRange with the width
// bound; etaRange remains the single-purpose form used by tests. It
// returns a freshly allocated slice, not a scratch buffer.
func (a *ant) etaRange(v, lo, hi int) []float64 {
	etas := make([]float64, hi-lo+1)
	if a.p.Heuristic == HeuristicLayerWidth {
		for l := lo; l <= hi; l++ {
			etas[l-lo] = 1 / (a.widths[l-1] + a.p.DummyWidth)
		}
		return etas
	}
	deltas, _ := a.evalRange(v, lo, hi)
	for i, d := range deltas {
		etas[i] = math.Exp(-d)
	}
	return etas
}

// evalRange computes, for every candidate layer l in [lo, hi]:
//
//   - deltas[l-lo]: Δ(v,l) = (H'+W') - (H+W), where primes denote the
//     state after moving v to l. All quantities are normalization-aware:
//     only occupied layers count.
//   - affected[l-lo]: the maximum post-move width over the layers the move
//     *widens* (the target, plus source/interior layers whose width grows),
//     used by the §IV-C width bound. Layers the move narrows are excluded
//     so that leaving an over-full layer remains admissible.
//
// The evaluation is O(hi-lo+1) per call: the prefix/suffix maxima over
// occupied layer widths maintained by move give the maximum outside the
// affected range in O(1), and the maxima over the affected interior are
// extended incrementally as the candidate moves away from the current
// layer. The interior modifier is constant per direction
// (±(outdeg-indeg)·wd, Algorithm 5), which is what makes the incremental
// extension valid.
//
// The returned slices are the ant's scratch buffers: valid until the next
// evalRange call.
func (a *ant) evalRange(v, lo, hi int) (deltas, affected []float64) {
	cur := a.assign[v]
	wd := a.p.DummyWidth
	w := a.g.Width(v)
	out := float64(a.g.OutDegree(v))
	in := float64(a.g.InDegree(v))
	negInf := math.Inf(-1)

	hw := float64(a.h) + a.curMaxWidth()
	deltas = a.deltas[:hi-lo+1]
	affected = a.affected[:hi-lo+1]

	// Quantities constant over the whole span. srcShrinks: the source
	// layer stays occupied after the move (only then do its post-move
	// width and the candidate count of occupied layers involve it).
	curWidth := a.widths[cur-1]
	srcShrinks := a.occ[cur-1] > 1
	hBase := a.h
	if !srcShrinks {
		hBase--
	}

	if cur >= lo && cur <= hi {
		deltas[cur-lo], affected[cur-lo] = 0, curWidth
	}

	// Upward candidates (Algorithm 5: [cur, l-1] gain out·wd, [cur+1, l]
	// lose in·wd). The source adjustment, the interior modifier and the
	// prefix maximum below the touched range are constant per direction;
	// the interior maximum extends one layer at a time as the candidate
	// moves away from cur, which is what makes the evaluation O(1) per
	// candidate. No NaNs can occur here (widths are finite), so plain
	// comparisons replace math.Max.
	if hi > cur {
		curAfter := curWidth - w + out*wd
		interiorMod := (out - in) * wd
		outside := a.preMax[cur-1]
		curWidens := srcShrinks && curAfter > curWidth
		interior := negInf
		for l := cur + 1; l <= hi; l++ {
			lAfter := a.widths[l-1] + w - in*wd
			// Maximum over the occupied layers the move makes wider (for
			// the width bound): always the target; the source and interior
			// layers only when the dummy adjustments actually widen them.
			widened := lAfter
			if curWidens && curAfter > widened {
				widened = curAfter
			}
			// New maximum over all occupied layers the move touches.
			touched := lAfter
			if srcShrinks && curAfter > touched {
				touched = curAfter
			}
			if interior != negInf {
				ext := interior + interiorMod
				if interiorMod > 0 && ext > widened {
					widened = ext
				}
				if ext > touched {
					touched = ext
				}
			}
			// New maximum over all occupied layers (for the delta).
			wMax := touched
			if outside > wMax {
				wMax = outside
			}
			if s := a.sufMax[l+1]; s > wMax {
				wMax = s
			}
			hNew := hBase
			if a.occ[l-1] == 0 {
				hNew++
			}
			// Net dummy vertices the move creates (negative = removes); a
			// small charge keeps plateau moves from inflating the DVC.
			created := float64(l-cur) * (out - in)
			deltas[l-lo] = (float64(hNew) + wMax) - hw + 0.05*wd*created
			affected[l-lo] = widened
			// Layer l becomes interior for the next candidate.
			if a.occ[l-1] > 0 && a.widths[l-1] > interior {
				interior = a.widths[l-1]
			}
		}
	}
	// Downward candidates, symmetric.
	if lo < cur {
		curAfter := curWidth - w + in*wd
		interiorMod := (in - out) * wd
		outside := a.sufMax[cur+1]
		curWidens := srcShrinks && curAfter > curWidth
		interior := negInf
		for l := cur - 1; l >= lo; l-- {
			lAfter := a.widths[l-1] + w - out*wd
			widened := lAfter
			if curWidens && curAfter > widened {
				widened = curAfter
			}
			touched := lAfter
			if srcShrinks && curAfter > touched {
				touched = curAfter
			}
			if interior != negInf {
				ext := interior + interiorMod
				if interiorMod > 0 && ext > widened {
					widened = ext
				}
				if ext > touched {
					touched = ext
				}
			}
			wMax := touched
			if p := a.preMax[l-1]; p > wMax {
				wMax = p
			}
			if outside > wMax {
				wMax = outside
			}
			hNew := hBase
			if a.occ[l-1] == 0 {
				hNew++
			}
			created := float64(cur-l) * (in - out)
			deltas[l-lo] = (float64(hNew) + wMax) - hw + 0.05*wd*created
			affected[l-lo] = widened
			if a.occ[l-1] > 0 && a.widths[l-1] > interior {
				interior = a.widths[l-1]
			}
		}
	}
	return deltas, affected
}

// curMaxWidth returns the current maximum width over occupied layers, read
// off the maintained prefix maxima in O(1).
func (a *ant) curMaxWidth() float64 {
	if m := a.preMax[a.L]; m > 0 {
		return m
	}
	return 0
}

// argmaxLayer returns the layer maximising τ^α·η^β, resolving ties towards
// the shortest move (and in particular towards staying put) by scanning in
// order of increasing distance from the current layer.
func (a *ant) argmaxLayer(v, lo, hi int, etas []float64) int {
	cur := a.assign[v]
	start := cur
	if start < lo {
		start = lo
	}
	if start > hi {
		start = hi
	}
	best, bestScore := start, a.scoreWith(v, start, etas[start-lo])
	for d := 1; start-d >= lo || start+d <= hi; d++ {
		if l := start - d; l >= lo {
			if s := a.scoreWith(v, l, etas[l-lo]); s > bestScore {
				best, bestScore = l, s
			}
		}
		if l := start + d; l <= hi {
			if s := a.scoreWith(v, l, etas[l-lo]); s > bestScore {
				best, bestScore = l, s
			}
		}
	}
	return best
}

// rouletteLayer samples a layer proportionally to the scores. When the
// score total overflows to +Inf while every individual score is finite
// (one huge τ^α·η^β is enough), the scores are rescaled by their maximum
// and resummed, so roulette keeps sampling instead of silently degrading
// to argmax for the whole span. Only genuinely degenerate totals — zero,
// NaN, or an individually infinite score — fall back to argmax.
func (a *ant) rouletteLayer(v, lo, hi int, etas []float64) int {
	total := 0.0
	scores := a.scores[:hi-lo+1]
	for l := lo; l <= hi; l++ {
		s := a.scoreWith(v, l, etas[l-lo])
		scores[l-lo] = s
		total += s
	}
	if math.IsInf(total, 1) {
		max := 0.0
		for _, s := range scores {
			if s > max {
				max = s
			}
		}
		if !math.IsInf(max, 1) {
			total = 0
			for i := range scores {
				scores[i] /= max
				total += scores[i]
			}
		}
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return a.argmaxLayer(v, lo, hi, etas)
	}
	r := a.rng.Float64() * total
	acc := 0.0
	for l := lo; l <= hi; l++ {
		acc += scores[l-lo]
		if r < acc {
			return l
		}
	}
	return hi
}

// scoreWith is the unnormalised random-proportional-rule numerator
// τ[v][l]^α · η^β, with τ^α read from the per-tour snapshot. A zero η
// marks an inadmissible candidate (width bound) and yields a zero score
// even when β = 0.
func (a *ant) scoreWith(v, l int, eta float64) float64 {
	if eta == 0 {
		return 0
	}
	return a.powTau[v][l-1] * a.powEta(eta)
}

// powEta computes η^β. For small integer β and η comfortably inside the
// normal range it multiplies directly — bit-identical to math.Pow, whose
// integer-exponent path performs the same squaring chain on the separated
// mantissa. Out-of-range η (where direct multiplication could overflow,
// or double-round near the subnormal boundary where math.Pow's deferred
// Ldexp rounds once) falls back to math.Pow.
func (a *ant) powEta(eta float64) float64 {
	if a.betaIsInt && eta > 1e-60 && eta < 1e60 {
		switch a.betaInt {
		case 0:
			return 1
		case 1:
			return eta
		case 2:
			return eta * eta
		case 3:
			return eta * eta * eta
		case 4:
			e2 := eta * eta
			return e2 * e2
		case 5:
			e2 := eta * eta
			return eta * (e2 * e2)
		}
	}
	return math.Pow(eta, a.p.Beta)
}

// move reassigns v from its current layer to newLayer, updating the layer
// widths incrementally per Algorithm 5 of the paper and repairing the
// prefix/suffix width maxima over the touched range.
//
// Moving v up (newLayer > cur) makes v's outgoing edges additionally cross
// the layers [cur, newLayer-1] (one dummy each) and removes the dummy of
// each incoming edge from the layers [cur+1, newLayer]; moving down is
// symmetric.
func (a *ant) move(v, newLayer int) {
	cur := a.assign[v]
	if newLayer == cur {
		return
	}
	w := a.g.Width(v)
	wd := a.p.DummyWidth
	out := float64(a.g.OutDegree(v))
	in := float64(a.g.InDegree(v))

	a.widths[cur-1] -= w
	a.widths[newLayer-1] += w
	a.occ[cur-1]--
	if a.occ[cur-1] == 0 {
		a.h--
	}
	if a.occ[newLayer-1] == 0 {
		a.h++
	}
	a.occ[newLayer-1]++

	if newLayer > cur {
		for l := cur; l <= newLayer-1; l++ {
			a.widths[l-1] += out * wd
		}
		for l := cur + 1; l <= newLayer; l++ {
			a.widths[l-1] -= in * wd
		}
	} else {
		for l := newLayer + 1; l <= cur; l++ {
			a.widths[l-1] += in * wd
		}
		for l := newLayer; l <= cur-1; l++ {
			a.widths[l-1] -= out * wd
		}
	}
	a.assign[v] = newLayer
	if newLayer > cur {
		a.repairMaxima(cur, newLayer)
	} else {
		a.repairMaxima(newLayer, cur)
	}
}

// scoreWalk computes H, W and the objective f = 1/(H+W) (Algorithm 4,
// line 13) as they will be *after* the final empty-layer removal (§VI
// note): only layers holding real vertices count, because layers crossed
// exclusively by dummies disappear when the layering is normalized, while
// an edge crossing an occupied layer keeps crossing it (normalization is
// an order-preserving renumbering). Evaluating the stretched solution
// directly would make H saturate at the stretched layer count and remove
// all pressure towards compact layerings.
func (a *ant) scoreWalk() {
	a.height = a.h
	a.width = a.curMaxWidth()
	a.objective = 1 / (float64(a.height) + a.width)
}
