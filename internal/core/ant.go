package core

import (
	"math"
	"math/rand"

	"antlayer/internal/dag"
)

// ant is a single computational agent. Each ant owns a copy of the base
// layer assignment and of the layer widths (paper §IV-E: an ant memorises
// its partial solution and keeps its own heuristic state) and mutates them
// during its walk. The pheromone matrix is shared read-only during a tour.
type ant struct {
	g      *dag.Graph
	p      *Params
	tau    [][]float64 // shared, read-only during the walk
	L      int         // number of layers in the stretched search space
	assign []int       // current layer per vertex (1-based)
	widths []float64   // widths[l-1] = width of layer l incl. dummies
	occ    []int       // occ[l-1] = number of real vertices on layer l
	h      int         // number of occupied layers
	rng    *rand.Rand

	// Scratch buffers for candidate evaluation, reused across vertices.
	preMax []float64 // preMax[i] = max occupied width among layers 1..i
	sufMax []float64 // sufMax[i] = max occupied width among layers i..L

	objective float64 // f = 1/(H+W) after the walk
	height    int
	width     float64
}

// newAnt prepares an ant over the shared search space. baseAssign and
// baseWidths are copied.
func newAnt(g *dag.Graph, p *Params, tau [][]float64, L int, baseAssign []int, baseWidths []float64, seed int64) *ant {
	a := &ant{
		g:      g,
		p:      p,
		tau:    tau,
		L:      L,
		assign: append([]int(nil), baseAssign...),
		widths: append([]float64(nil), baseWidths...),
		occ:    make([]int, L),
		rng:    rand.New(rand.NewSource(seed)),
		preMax: make([]float64, L+2),
		sufMax: make([]float64, L+2),
	}
	for _, l := range baseAssign {
		if a.occ[l-1] == 0 {
			a.h++
		}
		a.occ[l-1]++
	}
	return a
}

// walk performs one solution construction (paper §IV-A): the ant visits
// every vertex in random order and reassigns it to the best layer of its
// span according to the random proportional rule. It finishes by computing
// the objective value f = 1/(H+W).
func (a *ant) walk() {
	for _, v := range a.rng.Perm(a.g.N()) {
		lo, hi := a.span(v)
		best := a.chooseLayer(v, lo, hi)
		a.move(v, best)
	}
	a.scoreWalk()
}

// span returns the feasible neighbourhood of v: the layers between the
// topmost successor+1 and the bottommost predecessor-1 under the ant's
// current assignment, clamped to [1, L]. For a valid assignment the span
// always contains the current layer of v.
func (a *ant) span(v int) (lo, hi int) {
	lo, hi = 1, a.L
	for _, w := range a.g.Succ(v) {
		if a.assign[w]+1 > lo {
			lo = a.assign[w] + 1
		}
	}
	for _, u := range a.g.Pred(v) {
		if a.assign[u]-1 < hi {
			hi = a.assign[u] - 1
		}
	}
	return lo, hi
}

// chooseLayer applies the random proportional rule over the span [lo, hi]:
// the probability of layer l is proportional to τ[v][l]^α · η[v][l]^β.
// With SelectArgMax it returns the most probable layer (Algorithm 4,
// line 6); with SelectRoulette it samples.
//
// The heuristic information η is dynamic (§IV-D): it is recomputed from the
// ant's current layer widths for every decision. Two concretizations are
// provided, see HeuristicMode.
func (a *ant) chooseLayer(v, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	var deltas, affected []float64
	if a.p.Heuristic != HeuristicLayerWidth || a.p.WidthBound > 0 {
		deltas, affected = a.evalRange(v, lo, hi)
	}
	etas := make([]float64, hi-lo+1)
	if a.p.Heuristic == HeuristicLayerWidth {
		for l := lo; l <= hi; l++ {
			etas[l-lo] = 1 / (a.widths[l-1] + a.p.DummyWidth)
		}
	} else {
		for i, d := range deltas {
			etas[i] = math.Exp(-d)
		}
	}
	if a.p.WidthBound > 0 {
		// §IV-C resource capacities: candidates whose move would push any
		// widened occupied layer beyond the bound get zero desirability.
		// The current layer stays admissible so feasibility is never lost.
		cur := a.assign[v]
		for l := lo; l <= hi; l++ {
			if l != cur && affected[l-lo] > a.p.WidthBound {
				etas[l-lo] = 0
			}
		}
	}
	switch a.p.Selection {
	case SelectRoulette:
		return a.rouletteLayer(v, lo, hi, etas)
	case SelectArgMax:
		return a.argmaxLayer(v, lo, hi, etas)
	default: // SelectPseudoRandom
		if a.rng.Float64() < a.p.Q0 {
			return a.argmaxLayer(v, lo, hi, etas)
		}
		return a.rouletteLayer(v, lo, hi, etas)
	}
}

// etaRange computes η[v][l] for every l in [lo, hi], indexed l-lo.
//
// HeuristicLayerWidth is the literal formula of §IV-D: η = 1/W(l) with the
// layer's current width (regularised by one dummy width so empty layers
// have finite desirability).
//
// HeuristicObjective (the default) makes η the exact desirability of the
// move under the paper's objective: η = exp(-Δ(v,l)) where Δ(v,l) is the
// change in H+W the reassignment causes, measured after the final
// empty-layer removal (§VI note): H counts layers holding real vertices
// and W is the maximum width over those layers including the dummy
// vertices crossing them (Algorithm 5 bookkeeping). A small tie-break term
// charges 0.05·wd per net dummy vertex created so plateau moves do not
// silently inflate the dummy count. Staying put always has Δ = 0, so a
// pheromone-neutral ant never worsens its solution; pheromone
// accumulated over tours can still push it across small uphill steps.
// §IV-E (items 3-4) requires exactly this information to be maintained:
// the widths of all affected layers and the dummy vertices an assignment
// would cause.
//
// chooseLayer inlines this computation to share evalRange with the width
// bound; etaRange remains the single-purpose form used by tests.
func (a *ant) etaRange(v, lo, hi int) []float64 {
	etas := make([]float64, hi-lo+1)
	if a.p.Heuristic == HeuristicLayerWidth {
		for l := lo; l <= hi; l++ {
			etas[l-lo] = 1 / (a.widths[l-1] + a.p.DummyWidth)
		}
		return etas
	}
	deltas, _ := a.evalRange(v, lo, hi)
	for i, d := range deltas {
		etas[i] = math.Exp(-d)
	}
	return etas
}

// evalRange computes, for every candidate layer l in [lo, hi]:
//
//   - deltas[l-lo]: Δ(v,l) = (H'+W') - (H+W), where primes denote the
//     state after moving v to l. All quantities are normalization-aware:
//     only occupied layers count.
//   - affected[l-lo]: the maximum post-move width over the layers the move
//     *widens* (the target, plus source/interior layers whose width grows),
//     used by the §IV-C width bound. Layers the move narrows are excluded
//     so that leaving an over-full layer remains admissible.
//
// The evaluation is O(hi-lo+L): prefix/suffix maxima over occupied layer
// widths give the max outside the affected range in O(1), and the maxima
// over the affected interior are extended incrementally as the candidate
// moves away from the current layer. The interior modifier is constant per
// direction (±(outdeg-indeg)·wd, Algorithm 5), which is what makes the
// incremental extension valid.
func (a *ant) evalRange(v, lo, hi int) (deltas, affected []float64) {
	cur := a.assign[v]
	wd := a.p.DummyWidth
	w := a.g.Width(v)
	out := float64(a.g.OutDegree(v))
	in := float64(a.g.InDegree(v))

	// Prefix/suffix maxima of occupied layer widths (1-based layers;
	// preMax[0] = sufMax[L+1] = -inf sentinel).
	negInf := math.Inf(-1)
	a.preMax[0] = negInf
	for l := 1; l <= a.L; l++ {
		m := a.preMax[l-1]
		if a.occ[l-1] > 0 && a.widths[l-1] > m {
			m = a.widths[l-1]
		}
		a.preMax[l] = m
	}
	a.sufMax[a.L+1] = negInf
	for l := a.L; l >= 1; l-- {
		m := a.sufMax[l+1]
		if a.occ[l-1] > 0 && a.widths[l-1] > m {
			m = a.widths[l-1]
		}
		a.sufMax[l] = m
	}

	hw := float64(a.h) + a.curMaxWidth()
	deltas = make([]float64, hi-lo+1)
	affected = make([]float64, hi-lo+1)

	// eval computes Δ and the affected-layer maximum for candidate l
	// given the running maximum of raw occupied widths strictly between
	// cur and l (negInf when none).
	eval := func(l int, interior float64) (float64, float64) {
		if l == cur {
			return 0, a.widths[cur-1]
		}
		var curAfter, lAfter, interiorMod float64
		if l > cur {
			// Algorithm 5, upward move: [cur, l-1] gain out·wd,
			// [cur+1, l] lose in·wd.
			curAfter = a.widths[cur-1] - w + out*wd
			lAfter = a.widths[l-1] + w - in*wd
			interiorMod = (out - in) * wd
		} else {
			curAfter = a.widths[cur-1] - w + in*wd
			lAfter = a.widths[l-1] + w - out*wd
			interiorMod = (in - out) * wd
		}
		// Maximum over the occupied layers the move makes wider (for the
		// width bound): always the target; the source and interior layers
		// only when the dummy adjustments actually widen them.
		widened := lAfter
		if a.occ[cur-1] > 1 && curAfter > a.widths[cur-1] {
			widened = math.Max(widened, curAfter)
		}
		if interiorMod > 0 && !math.IsInf(interior, -1) {
			widened = math.Max(widened, interior+interiorMod)
		}
		// New maximum over all occupied layers (for the objective delta).
		touched := lAfter
		if a.occ[cur-1] > 1 {
			touched = math.Max(touched, curAfter)
		}
		if !math.IsInf(interior, -1) {
			touched = math.Max(touched, interior+interiorMod)
		}
		lo2, hi2 := cur, l
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		wMax := math.Max(math.Max(a.preMax[lo2-1], a.sufMax[hi2+1]), touched)
		hNew := a.h
		if a.occ[cur-1] == 1 {
			hNew--
		}
		if a.occ[l-1] == 0 {
			hNew++
		}
		// Net dummy vertices the move creates (negative = removes); a
		// small charge keeps plateau moves from inflating the DVC.
		created := float64(l-cur) * (out - in)
		if l < cur {
			created = float64(cur-l) * (in - out)
		}
		return (float64(hNew) + wMax) - hw + 0.05*wd*created, widened
	}

	if cur >= lo && cur <= hi {
		deltas[cur-lo], affected[cur-lo] = eval(cur, negInf)
	}
	// Upward candidates: extend the interior maximum one layer at a time.
	interior := negInf
	for l := cur + 1; l <= hi; l++ {
		deltas[l-lo], affected[l-lo] = eval(l, interior)
		// Layer l becomes interior for the next candidate.
		if a.occ[l-1] > 0 && a.widths[l-1] > interior {
			interior = a.widths[l-1]
		}
	}
	// Downward candidates.
	interior = negInf
	for l := cur - 1; l >= lo; l-- {
		deltas[l-lo], affected[l-lo] = eval(l, interior)
		if a.occ[l-1] > 0 && a.widths[l-1] > interior {
			interior = a.widths[l-1]
		}
	}
	return deltas, affected
}

// curMaxWidth returns the current maximum width over occupied layers.
func (a *ant) curMaxWidth() float64 {
	m := 0.0
	for i := 0; i < a.L; i++ {
		if a.occ[i] > 0 && a.widths[i] > m {
			m = a.widths[i]
		}
	}
	return m
}

// argmaxLayer returns the layer maximising τ^α·η^β, resolving ties towards
// the shortest move (and in particular towards staying put) by scanning in
// order of increasing distance from the current layer.
func (a *ant) argmaxLayer(v, lo, hi int, etas []float64) int {
	cur := a.assign[v]
	start := cur
	if start < lo {
		start = lo
	}
	if start > hi {
		start = hi
	}
	best, bestScore := start, a.scoreWith(v, start, etas[start-lo])
	for d := 1; start-d >= lo || start+d <= hi; d++ {
		if l := start - d; l >= lo {
			if s := a.scoreWith(v, l, etas[l-lo]); s > bestScore {
				best, bestScore = l, s
			}
		}
		if l := start + d; l <= hi {
			if s := a.scoreWith(v, l, etas[l-lo]); s > bestScore {
				best, bestScore = l, s
			}
		}
	}
	return best
}

func (a *ant) rouletteLayer(v, lo, hi int, etas []float64) int {
	total := 0.0
	scores := make([]float64, hi-lo+1)
	for l := lo; l <= hi; l++ {
		s := a.scoreWith(v, l, etas[l-lo])
		scores[l-lo] = s
		total += s
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return a.argmaxLayer(v, lo, hi, etas)
	}
	r := a.rng.Float64() * total
	acc := 0.0
	for l := lo; l <= hi; l++ {
		acc += scores[l-lo]
		if r < acc {
			return l
		}
	}
	return hi
}

// scoreWith is the unnormalised random-proportional-rule numerator
// τ[v][l]^α · η^β. A zero η marks an inadmissible candidate (width bound)
// and yields a zero score even when β = 0.
func (a *ant) scoreWith(v, l int, eta float64) float64 {
	if eta == 0 {
		return 0
	}
	return math.Pow(a.tau[v][l-1], a.p.Alpha) * math.Pow(eta, a.p.Beta)
}

// move reassigns v from its current layer to newLayer, updating the layer
// widths incrementally per Algorithm 5 of the paper.
//
// Moving v up (newLayer > cur) makes v's outgoing edges additionally cross
// the layers [cur, newLayer-1] (one dummy each) and removes the dummy of
// each incoming edge from the layers [cur+1, newLayer]; moving down is
// symmetric.
func (a *ant) move(v, newLayer int) {
	cur := a.assign[v]
	if newLayer == cur {
		return
	}
	w := a.g.Width(v)
	wd := a.p.DummyWidth
	out := float64(a.g.OutDegree(v))
	in := float64(a.g.InDegree(v))

	a.widths[cur-1] -= w
	a.widths[newLayer-1] += w
	a.occ[cur-1]--
	if a.occ[cur-1] == 0 {
		a.h--
	}
	if a.occ[newLayer-1] == 0 {
		a.h++
	}
	a.occ[newLayer-1]++

	if newLayer > cur {
		for l := cur; l <= newLayer-1; l++ {
			a.widths[l-1] += out * wd
		}
		for l := cur + 1; l <= newLayer; l++ {
			a.widths[l-1] -= in * wd
		}
	} else {
		for l := newLayer + 1; l <= cur; l++ {
			a.widths[l-1] += in * wd
		}
		for l := newLayer; l <= cur-1; l++ {
			a.widths[l-1] -= out * wd
		}
	}
	a.assign[v] = newLayer
}

// scoreWalk computes H, W and the objective f = 1/(H+W) (Algorithm 4,
// line 13) as they will be *after* the final empty-layer removal (§VI
// note): only layers holding real vertices count, because layers crossed
// exclusively by dummies disappear when the layering is normalized, while
// an edge crossing an occupied layer keeps crossing it (normalization is
// an order-preserving renumbering). Evaluating the stretched solution
// directly would make H saturate at the stretched layer count and remove
// all pressure towards compact layerings.
func (a *ant) scoreWalk() {
	a.height = a.h
	a.width = a.curMaxWidth()
	a.objective = 1 / (float64(a.height) + a.width)
}
