package core

// Benchmarks for the ant-walk hot path: one full solution construction
// (BenchmarkWalk) and one per-vertex layer decision (BenchmarkChooseLayer).
// Both report allocations — the per-vertex decision path is required to be
// allocation-free (see DESIGN.md, hot path), so allocs/op regressions here
// are correctness bugs for the performance contract, not noise.

import (
	"fmt"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
)

// benchAnt builds an ant over the stretched search space of g, mirroring
// testAnt without the *testing.T plumbing.
func benchAnt(b *testing.B, g *dag.Graph, p Params, seed int64) *ant {
	b.Helper()
	maxLayers := p.MaxLayers
	if maxLayers == 0 {
		maxLayers = g.N()
	}
	s, err := Stretch(g, maxLayers, p.Stretch)
	if err != nil {
		b.Fatal(err)
	}
	L := s.NumLayers()
	if L == 0 {
		L = 1
	}
	tau := make([][]float64, g.N())
	for v := range tau {
		tau[v] = make([]float64, L)
		for i := range tau[v] {
			tau[v][i] = p.Tau0
		}
	}
	// newAnt takes τ^α; the helper only runs at α = 1, where the raw
	// matrix is the snapshot (see testAnt for the α ≠ 1 construction).
	if p.Alpha != 1 {
		b.Fatalf("benchAnt requires Alpha == 1, got %g", p.Alpha)
	}
	assign := s.Assignment()
	return newAnt(g, &p, tau, L, assign, layerWidths(g, assign, L, p.DummyWidth), seed)
}

func benchGraph(b *testing.B, n int) *dag.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	g, err := graphgen.Generate(graphgen.DefaultConfig(n), rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkWalk measures one ant's full solution construction — the unit of
// work the colony multiplies by Ants×Tours — including the per-tour ant
// preparation (construction before the scratch-buffer refactor, reset after).
func BenchmarkWalk(b *testing.B) {
	for _, n := range []int{30, 60, 100} {
		g := benchGraph(b, n)
		for _, heur := range []HeuristicMode{HeuristicObjective, HeuristicLayerWidth} {
			b.Run(fmt.Sprintf("n=%d/heur=%s", n, heur), func(b *testing.B) {
				p := DefaultParams()
				p.Heuristic = heur
				a := benchAnt(b, g, p, 1)
				baseAssign := append([]int(nil), a.assign...)
				baseWidths := append([]float64(nil), a.widths...)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a.reset(baseAssign, baseWidths, a.powTau, 1)
					a.walk()
				}
			})
		}
	}
}

// BenchmarkChooseLayer isolates the per-vertex decision: span evaluation,
// heuristic computation and selection, without the move.
func BenchmarkChooseLayer(b *testing.B) {
	for _, n := range []int{60, 100} {
		g := benchGraph(b, n)
		for _, sel := range []SelectionMode{SelectPseudoRandom, SelectRoulette, SelectArgMax} {
			b.Run(fmt.Sprintf("n=%d/sel=%s", n, sel), func(b *testing.B) {
				p := DefaultParams()
				p.Selection = sel
				a := benchAnt(b, g, p, 1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v := i % g.N()
					lo, hi := a.span(v)
					a.chooseLayer(v, lo, hi)
				}
			})
		}
	}
}
