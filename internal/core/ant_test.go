package core

import (
	"math"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
)

// testAnt builds an ant over the stretched search space of g.
func testAnt(t *testing.T, g *dag.Graph, p Params, seed int64) *ant {
	t.Helper()
	maxLayers := p.MaxLayers
	if maxLayers == 0 {
		maxLayers = g.N()
	}
	s, err := Stretch(g, maxLayers, p.Stretch)
	if err != nil {
		t.Fatal(err)
	}
	L := s.NumLayers()
	if L == 0 {
		L = 1
	}
	tau := make([][]float64, g.N())
	for v := range tau {
		tau[v] = make([]float64, L)
		for i := range tau[v] {
			tau[v][i] = p.Tau0
		}
	}
	// newAnt takes τ^α; raise the rows like Colony.powTauSnapshot does so
	// the helper stays valid for α ≠ 1 too.
	powTau := tau
	if p.Alpha != 1 {
		powTau = make([][]float64, len(tau))
		for v, row := range tau {
			powTau[v] = make([]float64, len(row))
			for i, tv := range row {
				powTau[v][i] = math.Pow(tv, p.Alpha)
			}
		}
	}
	assign := s.Assignment()
	return newAnt(g, &p, powTau, L, assign, layerWidths(g, assign, L, p.DummyWidth), seed)
}

// exactHW computes the normalization-aware H+W of an ant's state from
// scratch.
func exactHW(a *ant) float64 {
	ref := layerWidths(a.g, a.assign, a.L, a.p.DummyWidth)
	occ := make([]int, a.L)
	for _, l := range a.assign {
		occ[l-1]++
	}
	h, w := 0, 0.0
	for i := 0; i < a.L; i++ {
		if occ[i] == 0 {
			continue
		}
		h++
		if ref[i] > w {
			w = ref[i]
		}
	}
	return float64(h) + w
}

func TestMoveMatchesRecompute(t *testing.T) {
	// Algorithm 5's incremental width updates must agree with a from-
	// scratch recomputation after any sequence of span-respecting moves,
	// including with non-unit vertex widths.
	rng := rand.New(rand.NewSource(80))
	for i := 0; i < 20; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if rng.Intn(2) == 0 {
				g.SetWidth(v, 0.5+2*rng.Float64())
			}
		}
		p := DefaultParams()
		p.DummyWidth = 0.25 + rng.Float64()
		a := testAnt(t, g, p, 1)
		for step := 0; step < 200; step++ {
			v := rng.Intn(g.N())
			lo, hi := a.span(v)
			a.move(v, lo+rng.Intn(hi-lo+1))
		}
		ref := layerWidths(g, a.assign, a.L, p.DummyWidth)
		for l := 0; l < a.L; l++ {
			if math.Abs(a.widths[l]-ref[l]) > 1e-6 {
				t.Fatalf("layer %d: incremental %g, recomputed %g", l+1, a.widths[l], ref[l])
			}
		}
		// Occupancy and h agree too.
		occ := make([]int, a.L)
		h := 0
		for _, l := range a.assign {
			occ[l-1]++
		}
		for i := range occ {
			if occ[i] != a.occ[i] {
				t.Fatalf("occ[%d] = %d, want %d", i, a.occ[i], occ[i])
			}
			if occ[i] > 0 {
				h++
			}
		}
		if h != a.h {
			t.Fatalf("h = %d, want %d", a.h, h)
		}
	}
}

func TestMoveToSameLayerNoOp(t *testing.T) {
	g := graphgen.Path(4)
	a := testAnt(t, g, DefaultParams(), 1)
	before := append([]float64(nil), a.widths...)
	a.move(2, a.assign[2])
	for i := range before {
		if a.widths[i] != before[i] {
			t.Fatal("no-op move changed widths")
		}
	}
}

func TestDeltaRangeExact(t *testing.T) {
	// The O(1)-per-candidate delta must equal the brute-force H+W change
	// (up to the deliberate dummy tie-break term).
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 15; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(30)), rng)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if rng.Intn(3) == 0 {
				g.SetWidth(v, 0.5+2*rng.Float64())
			}
		}
		p := DefaultParams()
		if i%2 == 1 {
			p.DummyWidth = 0.25 + rng.Float64()
		}
		a := testAnt(t, g, p, 1)
		// Shuffle a bit first so the state is not the pristine seed.
		for step := 0; step < 50; step++ {
			v := rng.Intn(g.N())
			lo, hi := a.span(v)
			a.move(v, lo+rng.Intn(hi-lo+1))
		}
		for trial := 0; trial < 30; trial++ {
			v := rng.Intn(g.N())
			lo, hi := a.span(v)
			deltas, _ := a.evalRange(v, lo, hi)
			l := lo + rng.Intn(hi-lo+1)

			before := exactHW(a)
			saveAssign := append([]int(nil), a.assign...)
			saveWidths := append([]float64(nil), a.widths...)
			saveOcc := append([]int(nil), a.occ...)
			saveH := a.h

			a.move(v, l)
			after := exactHW(a)

			// Strip the dummy tie-break term to compare pure H+W deltas.
			out := float64(a.g.OutDegree(v))
			in := float64(a.g.InDegree(v))
			created := float64(l-saveAssign[v]) * (out - in)
			if l < saveAssign[v] {
				created = float64(saveAssign[v]-l) * (in - out)
			}
			pure := deltas[l-lo] - 0.05*p.DummyWidth*created
			if math.Abs(pure-(after-before)) > 1e-6 {
				t.Fatalf("delta(%d->%d) = %g, exact = %g", saveAssign[v], l, pure, after-before)
			}

			// Restore the pre-move state directly (bypassing move), so the
			// incrementally maintained width maxima must be rebuilt.
			a.assign = saveAssign
			a.widths = saveWidths
			a.occ = saveOcc
			a.h = saveH
			a.rebuildMaxima()
		}
	}
}

func TestWalkKeepsValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for i := 0; i < 15; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, sel := range []SelectionMode{SelectPseudoRandom, SelectArgMax, SelectRoulette} {
			for _, heur := range []HeuristicMode{HeuristicObjective, HeuristicLayerWidth} {
				p := DefaultParams()
				p.Selection = sel
				p.Heuristic = heur
				a := testAnt(t, g, p, int64(i))
				a.walk()
				for _, e := range g.Edges() {
					if a.assign[e.U] <= a.assign[e.V] {
						t.Fatalf("%v/%v: edge (%d,%d) violated: %d <= %d",
							sel, heur, e.U, e.V, a.assign[e.U], a.assign[e.V])
					}
				}
				if a.objective <= 0 {
					t.Fatalf("objective = %g", a.objective)
				}
			}
		}
	}
}

// potential is the quantity an argmax ant descends on: H + W plus the
// dummy tie-break charge of the objective heuristic.
func potential(a *ant) float64 {
	dvc := 0
	for _, e := range a.g.Edges() {
		dvc += a.assign[e.U] - a.assign[e.V] - 1
	}
	return exactHW(a) + 0.05*a.p.DummyWidth*float64(dvc)
}

func TestWalkNeverWorsensWithArgMax(t *testing.T) {
	// With argmax selection, uniform pheromone and the objective
	// heuristic, staying put (Δ=0) is always available and every chosen
	// move has a strictly negative scored delta — so the potential
	// H + W + 0.05·wd·DVC can only decrease over a walk.
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 15; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(10+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.Selection = SelectArgMax
		a := testAnt(t, g, p, int64(i))
		before := potential(a)
		a.walk()
		after := potential(a)
		if after > before+1e-6 {
			t.Fatalf("argmax walk increased potential: %g -> %g", before, after)
		}
	}
}

func TestSpanRespectsNeighbours(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	a := testAnt(t, g, DefaultParams(), 1)
	for v := 0; v < g.N(); v++ {
		lo, hi := a.span(v)
		if lo > a.assign[v] || hi < a.assign[v] {
			t.Fatalf("span [%d,%d] excludes current %d", lo, hi, a.assign[v])
		}
		if lo < 1 || hi > a.L {
			t.Fatalf("span [%d,%d] outside [1,%d]", lo, hi, a.L)
		}
	}
}

func TestRouletteSurvivesScoreOverflow(t *testing.T) {
	// With extreme pheromone/α the individual scores τ^α·η^β can stay
	// finite while their sum overflows to +Inf. rouletteLayer must then
	// rescale and keep sampling — degrading to argmax would silently
	// change the selection mode for the whole span (and make α/β
	// effectively infinite). Three isolated vertices, three layers:
	// vertex 0 sits on layer 1, layers 2 and 3 are empty and tie on η.
	p := DefaultParams()
	p.Selection = SelectRoulette
	p.Heuristic = HeuristicLayerWidth
	p.MaxLayers = 3
	a := testAnt(t, dag.New(3), p, 1)
	for i := range a.powTau[0] {
		a.powTau[0][i] = 1e308 // finite, but any two sum to +Inf
	}
	seen := map[int]bool{}
	for trial := 0; trial < 200; trial++ {
		a.rng.Seed(int64(trial))
		seen[a.rouletteLayer(0, 1, 3, a.etaRange(0, 1, 3))] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("roulette degraded to a deterministic choice under overflow: saw %v", seen)
	}

	// An individually infinite score is genuinely degenerate: rescaling
	// cannot recover a distribution, so the argmax fallback must remain.
	a.powTau[0][1] = math.Inf(1)
	for trial := 0; trial < 50; trial++ {
		a.rng.Seed(int64(trial))
		if got := a.rouletteLayer(0, 1, 3, a.etaRange(0, 1, 3)); got != 2 {
			t.Fatalf("infinite score: picked layer %d, want argmax layer 2", got)
		}
	}
}

func TestWalkAllocationFree(t *testing.T) {
	// The reset+walk cycle — everything a tour does per ant — must not
	// touch the heap: the scratch buffers, the permutation and the width
	// maxima are all preallocated and reused.
	rng := rand.New(rand.NewSource(85))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []SelectionMode{SelectPseudoRandom, SelectArgMax, SelectRoulette} {
		p := DefaultParams()
		p.Selection = sel
		a := testAnt(t, g, p, 1)
		baseAssign := append([]int(nil), a.assign...)
		baseWidths := append([]float64(nil), a.widths...)
		seed := int64(0)
		allocs := testing.AllocsPerRun(20, func() {
			seed++
			a.reset(baseAssign, baseWidths, a.powTau, seed)
			a.walk()
		})
		if allocs > 0 {
			t.Errorf("%v: reset+walk allocates %.1f times per run, want 0", sel, allocs)
		}
	}
}

func TestEtaLayerWidthOrdering(t *testing.T) {
	// With the literal heuristic, wider layers must be strictly less
	// desirable.
	g := dag.New(3) // three isolated vertices
	p := DefaultParams()
	p.Heuristic = HeuristicLayerWidth
	p.MaxLayers = 3
	a := testAnt(t, g, p, 1)
	// All three vertices start on layer 1 (LPL of edgeless graph).
	etas := a.etaRange(0, 1, 3)
	if !(etas[1] > etas[0] && etas[2] > etas[0]) {
		t.Fatalf("empty layers not preferred: %v", etas)
	}
}
