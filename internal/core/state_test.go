package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
)

func vertexNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	return names
}

func TestMapByName(t *testing.T) {
	old := []string{"a", "b", "c", "b"}
	cur := []string{"c", "x", "a", "b"}
	got := MapByName(old, cur)
	// Duplicate "b" in old: the lowest index (1) wins; "x" is new.
	want := []int{2, -1, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MapByName = %v, want %v", got, want)
	}
}

func TestStateRemap(t *testing.T) {
	s := &State{
		L:         3,
		Tau:       [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
		Assign:    []int{1, 2, 3},
		Objective: 0.25,
	}
	// New graph: vertex 0 was old 2, vertex 1 is new, vertex 2 was old 0.
	got := s.Remap([]int{2, -1, 0}, 3)
	if got.L != 3 || got.Objective != 0.25 {
		t.Errorf("L/Objective not carried: %+v", got)
	}
	if !reflect.DeepEqual(got.Tau[0], []float64{7, 8, 9}) {
		t.Errorf("row 0 = %v, want old row 2", got.Tau[0])
	}
	if got.Tau[1] != nil {
		t.Errorf("new vertex row = %v, want nil (no information)", got.Tau[1])
	}
	if !reflect.DeepEqual(got.Tau[2], []float64{1, 2, 3}) {
		t.Errorf("row 2 = %v, want old row 0", got.Tau[2])
	}
	if !reflect.DeepEqual(got.Assign, []int{3, 0, 1}) {
		t.Errorf("Assign = %v, want [3 0 1]", got.Assign)
	}
	// Remapping must not alias the source.
	got.Tau[0][0] = -1
	if s.Tau[2][0] != 7 {
		t.Error("Remap aliased the source matrix")
	}
}

// TestWarmUnsteppedReproducesCold is the warm-start determinism golden:
// feeding a finished run's State back into a colony over the identical
// graph makes the cold run's best layering the warm colony's base, so a
// warm colony that steps zero tours finalizes to the cold result —
// byte-identical layering, bit-identical objective. This is the
// replay-safety property the serving layer's lineage-keyed result cache
// builds on.
func TestWarmUnsteppedReproducesCold(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.Seed = seed
		p.ExportState = true
		cold, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		if cold.State == nil {
			t.Fatal("ExportState set but Result.State is nil")
		}

		wp := p
		wp.Warm = cold.State
		c, err := NewColony(g, wp)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := c.Finalize() // zero tours: pure replay of the carried elite
		if err != nil {
			t.Fatal(err)
		}
		if warm.Objective != cold.Objective {
			t.Errorf("seed %d: warm replay objective %v, cold %v", seed, warm.Objective, cold.Objective)
		}
		if warm.Layering.String() != cold.Layering.String() {
			t.Errorf("seed %d: warm replay layering diverges:\n%s\n%s",
				seed, warm.Layering, cold.Layering)
		}
		if warm.Height != cold.Height || warm.Width != cold.Width {
			t.Errorf("seed %d: warm replay H/W (%d,%g), cold (%d,%g)",
				seed, warm.Height, warm.Width, cold.Height, cold.Width)
		}
	}
}

// TestWarmRunDeterministic: a warm run is a pure function of (graph,
// Params, Warm) — same state, same seed, same bytes — at any worker
// count.
func TestWarmRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Seed = 99
	p.ExportState = true
	cold, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		wp := p
		wp.Warm = cold.State
		wp.Workers = workers
		res, err := Run(context.Background(), g, wp)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%s|%v|%d|%v", res.Layering, res.Objective, res.BestTour, res.History)
	}
	first := run(1)
	for _, workers := range []int{1, 2, 4} {
		if got := run(workers); got != first {
			t.Errorf("warm run diverges at %d workers:\n%s\n%s", workers, got, first)
		}
	}
}

// TestWarmNeverWorseThanCarriedState: the warm run's objective is at
// least the carried state's (the elite becomes the incumbent), even
// across a graph edit when the edited elite remains a valid layering.
func TestWarmNeverWorseThanCarriedState(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Seed = 5
	p.ExportState = true
	cold, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	wp := p
	wp.Warm = cold.State
	wp.Tours = 1
	warm, err := Run(context.Background(), g, wp)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Objective < cold.Objective {
		t.Errorf("warm objective %v below carried %v", warm.Objective, cold.Objective)
	}
}

// TestWarmStartToursToTarget is the PR's headline acceptance: across a
// one-edit graph delta, a warm-started colony reaches the objective a
// cold colony needs its full tour budget for, in at most a third of the
// tours — on both the sparse (short-edge) and pipeline (long-edge,
// dummy-dominated) corpus families. The seeds are pinned; the numbers
// feed EXPERIMENTS.md "Warm-start vs cold".
func TestWarmStartToursToTarget(t *testing.T) {
	const coldTours = 30
	families := []struct {
		name string
		gen  func(rng *rand.Rand) (*dag.Graph, error)
	}{
		{"sparse", func(rng *rand.Rand) (*dag.Graph, error) {
			return graphgen.Generate(graphgen.DefaultConfig(50), rng)
		}},
		{"pipeline", func(rng *rand.Rand) (*dag.Graph, error) {
			return graphgen.Pipeline(50, 0.4, rng)
		}},
	}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			g0, err := fam.gen(rng)
			if err != nil {
				t.Fatal(err)
			}
			names0 := vertexNames(g0.N())
			g1, names1, _, err := graphgen.Mutate(g0, names0, 1, rng)
			if err != nil {
				t.Fatal(err)
			}

			p := DefaultParams()
			p.Seed = 23
			p.Tours = coldTours

			// The target: what a cold run achieves on the edited graph
			// with the full budget.
			coldRef, err := Run(context.Background(), g1, p)
			if err != nil {
				t.Fatal(err)
			}

			// The carried state: a finished run on the pre-edit graph.
			sp := p
			sp.ExportState = true
			src, err := Run(context.Background(), g0, sp)
			if err != nil {
				t.Fatal(err)
			}

			wp := p
			wp.Tours = coldTours / 3
			wp.Warm = src.State.Remap(MapByName(names0, names1), g1.N())
			warm, err := Run(context.Background(), g1, wp)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Objective < coldRef.Objective {
				t.Errorf("%s: warm run (%d tours) objective %v below cold target %v (%d tours)",
					fam.name, wp.Tours, warm.Objective, coldRef.Objective, coldTours)
			}
			t.Logf("%s: cold %d tours -> %.6f; warm %d tours -> %.6f",
				fam.name, coldTours, coldRef.Objective, wp.Tours, warm.Objective)
		})
	}
}

// TestWarmTolerantOfGarbageState: hand-built states with wrong shapes,
// non-finite values and invalid assignments must not crash a colony or
// corrupt its layering.
func TestWarmTolerantOfGarbageState(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := graphgen.Generate(graphgen.DefaultConfig(20), rng)
	if err != nil {
		t.Fatal(err)
	}
	states := []*State{
		{},
		{L: 3},
		{L: 1000, Tau: [][]float64{{math.NaN(), math.Inf(1), -5, 0}}, Assign: []int{999}, Objective: 0.5},
		{L: 2, Tau: make([][]float64, 100), Assign: make([]int, 100), Objective: math.Inf(1)},
		{L: 4, Tau: [][]float64{nil, {}, {1}}, Assign: []int{-3, 7, 0}, Objective: math.NaN()},
	}
	for i, s := range states {
		p := DefaultParams()
		p.Seed = int64(i)
		p.Tours = 2
		p.Warm = s
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		if err := res.Layering.Validate(); err != nil {
			t.Errorf("state %d: invalid layering: %v", i, err)
		}
	}
}

// FuzzStateRemap: for arbitrary state shapes, values and mappings,
// Remap never panics and a colony warm-started from the remapped state
// always produces a valid layering.
func FuzzStateRemap(f *testing.F) {
	f.Add(int64(1), 5, 10, 8, 1.0)
	f.Add(int64(2), 0, 3, 0, -1.0)
	f.Add(int64(3), 200, 1, 50, math.Inf(1))
	f.Fuzz(func(t *testing.T, seed int64, sL, sN, mapN int, obj float64) {
		if sL < 0 || sL > 300 || sN < 0 || sN > 300 || mapN < 0 || mapN > 300 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		s := &State{L: sL, Objective: obj, Tau: make([][]float64, sN), Assign: make([]int, sN)}
		for v := 0; v < sN; v++ {
			if rng.Intn(5) == 0 {
				continue // nil row
			}
			row := make([]float64, rng.Intn(sL+2))
			for i := range row {
				switch rng.Intn(6) {
				case 0:
					row[i] = math.NaN()
				case 1:
					row[i] = math.Inf(1 - 2*rng.Intn(2))
				case 2:
					row[i] = -rng.Float64()
				default:
					row[i] = rng.Float64() * 10
				}
			}
			s.Tau[v] = row
			s.Assign[v] = rng.Intn(2*sL+3) - sL - 1
		}
		mapping := make([]int, mapN)
		for i := range mapping {
			mapping[i] = rng.Intn(sN+3) - 2 // includes -2, -1 and out-of-range
		}

		g, err := graphgen.Generate(graphgen.DefaultConfig(mapN+1), rng)
		if err != nil {
			t.Skip()
		}
		remapped := s.Remap(mapping, g.N())
		p := DefaultParams()
		p.Seed = seed
		p.Tours = 1
		p.Ants = 2
		p.Warm = remapped
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatalf("warm run failed: %v", err)
		}
		if err := res.Layering.Validate(); err != nil {
			t.Errorf("invalid layering from fuzzed warm state: %v", err)
		}
	})
}

// BenchmarkWarmStart measures a warm-started run against the serving
// defaults (a third of the cold tour budget, stall-tours 3) at
// increasing graph-edit distance from the carried state. The cold run
// it amortises is BenchmarkWarmStartCold.
func benchmarkWarmStart(b *testing.B, edits int) {
	rng := rand.New(rand.NewSource(31))
	g0, err := graphgen.Generate(graphgen.DefaultConfig(60), rng)
	if err != nil {
		b.Fatal(err)
	}
	names0 := vertexNames(g0.N())
	g1, names1 := g0, names0
	if edits > 0 {
		g1, names1, _, err = graphgen.Mutate(g0, names0, edits, rng)
		if err != nil {
			b.Fatal(err)
		}
	}
	p := DefaultParams()
	p.Seed = 61
	p.Tours = 30
	p.ExportState = true
	src, err := Run(context.Background(), g0, p)
	if err != nil {
		b.Fatal(err)
	}
	wp := DefaultParams()
	wp.Seed = 61
	wp.Tours = 10
	wp.StopAfterStagnantTours = 3
	wp.Warm = src.State.Remap(MapByName(names0, names1), g1.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), g1, wp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmStartIdentical(b *testing.B) { benchmarkWarmStart(b, 0) }
func BenchmarkWarmStartOneEdge(b *testing.B)   { benchmarkWarmStart(b, 1) }
func BenchmarkWarmStartTenEdges(b *testing.B)  { benchmarkWarmStart(b, 10) }

// BenchmarkWarmStartCold is the reference the WarmStart benchmarks are
// read against: the same graph family and budget, no carried state.
func BenchmarkWarmStartCold(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	g, err := graphgen.Generate(graphgen.DefaultConfig(60), rng)
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultParams()
	p.Seed = 61
	p.Tours = 30
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), g, p); err != nil {
			b.Fatal(err)
		}
	}
}
