package core

import (
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
)

func TestStretchBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for i := 0; i < 25; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(5+rng.Intn(50)), rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Stretch(g, g.N(), StretchBetween)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumLayers() != g.N() {
			t.Fatalf("stretched layers = %d, want %d", s.NumLayers(), g.N())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("stretched layering invalid: %v", err)
		}
		// The stretched layering collapses back to the LPL one.
		lpl, _ := longestpath.Layer(g)
		c := s.Clone()
		c.Normalize()
		for v := 0; v < g.N(); v++ {
			if c.Layer(v) != lpl.Layer(v) {
				t.Fatal("stretch changed relative layer structure")
			}
		}
	}
}

func TestStretchPreservesOrder(t *testing.T) {
	g := graphgen.Path(5) // LPL: layers 1..5
	s, err := Stretch(g, 13, StretchBetween)
	if err != nil {
		t.Fatal(err)
	}
	// 8 new layers over 4 gaps: 2 each; old layer k moves to k+2(k-1).
	want := []int{1, 4, 7, 10, 13}
	for v := 0; v < 5; v++ {
		if s.Layer(v) != want[v] {
			t.Fatalf("Layer(%d) = %d, want %d", v, s.Layer(v), want[v])
		}
	}
}

func TestStretchUnevenGaps(t *testing.T) {
	g := graphgen.Path(3) // LPL: 3 layers, 2 gaps
	s, err := Stretch(g, 6, StretchBetween)
	if err != nil {
		t.Fatal(err)
	}
	// 3 new layers over 2 gaps: first gap 2, second 1.
	if s.Layer(0) != 1 || s.Layer(1) != 4 || s.Layer(2) != 6 {
		t.Fatalf("layers = %d,%d,%d want 1,4,6", s.Layer(0), s.Layer(1), s.Layer(2))
	}
}

func TestStretchEndsMode(t *testing.T) {
	g := graphgen.Path(3)
	s, err := Stretch(g, 7, StretchEnds)
	if err != nil {
		t.Fatal(err)
	}
	// 4 new layers: 2 below, 2 above; old layers shift by 2.
	if s.Layer(0) != 3 || s.Layer(1) != 4 || s.Layer(2) != 5 {
		t.Fatalf("layers = %d,%d,%d want 3,4,5", s.Layer(0), s.Layer(1), s.Layer(2))
	}
	if s.NumLayers() != 7 {
		t.Fatalf("NumLayers = %d, want 7", s.NumLayers())
	}
}

func TestStretchNoOp(t *testing.T) {
	g := graphgen.Path(4)
	lpl, _ := longestpath.Layer(g)
	s := StretchLayering(lpl, 3, StretchBetween) // fewer than current
	for v := 0; v < 4; v++ {
		if s.Layer(v) != lpl.Layer(v) {
			t.Fatal("no-op stretch moved vertices")
		}
	}
}

func TestStretchSingleLayerLPL(t *testing.T) {
	// Edgeless graph: LPL has one layer and no gaps; both modes must
	// still enlarge the search space without crashing.
	g := dag.New(4)
	for _, mode := range []StretchMode{StretchBetween, StretchEnds} {
		s, err := Stretch(g, 4, mode)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumLayers() != 4 {
			t.Fatalf("%v: NumLayers = %d, want 4", mode, s.NumLayers())
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStretchDoesNotModifyInput(t *testing.T) {
	g := graphgen.Path(4)
	lpl, _ := longestpath.Layer(g)
	orig := lpl.Assignment()
	StretchLayering(lpl, 10, StretchBetween)
	for v, l := range lpl.Assignment() {
		if l != orig[v] {
			t.Fatal("StretchLayering mutated input")
		}
	}
}

func TestStretchCyclic(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, err := Stretch(g, 2, StretchBetween); err == nil {
		t.Fatal("Stretch accepted cyclic graph")
	}
}
