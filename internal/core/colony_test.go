package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
)

func TestRunValidLayering(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for i := 0; i < 10; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(10+rng.Intn(50)), rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), g, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Layering.Validate(); err != nil {
			t.Fatalf("colony layering invalid: %v", err)
		}
		if res.Layering.NumLayers() != res.Layering.Height() {
			t.Fatal("colony layering not normalized")
		}
		if res.Height != res.Layering.Height() {
			t.Fatalf("Result.Height %d != layering height %d", res.Height, res.Layering.Height())
		}
		if res.Objective <= 0 || res.Objective > 1 {
			t.Fatalf("objective = %g", res.Objective)
		}
		if len(res.History) != DefaultParams().Tours {
			t.Fatalf("history length = %d", len(res.History))
		}
		if res.BestTour < 0 || res.BestTour > DefaultParams().Tours {
			t.Fatalf("BestTour = %d", res.BestTour)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Seed = 12345
	a, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if a.Layering.Layer(v) != b.Layering.Layer(v) {
			t.Fatal("same seed produced different layerings")
		}
	}
	if a.Objective != b.Objective {
		t.Fatal("same seed produced different objectives")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g, err := graphgen.Generate(graphgen.DefaultConfig(50), rng)
	if err != nil {
		t.Fatal(err)
	}
	seq := DefaultParams()
	seq.Seed = 7
	seq.Workers = 1
	par := seq
	par.Workers = 4
	a, err := Run(context.Background(), g, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), g, par)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if a.Layering.Layer(v) != b.Layering.Layer(v) {
			t.Fatal("parallel run diverged from sequential")
		}
	}
}

// TestRunDeterministicAcrossWorkers is the contract of Params.Workers: the
// full result — layering, objective, best tour and the complete per-tour
// history — is bitwise-identical at any worker count, including the
// GOMAXPROCS default (Workers=0), for both heuristics and all three
// selection modes.
//
// The expected values are golden: they were captured from the code as of
// PR 1 (before the allocation-free hot-path rewrite), so they also pin the
// colony's output bit-for-bit across refactors of the walk internals. The
// assignment hash is FNV-1a over the decimal layers, matching goldenHash.
// If an intentional behaviour change invalidates them, re-capture by
// running each configuration at Workers=1 and printing
// math.Float64bits(res.Objective), res.BestTour, res.Height,
// math.Float64bits(res.Width) and goldenHash(res.Layering).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	g, err := graphgen.Generate(graphgen.DefaultConfig(60), rng)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		heur       HeuristicMode
		sel        SelectionMode
		objective  uint64 // math.Float64bits of Result.Objective
		bestTour   int
		height     int
		width      uint64 // math.Float64bits of Result.Width
		assignHash uint64
	}{
		{HeuristicObjective, SelectPseudoRandom, 0x3f9e1e1e1e1e1e1e, 2, 13, 0x4035000000000000, 0xf33279d1c81329bf},
		{HeuristicObjective, SelectArgMax, 0x3f9d41d41d41d41d, 0, 10, 0x4039000000000000, 0xa6bc5c52b602f6e4},
		{HeuristicObjective, SelectRoulette, 0x3f9e1e1e1e1e1e1e, 8, 13, 0x4035000000000000, 0x89311749aa853178},
		{HeuristicLayerWidth, SelectPseudoRandom, 0x3f9d41d41d41d41d, 0, 10, 0x4039000000000000, 0xa6bc5c52b602f6e4},
		{HeuristicLayerWidth, SelectArgMax, 0x3f9d41d41d41d41d, 0, 10, 0x4039000000000000, 0xa6bc5c52b602f6e4},
		{HeuristicLayerWidth, SelectRoulette, 0x3f9d41d41d41d41d, 0, 10, 0x4039000000000000, 0xa6bc5c52b602f6e4},
	}
	for _, gc := range golden {
		gc := gc
		t.Run(fmt.Sprintf("%v/%v", gc.heur, gc.sel), func(t *testing.T) {
			base := DefaultParams()
			base.Seed = 424242
			base.Workers = 1
			base.Heuristic = gc.heur
			base.Selection = gc.sel
			want, err := Run(context.Background(), g, base)
			if err != nil {
				t.Fatal(err)
			}
			if got := math.Float64bits(want.Objective); got != gc.objective {
				t.Errorf("objective bits 0x%016x, golden 0x%016x (%g)", got, gc.objective, want.Objective)
			}
			if want.BestTour != gc.bestTour {
				t.Errorf("best tour %d, golden %d", want.BestTour, gc.bestTour)
			}
			if want.Height != gc.height {
				t.Errorf("height %d, golden %d", want.Height, gc.height)
			}
			if got := math.Float64bits(want.Width); got != gc.width {
				t.Errorf("width bits 0x%016x, golden 0x%016x (%g)", got, gc.width, want.Width)
			}
			if got := goldenHash(want.Layering); got != gc.assignHash {
				t.Errorf("assignment hash 0x%016x, golden 0x%016x", got, gc.assignHash)
			}
			for _, workers := range []int{0, 2, 8} {
				p := base
				p.Workers = workers
				got, err := Run(context.Background(), g, p)
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.N(); v++ {
					if got.Layering.Layer(v) != want.Layering.Layer(v) {
						t.Fatalf("Workers=%d: layer of v%d = %d, want %d",
							workers, v, got.Layering.Layer(v), want.Layering.Layer(v))
					}
				}
				if got.Objective != want.Objective {
					t.Fatalf("Workers=%d: objective %g, want %g", workers, got.Objective, want.Objective)
				}
				if got.BestTour != want.BestTour {
					t.Fatalf("Workers=%d: best tour %d, want %d", workers, got.BestTour, want.BestTour)
				}
				if len(got.History) != len(want.History) {
					t.Fatalf("Workers=%d: history length %d, want %d", workers, len(got.History), len(want.History))
				}
				for i := range want.History {
					if got.History[i] != want.History[i] {
						t.Fatalf("Workers=%d: tour %d stats %+v, want %+v",
							workers, i+1, got.History[i], want.History[i])
					}
				}
			}
		})
	}
}

// goldenHash is FNV-1a over the comma-separated decimal layer assignment,
// the fingerprint the golden table above was captured with.
func goldenHash(l *layering.Layering) uint64 {
	h := fnv.New64a()
	for v := 0; v < l.Graph().N(); v++ {
		fmt.Fprintf(h, "%d,", l.Layer(v))
	}
	return h.Sum64()
}

// TestPowTauSnapshotNonUnitAlpha covers the α ≠ 1 branch of
// powTauSnapshot: the snapshot must hold τ^α for the *current* matrix
// every time it is taken (it is refreshed per tour, after pheromone
// updates), and the ant's scoring must read it.
func TestPowTauSnapshotNonUnitAlpha(t *testing.T) {
	g := graphgen.Path(4)
	p := DefaultParams()
	p.Alpha = 2.5
	c, err := NewColony(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for v, row := range c.tau {
		for i := range row {
			row[i] = 0.5 + float64(v) + 0.1*float64(i)
		}
	}
	pt := c.powTauSnapshot()
	for v, row := range c.tau {
		for i, tau := range row {
			if want := math.Pow(tau, p.Alpha); pt[v][i] != want {
				t.Fatalf("snapshot[%d][%d] = %g, want %g", v, i, pt[v][i], want)
			}
		}
	}
	// A later snapshot must reflect pheromone updates, not the first state.
	c.evaporate()
	pt = c.powTauSnapshot()
	for v, row := range c.tau {
		for i, tau := range row {
			if want := math.Pow(tau, p.Alpha); pt[v][i] != want {
				t.Fatalf("stale snapshot[%d][%d] = %g, want %g", v, i, pt[v][i], want)
			}
		}
	}
	// And scoring multiplies the snapshot entry by η^β.
	a := newAnt(g, &c.p, pt, c.L, c.baseAssign, c.baseWidths, 1)
	eta := 0.7
	if got, want := a.scoreWith(2, 3, eta), pt[2][2]*math.Pow(eta, p.Beta); got != want {
		t.Fatalf("scoreWith = %g, want %g", got, want)
	}
}

// TestRunDeterministicNonUnitAlpha runs the worker-count determinism
// contract through the α ≠ 1 snapshot-refresh path and a non-integer β
// (the math.Pow fallback of powEta), which the golden matrix — pinned at
// the paper's α = 1, β = 3 — does not reach.
func TestRunDeterministicNonUnitAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultParams()
	base.Seed = 31415
	base.Alpha = 3
	base.Beta = 2.5
	base.Workers = 1
	want, err := Run(context.Background(), g, base)
	if err != nil {
		t.Fatal(err)
	}
	if want.Objective <= 0 || want.Objective > 1 {
		t.Fatalf("objective = %g", want.Objective)
	}
	for _, workers := range []int{0, 8} {
		p := base
		p.Workers = workers
		got, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != want.Objective {
			t.Fatalf("Workers=%d: objective %g, want %g", workers, got.Objective, want.Objective)
		}
		for v := 0; v < g.N(); v++ {
			if got.Layering.Layer(v) != want.Layering.Layer(v) {
				t.Fatalf("Workers=%d: layer of v%d = %d, want %d",
					workers, v, got.Layering.Layer(v), want.Layering.Layer(v))
			}
		}
		for i := range want.History {
			if got.History[i] != want.History[i] {
				t.Fatalf("Workers=%d: tour %d stats diverged", workers, i+1)
			}
		}
	}
}

// TestRunConcurrentColonies exercises the worker pool from several
// concurrent colony runs at once; under `go test -race` this is the data
// race check for the shared pheromone snapshot and the base layering.
func TestRunConcurrentColonies(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Seed = 5
	p.Workers = 8
	want, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(context.Background(), g, p)
			if err != nil {
				errs[i] = err
				return
			}
			if res.Objective != want.Objective {
				errs[i] = fmt.Errorf("concurrent run objective %g, want %g", res.Objective, want.Objective)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunNeverWorseThanLPL(t *testing.T) {
	// The stretched LPL seed is kept as the incumbent, so the colony's
	// objective can never fall below the seed's — the final H+W is at
	// most the LPL layering's.
	rng := rand.New(rand.NewSource(93))
	for i := 0; i < 10; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(10+rng.Intn(60)), rng)
		if err != nil {
			t.Fatal(err)
		}
		lpl, err := longestpath.Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		lplHW := float64(lpl.Height()) + lpl.WidthIncludingDummies(1)
		p := DefaultParams()
		p.Seed = int64(i)
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		acoHW := float64(res.Height) + res.Layering.WidthIncludingDummies(1)
		if acoHW > lplHW+1e-9 {
			t.Fatalf("colony H+W %.1f worse than LPL %.1f", acoHW, lplHW)
		}
	}
}

func TestRunImprovesOnWideGraphs(t *testing.T) {
	// A complete bipartite graph layered by LPL has width a+b... LPL puts
	// the b sinks on layer 1 and a sources on layer 2 (width max(a,b));
	// the colony should find a narrower, taller arrangement.
	g := graphgen.CompleteBipartite(2, 12)
	lpl, _ := longestpath.Layer(g)
	p := DefaultParams()
	p.Tours = 20
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	lplHW := float64(lpl.Height()) + lpl.WidthIncludingDummies(1)
	acoHW := float64(res.Height) + res.Layering.WidthIncludingDummies(1)
	if acoHW > lplHW {
		t.Fatalf("colony H+W %.1f did not improve on LPL %.1f", acoHW, lplHW)
	}
}

func TestRunEdgeCases(t *testing.T) {
	// Empty graph.
	res, err := Run(context.Background(), dag.New(0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Layering.Graph().N() != 0 {
		t.Fatal("empty graph result wrong")
	}
	// Single vertex.
	res, err = Run(context.Background(), dag.New(1), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Layering.Layer(0) != 1 || res.Height != 1 {
		t.Fatalf("single vertex: layer=%d height=%d", res.Layering.Layer(0), res.Height)
	}
	// Edgeless graph: spreading over layers can lower H+W below n+1.
	res, err = Run(context.Background(), dag.New(9), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	hw := float64(res.Height) + res.Width
	if hw > 10 {
		t.Fatalf("edgeless H+W = %g, want <= 10", hw)
	}
	// Single edge.
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	res, err = Run(context.Background(), g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Height != 2 {
		t.Fatalf("single edge height = %d", res.Height)
	}
	// Path graph: only one layering exists.
	res, err = Run(context.Background(), graphgen.Path(5), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Height != 5 || res.Width != 1 {
		t.Fatalf("path: H=%d W=%g", res.Height, res.Width)
	}
}

func TestRunCyclicInput(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, err := Run(context.Background(), g, DefaultParams()); err == nil {
		t.Fatal("cyclic input accepted")
	}
}

func TestRunInvalidParams(t *testing.T) {
	g := dag.New(1)
	p := DefaultParams()
	p.Rho = 2
	if _, err := Run(context.Background(), g, p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestRunMaxLayersCap(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	lpl, _ := longestpath.Layer(g)
	p := DefaultParams()
	p.MaxLayers = lpl.NumLayers() + 2
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layering.Height() > p.MaxLayers {
		t.Fatalf("height %d exceeds MaxLayers %d", res.Layering.Height(), p.MaxLayers)
	}
}

func TestEvaporateAndDeposit(t *testing.T) {
	g := graphgen.Path(3)
	p := DefaultParams()
	c, err := NewColony(g, p)
	if err != nil {
		t.Fatal(err)
	}
	c.evaporate()
	for v := range c.tau {
		for _, tau := range c.tau[v] {
			if tau != p.Tau0*(1-p.Rho) {
				t.Fatalf("tau after evaporation = %g", tau)
			}
		}
	}
	a := newAnt(g, &p, c.tau, c.L, c.baseAssign, c.baseWidths, 1)
	a.walk()
	before := c.tau[0][a.assign[0]-1]
	c.deposit(a)
	after := c.tau[0][a.assign[0]-1]
	if after <= before {
		t.Fatal("deposit did not increase pheromone")
	}
}

func TestTourHistoryMonotoneBest(t *testing.T) {
	// The inherited base never regresses: each tour's best objective is
	// at least... not guaranteed tour-to-tour under exploration, but the
	// final best must equal the max over history.
	rng := rand.New(rand.NewSource(95))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, h := range res.History {
		if h.BestObjective > best {
			best = h.BestObjective
		}
	}
	// The result is the best of the seed and all walks, so it is at least
	// the best tour objective; equality holds when some walk beat the seed.
	if res.Objective < best {
		t.Fatalf("Objective %g below max history best %g", res.Objective, best)
	}
	if res.BestTour > 0 && res.Objective != best {
		t.Fatalf("BestTour=%d but Objective %g != history best %g", res.BestTour, res.Objective, best)
	}
}

func TestPheromoneConcentrationRises(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Tours = 12
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	first := res.History[0].PheromoneConcentration
	last := res.History[len(res.History)-1].PheromoneConcentration
	if first <= 0 || first > 1 || last <= 0 || last > 1 {
		t.Fatalf("concentrations outside (0,1]: %g, %g", first, last)
	}
	if last <= first {
		t.Fatalf("pheromone concentration did not rise: %g -> %g", first, last)
	}
}

func TestLayerConvenience(t *testing.T) {
	g := graphgen.Path(3)
	l, err := Layer(context.Background(), g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
