package core

import (
	"math"
)

// State is the compact, serializable search state of a finished (or
// stepped) colony: the pheromone matrix, the best stretched-space
// assignment found and its objective. It is what warm-starting carries
// from one run to the next — POST /layer's warm cache, the island run
// frame, a client that knows its lineage — so, like island.Elite, it is
// wire-shaped: float64 and int fields round-trip bit-exactly through
// encoding/json, keeping a warm start bitwise-deterministic whether the
// state crossed a network or not.
//
// A State is meaningful only together with the graph it was exported
// from: Tau[v] is the pheromone row of vertex v, Assign[v] its layer in
// the exporting colony's stretched space of L layers. Carrying a state
// across a graph edit is Remap's job (with MapByName supplying the
// vertex correspondence); feeding it to a colony is Params.Warm.
type State struct {
	// L is the stretched layer count of the exporting colony's search
	// space — the width of every Tau row and the upper bound of Assign.
	L int `json:"l"`
	// Tau holds one pheromone row per vertex. A nil row means "no
	// information" (an added vertex after Remap): the warm colony keeps
	// its flat Tau0 prior there.
	Tau [][]float64 `json:"tau"`
	// Assign is the exporting colony's best stretched-space assignment
	// (1-based layers). After Remap, 0 marks a vertex with no carried
	// layer (an added vertex); the warm colony falls back to its own
	// LPL seed layer for it.
	Assign []int `json:"assign,omitempty"`
	// Objective is Assign's f = 1/(H+W), measured by the exporting run.
	Objective float64 `json:"objective,omitempty"`
}

// Clone returns a deep copy, so a cached State can be handed to a
// concurrent colony without aliasing.
func (s *State) Clone() *State {
	if s == nil {
		return nil
	}
	out := &State{L: s.L, Objective: s.Objective}
	if s.Tau != nil {
		out.Tau = make([][]float64, len(s.Tau))
		for v, row := range s.Tau {
			if row != nil {
				out.Tau[v] = append([]float64(nil), row...)
			}
		}
	}
	if s.Assign != nil {
		out.Assign = append([]int(nil), s.Assign...)
	}
	return out
}

// MemoryBytes estimates the state's resident size — the warm cache's
// eviction weight.
func (s *State) MemoryBytes() int64 {
	if s == nil {
		return 0
	}
	n := int64(64) // struct + slice headers
	for _, row := range s.Tau {
		n += 24 + 8*int64(len(row))
	}
	n += 8 * int64(len(s.Assign))
	return n
}

// MapByName builds the vertex correspondence between two graphs from
// their per-vertex name slices: mapping[newV] is the index of the vertex
// named newNames[newV] in oldNames, or -1 when the name is new. When a
// name appears more than once in oldNames the lowest index wins, so the
// mapping — and everything downstream of it — is deterministic.
func MapByName(oldNames, newNames []string) []int {
	byName := make(map[string]int, len(oldNames))
	for i, name := range oldNames {
		if _, ok := byName[name]; !ok {
			byName[name] = i
		}
	}
	mapping := make([]int, len(newNames))
	for v, name := range newNames {
		if i, ok := byName[name]; ok {
			mapping[v] = i
		} else {
			mapping[v] = -1
		}
	}
	return mapping
}

// Remap carries the state across a graph delta onto a graph of n
// vertices: mapping[newV] names the old vertex that newV corresponds to
// (-1 for an added vertex, whose row becomes nil and whose assignment
// becomes 0 — "no information"). Removed vertices simply have no entry
// in mapping, so their rows are dropped. Layer-count changes are the
// warm colony's business (NewColony pads a narrower row with Tau0 and
// ignores columns beyond its own L), so Remap copies rows verbatim.
// The result is a pure function of (state, mapping, n): carrying the
// same state across the same delta always yields the same bytes.
func (s *State) Remap(mapping []int, n int) *State {
	out := &State{L: s.L, Objective: s.Objective, Tau: make([][]float64, n)}
	if s.Assign != nil {
		out.Assign = make([]int, n)
	}
	for v := 0; v < n && v < len(mapping); v++ {
		old := mapping[v]
		if old < 0 || old >= len(s.Tau) {
			continue
		}
		if row := s.Tau[old]; row != nil {
			out.Tau[v] = append([]float64(nil), row...)
		}
		if out.Assign != nil && old < len(s.Assign) {
			out.Assign[v] = s.Assign[old]
		}
	}
	return out
}

// ExportState snapshots the colony's current search state: a deep copy
// of the pheromone matrix plus the best assignment so far and its
// objective. Exporting is valid at any point of an incremental run; the
// serving layer exports after Finalize, the island engine at the end of
// an epoch loop.
func (c *Colony) ExportState() *State {
	if c.g.N() == 0 {
		return &State{L: c.L}
	}
	tau := make([][]float64, len(c.tau))
	for v, row := range c.tau {
		tau[v] = append([]float64(nil), row...)
	}
	assign, obj := c.Best()
	return &State{L: c.L, Tau: tau, Assign: assign, Objective: obj}
}

// applyWarm seeds a fresh colony from Params.Warm, between the flat Tau0
// initialisation and the first tour. Three steps, all deterministic and
// all tolerant of a state whose dimensions disagree with the graph (the
// remapper produces exact shapes, but a hand-built state must not crash
// a colony):
//
//  1. Pheromone rows: every carried row overwrites the Tau0 prior
//     column-by-column — unchanged vertices keep their columns; a row
//     narrower than L (the space widened) keeps Tau0 in the new
//     columns; columns beyond L (the space narrowed) are clamped away.
//     Carried values are sanitised (non-finite or non-positive entries
//     fall back to Tau0) and the carried prefix is renormalised to mean
//     Tau0 — layer choice is row-local, so per-row scaling preserves
//     every preference the old run learned while restoring the scale
//     TauMin/TauMax and the deposit amounts were tuned for. The MAX-MIN
//     clamp then applies as after any update.
//  2. Elite deposit: the carried assignment (unmapped or out-of-range
//     vertices patched with the colony's own LPL seed layer) receives a
//     Q·objective deposit, exactly like a migrated elite.
//  3. Incumbent and base: when the patched elite is a valid layering
//     and scores at least as well as the stretched LPL seed, it becomes
//     the base layering of tour 1 — the warm run resumes from the old
//     run's best solution instead of re-deriving it, which is where the
//     tours-to-target saving comes from. Otherwise (the delta broke the
//     layering) the LPL seed stands and the warm information acts
//     through the pheromone bias alone.
func (c *Colony) applyWarm() {
	s := c.p.Warm
	if s == nil || c.g.N() == 0 {
		return
	}
	for v := range c.tau {
		if v >= len(s.Tau) {
			break
		}
		src := s.Tau[v]
		if len(src) == 0 {
			continue
		}
		dst := c.tau[v]
		n := len(dst)
		if len(src) < n {
			n = len(src)
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			val := src[i]
			if math.IsNaN(val) || math.IsInf(val, 0) || val <= 0 {
				val = c.p.Tau0
			}
			dst[i] = val
			sum += val
		}
		if mean := sum / float64(n); mean > 0 && !math.IsInf(mean, 0) {
			scale := c.p.Tau0 / mean
			for i := 0; i < n; i++ {
				dst[i] *= scale
			}
		}
	}
	c.clampPheromone()

	if len(s.Assign) == 0 || s.Objective <= 0 || math.IsNaN(s.Objective) || math.IsInf(s.Objective, 0) {
		return
	}
	elite := make([]int, c.g.N())
	for v := range elite {
		l := 0
		if v < len(s.Assign) {
			l = s.Assign[v]
		}
		if l < 1 || l > c.L {
			l = c.baseAssign[v]
		}
		elite[v] = l
	}
	amount := c.p.Q * s.Objective
	for v, l := range elite {
		c.tau[v][l-1] += amount
	}
	c.clampPheromone()

	if !c.validAssignment(elite) {
		return
	}
	if c.scoreAssignment(elite) >= c.scoreAssignment(c.baseAssign) {
		c.baseAssign = elite
		c.baseWidths = layerWidths(c.g, elite, c.L, c.p.DummyWidth)
	}
}

// validAssignment reports whether assign is a proper layering of the
// colony's graph in its stretched space: every layer in [1, L] and every
// edge pointing strictly downward (assign[U] > assign[V]).
func (c *Colony) validAssignment(assign []int) bool {
	if len(assign) != c.g.N() {
		return false
	}
	for _, l := range assign {
		if l < 1 || l > c.L {
			return false
		}
	}
	for _, e := range c.g.Edges() {
		if assign[e.U] <= assign[e.V] {
			return false
		}
	}
	return true
}

// scoreAssignment measures f = 1/(H+W) of an assignment through the same
// ant machinery ensureStarted scores the seed with, so warm-base
// selection and incumbent scoring use bit-identical arithmetic.
func (c *Colony) scoreAssignment(assign []int) float64 {
	widths := layerWidths(c.g, assign, c.L, c.p.DummyWidth)
	a := newAnt(c.g, &c.p, c.tau, c.L, assign, widths, 0)
	a.scoreWalk()
	return a.objective
}
