// Package core implements the paper's contribution: the Ant Colony
// Optimization layering algorithm for DAGs (Andreev, Healy, Nikolov,
// IPPS 2007; Algorithms 3, 4 and 5).
//
// The algorithm seeds the search with a Longest-Path Layering, stretches it
// by inserting empty layers between the LPL layers until the number of
// layers equals the number of vertices (§V-A), and then runs a colony of
// ants for a fixed number of tours. During a walk each ant visits the
// vertices in random order and reassigns every vertex to the layer of its
// span that maximises the random proportional rule
//
//	p(v, l) ∝ τ[v][l]^α · η[v][l]^β,   η[v][l] = 1 / W(l)
//
// where W(l) is the current width of layer l including the dummy vertices
// induced by edges crossing it. Layer widths are maintained incrementally
// per Algorithm 5. After each tour the pheromone matrix evaporates, the
// tour's best ant deposits pheromone on its assignments, and its layering
// becomes the base layering of the next tour. The objective maximised is
// f = 1/(H+W): compact layerings of small height plus width.
//
// Runs are cancellable: Layer, Run and Colony.RunContext take a
// context.Context and stop within one ant walk per worker of it being
// cancelled (see RunContext). A run that is not cancelled is unaffected by
// the context — the layering stays a pure, bitwise-deterministic function
// of Params.
package core

import (
	"fmt"
)

// SelectionMode chooses how an ant picks a layer from the probabilities of
// the random proportional rule.
type SelectionMode int

const (
	// SelectPseudoRandom is the ACS pseudo-random proportional rule: with
	// probability Q0 the ant takes the layer maximising τ^α·η^β, otherwise
	// it samples proportionally. This is the default. The paper's
	// Algorithm 4 line 6 shows a bare max, but a pure argmax makes the
	// colony stagnate after two tours and leaves α and β without any
	// effect (argmax is invariant under the monotone exponents), which
	// contradicts the α/β sensitivity the paper reports in §VIII; some
	// exploration must have been present in the original implementation.
	SelectPseudoRandom SelectionMode = iota
	// SelectArgMax always picks the layer with the highest probability
	// (the literal reading of Algorithm 4). Kept for ablations.
	SelectArgMax
	// SelectRoulette always samples proportionally, the classic Ant
	// System behaviour. Kept for ablations.
	SelectRoulette
)

func (m SelectionMode) String() string {
	switch m {
	case SelectPseudoRandom:
		return "pseudo-random"
	case SelectArgMax:
		return "argmax"
	case SelectRoulette:
		return "roulette"
	default:
		return fmt.Sprintf("SelectionMode(%d)", int(m))
	}
}

// StretchMode chooses where the layers added to the LPL layering go.
type StretchMode int

const (
	// StretchBetween inserts the new layers uniformly between the LPL
	// layers (paper Fig. 2, the approach the paper argues for).
	StretchBetween StretchMode = iota
	// StretchEnds splits the new layers between the top and the bottom of
	// the LPL layering (paper Fig. 1, the rejected alternative; kept for
	// the ablation benchmarks).
	StretchEnds
)

func (m StretchMode) String() string {
	switch m {
	case StretchBetween:
		return "between"
	case StretchEnds:
		return "ends"
	default:
		return fmt.Sprintf("StretchMode(%d)", int(m))
	}
}

// HeuristicMode chooses the heuristic information η an ant uses.
type HeuristicMode int

const (
	// HeuristicObjective makes η the exact desirability of a reassignment
	// under the paper's objective: η = exp(-Δ) with Δ the change in H+W
	// the move causes (measured after empty-layer removal), including the
	// dummy-vertex bookkeeping of Algorithm 5. This is the default. The
	// paper's §IV-E requires ants to maintain exactly this information
	// ("calculate the number of dummy vertices a particular assignment
	// would cause", "update the values of the heuristic matrix to reflect
	// each new assignment"), and it is the only reading consistent with
	// the reported results: with the bare layer-width reciprocal the
	// colony drifts vertices across the stretched search space and the
	// dummy count explodes, contradicting Fig. 6 (the ant colony keeps
	// roughly the LPL dummy count). See DESIGN.md §4.
	HeuristicObjective HeuristicMode = iota
	// HeuristicLayerWidth is the literal formula of §IV-D, η = 1/W(l)
	// with the current layer width. Kept for the ablation benchmarks.
	HeuristicLayerWidth
)

func (m HeuristicMode) String() string {
	switch m {
	case HeuristicObjective:
		return "objective"
	case HeuristicLayerWidth:
		return "layer-width"
	default:
		return fmt.Sprintf("HeuristicMode(%d)", int(m))
	}
}

// Params configures a colony run. The zero value is not valid; start from
// DefaultParams.
type Params struct {
	// Ants is the colony size.
	Ants int
	// Tours is the number of tours (outermost loop of Algorithm 4). The
	// paper used 10 in its experiments.
	Tours int
	// Alpha weighs the pheromone trail and Beta the heuristic information
	// in the random proportional rule. The paper's tuning (§VIII) found
	// (α, β) = (3, 5) best but adopted (1, 3) for its better
	// runtime/quality trade-off; DefaultParams follows the adopted pair.
	Alpha, Beta float64
	// Rho is the pheromone evaporation rate in (0, 1].
	Rho float64
	// Tau0 is the initial pheromone on every (vertex, layer) coupling.
	Tau0 float64
	// Q scales the pheromone deposited by a tour's best ant: the deposit
	// is Q·f where f is the ant's objective value.
	Q float64
	// DummyWidth is the width nd_width of a dummy vertex (§V-A). The
	// paper's tuning chose 1.0.
	DummyWidth float64
	// Selection picks the layer-choice rule (see SelectionMode).
	Selection SelectionMode
	// Q0 is the exploitation probability of the pseudo-random
	// proportional rule; ignored by the other selection modes.
	Q0 float64
	// Stretch picks where the added layers go (paper: between).
	Stretch StretchMode
	// Heuristic picks the heuristic information (see HeuristicMode).
	Heuristic HeuristicMode
	// MaxLayers caps the stretched search space. Zero means the paper's
	// choice: as many layers as vertices.
	MaxLayers int
	// WidthBound, when positive, enforces a layer resource capacity: an
	// ant never moves a vertex onto a layer whose width (including the
	// dummy adjustments of the move) would exceed the bound. This is the
	// "appropriately defined neighbourhood" of §IV-C. When no layer of
	// the span qualifies the vertex stays put, so feasibility is never
	// lost. Zero disables the bound.
	WidthBound float64
	// TauMin and TauMax, when positive, clamp the pheromone matrix after
	// every update (the MAX-MIN Ant System extension of Stützle and Hoos,
	// listed by the paper's ACO reference [4]); they prevent the
	// stagnation §IV-D warns about for strong pheromone weighting. Zero
	// disables the respective bound. TauMin must not exceed TauMax.
	TauMin, TauMax float64
	// StopAfterStagnantTours ("stall tours"), when positive, ends the run
	// early once this many consecutive tours fail to improve the best
	// objective — the adaptive stopping rule suggested by the paper's
	// conclusion for taming the colony's running time, and the knob that
	// turns a warm start into actual wall-clock savings (a warmed colony
	// typically reaches its target in the first tours and then stalls).
	// Zero runs all Tours.
	StopAfterStagnantTours int
	// Warm, when non-nil, warm-starts the colony from a prior run's
	// exported State: the carried pheromone rows replace the flat Tau0
	// prior (renormalised per row and clamped to TauMin/TauMax), the
	// carried elite is deposited before tour 0, and — when it is still a
	// valid layering — becomes the incumbent and the base layering of
	// tour 1. See Colony.applyWarm for the exact rules. The state must
	// live in this graph's vertex index space; carry it across a graph
	// edit with MapByName + State.Remap first. Nil (the default) is a
	// cold start: the colony is bit-identical to one built before this
	// field existed. The warm run remains a pure function of (graph,
	// Params, Warm): same state, same delta, same seed — same bytes.
	Warm *State
	// ExportState asks Finalize to attach the colony's final State to
	// the Result, so the serving layer can cache it for the next warm
	// start. Off by default: exporting deep-copies the pheromone matrix.
	ExportState bool
	// Workers is the number of goroutines constructing ant tours
	// concurrently within a tour. Zero (the default) uses one worker per
	// available CPU (GOMAXPROCS); one runs the colony sequentially. The
	// result is bitwise-identical for a fixed Seed at any Workers value:
	// every ant's RNG is derived independently from (Seed, tour, ant
	// index), the pheromone matrix is frozen while a tour's ants walk,
	// and evaporation/deposit are applied after the pool's barrier.
	// Context cancellation (Colony.RunContext) is checked per ant walk on
	// every worker, so a cancelled colony stops within one walk per
	// worker regardless of this setting.
	Workers int
	// Seed seeds the run: all ant RNGs are derived from it. Runs with
	// equal Params are reproducible.
	Seed int64
}

// DefaultParams returns the configuration used for the paper's main
// experiments: 10 tours, α=1, β=3, unit dummy width, argmax selection and
// stretching between the LPL layers.
func DefaultParams() Params {
	return Params{
		Ants:       10,
		Tours:      10,
		Alpha:      1,
		Beta:       3,
		Rho:        0.5,
		Tau0:       1,
		Q:          1,
		DummyWidth: 1,
		Selection:  SelectPseudoRandom,
		Q0:         0.9,
		Stretch:    StretchBetween,
		Seed:       1,
	}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	switch {
	case p.Ants < 1:
		return fmt.Errorf("core: Ants must be >= 1, got %d", p.Ants)
	case p.Tours < 1:
		return fmt.Errorf("core: Tours must be >= 1, got %d", p.Tours)
	case p.Alpha < 0:
		return fmt.Errorf("core: Alpha must be >= 0, got %g", p.Alpha)
	case p.Beta < 0:
		return fmt.Errorf("core: Beta must be >= 0, got %g", p.Beta)
	case p.Rho <= 0 || p.Rho > 1:
		return fmt.Errorf("core: Rho must be in (0,1], got %g", p.Rho)
	case p.Tau0 <= 0:
		return fmt.Errorf("core: Tau0 must be > 0, got %g", p.Tau0)
	case p.Q <= 0:
		return fmt.Errorf("core: Q must be > 0, got %g", p.Q)
	case p.DummyWidth <= 0:
		return fmt.Errorf("core: DummyWidth must be > 0, got %g", p.DummyWidth)
	case p.Selection != SelectPseudoRandom && p.Selection != SelectArgMax && p.Selection != SelectRoulette:
		return fmt.Errorf("core: unknown selection mode %d", int(p.Selection))
	case p.Q0 < 0 || p.Q0 > 1:
		return fmt.Errorf("core: Q0 must be in [0,1], got %g", p.Q0)
	case p.Stretch != StretchBetween && p.Stretch != StretchEnds:
		return fmt.Errorf("core: unknown stretch mode %d", int(p.Stretch))
	case p.Heuristic != HeuristicObjective && p.Heuristic != HeuristicLayerWidth:
		return fmt.Errorf("core: unknown heuristic mode %d", int(p.Heuristic))
	case p.MaxLayers < 0:
		return fmt.Errorf("core: MaxLayers must be >= 0, got %d", p.MaxLayers)
	case p.WidthBound < 0:
		return fmt.Errorf("core: WidthBound must be >= 0, got %g", p.WidthBound)
	case p.TauMin < 0 || p.TauMax < 0:
		return fmt.Errorf("core: TauMin/TauMax must be >= 0, got %g/%g", p.TauMin, p.TauMax)
	case p.TauMin > 0 && p.TauMax > 0 && p.TauMin > p.TauMax:
		return fmt.Errorf("core: TauMin %g exceeds TauMax %g", p.TauMin, p.TauMax)
	case p.StopAfterStagnantTours < 0:
		return fmt.Errorf("core: StopAfterStagnantTours must be >= 0, got %d", p.StopAfterStagnantTours)
	case p.Workers < 0:
		return fmt.Errorf("core: Workers must be >= 0, got %d", p.Workers)
	}
	return nil
}
