package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"antlayer/internal/graphgen"
)

// TestStepSlicingMatchesRun pins the incremental API's contract: driving a
// colony in one-tour slices and finalizing produces bitwise the result
// RunContext computes in one call, because tour numbering (and with it
// every ant seed) continues across StepContext calls.
func TestStepSlicingMatchesRun(t *testing.T) {
	g, err := graphgen.Generate(graphgen.DefaultConfig(50), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Tours = 7
	p.Seed = 21

	whole, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewColony(g, p)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := c.StepContext(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
		if steps > p.Tours {
			t.Fatalf("stepping did not terminate after %d tours", steps)
		}
	}
	sliced, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(whole.Objective) != math.Float64bits(sliced.Objective) {
		t.Errorf("objective diverged: %v vs %v", whole.Objective, sliced.Objective)
	}
	if fmt.Sprint(whole.Layering.Layers()) != fmt.Sprint(sliced.Layering.Layers()) {
		t.Errorf("layering diverged:\n%v\n%v", whole.Layering.Layers(), sliced.Layering.Layers())
	}
	if len(whole.History) != len(sliced.History) || whole.BestTour != sliced.BestTour {
		t.Errorf("history diverged: %d/%d tours, best %d/%d",
			len(whole.History), len(sliced.History), whole.BestTour, sliced.BestTour)
	}
}

// TestBestBeforeStepping: a colony that never stepped reports the
// stretched LPL seed as its best, and Finalize returns a valid layering
// for it.
func TestBestBeforeStepping(t *testing.T) {
	g, err := graphgen.Generate(graphgen.DefaultConfig(20), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewColony(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	assign, obj := c.Best()
	if len(assign) != g.N() || obj <= 0 {
		t.Fatalf("seed best: %d assignments, objective %g", len(assign), obj)
	}
	if c.ToursRun() != 0 {
		t.Fatalf("ToursRun = %d before stepping", c.ToursRun())
	}
	res, err := c.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTour != 0 {
		t.Fatalf("unstepped finalize: best tour %d, want 0 (seed stood)", res.BestTour)
	}
	if err := res.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFinalizeDoesNotCorruptBest: Finalize normalizes a copy, so the
// stretched-space assignment Best() reports is unchanged — the pair
// (assignment, objective) stays valid DepositElite input afterwards.
func TestFinalizeDoesNotCorruptBest(t *testing.T) {
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewColony(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.StepContext(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	before, obj := c.Best()
	if _, err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	after, objAfter := c.Best()
	if fmt.Sprint(before) != fmt.Sprint(after) || obj != objAfter {
		t.Fatalf("Finalize mutated Best():\nbefore %v\nafter  %v", before, after)
	}
	if err := c.DepositElite(after, objAfter); err != nil {
		t.Fatalf("post-Finalize elite rejected: %v", err)
	}
}

// TestDepositElite exercises the migration hook: valid deposits raise the
// pheromone on exactly the deposited couplings; malformed ones are
// rejected.
func TestDepositElite(t *testing.T) {
	g, err := graphgen.Generate(graphgen.DefaultConfig(12), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	c, err := NewColony(g, p)
	if err != nil {
		t.Fatal(err)
	}
	assign, obj := c.Best()
	before := make([]float64, g.N())
	for v := range before {
		before[v] = c.tau[v][assign[v]-1]
	}
	if err := c.DepositElite(assign, obj); err != nil {
		t.Fatal(err)
	}
	for v := range before {
		want := before[v] + p.Q*obj
		if got := c.tau[v][assign[v]-1]; got != want {
			t.Errorf("tau[%d][%d] = %g, want %g", v, assign[v]-1, got, want)
		}
	}

	if err := c.DepositElite(assign[:1], obj); err == nil {
		t.Error("short assignment accepted")
	}
	if err := c.DepositElite(assign, 0); err == nil {
		t.Error("zero objective accepted")
	}
	bad := append([]int(nil), assign...)
	bad[0] = c.NumLayers() + 1
	if err := c.DepositElite(bad, obj); err == nil {
		t.Error("out-of-range layer accepted")
	}

	// The clamp applies to elite deposits too.
	cp := p
	cp.TauMax = 1.5
	c2, err := NewColony(g, cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.DepositElite(assign, obj); err != nil {
		t.Fatal(err)
	}
	for v, l := range assign {
		if c2.tau[v][l-1] > cp.TauMax {
			t.Fatalf("tau[%d] = %g exceeds TauMax %g after elite deposit", v, c2.tau[v][l-1], cp.TauMax)
		}
	}
}

// TestSubSeedIndependence: distinct streams (and the master itself) get
// pairwise distinct, non-negative seeds.
func TestSubSeed(t *testing.T) {
	master := int64(1)
	seen := map[int64]int{master: -1}
	for i := 0; i < 64; i++ {
		s := SubSeed(master, i)
		if s < 0 {
			t.Fatalf("SubSeed(%d, %d) = %d is negative", master, i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed collision: streams %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Error("different masters map stream 0 to the same seed")
	}
}
