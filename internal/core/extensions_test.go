package core

import (
	"context"
	"math/rand"
	"testing"

	"antlayer/internal/graphgen"
)

func TestTauBoundsValidation(t *testing.T) {
	p := DefaultParams()
	p.TauMin, p.TauMax = 2, 1
	if err := p.Validate(); err == nil {
		t.Fatal("TauMin > TauMax accepted")
	}
	p = DefaultParams()
	p.TauMin = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative TauMin accepted")
	}
	p = DefaultParams()
	p.StopAfterStagnantTours = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative StopAfterStagnantTours accepted")
	}
}

func TestTauBoundsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.TauMin, p.TauMax = 0.2, 2.0
	c, err := NewColony(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for v := range c.tau {
		for _, tau := range c.tau[v] {
			if tau < p.TauMin-1e-12 || tau > p.TauMax+1e-12 {
				t.Fatalf("tau = %g outside [%g, %g]", tau, p.TauMin, p.TauMax)
			}
		}
	}
}

func TestTauBoundsKeepResultValid(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	g, err := graphgen.Generate(graphgen.DefaultConfig(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.TauMin, p.TauMax = 0.1, 5
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStopping(t *testing.T) {
	// A path graph admits exactly one layering, so every tour after the
	// first is stagnant and the run must stop after the configured
	// patience.
	g := graphgen.Path(6)
	p := DefaultParams()
	p.Tours = 50
	p.StopAfterStagnantTours = 3
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) >= 50 {
		t.Fatalf("ran %d tours despite stagnation", len(res.History))
	}
	if len(res.History) < 3 {
		t.Fatalf("stopped after only %d tours", len(res.History))
	}
	if res.Height != 6 {
		t.Fatalf("height = %d", res.Height)
	}
}

func TestEarlyStoppingDisabledRunsAllTours(t *testing.T) {
	g := graphgen.Path(4)
	p := DefaultParams()
	p.Tours = 7
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 7 {
		t.Fatalf("history = %d tours, want 7", len(res.History))
	}
}
