package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// TourStats records what one tour achieved, for convergence analysis.
type TourStats struct {
	Tour          int     // 1-based tour number
	BestObjective float64 // objective of the tour's best ant
	MeanObjective float64 // mean objective over the colony
	BestHeight    int
	BestWidth     float64
	// PheromoneConcentration measures how focused the pheromone matrix is
	// after the tour's update: the mean over vertices of the largest
	// row share max_l τ[v][l] / Σ_l τ[v][l]. It starts at 1/L (uniform)
	// and approaches 1 as the colony converges on one layering — the
	// stagnation §IV-D warns about is visible as a fast rise.
	PheromoneConcentration float64
}

// Result is the outcome of a colony run.
type Result struct {
	// Layering is the best layering found, normalized (empty layers
	// removed, §VI note).
	Layering *layering.Layering
	// Objective is f = 1/(H+W) of the best walk, measured in the stretched
	// search space before normalization.
	Objective float64
	// Height and Width are the layering's height and width including
	// dummy vertices at the run's DummyWidth, after normalization.
	Height int
	Width  float64
	// BestTour is the 1-based tour that produced the best walk, or 0 when
	// no walk improved on the stretched LPL seed.
	BestTour int
	// History holds per-tour statistics.
	History []TourStats
	// State is the colony's final search state, present only when
	// Params.ExportState asked for it — the input of the next warm start.
	State *State
}

// Colony conducts the search process (paper §VI: the AntColony class). A
// Colony is single-use: construct with NewColony, then either call Run
// (or RunContext) once, or drive the run incrementally — StepContext in
// slices of tours, optionally DepositElite between slices (the island
// model's migration hook), Finalize once at the end. Run is exactly
// StepContext over all tours followed by Finalize, so the two styles
// produce bitwise-identical results.
type Colony struct {
	g   *dag.Graph
	p   Params
	L   int         // stretched layer count
	tau [][]float64 // pheromone matrix, tau[v][l-1]

	baseAssign []int     // layering inherited by the next tour
	baseWidths []float64 // its layer widths

	ants   []*ant      // reused across tours; allocated on the first tour
	powTau [][]float64 // scratch for the per-tour τ^α snapshot (α ≠ 1 only)

	// Incremental run state, initialised lazily by ensureStarted so a
	// freshly constructed colony costs nothing until it steps.
	started       bool
	tour          int // next tour to run, 1-based
	stagnant      int // consecutive non-improving tours
	stopped       bool
	bestObjective float64
	bestAssign    []int
	bestTour      int
	history       []TourStats
}

// NewColony validates the parameters and runs the initialisation phase
// (Algorithm 3): LPL, stretch, pheromone matrix. The input must be acyclic.
func NewColony(g *dag.Graph, p Params) (*Colony, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxLayers := p.MaxLayers
	if maxLayers == 0 {
		maxLayers = g.N()
	}
	stretched, err := Stretch(g, maxLayers, p.Stretch)
	if err != nil {
		return nil, err
	}
	L := stretched.NumLayers()
	if L == 0 { // empty graph
		L = 1
	}
	c := &Colony{
		g:          g,
		p:          p,
		L:          L,
		baseAssign: stretched.Assignment(),
		baseWidths: layerWidths(g, stretched.Assignment(), L, p.DummyWidth),
	}
	c.tau = make([][]float64, g.N())
	for v := range c.tau {
		row := make([]float64, L)
		for i := range row {
			row[i] = p.Tau0
		}
		c.tau[v] = row
	}
	// Warm start (Params.Warm): overlay the carried pheromone rows and
	// elite onto the flat prior before any tour runs. A nil Warm leaves
	// the matrix exactly as initialised above — the cold path is
	// bit-neutral.
	c.applyWarm()
	return c, nil
}

// layerWidths computes from scratch the width of every layer 1..L including
// dummy contributions: the reference implementation Algorithm 5's
// incremental updates are tested against.
func layerWidths(g *dag.Graph, assign []int, L int, dummyWidth float64) []float64 {
	w := make([]float64, L)
	for v := 0; v < g.N(); v++ {
		w[assign[v]-1] += g.Width(v)
	}
	for _, e := range g.Edges() {
		for l := assign[e.V] + 1; l <= assign[e.U]-1; l++ {
			w[l-1] += dummyWidth
		}
	}
	return w
}

// Run executes the layering phase (Algorithm 4) and returns the best
// layering found across all tours. It is RunContext with a background
// context: the run cannot be cancelled.
func (c *Colony) Run() (*Result, error) {
	return c.RunContext(context.Background())
}

// RunContext executes the layering phase (Algorithm 4) under ctx and
// returns the best layering found across all tours.
//
// Cancellation is checked at the top of every tour and before every ant
// walk inside a tour (the walk itself — one pass over the vertices — runs
// to completion), so a cancelled colony stops within one walk per worker.
// When ctx is cancelled or its deadline expires before the run completes,
// RunContext discards the partial tour and returns nil and an error
// wrapping ctx.Err(); use errors.Is(err, context.DeadlineExceeded) /
// context.Canceled to tell a timeout from a shutdown. Cancellation never
// perturbs determinism: a run that completes returns the same layering
// whether or not a (never-fired) cancel was armed, because the checks read
// the context without touching any ant's RNG.
func (c *Colony) RunContext(ctx context.Context) (*Result, error) {
	if _, err := c.StepContext(ctx, c.p.Tours); err != nil {
		return nil, err
	}
	return c.Finalize()
}

// ensureStarted scores the stretched LPL seed as the incumbent solution: a
// tour whose ants all explore uphill cannot make the final result worse
// than the layering the colony started from. BestTour stays 0 when no walk
// beats the seed.
func (c *Colony) ensureStarted() {
	if c.started {
		return
	}
	c.started = true
	c.tour = 1
	// The seed ant never walks or scores candidates, so the raw pheromone
	// matrix stands in for the τ^α snapshot its constructor asks for.
	seed := newAnt(c.g, &c.p, c.tau, c.L, c.baseAssign, c.baseWidths, 0)
	seed.scoreWalk()
	c.bestObjective = seed.objective
	c.bestAssign = append([]int(nil), c.baseAssign...)
}

// StepContext runs up to n further tours under ctx and reports whether the
// run is over — all Params.Tours executed, or the stagnation rule fired.
// Tour numbering continues across calls, so splitting a run into slices
// changes no ant's seed: StepContext(ctx, Tours) and Tours calls of
// StepContext(ctx, 1) walk the very same ants. Cancellation semantics are
// those of RunContext; a colony whose step was cancelled is dead (the
// interrupted tour was discarded, but the run cannot resume).
func (c *Colony) StepContext(ctx context.Context, n int) (done bool, err error) {
	if c.g.N() == 0 {
		c.stopped = true
		return true, nil
	}
	c.ensureStarted()
	for k := 0; k < n && !c.stopped; k++ {
		t := c.tour
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("core: colony run aborted before tour %d: %w", t, err)
		}
		ants := c.runTour(ctx, t)
		// A tour interrupted mid-flight holds a mix of walked and stale
		// ants; discard it rather than let it update the pheromone matrix.
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("core: colony run aborted during tour %d: %w", t, err)
		}

		// The tour's best ant: highest objective, ties to the lowest index
		// so the outcome does not depend on scheduling.
		bestIdx := 0
		meanObj := 0.0
		for i, a := range ants {
			meanObj += a.objective
			if a.objective > ants[bestIdx].objective {
				bestIdx = i
			}
		}
		best := ants[bestIdx]

		// Evaporation, then the best ant deposits on its assignments
		// (Algorithm 4, lines 16-17).
		c.evaporate()
		c.deposit(best)
		c.clampPheromone()

		c.history = append(c.history, TourStats{
			Tour:                   t,
			BestObjective:          best.objective,
			MeanObjective:          meanObj / float64(len(ants)),
			BestHeight:             best.height,
			BestWidth:              best.width,
			PheromoneConcentration: c.pheromoneConcentration(),
		})

		// The best ant's layering (and therefore its heuristic state)
		// seeds the next tour (line 18).
		c.baseAssign = append(c.baseAssign[:0], best.assign...)
		c.baseWidths = append(c.baseWidths[:0], best.widths...)

		c.tour++
		if best.objective > c.bestObjective {
			c.bestObjective = best.objective
			c.bestAssign = append(c.bestAssign[:0], best.assign...)
			c.bestTour = t
			c.stagnant = 0
		} else {
			c.stagnant++
			if c.p.StopAfterStagnantTours > 0 && c.stagnant >= c.p.StopAfterStagnantTours {
				c.stopped = true
			}
		}
		if c.tour > c.p.Tours {
			c.stopped = true
		}
	}
	return c.stopped, nil
}

// Finalize normalizes the best layering found so far into a Result. Call
// it once, after stepping is over; a colony that never stepped returns the
// stretched LPL seed.
func (c *Colony) Finalize() (*Result, error) {
	if c.g.N() == 0 {
		res := &Result{Layering: layering.FromAssignment(c.g, nil), Objective: 0}
		if c.p.ExportState {
			res.State = c.ExportState()
		}
		return res, nil
	}
	c.ensureStarted()
	// The layering gets its own copy: FromAssignment aliases the slice
	// and Normalize remaps it in place, which must not corrupt the
	// stretched-space assignment a later Best()/DepositElite reads.
	l := layering.FromAssignment(c.g, append([]int(nil), c.bestAssign...))
	l.SetNumLayers(c.L)
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("core: colony produced invalid layering: %w", err)
	}
	l.Normalize()
	res := &Result{
		Layering:  l,
		Objective: c.bestObjective,
		Height:    l.Height(),
		Width:     l.WidthIncludingDummies(c.p.DummyWidth),
		BestTour:  c.bestTour,
		History:   c.history,
	}
	if c.p.ExportState {
		res.State = c.ExportState()
	}
	return res, nil
}

// Best returns a copy of the best layer assignment found so far (in the
// stretched search space, 1-based layers) and its objective f = 1/(H+W).
// Before any tour has run it is the stretched LPL seed. The island model
// reads it at migration barriers; feeding it to another colony over the
// same graph and stretch is what DepositElite is for.
func (c *Colony) Best() (assign []int, objective float64) {
	if c.g.N() == 0 {
		return nil, 0
	}
	c.ensureStarted()
	return append([]int(nil), c.bestAssign...), c.bestObjective
}

// NumLayers returns the stretched layer count L of the colony's search
// space — the space Best assignments live in.
func (c *Colony) NumLayers() int { return c.L }

// ToursRun returns how many tours the colony has executed so far.
func (c *Colony) ToursRun() int { return len(c.history) }

// DepositElite adds pheromone along an externally supplied layering — the
// elite-migration hook of the island model. The deposit is Q·objective on
// every (vertex, layer) coupling followed by the MAX-MIN clamp, exactly
// like a tour-best deposit, so a migrated elite biases the colony towards
// the neighbour's solution without overwriting its own search state. The
// assignment must live in this colony's stretched search space (one
// 1-based layer per vertex); islands over the same graph and parameters
// share that space by construction.
func (c *Colony) DepositElite(assign []int, objective float64) error {
	if len(assign) != c.g.N() {
		return fmt.Errorf("core: elite deposit: assignment covers %d vertices, graph has %d", len(assign), c.g.N())
	}
	if objective <= 0 {
		return fmt.Errorf("core: elite deposit: objective must be > 0, got %g", objective)
	}
	for v, l := range assign {
		if l < 1 || l > c.L {
			return fmt.Errorf("core: elite deposit: vertex %d on layer %d outside [1,%d]", v, l, c.L)
		}
	}
	amount := c.p.Q * objective
	for v, l := range assign {
		c.tau[v][l-1] += amount
	}
	c.clampPheromone()
	return nil
}

// workers resolves Params.Workers to the pool size actually used for one
// tour: 0 means one goroutine per available CPU (GOMAXPROCS), anything
// else is taken literally, and the pool never exceeds the colony size.
func (c *Colony) workers() int {
	w := c.p.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.p.Ants {
		w = c.p.Ants
	}
	return w
}

// powTauSnapshot returns the τ^α matrix ants score against during one
// tour. With α = 1 (the default) it is the pheromone matrix itself
// (x^1 = x exactly); otherwise the colony-owned scratch matrix is
// refreshed, so math.Pow runs once per (vertex, layer) per tour instead of
// once per candidate evaluation.
func (c *Colony) powTauSnapshot() [][]float64 {
	if c.p.Alpha == 1 {
		return c.tau
	}
	if c.powTau == nil {
		c.powTau = make([][]float64, len(c.tau))
		for v := range c.powTau {
			c.powTau[v] = make([]float64, c.L)
		}
	}
	for v, row := range c.tau {
		dst := c.powTau[v]
		for i, tau := range row {
			dst[i] = math.Pow(tau, c.p.Alpha)
		}
	}
	return c.powTau
}

// runTour evaluates the whole colony against the current base layering,
// fanning the ants of tour t out over the worker pool. The ant objects are
// allocated once and reset for every tour, so a tour performs no heap
// allocation beyond the first.
//
// Tour construction is embarrassingly parallel: during a tour the
// pheromone matrix is an immutable snapshot (evaporation and the best
// ant's deposit happen in Run, strictly after the pool's barrier), the
// base layering is only read, and each ant owns its assignment copy, its
// scratch buffers and its RNG. Each ant's seed is derived from the master
// seed and the ant's (tour, index) coordinates — see antSeed — so the
// layering constructed by ant i of tour t is a pure function of Params and
// the base layering, and the tour's outcome is bitwise-identical at any
// worker count and under any goroutine schedule.
// A cancelled ctx stops the tour early: the dispatch loop stops handing
// out ant indices and every worker re-checks the context before each walk,
// so at most one in-flight walk per worker completes after cancellation.
// RunContext discards the interrupted tour, so the skipped ants' stale
// state is never observed.
func (c *Colony) runTour(ctx context.Context, t int) []*ant {
	powTau := c.powTauSnapshot()
	if c.ants == nil {
		c.ants = make([]*ant, c.p.Ants)
	}
	ants := c.ants
	// walkAnt prepares ant i for tour t — allocating it on the first tour
	// (newAnt resets internally), resetting it afterwards — and walks it.
	// Each index is handled by exactly one worker, so lazy construction
	// needs no synchronisation.
	walkAnt := func(i int) {
		seed := antSeed(c.p.Seed, t, i)
		if ants[i] == nil {
			ants[i] = newAnt(c.g, &c.p, powTau, c.L, c.baseAssign, c.baseWidths, seed)
		} else {
			ants[i].reset(c.baseAssign, c.baseWidths, powTau, seed)
		}
		ants[i].walk()
	}
	workers := c.workers()
	if workers <= 1 {
		for i := range ants {
			if ctx.Err() != nil {
				break
			}
			walkAnt(i)
		}
		return ants
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain the channel so the dispatcher never blocks
				}
				walkAnt(i)
			}
		}()
	}
	for i := range ants {
		if ctx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	return ants
}

// evaporate applies τ ← (1-ρ)·τ to every element.
func (c *Colony) evaporate() {
	f := 1 - c.p.Rho
	for _, row := range c.tau {
		for i := range row {
			row[i] *= f
		}
	}
}

// deposit adds Q·f of pheromone to every (vertex, layer) coupling of the
// best ant's solution.
func (c *Colony) deposit(best *ant) {
	amount := c.p.Q * best.objective
	for v, l := range best.assign {
		c.tau[v][l-1] += amount
	}
}

// pheromoneConcentration is the mean over vertices of the dominant layer's
// pheromone share; see TourStats.PheromoneConcentration.
func (c *Colony) pheromoneConcentration() float64 {
	if len(c.tau) == 0 {
		return 0
	}
	total := 0.0
	for _, row := range c.tau {
		sum, max := 0.0, 0.0
		for _, tau := range row {
			sum += tau
			if tau > max {
				max = tau
			}
		}
		if sum > 0 {
			total += max / sum
		}
	}
	return total / float64(len(c.tau))
}

// clampPheromone applies the MAX-MIN Ant System bounds when configured.
func (c *Colony) clampPheromone() {
	if c.p.TauMin == 0 && c.p.TauMax == 0 {
		return
	}
	for _, row := range c.tau {
		for i, tau := range row {
			if c.p.TauMin > 0 && tau < c.p.TauMin {
				row[i] = c.p.TauMin
			}
			if c.p.TauMax > 0 && tau > c.p.TauMax {
				row[i] = c.p.TauMax
			}
		}
	}
}

// Layer is the package-level convenience: build a colony with the given
// parameters and run it under ctx, returning only the layering. See
// RunContext for cancellation semantics.
func Layer(ctx context.Context, g *dag.Graph, p Params) (*layering.Layering, error) {
	res, err := Run(ctx, g, p)
	if err != nil {
		return nil, err
	}
	return res.Layering, nil
}

// Run builds a colony and runs it under ctx. See RunContext for
// cancellation semantics.
func Run(ctx context.Context, g *dag.Graph, p Params) (*Result, error) {
	c, err := NewColony(g, p)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx)
}
