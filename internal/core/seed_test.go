package core

import "testing"

func TestAntSeedDeterministic(t *testing.T) {
	if antSeed(1, 1, 0) != antSeed(1, 1, 0) {
		t.Fatal("antSeed is not a pure function")
	}
}

func TestAntSeedNonNegative(t *testing.T) {
	for _, master := range []int64{0, 1, -1, 1 << 62, -(1 << 62)} {
		for tour := 1; tour <= 3; tour++ {
			for ant := 0; ant < 3; ant++ {
				if s := antSeed(master, tour, ant); s < 0 {
					t.Fatalf("antSeed(%d, %d, %d) = %d, want >= 0", master, tour, ant, s)
				}
			}
		}
	}
}

// TestAntSeedDistinct checks that seeds collide for no (tour, ant) pair in
// a realistically sized run, and that changing the master seed reshuffles
// every one of them.
func TestAntSeedDistinct(t *testing.T) {
	const tours, ants = 100, 64
	seen := make(map[int64][2]int, tours*ants)
	for tour := 1; tour <= tours; tour++ {
		for ant := 0; ant < ants; ant++ {
			s := antSeed(7, tour, ant)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (tour=%d, ant=%d) and (tour=%d, ant=%d) both map to %d",
					tour, ant, prev[0], prev[1], s)
			}
			seen[s] = [2]int{tour, ant}
		}
	}
	for tour := 1; tour <= tours; tour++ {
		for ant := 0; ant < ants; ant++ {
			if _, dup := seen[antSeed(8, tour, ant)]; dup {
				t.Fatalf("master seeds 7 and 8 share a seed at (tour=%d, ant=%d)", tour, ant)
			}
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit must flip roughly half the output bits; 16-48
	// of 64 is a loose band that any full-avalanche mixer clears easily.
	for bit := 0; bit < 64; bit++ {
		diff := mix64(12345) ^ mix64(12345^(1<<bit))
		pop := 0
		for d := diff; d != 0; d &= d - 1 {
			pop++
		}
		if pop < 16 || pop > 48 {
			t.Fatalf("bit %d: popcount(diff) = %d, outside [16, 48]", bit, pop)
		}
	}
}
