package core

import (
	"context"
	"math/rand"
	"testing"

	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
)

// TestColonyLargeGraph exercises the colony well beyond the paper's corpus
// sizes (n = 500) to cover the memory layout and the parallel execution
// path under load. Skipped in -short mode.
func TestColonyLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph stress test in -short mode")
	}
	rng := rand.New(rand.NewSource(170))
	g, err := graphgen.Generate(graphgen.Config{N: 500, EdgeFactor: 1.4, MaxDegree: 8, Connected: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Ants = 6
	p.Tours = 4
	p.Workers = 4
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
	lpl, _ := longestpath.Layer(g)
	lplHW := float64(lpl.Height()) + lpl.WidthIncludingDummies(1)
	acoHW := float64(res.Height) + res.Layering.WidthIncludingDummies(1)
	if acoHW > lplHW+1e-9 {
		t.Fatalf("large graph: ACO H+W %.1f worse than LPL %.1f", acoHW, lplHW)
	}
	t.Logf("n=500: LPL H+W=%.1f, ACO H+W=%.1f (best tour %d)", lplHW, acoHW, res.BestTour)
}

// TestColonyManySmallGraphs pushes many short runs through the colony to
// shake out state leakage between runs (each Colony is single-use).
func TestColonyManySmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	p := DefaultParams()
	p.Ants = 3
	p.Tours = 3
	for i := 0; i < 60; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(4+rng.Intn(12)), rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Layering.Validate(); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}
