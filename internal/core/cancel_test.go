package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"antlayer/internal/graphgen"
)

// cancelTestGraph is big enough that a multi-thousand-tour run takes far
// longer than the deadlines the tests arm.
func cancelTestGraph(t *testing.T) (*Colony, Params) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g, err := graphgen.Generate(graphgen.DefaultConfig(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Tours = 100000
	c, err := NewColony(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestRunContextDeadline(t *testing.T) {
	c, _ := cancelTestGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := c.RunContext(ctx)
	if res != nil || err == nil {
		t.Fatalf("RunContext under an expired deadline returned (%v, %v), want (nil, error)", res, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	// A 100000-tour run takes minutes; hitting the deadline means the tour
	// loop actually observed the context. Generous bound for slow CI.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancelled run still took %v", el)
	}
}

func TestRunContextCancelStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	c, _ := cancelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.RunContext(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
	// The tour worker pool must wind down with the run.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked after cancelled run: %d -> %d", before, after)
	}
}

// TestRunContextArmedCancelDeterminism pins the cancellation design rule:
// a context that never fires must not change the layering.
func TestRunContextArmedCancelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := graphgen.Generate(graphgen.DefaultConfig(60), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	want, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, err := Run(ctx, g, p)
	if err != nil {
		t.Fatal(err)
	}
	wa, ga := want.Layering.Assignment(), got.Layering.Assignment()
	for v := range wa {
		if wa[v] != ga[v] {
			t.Fatalf("vertex %d: layer %d with armed context, %d without", v, ga[v], wa[v])
		}
	}
	if want.Objective != got.Objective {
		t.Fatalf("objective %v with armed context, %v without", got.Objective, want.Objective)
	}
}
