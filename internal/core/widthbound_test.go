package core

import (
	"context"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
)

// dagNew is a local alias so test intent reads as "n isolated vertices".
func dagNew(n int) *dag.Graph { return dag.New(n) }

func TestWidthBoundValidation(t *testing.T) {
	p := DefaultParams()
	p.WidthBound = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative WidthBound accepted")
	}
}

func TestWidthBoundNeverExceededByMoves(t *testing.T) {
	// With a bound, every move an ant makes lands on a layer whose
	// resulting width stays within the bound — unless the layer was
	// already over the bound in the inherited state (staying put is
	// always allowed).
	rng := rand.New(rand.NewSource(120))
	for i := 0; i < 10; i++ {
		g, err := graphgen.Generate(graphgen.DefaultConfig(20+rng.Intn(40)), rng)
		if err != nil {
			t.Fatal(err)
		}
		lpl, _ := longestpath.Layer(g)
		bound := lpl.WidthIncludingDummies(1) // achievable: the seed obeys it
		p := DefaultParams()
		p.WidthBound = bound
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Layering.Validate(); err != nil {
			t.Fatal(err)
		}
		if w := res.Layering.WidthIncludingDummies(1); w > bound+1e-9 {
			t.Fatalf("width %g exceeds bound %g", w, bound)
		}
	}
}

func TestWidthBoundTightBoundStillValid(t *testing.T) {
	// An unachievably tight bound must not break feasibility: ants just
	// stay put and the result remains a valid layering (the seed).
	rng := rand.New(rand.NewSource(121))
	g, err := graphgen.Generate(graphgen.DefaultConfig(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.WidthBound = 0.5 // below any single vertex width
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWidthBoundNarrowsResult(t *testing.T) {
	// Ten isolated vertices all start on layer 1 (width 10); with a bound
	// of 4 the ants must spread them over at least three layers, and no
	// layer may end wider than the bound.
	g := dagNew(10)
	p := DefaultParams()
	p.Tours = 15
	p.WidthBound = 4
	bounded, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if w := bounded.Layering.WidthIncludingDummies(1); w > 4+1e-9 {
		t.Fatalf("bounded width = %g", w)
	}
	if h := bounded.Layering.Height(); h < 3 {
		t.Fatalf("height = %d, want >= 3", h)
	}
}

func TestWidthBoundUnreachableOnStar(t *testing.T) {
	// On K(1,10) every layer between the source and the sinks is crossed
	// by all ten edges, so any bound below 10 makes every move
	// inadmissible: the colony must return the (over-bound) seed rather
	// than violate feasibility.
	g := graphgen.CompleteBipartite(1, 10)
	p := DefaultParams()
	p.WidthBound = 4
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := res.Layering.WidthIncludingDummies(1); w != 10 {
		t.Fatalf("star width = %g, want the frozen seed's 10", w)
	}
}
