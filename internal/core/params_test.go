package core

import (
	"strings"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		frag   string
	}{
		{"ants", func(p *Params) { p.Ants = 0 }, "Ants"},
		{"tours", func(p *Params) { p.Tours = 0 }, "Tours"},
		{"alpha", func(p *Params) { p.Alpha = -1 }, "Alpha"},
		{"beta", func(p *Params) { p.Beta = -0.5 }, "Beta"},
		{"rho-zero", func(p *Params) { p.Rho = 0 }, "Rho"},
		{"rho-big", func(p *Params) { p.Rho = 1.5 }, "Rho"},
		{"tau0", func(p *Params) { p.Tau0 = 0 }, "Tau0"},
		{"q", func(p *Params) { p.Q = 0 }, "Q"},
		{"dummy", func(p *Params) { p.DummyWidth = 0 }, "DummyWidth"},
		{"selection", func(p *Params) { p.Selection = SelectionMode(9) }, "selection"},
		{"q0", func(p *Params) { p.Q0 = 1.5 }, "Q0"},
		{"stretch", func(p *Params) { p.Stretch = StretchMode(9) }, "stretch"},
		{"heuristic", func(p *Params) { p.Heuristic = HeuristicMode(9) }, "heuristic"},
		{"maxlayers", func(p *Params) { p.MaxLayers = -1 }, "MaxLayers"},
		{"taumin-negative", func(p *Params) { p.TauMin = -1 }, "TauMin"},
		{"taumax-negative", func(p *Params) { p.TauMax = -0.5 }, "TauMax"},
		// TauMin > TauMax would make clampPheromone pin every entry and
		// freeze the colony on its first layering; it must be rejected.
		{"taumin-exceeds-taumax", func(p *Params) { p.TauMin = 2; p.TauMax = 1 }, "TauMin"},
		{"stagnant", func(p *Params) { p.StopAfterStagnantTours = -1 }, "StopAfterStagnantTours"},
		{"workers", func(p *Params) { p.Workers = -2 }, "Workers"},
	}
	for _, c := range cases {
		p := DefaultParams()
		c.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestParamsOneSidedTauBounds(t *testing.T) {
	// Zero disables the respective bound, so a lone TauMin (or TauMax) is
	// valid even though it exceeds the other, disabled, one.
	p := DefaultParams()
	p.TauMin = 0.5
	if err := p.Validate(); err != nil {
		t.Fatalf("TauMin alone rejected: %v", err)
	}
	p = DefaultParams()
	p.TauMax = 0.25
	if err := p.Validate(); err != nil {
		t.Fatalf("TauMax alone rejected: %v", err)
	}
	p.TauMin = 0.25 // equal bounds are a valid (fully clamped) system
	if err := p.Validate(); err != nil {
		t.Fatalf("TauMin == TauMax rejected: %v", err)
	}
}

func TestModeStrings(t *testing.T) {
	cases := map[string]string{
		SelectPseudoRandom.String():  "pseudo-random",
		SelectArgMax.String():        "argmax",
		SelectRoulette.String():      "roulette",
		StretchBetween.String():      "between",
		StretchEnds.String():         "ends",
		HeuristicObjective.String():  "objective",
		HeuristicLayerWidth.String(): "layer-width",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("mode string = %q, want %q", got, want)
		}
	}
	if s := SelectionMode(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown selection mode string = %q", s)
	}
	if s := StretchMode(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown stretch mode string = %q", s)
	}
	if s := HeuristicMode(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown heuristic mode string = %q", s)
	}
}
