package layering

import (
	"errors"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
)

// diamond returns the 4-vertex diamond with edges pointing down:
// 3 -> {2, 1} -> 0.
func diamond(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New(4)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	return g
}

func TestNewValid(t *testing.T) {
	g := diamond(t)
	l, err := New(g, []int{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumLayers() != 3 || l.Height() != 3 {
		t.Fatalf("layers=%d height=%d, want 3, 3", l.NumLayers(), l.Height())
	}
	if l.Layer(3) != 3 || l.Layer(0) != 1 {
		t.Fatal("layers wrong")
	}
}

func TestNewInvalid(t *testing.T) {
	g := diamond(t)
	cases := [][]int{
		{1, 2, 2},    // wrong length
		{0, 1, 1, 2}, // layer < 1
		{1, 2, 2, 2}, // edge (3,2) flat
		{3, 2, 2, 1}, // edge (1,0) inverted
	}
	for _, assign := range cases {
		if _, err := New(g, assign); !errors.Is(err, ErrInvalid) {
			t.Errorf("New(%v) err = %v, want ErrInvalid", assign, err)
		}
	}
}

func TestAssignmentCopies(t *testing.T) {
	g := diamond(t)
	in := []int{1, 2, 2, 3}
	l, err := New(g, in)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = 99 // caller's slice must not alias
	if l.Layer(0) != 1 {
		t.Fatal("New aliased the caller's slice")
	}
	out := l.Assignment()
	out[1] = 99
	if l.Layer(1) != 2 {
		t.Fatal("Assignment returned aliased slice")
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	l, _ := New(g, []int{1, 2, 2, 3})
	c := l.Clone()
	c.SetLayer(0, 1)
	c.SetLayer(3, 5)
	if l.NumLayers() != 3 {
		t.Fatal("clone mutated original")
	}
	if c.NumLayers() != 5 {
		t.Fatalf("clone NumLayers = %d, want 5", c.NumLayers())
	}
}

func TestLayers(t *testing.T) {
	g := diamond(t)
	l, _ := New(g, []int{1, 2, 2, 3})
	layers := l.Layers()
	if len(layers) != 3 {
		t.Fatalf("len(Layers) = %d", len(layers))
	}
	if len(layers[0]) != 1 || layers[0][0] != 0 {
		t.Fatalf("layer 1 = %v", layers[0])
	}
	if len(layers[1]) != 2 || layers[1][0] != 1 || layers[1][1] != 2 {
		t.Fatalf("layer 2 = %v", layers[1])
	}
}

func TestNormalize(t *testing.T) {
	g := diamond(t)
	l := FromAssignment(g, []int{1, 4, 4, 9})
	removed := l.Normalize()
	if removed != 6 {
		t.Fatalf("removed = %d, want 6", removed)
	}
	if l.NumLayers() != 3 || l.Height() != 3 {
		t.Fatalf("after normalize: layers=%d height=%d", l.NumLayers(), l.Height())
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("normalized layering invalid: %v", err)
	}
	// Idempotent.
	if l.Normalize() != 0 {
		t.Fatal("second Normalize removed layers")
	}
}

func TestNormalizeWithSetNumLayers(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	l := FromAssignment(g, []int{1, 2})
	l.SetNumLayers(10)
	if l.NumLayers() != 10 {
		t.Fatalf("SetNumLayers: %d", l.NumLayers())
	}
	l.SetNumLayers(5) // shrink attempts ignored
	if l.NumLayers() != 10 {
		t.Fatalf("SetNumLayers shrank: %d", l.NumLayers())
	}
	l.Normalize()
	if l.NumLayers() != 2 {
		t.Fatalf("Normalize left %d layers", l.NumLayers())
	}
}

func TestNormalizeEmptyGraph(t *testing.T) {
	l := FromAssignment(dag.New(0), nil)
	l.SetNumLayers(4)
	l.Normalize()
	if l.NumLayers() != 0 || l.Height() != 0 {
		t.Fatalf("empty graph normalize: layers=%d height=%d", l.NumLayers(), l.Height())
	}
}

func TestSpan(t *testing.T) {
	g := diamond(t)
	l, _ := New(g, []int{1, 2, 2, 3})
	// Vertex 1 sits between 0 (layer 1) and 3 (layer 3): span exactly {2}.
	lo, hi := l.Span(1, 10)
	if lo != 2 || hi != 2 {
		t.Fatalf("span(1) = [%d,%d], want [2,2]", lo, hi)
	}
	// Source 3: bounded below by its successors at layer 2.
	lo, hi = l.Span(3, 10)
	if lo != 3 || hi != 10 {
		t.Fatalf("span(3) = [%d,%d], want [3,10]", lo, hi)
	}
	// Sink 0: bounded above by predecessors at layer 2.
	lo, hi = l.Span(0, 10)
	if lo != 1 || hi != 1 {
		t.Fatalf("span(0) = [%d,%d], want [1,1]", lo, hi)
	}
}

func TestSpanContainsCurrentLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ {
		g, l := randomLayered(rng, 3+rng.Intn(20))
		max := l.NumLayers() + rng.Intn(5)
		for v := 0; v < g.N(); v++ {
			lo, hi := l.Span(v, max)
			if l.Layer(v) < lo || l.Layer(v) > hi {
				t.Fatalf("span [%d,%d] excludes current layer %d", lo, hi, l.Layer(v))
			}
		}
	}
}

// randomLayered builds a random DAG and a valid layering for it (from the
// longest path to a sink).
func randomLayered(rng *rand.Rand, n int) (*dag.Graph, *Layering) {
	g := dag.New(n)
	for tries := 0; tries < n*2; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u < v {
			u, v = v, u
		}
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	dist, err := g.LongestPathToSink()
	if err != nil {
		panic(err)
	}
	assign := make([]int, n)
	for v, d := range dist {
		assign[v] = d + 1
	}
	return g, FromAssignment(g, assign)
}

func TestValidateAfterSetLayer(t *testing.T) {
	g := diamond(t)
	l, _ := New(g, []int{1, 2, 2, 3})
	l.SetLayer(3, 2) // now edge (3,2) is flat
	if err := l.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Validate = %v, want ErrInvalid", err)
	}
}

func TestStringer(t *testing.T) {
	g := diamond(t)
	l, _ := New(g, []int{1, 2, 2, 3})
	if s := l.String(); s == "" {
		t.Fatal("empty String()")
	}
}
