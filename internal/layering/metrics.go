package layering

// Metrics bundles the five evaluation criteria used in the paper's
// experiments (§VII): width including dummies, width excluding dummies,
// height, dummy vertex count and edge density. Running time is measured by
// the harness, not stored here.
type Metrics struct {
	// WidthIncl is the maximum layer width counting dummy vertices at the
	// dummy width used to compute it.
	WidthIncl float64
	// WidthExcl is the maximum layer width counting only real vertices.
	WidthExcl float64
	// Height is the number of non-empty layers.
	Height int
	// DummyCount is the total number of dummy vertices a proper layering
	// would need (sum over edges of span-1).
	DummyCount int
	// EdgeDensity is the maximum number of edges crossing between two
	// adjacent horizontal levels.
	EdgeDensity int
}

// ComputeMetrics evaluates all criteria for the layering with the given
// dummy vertex width.
func (l *Layering) ComputeMetrics(dummyWidth float64) Metrics {
	return Metrics{
		WidthIncl:   l.WidthIncludingDummies(dummyWidth),
		WidthExcl:   l.WidthExcludingDummies(),
		Height:      l.Height(),
		DummyCount:  l.DummyCount(),
		EdgeDensity: l.EdgeDensity(),
	}
}

// LayerWidths returns, for layers 1..NumLayers (index 0 = layer 1), the sum
// of real vertex widths on the layer plus dummyWidth for every edge that
// crosses the layer. An edge (u, v) crosses layers Layer(v)+1 .. Layer(u)-1,
// one dummy vertex per crossed layer (paper §II).
func (l *Layering) LayerWidths(dummyWidth float64) []float64 {
	w := make([]float64, l.h)
	for v := 0; v < l.g.N(); v++ {
		w[l.layer[v]-1] += l.g.Width(v)
	}
	if dummyWidth != 0 {
		// Difference array over layers for the dummy contributions: edge
		// (u,v) adds dummyWidth to layers [Layer(v)+1, Layer(u)-1].
		diff := make([]float64, l.h+1)
		for _, e := range l.g.Edges() {
			lo := l.layer[e.V] + 1
			hi := l.layer[e.U] - 1
			if lo > hi {
				continue
			}
			diff[lo-1] += dummyWidth
			diff[hi] -= dummyWidth
		}
		acc := 0.0
		for i := 0; i < l.h; i++ {
			acc += diff[i]
			w[i] += acc
		}
	}
	return w
}

// WidthIncludingDummies returns the maximum layer width counting dummy
// vertices at dummyWidth each.
func (l *Layering) WidthIncludingDummies(dummyWidth float64) float64 {
	max := 0.0
	for _, w := range l.LayerWidths(dummyWidth) {
		if w > max {
			max = w
		}
	}
	return max
}

// WidthExcludingDummies returns the maximum layer width counting only real
// vertices.
func (l *Layering) WidthExcludingDummies() float64 {
	return l.WidthIncludingDummies(0)
}

// DummyCount returns the number of dummy vertices required to make the
// layering proper: the sum over all edges of (span - 1).
func (l *Layering) DummyCount() int {
	total := 0
	for _, e := range l.g.Edges() {
		total += l.layer[e.U] - l.layer[e.V] - 1
	}
	return total
}

// EdgeDensity returns the maximum edge density between adjacent horizontal
// levels: for each gap between layer i and i+1, the number of edges (u, v)
// with Layer(v) <= i < Layer(u) (paper §II).
func (l *Layering) EdgeDensity() int {
	if l.h < 2 {
		return 0
	}
	// diff[i] counts edges beginning to cross at gap i (between layers i
	// and i+1), via a difference array over gaps 1..h-1.
	diff := make([]int, l.h+1)
	for _, e := range l.g.Edges() {
		lo := l.layer[e.V] // first gap crossed
		hi := l.layer[e.U] // one past the last gap crossed
		diff[lo]++
		diff[hi]--
	}
	max, acc := 0, 0
	for i := 1; i <= l.h-1; i++ {
		acc += diff[i]
		if acc > max {
			max = acc
		}
	}
	return max
}

// TotalEdgeSpan returns the sum of edge spans; minimising it is equivalent
// to minimising the dummy vertex count plus the number of edges.
func (l *Layering) TotalEdgeSpan() int {
	total := 0
	for _, e := range l.g.Edges() {
		total += l.layer[e.U] - l.layer[e.V]
	}
	return total
}
