// Package layering defines the layer-assignment type shared by every
// layering algorithm in this repository together with the quality metrics
// used in the paper's evaluation: height, width including and excluding
// dummy vertices, dummy vertex count and edge density.
//
// Convention (paper §II): layers are numbered 1..h and every edge (u, v)
// satisfies layer(u) > layer(v); sinks naturally end up in layer 1 and
// edges point "downward" towards smaller layer numbers.
package layering

import (
	"errors"
	"fmt"

	"antlayer/internal/dag"
)

// ErrInvalid reports a layer assignment violating the layering constraints.
var ErrInvalid = errors.New("layering: invalid layer assignment")

// Layering is a layer assignment for a fixed graph.
//
// A Layering is created by New (which validates) or by the algorithm
// packages. The assignment may contain empty layers (the ACO search space
// deliberately contains them); Normalize removes them.
type Layering struct {
	g     *dag.Graph
	layer []int // 1-based layer per vertex
	h     int   // max assigned layer (= number of layers incl. empty ones)
}

// New returns a Layering for graph g with the given 1-based assignment.
// It fails if the assignment length mismatches, any layer is < 1, or any
// edge (u, v) does not satisfy layer(u) > layer(v).
func New(g *dag.Graph, assignment []int) (*Layering, error) {
	if len(assignment) != g.N() {
		return nil, fmt.Errorf("%w: %d assignments for %d vertices", ErrInvalid, len(assignment), g.N())
	}
	l := &Layering{g: g, layer: append([]int(nil), assignment...)}
	for _, lv := range l.layer {
		if lv > l.h {
			l.h = lv
		}
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// FromAssignment wraps an assignment without copying or validating. It is
// intended for algorithm packages that construct assignments they know to
// be valid; tests still call Validate on the results.
func FromAssignment(g *dag.Graph, assignment []int) *Layering {
	l := &Layering{g: g, layer: assignment}
	for _, lv := range assignment {
		if lv > l.h {
			l.h = lv
		}
	}
	return l
}

// Graph returns the underlying graph.
func (l *Layering) Graph() *dag.Graph { return l.g }

// Layer returns the layer of v.
func (l *Layering) Layer(v int) int { return l.layer[v] }

// SetLayer moves v to layer n (1-based). It updates the layer count but
// performs no validity checking; callers are expected to respect the span
// of v (see Span) or to Validate afterwards.
func (l *Layering) SetLayer(v, n int) {
	l.layer[v] = n
	if n > l.h {
		l.h = n
	}
}

// NumLayers returns the number of layers including empty ones (the maximum
// assigned layer, or a larger value set by SetNumLayers). After Normalize
// this equals Height.
func (l *Layering) NumLayers() int { return l.h }

// SetNumLayers enlarges the layer count to n so that empty layers above the
// topmost occupied one become part of the search space (used by the ACO
// stretch step). Values below the maximum assigned layer are ignored.
func (l *Layering) SetNumLayers(n int) {
	if n > l.h {
		l.h = n
	}
}

// Assignment returns a copy of the layer assignment.
func (l *Layering) Assignment() []int {
	return append([]int(nil), l.layer...)
}

// Clone returns a deep copy sharing the underlying graph.
func (l *Layering) Clone() *Layering {
	return &Layering{g: l.g, layer: append([]int(nil), l.layer...), h: l.h}
}

// Validate checks the layering constraints from the paper's problem
// definition: integer layers >= 1 and layer(u) - layer(v) >= 1 for every
// edge (u, v).
func (l *Layering) Validate() error {
	if len(l.layer) != l.g.N() {
		return fmt.Errorf("%w: %d assignments for %d vertices", ErrInvalid, len(l.layer), l.g.N())
	}
	for v, lv := range l.layer {
		if lv < 1 {
			return fmt.Errorf("%w: vertex %d on layer %d", ErrInvalid, v, lv)
		}
	}
	for _, e := range l.g.Edges() {
		if l.layer[e.U] <= l.layer[e.V] {
			return fmt.Errorf("%w: edge (%d,%d) with layers (%d,%d)", ErrInvalid, e.U, e.V, l.layer[e.U], l.layer[e.V])
		}
	}
	return nil
}

// Layers returns the vertices of each layer, index 0 holding layer 1.
// Vertices appear in ascending order within a layer.
func (l *Layering) Layers() [][]int {
	out := make([][]int, l.h)
	for v := 0; v < l.g.N(); v++ {
		idx := l.layer[v] - 1
		out[idx] = append(out[idx], v)
	}
	return out
}

// Normalize removes empty layers and renumbers the remaining ones
// contiguously from 1, preserving relative order. The paper performs this
// step after the ant colony finishes (§VI, note). It returns the number of
// empty layers removed.
func (l *Layering) Normalize() int {
	if l.g.N() == 0 {
		removed := l.h
		l.h = 0
		return removed
	}
	occupied := make([]bool, l.h+1)
	for _, lv := range l.layer {
		occupied[lv] = true
	}
	remap := make([]int, l.h+1)
	next := 0
	for i := 1; i <= l.h; i++ {
		if occupied[i] {
			next++
			remap[i] = next
		}
	}
	removed := l.h - next
	for v := range l.layer {
		l.layer[v] = remap[l.layer[v]]
	}
	l.h = next
	return removed
}

// Height returns the number of non-empty layers. For a normalized layering
// this equals NumLayers.
func (l *Layering) Height() int {
	if l.g.N() == 0 {
		return 0
	}
	occupied := make([]bool, l.h+1)
	for _, lv := range l.layer {
		occupied[lv] = true
	}
	h := 0
	for i := 1; i <= l.h; i++ {
		if occupied[i] {
			h++
		}
	}
	return h
}

// Span returns the layer span of v under the current assignment, bounded
// by [1, maxLayer]: the set of layers v can occupy without violating edge
// constraints given its neighbours' current layers (paper §II). The span is
// never empty for a valid layering (it always contains Layer(v)).
func (l *Layering) Span(v, maxLayer int) (lo, hi int) {
	lo, hi = 1, maxLayer
	for _, w := range l.g.Succ(v) {
		if l.layer[w]+1 > lo {
			lo = l.layer[w] + 1
		}
	}
	for _, u := range l.g.Pred(v) {
		if l.layer[u]-1 < hi {
			hi = l.layer[u] - 1
		}
	}
	return lo, hi
}

// String returns a short summary.
func (l *Layering) String() string {
	return fmt.Sprintf("layering{h=%d layers=%d vertices=%d}", l.Height(), l.h, l.g.N())
}
