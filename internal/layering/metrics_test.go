package layering

import (
	"math"
	"math/rand"
	"testing"

	"antlayer/internal/dag"
)

// chain builds the path p_{n-1} -> ... -> p_0 layered one vertex per layer.
func chain(n int) (*dag.Graph, *Layering) {
	g := dag.New(n)
	assign := make([]int, n)
	for i := 0; i < n; i++ {
		assign[i] = i + 1
		if i > 0 {
			g.MustAddEdge(i, i-1)
		}
	}
	return g, FromAssignment(g, assign)
}

func TestMetricsDiamond(t *testing.T) {
	g := dag.New(4)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	l, _ := New(g, []int{1, 2, 2, 3})
	m := l.ComputeMetrics(1.0)
	if m.Height != 3 {
		t.Fatalf("height = %d, want 3", m.Height)
	}
	if m.WidthIncl != 2 || m.WidthExcl != 2 {
		t.Fatalf("widths = %g/%g, want 2/2", m.WidthIncl, m.WidthExcl)
	}
	if m.DummyCount != 0 {
		t.Fatalf("dummies = %d, want 0", m.DummyCount)
	}
	if m.EdgeDensity != 2 {
		t.Fatalf("density = %d, want 2", m.EdgeDensity)
	}
}

func TestMetricsLongEdge(t *testing.T) {
	// 2 -> 1 -> 0 plus the long edge 2 -> 0 spanning layers 1..3.
	g := dag.New(3)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(2, 0)
	l, _ := New(g, []int{1, 2, 3})
	if dc := l.DummyCount(); dc != 1 {
		t.Fatalf("DummyCount = %d, want 1", dc)
	}
	// Layer 2 holds vertex 1 (width 1) plus one dummy of the long edge.
	w := l.LayerWidths(0.5)
	want := []float64{1, 1.5, 1}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("LayerWidths = %v, want %v", w, want)
		}
	}
	if got := l.WidthIncludingDummies(0.5); got != 1.5 {
		t.Fatalf("WidthIncl = %g, want 1.5", got)
	}
	if got := l.WidthExcludingDummies(); got != 1 {
		t.Fatalf("WidthExcl = %g, want 1", got)
	}
	// Both gaps are crossed by 2 edges.
	if d := l.EdgeDensity(); d != 2 {
		t.Fatalf("EdgeDensity = %d, want 2", d)
	}
	if ts := l.TotalEdgeSpan(); ts != 4 {
		t.Fatalf("TotalEdgeSpan = %d, want 4", ts)
	}
}

func TestMetricsVertexWidths(t *testing.T) {
	g := dag.New(2)
	g.SetWidth(0, 3)
	g.SetWidth(1, 0.5)
	g.MustAddEdge(1, 0)
	l, _ := New(g, []int{1, 2})
	if w := l.WidthExcludingDummies(); w != 3 {
		t.Fatalf("WidthExcl = %g, want 3", w)
	}
}

func TestEdgeDensityChain(t *testing.T) {
	_, l := chain(5)
	if d := l.EdgeDensity(); d != 1 {
		t.Fatalf("chain density = %d, want 1", d)
	}
}

func TestEdgeDensitySingleLayer(t *testing.T) {
	g := dag.New(3)
	l, _ := New(g, []int{1, 1, 1})
	if d := l.EdgeDensity(); d != 0 {
		t.Fatalf("single-layer density = %d, want 0", d)
	}
}

// bruteDensity recomputes edge density by scanning every gap.
func bruteDensity(l *Layering) int {
	max := 0
	for gap := 1; gap < l.NumLayers(); gap++ {
		c := 0
		for _, e := range l.Graph().Edges() {
			if l.Layer(e.V) <= gap && gap < l.Layer(e.U) {
				c++
			}
		}
		if c > max {
			max = c
		}
	}
	return max
}

// bruteWidths recomputes layer widths by scanning every edge per layer.
func bruteWidths(l *Layering, wd float64) []float64 {
	w := make([]float64, l.NumLayers())
	for v := 0; v < l.Graph().N(); v++ {
		w[l.Layer(v)-1] += l.Graph().Width(v)
	}
	for _, e := range l.Graph().Edges() {
		for layer := l.Layer(e.V) + 1; layer <= l.Layer(e.U)-1; layer++ {
			w[layer-1] += wd
		}
	}
	return w
}

func TestMetricsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		g, l := randomLayered(rng, 3+rng.Intn(25))
		_ = g
		if got, want := l.EdgeDensity(), bruteDensity(l); got != want {
			t.Fatalf("EdgeDensity = %d, brute = %d", got, want)
		}
		wd := 0.1 + rng.Float64()
		got := l.LayerWidths(wd)
		want := bruteWidths(l, wd)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("LayerWidths[%d] = %g, brute = %g", j, got[j], want[j])
			}
		}
		// DummyCount equals the sum of per-layer dummy counts.
		sum := 0
		for layer := 1; layer <= l.NumLayers(); layer++ {
			sum += l.DummyCountOn(layer)
		}
		if dc := l.DummyCount(); dc != sum {
			t.Fatalf("DummyCount = %d, per-layer sum = %d", dc, sum)
		}
		// TotalEdgeSpan = DummyCount + M.
		if l.TotalEdgeSpan() != l.DummyCount()+g.M() {
			t.Fatal("TotalEdgeSpan != DummyCount + M")
		}
	}
}

func TestMetricsEmptyGraph(t *testing.T) {
	l := FromAssignment(dag.New(0), nil)
	m := l.ComputeMetrics(1)
	if m.Height != 0 || m.WidthIncl != 0 || m.DummyCount != 0 || m.EdgeDensity != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}
