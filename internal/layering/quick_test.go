package layering

import (
	"math/rand"
	"testing"
	"testing/quick"

	"antlayer/internal/dag"
)

// genLayered decodes a seed into a random layered DAG; shared generator
// for the quick properties below.
func genLayered(seed int64) (*dag.Graph, *Layering) {
	rng := rand.New(rand.NewSource(seed))
	return randomLayered(rng, 2+rng.Intn(25))
}

func TestQuickNormalizePreservesValidity(t *testing.T) {
	f := func(seed int64, stretch uint8) bool {
		g, l := genLayered(seed)
		// Randomly stretch layers apart, then normalize.
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		factor := int(stretch%4) + 1
		for v := 0; v < g.N(); v++ {
			l.SetLayer(v, (l.Layer(v)-1)*factor+1+rng.Intn(1))
		}
		if l.Validate() != nil {
			return false
		}
		l.Normalize()
		return l.Validate() == nil && l.NumLayers() == l.Height()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizePreservesMetricsOrderings(t *testing.T) {
	// Normalization can only shrink spans: dummy count and widths never
	// increase, height is unchanged.
	f := func(seed int64) bool {
		g, l := genLayered(seed)
		_ = g
		stretched := l.Clone()
		// Spread layers by factor 3 (valid: preserves order).
		for v := 0; v < g.N(); v++ {
			stretched.SetLayer(v, (l.Layer(v)-1)*3+1)
		}
		before := stretched.Clone()
		stretched.Normalize()
		return stretched.DummyCount() <= before.DummyCount() &&
			stretched.Height() == before.Height() &&
			stretched.WidthIncludingDummies(1) <= before.WidthIncludingDummies(1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWidthMonotoneInDummyWidth(t *testing.T) {
	// The width including dummies is monotone in the dummy width.
	f := func(seed int64, aRaw, bRaw uint8) bool {
		_, l := genLayered(seed)
		a := float64(aRaw%100) / 50.0
		b := float64(bRaw%100) / 50.0
		if a > b {
			a, b = b, a
		}
		return l.WidthIncludingDummies(a) <= l.WidthIncludingDummies(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpanBoundsRespectEdges(t *testing.T) {
	// Any position within the computed span keeps the layering valid.
	f := func(seed int64, pick uint16) bool {
		g, l := genLayered(seed)
		v := int(pick) % g.N()
		lo, hi := l.Span(v, l.NumLayers()+3)
		for layer := lo; layer <= hi; layer++ {
			c := l.Clone()
			c.SetLayer(v, layer)
			if c.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickProperIdempotent(t *testing.T) {
	// Making a proper layering proper again adds nothing.
	f := func(seed int64) bool {
		_, l := genLayered(seed)
		p, err := l.MakeProper(1)
		if err != nil {
			return false
		}
		p2, err := p.Layering.MakeProper(1)
		if err != nil {
			return false
		}
		return p2.Graph.N() == p.Graph.N() && len(p2.Chains) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
