package layering

import (
	"math/rand"
	"testing"

	"antlayer/internal/dag"
)

func TestMakeProperNoLongEdges(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	l, _ := New(g, []int{1, 2})
	p, err := l.MakeProper(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph.N() != 2 || p.Graph.M() != 1 {
		t.Fatalf("proper graph n=%d m=%d", p.Graph.N(), p.Graph.M())
	}
	if len(p.Chains) != 0 {
		t.Fatalf("chains = %d, want 0", len(p.Chains))
	}
}

func TestMakeProperLongEdge(t *testing.T) {
	g := dag.New(3)
	g.MustAddEdge(2, 1)
	g.MustAddEdge(1, 0)
	g.MustAddEdge(2, 0) // span 2
	l, _ := New(g, []int{1, 2, 3})
	p, err := l.MakeProper(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// One dummy vertex on layer 2 for the long edge.
	if p.Graph.N() != 4 {
		t.Fatalf("proper n = %d, want 4", p.Graph.N())
	}
	if !p.IsDummy[3] || p.IsDummy[0] {
		t.Fatal("IsDummy flags wrong")
	}
	if p.Graph.Width(3) != 0.5 {
		t.Fatalf("dummy width = %g", p.Graph.Width(3))
	}
	if !p.Layering.IsProper() {
		t.Fatal("result not proper")
	}
	chain, ok := p.Chains[dag.Edge{U: 2, V: 0}]
	if !ok || len(chain) != 3 || chain[0] != 2 || chain[2] != 0 {
		t.Fatalf("chain = %v (ok=%v)", chain, ok)
	}
	if err := p.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMakeProperErrors(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	l, _ := New(g, []int{1, 2})
	if _, err := l.MakeProper(0); err == nil {
		t.Fatal("MakeProper(0) succeeded")
	}
	if _, err := l.MakeProper(-1); err == nil {
		t.Fatal("MakeProper(-1) succeeded")
	}
	bad := FromAssignment(g, []int{2, 1}) // inverted edge
	if _, err := bad.MakeProper(1); err == nil {
		t.Fatal("MakeProper on invalid layering succeeded")
	}
}

func TestIsProper(t *testing.T) {
	g := dag.New(3)
	g.MustAddEdge(2, 0)
	l, _ := New(g, []int{1, 1, 3})
	if l.IsProper() {
		t.Fatal("span-2 edge reported proper")
	}
	l2, _ := New(g, []int{1, 1, 2})
	if !l2.IsProper() {
		t.Fatal("span-1 layering reported improper")
	}
}

func TestMakeProperRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		g, l := randomLayered(rng, 3+rng.Intn(20))
		p, err := l.MakeProper(1)
		if err != nil {
			t.Fatal(err)
		}
		// Dummy count matches the prediction.
		if p.Graph.N()-g.N() != l.DummyCount() {
			t.Fatalf("inserted %d dummies, DummyCount = %d", p.Graph.N()-g.N(), l.DummyCount())
		}
		// Properness and validity.
		if !p.Layering.IsProper() {
			t.Fatal("not proper")
		}
		if err := p.Layering.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := p.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		// Edge count: every original edge of span s becomes s edges.
		if p.Graph.M() != l.TotalEdgeSpan() {
			t.Fatalf("proper M = %d, want total span %d", p.Graph.M(), l.TotalEdgeSpan())
		}
		// Original vertices keep their layers.
		for v := 0; v < g.N(); v++ {
			if p.Layering.Layer(v) != l.Layer(v) {
				t.Fatal("original vertex moved")
			}
			if p.IsDummy[v] {
				t.Fatal("original vertex marked dummy")
			}
		}
		// Width including dummies is identical measured on either side.
		got := p.Layering.WidthExcludingDummies() // dummies are real in p.Graph
		want := l.WidthIncludingDummies(1)
		if got != want {
			t.Fatalf("width via proper graph = %g, via metric = %g", got, want)
		}
	}
}

func TestMakeProperChainLayering(t *testing.T) {
	// A single edge spanning 4 layers yields a 3-dummy chain on
	// consecutive layers.
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	l := FromAssignment(g, []int{1, 5})
	p, err := l.MakeProper(1)
	if err != nil {
		t.Fatal(err)
	}
	chain := p.Chains[dag.Edge{U: 1, V: 0}]
	if len(chain) != 5 {
		t.Fatalf("chain length = %d, want 5", len(chain))
	}
	for i := 1; i < len(chain); i++ {
		if p.Layering.Layer(chain[i]) != p.Layering.Layer(chain[i-1])-1 {
			t.Fatal("chain layers not consecutive")
		}
	}
}
