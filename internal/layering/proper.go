package layering

import (
	"fmt"

	"antlayer/internal/dag"
)

// Proper is the result of making a layering proper by inserting dummy
// vertices along edges whose span exceeds one (paper §II).
type Proper struct {
	// Graph is the proper graph: the original vertices 0..n-1 followed by
	// the dummy vertices.
	Graph *dag.Graph
	// Layering assigns every (real and dummy) vertex of Graph to a layer.
	Layering *Layering
	// IsDummy[v] reports whether vertex v of Graph is a dummy vertex.
	IsDummy []bool
	// Chains maps each original long edge to the path of vertices that
	// replaced it, from source to target inclusive.
	Chains map[dag.Edge][]int
	// DummyWidth is the width assigned to every dummy vertex.
	DummyWidth float64
}

// MakeProper inserts dummy vertices along every edge with span > 1 and
// returns the proper graph, its layering, and the edge chains. Dummy
// vertices receive the given width (the nd_width parameter of the paper).
// The input layering must be valid.
func (l *Layering) MakeProper(dummyWidth float64) (*Proper, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if dummyWidth <= 0 {
		return nil, fmt.Errorf("layering: dummy width must be positive, got %g", dummyWidth)
	}
	n := l.g.N()
	pg := dag.New(n)
	for v := 0; v < n; v++ {
		pg.SetWidth(v, l.g.Width(v))
		pg.SetLabel(v, l.g.Label(v))
	}
	assign := make([]int, n, n+l.DummyCount())
	copy(assign, l.layer)
	isDummy := make([]bool, n, n+l.DummyCount())
	chains := make(map[dag.Edge][]int)

	for _, e := range l.g.Edges() {
		span := l.layer[e.U] - l.layer[e.V]
		if span == 1 {
			if err := pg.AddEdge(e.U, e.V); err != nil {
				return nil, err
			}
			continue
		}
		chain := make([]int, 0, span+1)
		chain = append(chain, e.U)
		prev := e.U
		for layer := l.layer[e.U] - 1; layer > l.layer[e.V]; layer-- {
			d := pg.AddVertex()
			pg.SetWidth(d, dummyWidth)
			pg.SetLabel(d, fmt.Sprintf("d(%d,%d)@%d", e.U, e.V, layer))
			assign = append(assign, layer)
			isDummy = append(isDummy, true)
			if err := pg.AddEdge(prev, d); err != nil {
				return nil, err
			}
			chain = append(chain, d)
			prev = d
		}
		if err := pg.AddEdge(prev, e.V); err != nil {
			return nil, err
		}
		chain = append(chain, e.V)
		chains[e] = chain
	}

	pl := FromAssignment(pg, assign)
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return &Proper{
		Graph:      pg,
		Layering:   pl,
		IsDummy:    isDummy,
		Chains:     chains,
		DummyWidth: dummyWidth,
	}, nil
}

// IsProper reports whether every edge of the layering has span exactly one.
func (l *Layering) IsProper() bool {
	for _, e := range l.g.Edges() {
		if l.layer[e.U]-l.layer[e.V] != 1 {
			return false
		}
	}
	return true
}

// DummyCountOn returns the number of dummy vertices the proper layering
// places on the given layer (1-based).
func (l *Layering) DummyCountOn(layer int) int {
	count := 0
	for _, e := range l.g.Edges() {
		if l.layer[e.V] < layer && layer < l.layer[e.U] {
			count++
		}
	}
	return count
}
