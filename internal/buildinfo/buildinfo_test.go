package buildinfo

import (
	"runtime/debug"
	"testing"
)

func stub(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	orig := read
	read = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { read = orig })
}

func TestGetReal(t *testing.T) {
	// Test binaries do carry build info; whatever it is, Get must not
	// return zero fields where the metadata exists.
	info := Get()
	if info.Version == "" {
		t.Fatal("empty version")
	}
	if info.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestGetNoBuildInfo(t *testing.T) {
	stub(t, nil, false)
	info := Get()
	if info.Version != "unknown" || info.Revision != "" || info.GoVersion != "" {
		t.Fatalf("info = %+v", info)
	}
	if got := info.String(); got != "unknown" {
		t.Fatalf("String() = %q", got)
	}
}

func TestGetFullStamp(t *testing.T) {
	stub(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "abcdef123456"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	info := Get()
	if info.Version != "v1.2.3" || info.Revision != "abcdef123456" || !info.Modified || info.GoVersion != "go1.24.0" {
		t.Fatalf("info = %+v", info)
	}
	if got, want := info.String(), "v1.2.3 (abcdef123456+dirty, go1.24.0)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestStringPartial(t *testing.T) {
	cases := []struct {
		info Info
		want string
	}{
		{Info{Version: "v1.0.0", GoVersion: "go1.24.0"}, "v1.0.0 (go1.24.0)"},
		{Info{Version: "(devel)", Revision: "deadbeef"}, "(devel) (deadbeef)"},
		{Info{Version: "unknown"}, "unknown"},
	}
	for _, c := range cases {
		if got := c.info.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.info, got, c.want)
		}
	}
}
