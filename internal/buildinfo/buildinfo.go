// Package buildinfo reports how the running binary was built — module
// version, VCS revision, dirty flag and Go toolchain — from the build
// metadata the Go linker embeds (debug.ReadBuildInfo). It is what
// `daglayer -version` prints and what the daemon's /healthz serves, so
// deployed instances can be told apart without guessing.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Info describes the running binary.
type Info struct {
	// Version is the main module's version: a tag for released builds,
	// "(devel)" for workspace builds, "unknown" when no build info is
	// embedded (e.g. some test binaries).
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from, "" when the
	// build carried no VCS stamp (-buildvcs=false, tarball builds).
	Revision string `json:"revision,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go"`
}

// read is swapped out by tests; production always reads the real build
// info.
var read = debug.ReadBuildInfo

// Get returns the running binary's build description. It never fails:
// missing metadata degrades to "unknown" fields.
func Get() Info {
	info := Info{Version: "unknown"}
	bi, ok := read()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the info on one line: `v1.2.3 (abcdef123456, go1.24.0)`,
// with a `+dirty` marker after a modified revision and the missing parts
// simply absent.
func (i Info) String() string {
	s := i.Version
	switch {
	case i.Revision != "" && i.Modified:
		s += fmt.Sprintf(" (%s+dirty", i.Revision)
	case i.Revision != "":
		s += fmt.Sprintf(" (%s", i.Revision)
	default:
		s += " ("
	}
	if i.GoVersion != "" {
		if s[len(s)-1] != '(' {
			s += ", "
		}
		s += i.GoVersion
	}
	if s[len(s)-1] == '(' {
		return i.Version
	}
	return s + ")"
}
