package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

const demoDOT = `digraph g {
	a -> b; a -> c;
	b -> d; c -> d;
	d -> e;
}`

// bigEdgeList builds an edge-list graph large enough that a
// many-thousand-tour colony takes far longer than the test deadlines.
func bigEdgeList(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d\n", n, n-1)
	for v := 1; v < n; v++ {
		fmt.Fprintf(&b, "%d %d\n", v, v/2)
	}
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// httptest.Close stops the listener but not the job-queue workers
	// every Server now owns; Close does.
	t.Cleanup(s.Close)
	return s, ts
}

func postLayer(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/layer"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// testResponse mirrors layerResponse for decoding.
type testResponse struct {
	Algo      string `json:"algo"`
	Graph     struct{ Vertices, Edges int }
	Metrics   struct{ Height int }
	Objective float64    `json:"objective"`
	BestTour  *int       `json:"best_tour"`
	ToursRun  int        `json:"tours_run"`
	Layers    [][]string `json:"layers"`
	SVG       string     `json:"svg"`
	ASCII     string     `json:"ascii"`
}

func TestLayerEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postLayer(t, ts, "seed=1", demoDOT)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	var r testResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if r.Algo != "aco" || r.Graph.Vertices != 5 || r.Graph.Edges != 5 {
		t.Fatalf("header fields wrong: %+v", r)
	}
	if r.ToursRun == 0 || r.Objective <= 0 {
		t.Fatalf("missing colony stats: %+v", r)
	}
	// best_tour must be present for aco even when its value is 0 (the
	// LPL seed stood) — that 0 is meaningful, not an omitted field.
	if r.BestTour == nil {
		t.Fatal("best_tour missing from aco response")
	}
	if len(r.Layers) != r.Metrics.Height {
		t.Fatalf("%d layers vs height %d", len(r.Layers), r.Metrics.Height)
	}
	seen := map[string]bool{}
	for _, layer := range r.Layers {
		for _, name := range layer {
			seen[name] = true
		}
	}
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if !seen[name] {
			t.Fatalf("vertex %s missing from layers %v", name, r.Layers)
		}
	}
	// The layering must respect the edges: every edge points to a lower
	// layer (a above b above d above e, by construction).
	layerOf := map[string]int{}
	for i, layer := range r.Layers {
		for _, name := range layer {
			layerOf[name] = i + 1
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}, {"d", "e"}} {
		if layerOf[e[0]] <= layerOf[e[1]] {
			t.Fatalf("edge %s->%s not downward in %v", e[0], e[1], r.Layers)
		}
	}
}

func TestLayerCacheHitIsByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp1, body1 := postLayer(t, ts, "seed=7&tours=5", demoDOT)
	resp2, body2 := postLayer(t, ts, "seed=7&tours=5", demoDOT)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit returned different bytes:\n%s\nvs\n%s", body1, body2)
	}
	m := s.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	// A different seed is a different search: must miss and recompute
	// (on this tiny graph the colony may still find the same layering,
	// so only the cache disposition is asserted).
	resp3, _ := postLayer(t, ts, "seed=8&tours=5", demoDOT)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("changed seed X-Cache = %q, want miss", got)
	}
}

// TestLayerCacheIgnoresWorkersAndTimeout pins the key design: parallelism
// and deadlines do not change the result, so they must not split the cache.
func TestLayerCacheIgnoresWorkersAndTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body1 := postLayer(t, ts, "seed=3&workers=1", demoDOT)
	resp2, body2 := postLayer(t, ts, "seed=3&workers=4&timeout-ms=60000", demoDOT)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("workers/timeout variation X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("workers variation changed response bytes")
	}
}

func TestLayerDeadlineReturns504AndLeaksNothing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Warm up the connection pool so the baseline includes it.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	baseline := runtime.NumGoroutine()

	resp, body := postLayer(t, ts, "format=edges&tours=1000000&ants=8&timeout-ms=1", bigEdgeList(300))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
	if m := s.Metrics(); m.Timeouts != 1 {
		t.Fatalf("timeouts counter = %d, want 1", m.Timeouts)
	}
	// The colony's worker goroutines must wind down once the deadline
	// fires; give slow machines a generous window.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > baseline {
		t.Fatalf("goroutines leaked after 504: baseline %d, now %d", baseline, after)
	}
	// The aborted run must not have been cached: a retry with a sane
	// deadline computes and succeeds.
	resp2, _ := postLayer(t, ts, "format=edges&tours=5&ants=8", bigEdgeList(300))
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Cache") != "miss" {
		t.Fatalf("retry after 504: status %d, X-Cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
}

func TestLayerConcurrentUnderSemaphore(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+fmt.Sprintf("/layer?seed=%d", i%2), "text/plain", strings.NewReader(demoDOT))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.LayerRequests != 8 {
		t.Fatalf("layer_requests = %d, want 8", m.LayerRequests)
	}
}

// TestLayerSingleFlightCoalescing pins the dedup of concurrent identical
// requests: one colony computes, everyone else reuses its bytes.
func TestLayerSingleFlightCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const clients = 8
	query := "?format=edges&tours=200&ants=8&seed=9"
	graph := bigEdgeList(200)
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/layer"+query, "text/plain", strings.NewReader(graph))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			bodies[i], errs[i] = io.ReadAll(resp.Body)
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, bodies[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	m := s.Metrics()
	if m.CacheMisses != 1 {
		t.Fatalf("cache_misses = %d, want 1 (single compute for %d identical requests)", m.CacheMisses, clients)
	}
	if m.CacheHits+m.Coalesced != clients-1 {
		t.Fatalf("hits %d + coalesced %d != %d", m.CacheHits, m.Coalesced, clients-1)
	}
}

// TestShutdownAbortsInFlightWith503 pins the shutdown path: a request
// whose computation outlives the grace period is answered 503, not
// blamed on the client, and the colony stops.
func TestShutdownAbortsInFlightWith503(t *testing.T) {
	s := New(Config{ShutdownGrace: 100 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	url := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   string
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/layer?format=edges&tours=100000000&ants=8&timeout-ms=60000",
			"text/plain", strings.NewReader(bigEdgeList(300)))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: string(b)}
	}()

	// Wait for the request to be computing, then trigger shutdown.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.Metrics().InFlight == 0 {
		t.Fatal("request never started computing")
	}
	cancel()
	select {
	case res := <-resc:
		if res.err != nil {
			t.Fatalf("client error: %v", res.err)
		}
		if res.status != http.StatusServiceUnavailable {
			t.Fatalf("status %d (%q), want 503", res.status, res.body)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never answered")
	}
	select {
	case err := <-served:
		if err == nil {
			t.Log("shutdown drained within grace")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return")
	}
}

func TestLayerOtherAlgorithmsAndRender(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, algo := range []string{"lpl", "minwidth", "cg", "ns"} {
		resp, body := postLayer(t, ts, "algo="+algo+"&promote=true", demoDOT)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d, body %s", algo, resp.StatusCode, body)
		}
		var r testResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.Algo != algo || len(r.Layers) == 0 {
			t.Fatalf("%s: bad response %+v", algo, r)
		}
	}
	resp, body := postLayer(t, ts, "render=svg", demoDOT)
	if resp.StatusCode != 200 {
		t.Fatalf("render=svg status %d", resp.StatusCode)
	}
	var r testResponse
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.SVG, "<svg") {
		t.Fatalf("render=svg returned no SVG: %.80s", r.SVG)
	}
	_, body = postLayer(t, ts, "render=ascii&format=edges", "3 2\n1 0\n2 1\n")
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.ASCII == "" {
		t.Fatal("render=ascii returned no drawing")
	}
}

func TestLayerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	cases := []struct {
		name, query, body string
		status            int
	}{
		{"unknown param", "tuors=10", demoDOT, 400},
		{"bad value", "ants=many", demoDOT, 400},
		{"bad algo", "algo=dijkstra", demoDOT, 400},
		{"bad render", "render=png", demoDOT, 400},
		{"bad dot", "", "digraph {", 400},
		{"cyclic graph", "", "digraph { a -> b; b -> a; }", 400},
		{"invalid params", "ants=0", demoDOT, 400},
		{"body too large", "", strings.Repeat("x", 4096), 413},
	}
	for _, tc := range cases {
		resp, body := postLayer(t, ts, tc.query, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (body %.120s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/layer")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /layer status %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Build  struct {
			Version string `json:"version"`
			Go      string `json:"go"`
		} `json:"build"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || health.Status != "ok" {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}
	if health.Build.Version == "" {
		t.Fatal("healthz reports no build version")
	}

	postLayer(t, ts, "tours=3", demoDOT)
	postLayer(t, ts, "tours=3", demoDOT)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.LayerRequests != 2 || m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.CacheHitRate != 0.5 || m.CacheEntries != 1 {
		t.Fatalf("hit rate %v entries %d, want 0.5 / 1", m.CacheHitRate, m.CacheEntries)
	}
	if m.ToursRun != 3 { // the hit ran zero tours
		t.Fatalf("tours_run = %d, want 3", m.ToursRun)
	}
	if m.Latency.Count != 2 || m.RequestsTotal < 4 {
		t.Fatalf("latency count %d, requests %d", m.Latency.Count, m.RequestsTotal)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}
