package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, jobStatusView) {
	t.Helper()
	url := ts.URL + "/jobs"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status jobStatusView
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &status)
	status.raw = data
	return resp, status
}

// jobStatusView decodes both the status envelope and (for done jobs) the
// /layer body.
type jobStatusView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
	Poll  string `json:"poll"`
	raw   []byte
}

func getJob(t *testing.T, ts *httptest.Server, id string) (*http.Response, jobStatusView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status jobStatusView
	data, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(data, &status)
	status.raw = data
	return resp, status
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// pollUntilTerminal polls GET /jobs/{id} until the X-Job-State header
// reports a terminal state.
func pollUntilTerminal(t *testing.T, ts *httptest.Server, id string) (*http.Response, jobStatusView) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, status := getJob(t, ts, id)
		state := resp.Header.Get("X-Job-State")
		if state == "done" || state == "failed" {
			return resp, status
		}
		if state != "queued" && state != "running" {
			t.Fatalf("job %s in unexpected state %q", id, state)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 10s", id, state)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobsSubmitPollDone covers the happy path end to end: 202 + id on
// submit, polling through to done, and a done body byte-identical to what
// a synchronous /layer of the same request serves.
func TestJobsSubmitPollDone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, status := postJob(t, ts, "seed=5&tours=3", demoDOT)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, body %s", resp.StatusCode, status.raw)
	}
	if status.ID == "" || status.State != "queued" || status.Poll != "/jobs/"+status.ID {
		t.Fatalf("submit body: %+v", status)
	}

	final, view := pollUntilTerminal(t, ts, status.ID)
	if got := final.Header.Get("X-Job-State"); got != "done" {
		t.Fatalf("job finished %q (%s)", got, view.raw)
	}

	// The same request served synchronously must produce the same bytes
	// (both paths share Compute and the cache).
	lresp, lbody := postLayer(t, ts, "seed=5&tours=3", demoDOT)
	if lresp.StatusCode != http.StatusOK {
		t.Fatalf("sync /layer status %d", lresp.StatusCode)
	}
	if !bytes.Equal(view.raw, lbody) {
		t.Fatalf("job body diverges from /layer body:\n%s\n%s", view.raw, lbody)
	}
	if lresp.Header.Get("X-Cache") != "hit" {
		t.Fatal("sync /layer after done job missed the shared cache")
	}
}

// TestJobsIslandAlgo runs an island job through the async path.
func TestJobsIslandAlgo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, status := postJob(t, ts, "algo=island&islands=2&tours=2&migration-interval=1&seed=3", demoDOT)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	_, view := pollUntilTerminal(t, ts, status.ID)
	var body struct {
		Algo       string `json:"algo"`
		BestIsland *int   `json:"best_island"`
		Islands    int    `json:"islands"`
		ToursRun   int    `json:"tours_run"`
	}
	if err := json.Unmarshal(view.raw, &body); err != nil {
		t.Fatalf("done body: %v\n%s", err, view.raw)
	}
	if body.Algo != "island" || body.BestIsland == nil || body.Islands != 2 || body.ToursRun != 4 {
		t.Fatalf("island job body: %+v (%s)", body, view.raw)
	}
}

// TestJobsCancellation covers DELETE: a long-running job cancelled
// mid-flight fails with the 499-style reason, through the colony's
// context plumbing.
func TestJobsCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	resp, status := postJob(t, ts, "format=edges&tours=1000000&ants=8", bigEdgeList(300))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	// Wait for the job to start computing so the cancel exercises the
	// running path, not the queued one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, _ := getJob(t, ts, status.ID)
		if r.Header.Get("X-Job-State") == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp := deleteJob(t, ts, status.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	final, view := pollUntilTerminal(t, ts, status.ID)
	if got := final.Header.Get("X-Job-State"); got != "failed" {
		t.Fatalf("cancelled job state %q", got)
	}
	if !strings.Contains(view.Error, "499") || !strings.Contains(view.Error, "client closed request") {
		t.Fatalf("cancelled job error %q lacks the 499-style reason", view.Error)
	}
	if m := metricsOf(t, ts); m.Jobs.Canceled != 1 || m.Jobs.Failed != 1 {
		t.Fatalf("job metrics after cancel: %+v", m.Jobs)
	}
}

// TestJobsCancelQueued cancels a job that never left the backlog.
func TestJobsCancelQueued(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 4})
	// Occupy the single worker.
	_, blocker := postJob(t, ts, "format=edges&tours=1000000&ants=8", bigEdgeList(300))
	resp, queued := postJob(t, ts, "seed=2", demoDOT)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	deleteJob(t, ts, queued.ID)
	final, view := pollUntilTerminal(t, ts, queued.ID)
	if got := final.Header.Get("X-Job-State"); got != "failed" {
		t.Fatalf("cancelled queued job state %q", got)
	}
	if !strings.Contains(view.Error, "499") {
		t.Fatalf("cancelled queued job error %q", view.Error)
	}
	deleteJob(t, ts, blocker.ID) // unblock the worker for Cleanup
}

// TestJobsQueueFull fills the backlog and expects 429 with Retry-After.
func TestJobsQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 1})
	// One job computing, one queued: the next submit must bounce.
	_, running := postJob(t, ts, "format=edges&tours=1000000&ants=8", bigEdgeList(300))
	if _, st := postJob(t, ts, "seed=2", demoDOT); st.ID == "" {
		t.Fatal("second submit rejected before the backlog was full")
	}
	resp, _ := postJob(t, ts, "seed=3", demoDOT)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status %d, want 429", resp.StatusCode)
	}
	// The hint is pinned to the queue-stats formula (batch.RetryAfterSeconds):
	// workers=1, running=1, queued=1 → 2 drain rounds, not a constant "1".
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (derived from queue stats)", got, "2")
	}
	if m := metricsOf(t, ts); m.Jobs.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", m.Jobs.Rejected)
	}
	deleteJob(t, ts, running.ID)
}

// TestJobsValidation: bad requests fail at submission, not at poll time,
// and malformed job paths 404.
func TestJobsValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, _ := postJob(t, ts, "algo=bogus", demoDOT); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus algo: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, "", "not a graph"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus body: %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
	// GET /jobs without an id is the listing, not a submission; other
	// verbs stay rejected.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs: %d", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /jobs: %d", resp.StatusCode)
	}
}

// TestJobsManyConcurrent floods the queue within its bounds and expects
// every job to finish done, exercising the pool under parallel load.
func TestJobsManyConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 4, JobQueueDepth: 32})
	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		resp, status := postJob(t, ts, fmt.Sprintf("seed=%d&tours=2", i), demoDOT)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, status.ID)
	}
	for _, id := range ids {
		final, view := pollUntilTerminal(t, ts, id)
		if got := final.Header.Get("X-Job-State"); got != "done" {
			t.Fatalf("job %s: %s (%s)", id, got, view.raw)
		}
	}
	m := metricsOf(t, ts)
	if m.Jobs.Done != 12 || m.Jobs.Submitted != 12 || m.Jobs.Queued != 0 || m.Jobs.Running != 0 {
		t.Fatalf("job metrics: %+v", m.Jobs)
	}
}

// TestJobsIdenticalRequestsComputeOnce: identical jobs share one colony
// run — whichever interleaving happens (concurrent → single-flight
// coalesce, sequential → cache hit), exactly one body is ever computed.
func TestJobsIdenticalRequestsComputeOnce(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 4})
	ids := make([]string, 4)
	for i := range ids {
		resp, status := postJob(t, ts, "seed=11&tours=4&ants=8", demoDOT)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		ids[i] = status.ID
	}
	var bodies [][]byte
	for _, id := range ids {
		final, view := pollUntilTerminal(t, ts, id)
		if got := final.Header.Get("X-Job-State"); got != "done" {
			t.Fatalf("job %s: %s (%s)", id, got, view.raw)
		}
		bodies = append(bodies, view.raw)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("identical jobs returned different bodies")
		}
	}
	if m := metricsOf(t, ts); m.CacheMisses != 1 {
		t.Fatalf("%d identical jobs computed %d bodies, want 1 (coalesced=%d hits=%d)",
			len(ids), m.CacheMisses, m.Coalesced, m.CacheHits)
	}
}

func metricsOf(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}
