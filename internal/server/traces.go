package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"antlayer/internal/obs"
)

// handleTraces serves GET /traces: the retained request traces, slowest
// first — the union of the recent ring and the slowest-N retention list,
// so both "what just happened" and "what was ever slow" stay answerable.
//
//	?limit=N    at most N traces (0 or absent: all retained)
//	?min_ms=D   only finished traces at least D milliseconds long
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.httpError(w, http.StatusMethodNotAllowed, "GET /traces lists retained request traces")
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.httpError(w, http.StatusBadRequest, "bad limit %q (want a non-negative integer)", v)
			return
		}
		limit = n
	}
	var min time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.httpError(w, http.StatusBadRequest, "bad min_ms %q (want a non-negative number)", v)
			return
		}
		min = time.Duration(ms * float64(time.Millisecond))
	}
	views := s.tracer.List(limit, min)
	if views == nil {
		views = []obs.TraceView{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Traces []obs.TraceView `json:"traces"`
	}{views})
}

// handleTrace serves GET /traces/{id}: one trace with its full span
// breakdown, including rebased worker spans for distributed runs. 404
// when the ID was never seen or has aged out of both retention tiers.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.httpError(w, http.StatusMethodNotAllowed, "GET /traces/{id} fetches one request trace")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	if id == "" || strings.Contains(id, "/") {
		s.httpError(w, http.StatusNotFound, "want /traces/{id}")
		return
	}
	tr, ok := s.tracer.Get(id)
	if !ok {
		s.httpError(w, http.StatusNotFound, "no trace %q (traces are retained in a bounded ring plus a slowest-N list)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(tr.View())
}
