package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"antlayer/internal/shard"
)

// testCluster starts a coordinator plus n in-process workers on loopback
// and tears them down with the test.
func testCluster(t *testing.T, n int) *shard.Coordinator {
	return testClusterCfg(t, n, shard.CoordinatorConfig{}, nil)
}

// testClusterCfg is testCluster with explicit coordinator and per-worker
// fault configuration (fault nil = healthy workers).
func testClusterCfg(t *testing.T, n int, cfg shard.CoordinatorConfig, fault *shard.FaultPlan) *shard.Coordinator {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	coord := shard.NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = coord.Serve(ctx, ln) }()
	addr := ln.Addr().String()
	for i := 0; i < n; i++ {
		w := shard.NewWorker(shard.WorkerConfig{Name: fmt.Sprintf("tw%d", i), Fault: fault})
		go func() { _ = w.Run(ctx, addr) }()
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.Workers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return coord
}

// TestLayerDistributedByteIdentical pins the headline invariant at the
// HTTP layer: with the cache disabled (so both answers really compute),
// a distributed=true island request returns byte-for-byte the body of
// the in-process request — across two different fleet sizes, i.e. two
// different partitions of the islands.
func TestLayerDistributedByteIdentical(t *testing.T) {
	const query = "algo=island&islands=4&tours=3&migration-interval=1&seed=9"
	_, plainTS := newTestServer(t, Config{CacheSize: -1})
	_, wantBody := postLayer(t, plainTS, query, demoDOT)

	for _, workers := range []int{2, 3} {
		coord := testCluster(t, workers)
		_, ts := newTestServer(t, Config{CacheSize: -1, Coordinator: coord})
		resp, body := postLayer(t, ts, query+"&distributed=true", demoDOT)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, resp.StatusCode, body)
		}
		if !bytes.Equal(body, wantBody) {
			t.Errorf("workers=%d: distributed body diverges from in-process:\n%s\n%s", workers, body, wantBody)
		}
		snap := mustMetrics(t, ts.URL)
		if snap.DistributedRuns != 1 {
			t.Errorf("workers=%d: distributed_runs = %d, want 1", workers, snap.DistributedRuns)
		}
		if snap.Cluster == nil || snap.Cluster.Workers != workers {
			t.Errorf("workers=%d: cluster metrics %+v", workers, snap.Cluster)
		} else if snap.Cluster.Runs != 1 || len(snap.Cluster.PerWorker) != workers {
			t.Errorf("workers=%d: cluster run accounting %+v", workers, snap.Cluster)
		}
	}
}

// TestLayerDistributedSharesCacheWithLocal: distributed is excluded from
// the cache key, so a local request primes the cache for a distributed
// one (and vice versa) — the bodies are identical by construction.
func TestLayerDistributedSharesCacheWithLocal(t *testing.T) {
	coord := testCluster(t, 2)
	_, ts := newTestServer(t, Config{Coordinator: coord})
	const query = "algo=island&islands=2&tours=2&migration-interval=1&seed=4"
	resp1, body1 := postLayer(t, ts, query, demoDOT)
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request: X-Cache %q", resp1.Header.Get("X-Cache"))
	}
	resp2, body2 := postLayer(t, ts, query+"&distributed=true", demoDOT)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("distributed twin missed the cache: X-Cache %q", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached distributed body differs")
	}
}

// TestLayerDistributedFallsBackWithoutWorkers: a coordinator daemon with
// an empty fleet still answers — in-process, counted as a fallback.
func TestLayerDistributedFallsBackWithoutWorkers(t *testing.T) {
	coord := testCluster(t, 0)
	_, ts := newTestServer(t, Config{CacheSize: -1, Coordinator: coord})
	resp, body := postLayer(t, ts, "algo=island&islands=2&tours=2&distributed=true", demoDOT)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	snap := mustMetrics(t, ts.URL)
	if snap.DistributedFallbacks != 1 || snap.DistributedRuns != 0 {
		t.Errorf("fallbacks=%d runs=%d, want 1/0", snap.DistributedFallbacks, snap.DistributedRuns)
	}
}

func TestLayerDistributedRequiresCoordinator(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postLayer(t, ts, "algo=island&distributed=true", demoDOT)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

func TestLayerDistributedRequiresIsland(t *testing.T) {
	coord := testCluster(t, 1)
	_, ts := newTestServer(t, Config{Coordinator: coord})
	resp, body := postLayer(t, ts, "algo=lpl&distributed=true", demoDOT)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
}

// TestJobsDistributed runs a distributed island job through the async
// path: the done body must equal the in-process /layer body.
func TestJobsDistributed(t *testing.T) {
	coord := testCluster(t, 2)
	_, ts := newTestServer(t, Config{CacheSize: -1, Coordinator: coord})
	const query = "algo=island&islands=3&tours=2&migration-interval=1&seed=6"
	resp, status := postJob(t, ts, query+"&distributed=true", demoDOT)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, status.raw)
	}
	_, view := pollUntilTerminal(t, ts, status.ID)

	_, plainTS := newTestServer(t, Config{CacheSize: -1})
	_, want := postLayer(t, plainTS, query, demoDOT)
	if !bytes.Equal(view.raw, want) {
		t.Errorf("distributed job body diverges:\n%s\n%s", view.raw, want)
	}
}

// TestClusterEndpoint covers GET /cluster on coordinator and
// non-coordinator daemons.
func TestClusterEndpoint(t *testing.T) {
	_, plainTS := newTestServer(t, Config{})
	resp, err := http.Get(plainTS.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-coordinator /cluster status %d", resp.StatusCode)
	}

	coord := testCluster(t, 2)
	_, ts := newTestServer(t, Config{Coordinator: coord})
	resp, err = http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m shard.ClusterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Workers != 2 {
		t.Errorf("cluster reports %d workers, want 2", m.Workers)
	}
}

// TestLayerDistributedConcurrentByteIdentical is the tentpole at the
// HTTP layer: two different K=2 distributed requests on a 4-worker fleet
// run at the same time (the fault delay keeps each run in flight long
// enough that the scheduler must overlap them), and each body is
// byte-identical to its in-process twin.
func TestLayerDistributedConcurrentByteIdentical(t *testing.T) {
	queries := []string{
		"algo=island&islands=2&tours=3&migration-interval=1&seed=41",
		"algo=island&islands=2&tours=3&migration-interval=1&seed=42",
	}
	// Warm starting is off on both servers: the two requests share a graph,
	// so the second would otherwise inherit the first's pheromone state —
	// deterministically when sequential, timing-dependently when
	// concurrent — and the bodies compared here would no longer be twins.
	_, plainTS := newTestServer(t, Config{CacheSize: -1, WarmCacheBytes: -1})
	want := make([][]byte, len(queries))
	for i, q := range queries {
		_, want[i] = postLayer(t, plainTS, q, demoDOT)
	}

	coord := testClusterCfg(t, 4, shard.CoordinatorConfig{}, &shard.FaultPlan{EpochDelay: 15 * time.Millisecond})
	// MaxConcurrent must exceed 1 explicitly: on a single-CPU machine the
	// GOMAXPROCS default would serialize the requests at the compute
	// semaphore before the scheduler ever sees the second run.
	_, ts := newTestServer(t, Config{CacheSize: -1, WarmCacheBytes: -1, MaxConcurrent: 4, Coordinator: coord})
	type result struct {
		i    int
		code int
		body []byte
	}
	results := make(chan result, len(queries))
	for i, q := range queries {
		go func(i int, q string) {
			resp, body := postLayer(t, ts, q+"&distributed=true", demoDOT)
			results <- result{i, resp.StatusCode, body}
		}(i, q)
	}
	for range queries {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", r.i, r.code, r.body)
		}
		if !bytes.Equal(r.body, want[r.i]) {
			t.Errorf("request %d: concurrent distributed body diverges from in-process", r.i)
		}
	}
	cm := coord.Metrics()
	if cm.Runs != 2 || cm.RunErrors != 0 {
		t.Errorf("cluster runs=%d errors=%d, want 2/0", cm.Runs, cm.RunErrors)
	}
	if cm.PeakConcurrentRuns < 2 {
		t.Errorf("peak_concurrent_runs=%d, want >= 2 (the runs serialized)", cm.PeakConcurrentRuns)
	}
}

// TestLayerRunQueueFull429: when the scheduler cannot admit a
// distributed run, /layer answers 429 with a stats-derived Retry-After —
// it must not silently fall back in-process (the cluster being saturated
// is not the same as the cluster being absent).
func TestLayerRunQueueFull429(t *testing.T) {
	coord := testClusterCfg(t, 1,
		shard.CoordinatorConfig{MaxConcurrentRuns: 1, QueueDepth: -1},
		&shard.FaultPlan{EpochDelay: 50 * time.Millisecond})
	_, ts := newTestServer(t, Config{CacheSize: -1, MaxConcurrent: 4, Coordinator: coord})

	first := make(chan []byte, 1)
	go func() {
		_, body := postLayer(t, ts, "algo=island&islands=1&tours=4&migration-interval=1&seed=51&distributed=true", demoDOT)
		first <- body
	}()
	deadline := time.Now().Add(10 * time.Second)
	for coord.Metrics().RunsInFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first distributed run never dispatched")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, body := postLayer(t, ts, "algo=island&islands=1&tours=4&migration-interval=1&seed=52&distributed=true", demoDOT)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated scheduler answered %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	<-first
	if cm := coord.Metrics(); cm.RunsRejected != 1 {
		t.Errorf("runs_rejected=%d, want 1", cm.RunsRejected)
	}
}

// mustMetrics fetches and decodes /metrics.
func mustMetrics(t *testing.T, baseURL string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}
