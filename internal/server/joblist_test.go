package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// jobListView mirrors the GET /jobs document for decoding.
type jobListView struct {
	Jobs []struct {
		ID        string     `json:"id"`
		State     string     `json:"state"`
		Error     string     `json:"error"`
		Poll      string     `json:"poll"`
		Submitted time.Time  `json:"submitted"`
		Started   *time.Time `json:"started"`
		Finished  *time.Time `json:"finished"`
	} `json:"jobs"`
	Stats struct {
		Submitted int64 `json:"submitted"`
		Done      int64 `json:"done"`
		Expired   int64 `json:"expired"`
	} `json:"stats"`
}

func getJobList(t *testing.T, ts *httptest.Server, query string) (*http.Response, jobListView) {
	t.Helper()
	url := ts.URL + "/jobs"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var view jobListView
	_ = json.Unmarshal(data, &view)
	return resp, view
}

// TestJobsListingEndToEnd submits jobs, lists them with and without a
// state filter, and checks the listed shape (ids in submission order,
// poll URLs, timestamps).
func TestJobsListingEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, first := postJob(t, ts, "seed=11&tours=2", demoDOT)
	_, second := postJob(t, ts, "seed=12&tours=2", demoDOT)
	pollUntilTerminal(t, ts, first.ID)
	pollUntilTerminal(t, ts, second.ID)

	resp, list := getJobList(t, ts, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(list.Jobs))
	}
	if list.Jobs[0].ID != first.ID || list.Jobs[1].ID != second.ID {
		t.Errorf("listing out of submission order: %+v", list.Jobs)
	}
	for _, j := range list.Jobs {
		if j.State != "done" || j.Poll != "/jobs/"+j.ID {
			t.Errorf("job row: %+v", j)
		}
		if j.Submitted.IsZero() || j.Started == nil || j.Finished == nil {
			t.Errorf("job row missing timestamps: %+v", j)
		}
	}
	if list.Stats.Submitted != 2 || list.Stats.Done != 2 {
		t.Errorf("embedded stats: %+v", list.Stats)
	}

	// The state filter: everything is done, so queued is empty.
	if _, filtered := getJobList(t, ts, "state=done"); len(filtered.Jobs) != 2 {
		t.Errorf("state=done listed %d jobs", len(filtered.Jobs))
	}
	if _, filtered := getJobList(t, ts, "state=queued"); len(filtered.Jobs) != 0 {
		t.Errorf("state=queued listed %d jobs", len(filtered.Jobs))
	}
	if resp, _ := getJobList(t, ts, "state=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus state filter status %d", resp.StatusCode)
	}
}

// TestJobsExpirySweep configures a tiny JobExpiry and watches a finished
// job disappear from both the listing and GET /jobs/{id}.
func TestJobsExpirySweep(t *testing.T) {
	_, ts := newTestServer(t, Config{JobExpiry: 50 * time.Millisecond})
	_, status := postJob(t, ts, "seed=13&tours=2", demoDOT)
	pollUntilTerminal(t, ts, status.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := getJob(t, ts, status.ID)
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, list := getJobList(t, ts, "")
	if len(list.Jobs) != 0 {
		t.Errorf("expired job still listed: %+v", list.Jobs)
	}
	if list.Stats.Expired == 0 {
		t.Errorf("stats.expired = %d, want > 0", list.Stats.Expired)
	}
}
