package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// bulkBody builds an ndjson request body from (query, graph) pairs.
func bulkBody(lines ...[2]string) string {
	var b strings.Builder
	for _, l := range lines {
		data, _ := json.Marshal(bulkLine{Query: l[0], Graph: l[1]})
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

// postBulk POSTs ndjson to /jobs/bulk and returns the response lines
// (without trailing newlines) once the stream ends.
func postBulk(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, []string) {
	t.Helper()
	url := ts.URL + "/jobs/bulk"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// TestBulkRawByteIdentity is the bulk acceptance criterion: each
// succeeded line of the default (raw) /jobs/bulk response is
// byte-identical to the body POST /layer serves for the same request.
func TestBulkRawByteIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	requests := [][2]string{
		{"seed=7&tours=3", demoDOT},
		{"format=edges&seed=8&tours=3", bigEdgeList(40)},
		{"render=ascii&format=edges", "3 2\n1 0\n2 1\n"},
	}
	want := make(map[string]bool, len(requests))
	for _, rq := range requests {
		resp, body := postLayer(t, ts, rq[0], rq[1])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("layer %q answered %d: %s", rq[0], resp.StatusCode, body)
		}
		want[string(body)] = false
	}

	resp, lines := postBulk(t, ts, "", bulkBody(requests...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("bulk Content-Type = %q", ct)
	}
	if len(lines) != len(requests) {
		t.Fatalf("bulk streamed %d lines, want %d: %v", len(lines), len(requests), lines)
	}
	for _, line := range lines {
		key := line + "\n" // the scanner strips the newline Compute appends
		seen, ok := want[key]
		if !ok {
			t.Fatalf("bulk line not byte-identical to any /layer body: %q", line)
		}
		if seen {
			t.Fatalf("bulk line duplicated: %q", line)
		}
		want[key] = true
	}
}

// TestBulkEnvelopeMode: ?envelope=true wraps every line with the input
// line number, job id and state, carrying the /layer body inside — the
// correlation `daglayer batch -stream` relies on — and reports parse
// failures as failed lines instead of aborting the stream.
func TestBulkEnvelopeMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := bulkBody(
		[2]string{"seed=9&tours=2", demoDOT},
		[2]string{"algo=unknown-algo", demoDOT},
	)
	resp, lines := postBulk(t, ts, "envelope=true", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk answered %d", resp.StatusCode)
	}
	if len(lines) != 2 {
		t.Fatalf("bulk streamed %d lines, want 2: %v", len(lines), lines)
	}
	byLine := map[int]bulkResult{}
	for _, line := range lines {
		var res bulkResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatalf("bad envelope line %q: %v", line, err)
		}
		byLine[res.Line] = res
	}
	good, ok := byLine[1]
	if !ok || good.State != "done" || good.Job == "" || len(good.Body) == 0 {
		t.Fatalf("line 1 envelope = %+v, want a done job with a body", good)
	}
	_, layerBody := postLayer(t, ts, "seed=9&tours=2", demoDOT)
	if string(good.Body)+"\n" != string(layerBody) {
		t.Fatalf("envelope body differs from /layer:\n%s\nvs\n%s", good.Body, layerBody)
	}
	bad, ok := byLine[2]
	if !ok || bad.State != "failed" || bad.Error == "" || bad.Job != "" {
		t.Fatalf("line 2 envelope = %+v, want an unadmitted parse failure", bad)
	}
}

// TestBulkQueueFullRejection: lines beyond the queue bound are rejected
// through the same admission machinery as POST /jobs — an error line
// carrying the Retry-After hint, not a silently dropped request.
func TestBulkQueueFullRejection(t *testing.T) {
	_, ts := newTestServer(t, Config{
		JobWorkers: 1, JobQueueDepth: 1,
		FaultComputeDelay: 300 * time.Millisecond,
	})
	var reqs [][2]string
	for i := 0; i < 6; i++ {
		// Distinct seeds: identical lines would coalesce on the flight
		// group and never occupy extra queue slots.
		reqs = append(reqs, [2]string{fmt.Sprintf("seed=%d&tours=2", 100+i), demoDOT})
	}
	resp, lines := postBulk(t, ts, "envelope=true", bulkBody(reqs...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk answered %d", resp.StatusCode)
	}
	if len(lines) != len(reqs) {
		t.Fatalf("bulk streamed %d lines, want %d", len(lines), len(reqs))
	}
	done, rejected := 0, 0
	for _, line := range lines {
		var res bulkResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			t.Fatal(err)
		}
		switch {
		case res.State == "done":
			done++
		case res.State == "failed" && res.RetryAfter > 0:
			rejected++
		default:
			t.Fatalf("unexpected bulk line %+v", res)
		}
	}
	if done == 0 || rejected == 0 {
		t.Fatalf("done=%d rejected=%d, want both admission outcomes", done, rejected)
	}
	if m := metricsOf(t, ts); m.BulkRequests != 1 || m.BulkJobs != int64(done) {
		t.Fatalf("bulk metrics = %d requests / %d jobs, want 1 / %d", m.BulkRequests, m.BulkJobs, done)
	}
}

// TestBulkBadMethodAndEmpty: GET is refused; an empty body streams back
// an empty (but successful) response.
func TestBulkBadMethodAndEmpty(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/jobs/bulk")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /jobs/bulk answered %d, want 405", resp.StatusCode)
	}
	resp2, lines := postBulk(t, ts, "", "\n\n")
	if resp2.StatusCode != http.StatusOK || len(lines) != 0 {
		t.Fatalf("empty bulk answered %d with %v", resp2.StatusCode, lines)
	}
}

// BenchmarkBulkIntake measures the bulk pipeline end to end over HTTP —
// line parsing, admission, job execution (cache-hot after the first
// line), waiter fan-in and ndjson streaming — per input line.
func BenchmarkBulkIntake(b *testing.B) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	line := func() string {
		data, _ := json.Marshal(bulkLine{Query: "seed=42&tours=2", Graph: demoDOT})
		return string(data) + "\n"
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for n := b.N; n > 0; {
		chunk := n
		if chunk > 64 {
			chunk = 64 // bound each request so the job queue's depth is never the subject
		}
		n -= chunk
		resp, err := http.Post(ts.URL+"/jobs/bulk", "application/x-ndjson",
			strings.NewReader(strings.Repeat(line, chunk)))
		if err != nil {
			b.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("bulk answered %d: %s", resp.StatusCode, out)
		}
	}
}
