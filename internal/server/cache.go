package server

import (
	"container/list"
	"sync"
)

// resultCache is a size-aware LRU over finished response bodies, keyed by
// the canonical (graph, params) hash (see requestKey). Because a colony
// run is a bitwise-deterministic function of the graph and the parameters
// (PR 1), a cached body is exactly the body a recomputation would produce —
// the cache trades CPU for memory with no approximation.
//
// Admission and eviction are byte-weighted as well as entry-counted:
// bodies vary by four orders of magnitude (a plain layering is a few KiB,
// an SVG render can run to megabytes), so a purely entry-counted LRU
// would let one render burst evict hundreds of cheap layering entries.
// Entries are evicted least-recently-used until both the entry cap and
// the byte budget hold, and a single body larger than an admission
// threshold (an eighth of the byte budget) is never cached at all — it
// would purge a disproportionate slice of the working set for one entry
// of dubious reuse. Rejections are counted for /metrics.
//
// Safe for concurrent use. A capacity <= 0 disables the cache: Get always
// misses and Put is a no-op. A maxBytes <= 0 disables the byte budget
// (entry-counted only).
type resultCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	bytes    int64
	oversize int64      // bodies refused admission for size
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		m:        make(map[string]*list.Element),
	}
}

// admissionLimit returns the largest body the cache will accept, or 0 for
// no limit.
func (c *resultCache) admissionLimit() int64 {
	if c.maxBytes <= 0 {
		return 0
	}
	return c.maxBytes / 8
}

// Get returns the cached body for key and marks it most recently used. The
// returned slice is shared: callers must not modify it.
func (c *resultCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting least-recently-used entries until
// both the entry cap and the byte budget hold. Storing an existing key
// refreshes its recency (and re-weighs it). Bodies above the admission
// threshold are not cached.
func (c *resultCache) Put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if limit := c.admissionLimit(); limit > 0 && int64(len(body)) > limit {
		c.oversize++
		// An oversize Put for a key that somehow was admitted earlier
		// (the budget could have been reconfigured) must not leave the
		// stale smaller body behind.
		if el, ok := c.m[key]; ok {
			c.remove(el)
		}
		return
	}
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
	} else {
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.ll.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		c.remove(oldest)
	}
}

// remove drops an element; the caller holds the lock.
func (c *resultCache) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.m, e.key)
	c.bytes -= int64(len(e.body))
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total body bytes currently cached and the number of
// bodies refused admission for size.
func (c *resultCache) Bytes() (bytes, oversize int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.oversize
}
