package server

import (
	"container/list"
	"sync"
)

// resultCache is a fixed-capacity LRU over finished response bodies, keyed
// by the canonical (graph, params) hash (see requestKey). Because a colony
// run is a bitwise-deterministic function of the graph and the parameters
// (PR 1), a cached body is exactly the body a recomputation would produce —
// the cache trades CPU for memory with no approximation.
//
// Safe for concurrent use. A capacity <= 0 disables the cache: Get always
// misses and Put is a no-op.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and marks it most recently used. The
// returned slice is shared: callers must not modify it.
func (c *resultCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entries
// beyond capacity. Storing an existing key refreshes its recency.
func (c *resultCache) Put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
