package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"antlayer/internal/core"
)

// editedDOT is demoDOT with one vertex renamed-in-place edit: vertex f
// added as a new sink under e. High name overlap with demoDOT (6 of 7),
// so the similarity probe finds the lineage.
const editedDOT = `digraph g {
	a -> b; a -> c;
	b -> d; c -> d;
	d -> e;
	e -> f;
}`

// unrelatedDOT shares no vertex names with demoDOT.
const unrelatedDOT = `digraph g {
	x -> y; y -> z;
}`

// TestWarmHeadersAndMetrics drives the transparent warm path end to end:
// a cold request on one graph, then a near-miss request on a lightly
// edited graph. The second must carry X-Warm: hit with the first's graph
// key as its base, and the counters must account one miss (the cold
// probe), one hit and saved tours.
func TestWarmHeadersAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp1, _ := postLayer(t, ts, "algo=aco&tours=9&seed=1", demoDOT)
	if got := resp1.Header.Get("X-Warm"); got != "miss" {
		t.Errorf("cold request X-Warm = %q, want miss", got)
	}
	baseKey := resp1.Header.Get("X-Graph-Key")
	if baseKey == "" {
		t.Fatal("no X-Graph-Key on the cold answer")
	}

	resp2, body2 := postLayer(t, ts, "algo=aco&tours=9&seed=1", editedDOT)
	if got := resp2.Header.Get("X-Warm"); got != "hit" {
		t.Fatalf("edited request X-Warm = %q, want hit (body: %s)", got, body2)
	}
	if got := resp2.Header.Get("X-Warm-Base"); got != baseKey {
		t.Errorf("X-Warm-Base = %q, want the cold answer's graph key %q", got, baseKey)
	}
	var res testResponse
	if err := json.Unmarshal(body2, &res); err != nil {
		t.Fatal(err)
	}
	if res.ToursRun >= 9 {
		t.Errorf("warm-started run executed %d tours, want fewer than the cold budget 9", res.ToursRun)
	}

	m := s.Metrics()
	if m.WarmHits != 1 || m.WarmMisses != 1 {
		t.Errorf("warm hits/misses = %d/%d, want 1/1", m.WarmHits, m.WarmMisses)
	}
	if m.WarmToursSaved <= 0 {
		t.Errorf("warm_tours_saved = %d, want > 0", m.WarmToursSaved)
	}
	if m.WarmEntries < 1 || m.WarmBytes <= 0 {
		t.Errorf("warm cache gauges = %d entries / %d bytes, want populated", m.WarmEntries, m.WarmBytes)
	}
}

// TestWarmReplayByteIdentical: the same warm lineage replayed is served
// from the result cache byte-identically — the generation-stamped
// effective key guarantees a warm body is never conflated with a cold
// one or with a body computed against a newer state.
func TestWarmReplayByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postLayer(t, ts, "algo=aco&tours=9&seed=1", demoDOT)

	resp1, body1 := postLayer(t, ts, "algo=aco&tours=9&seed=1", editedDOT)
	if resp1.Header.Get("X-Warm") != "hit" {
		t.Fatalf("first edited request X-Warm = %q, want hit", resp1.Header.Get("X-Warm"))
	}
	resp2, body2 := postLayer(t, ts, "algo=aco&tours=9&seed=1", editedDOT)
	if !bytes.Equal(body1, body2) {
		t.Errorf("warm replay diverges:\n%s\n%s", body1, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("replayed warm request X-Cache = %q, want hit", got)
	}
}

// TestWarmDisabledAndOptOuts: warm=false requests, non-colony
// algorithms and unrelated graphs never warm-start.
func TestWarmDisabledAndOptOuts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postLayer(t, ts, "algo=aco&tours=9&seed=1", demoDOT)

	resp, _ := postLayer(t, ts, "algo=aco&tours=9&seed=1&warm=false", editedDOT)
	if got := resp.Header.Get("X-Warm"); got != "" {
		t.Errorf("warm=false request X-Warm = %q, want unset", got)
	}
	resp, _ = postLayer(t, ts, "algo=lpl", editedDOT)
	if got := resp.Header.Get("X-Warm"); got != "" {
		t.Errorf("algo=lpl request X-Warm = %q, want unset", got)
	}
	resp, _ = postLayer(t, ts, "algo=aco&tours=9&seed=1", unrelatedDOT)
	if got := resp.Header.Get("X-Warm"); got != "miss" {
		t.Errorf("unrelated-graph request X-Warm = %q, want miss", got)
	}

	// A daemon with warm disabled never probes and never counts.
	s2, ts2 := newTestServer(t, Config{WarmCacheBytes: -1})
	postLayer(t, ts2, "algo=aco&tours=9&seed=1", demoDOT)
	resp, _ = postLayer(t, ts2, "algo=aco&tours=9&seed=1", editedDOT)
	if got := resp.Header.Get("X-Warm"); got != "" {
		t.Errorf("disabled daemon X-Warm = %q, want unset", got)
	}
	if m := s2.Metrics(); m.WarmHits != 0 || m.WarmMisses != 0 || m.WarmEntries != 0 {
		t.Errorf("disabled daemon warm counters = %+v, want all zero", m)
	}
}

// TestWarmBaseKnob: base=<graph key> pins the lineage exactly, bypassing
// the similarity probe — even for a graph the probe would not match.
func TestWarmBaseKnob(t *testing.T) {
	_, ts := newTestServer(t, Config{WarmMinSimilarity: 0.99})
	resp1, _ := postLayer(t, ts, "algo=aco&tours=9&seed=1", demoDOT)
	baseKey := resp1.Header.Get("X-Graph-Key")

	// At threshold 0.99 the probe rejects the edited graph...
	resp2, _ := postLayer(t, ts, "algo=aco&tours=9&seed=1", editedDOT)
	if got := resp2.Header.Get("X-Warm"); got != "miss" {
		t.Fatalf("probe at 0.99 X-Warm = %q, want miss", got)
	}
	// ...but naming the lineage explicitly warm-starts anyway.
	resp3, _ := postLayer(t, ts, "algo=aco&tours=9&seed=2&base="+baseKey, editedDOT)
	if got := resp3.Header.Get("X-Warm"); got != "hit" {
		t.Errorf("base= request X-Warm = %q, want hit", got)
	}
	if got := resp3.Header.Get("X-Warm-Base"); got != baseKey {
		t.Errorf("X-Warm-Base = %q, want %q", got, baseKey)
	}

	// An unknown base is a miss, not an error.
	resp4, _ := postLayer(t, ts, "algo=aco&tours=9&seed=3&base=doesnotexist", editedDOT)
	if got := resp4.Header.Get("X-Warm"); got != "miss" {
		t.Errorf("unknown base X-Warm = %q, want miss", got)
	}
	// base= on a non-colony algorithm is rejected at parse time.
	resp5, body5 := postLayer(t, ts, "algo=lpl&base="+baseKey, editedDOT)
	if resp5.StatusCode != http.StatusBadRequest {
		t.Errorf("base= with algo=lpl status %d, want 400 (%s)", resp5.StatusCode, body5)
	}
}

// TestWarmExactRepeatPrefersResultCache: an identical repeat request is
// a plain cache hit under its cold key — no warm rewrite, bytes
// identical to the first answer.
func TestWarmExactRepeatPrefersResultCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp1, body1 := postLayer(t, ts, "algo=aco&tours=9&seed=1", demoDOT)
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Fatal("first request should compute")
	}
	resp2, body2 := postLayer(t, ts, "algo=aco&tours=9&seed=1", demoDOT)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("repeat answer diverges from first")
	}
	if m := s.Metrics(); m.WarmHits != 0 {
		t.Errorf("exact repeat counted %d warm hits, want 0", m.WarmHits)
	}
}

// TestWarmThroughJobs: the async job path plans warm starts exactly like
// /layer.
func TestWarmThroughJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	postLayer(t, ts, "algo=aco&tours=9&seed=1", demoDOT)

	resp, status := postJob(t, ts, "algo=aco&tours=9&seed=1", editedDOT)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d", resp.StatusCode)
	}
	final, view := pollUntilTerminal(t, ts, status.ID)
	if got := final.Header.Get("X-Job-State"); got != "done" {
		t.Fatalf("job finished %q (%s)", got, view.raw)
	}
	var res testResponse
	if err := json.Unmarshal(view.raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.ToursRun >= 9 {
		t.Errorf("warm-started job ran %d tours, want fewer than 9", res.ToursRun)
	}
	if m := s.Metrics(); m.WarmHits != 1 {
		t.Errorf("warm hits = %d, want 1 (the job)", m.WarmHits)
	}
}

// TestWarmStateFlowsThroughIslandAlgo: algo=island exports and reuses
// state exactly like algo=aco, and tours saved are counted per island.
func TestWarmStateFlowsThroughIslandAlgo(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp1, _ := postLayer(t, ts, "algo=island&islands=2&tours=6&migration-interval=2&seed=4", demoDOT)
	if got := resp1.Header.Get("X-Warm"); got != "miss" {
		t.Fatalf("cold island request X-Warm = %q, want miss", got)
	}
	resp2, body2 := postLayer(t, ts, "algo=island&islands=2&tours=6&migration-interval=2&seed=4", editedDOT)
	if got := resp2.Header.Get("X-Warm"); got != "hit" {
		t.Fatalf("edited island request X-Warm = %q, want hit (%s)", got, body2)
	}
	m := s.Metrics()
	if m.WarmToursSaved <= 0 {
		t.Errorf("warm_tours_saved = %d, want > 0", m.WarmToursSaved)
	}
}

// TestTraceSamplingDisabled: with head sampling off (TraceSample < 0)
// requests still echo a correlatable X-Request-ID, but no trace is
// minted — the ring stays empty.
func TestTraceSamplingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: -1})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/layer?algo=lpl", bytes.NewReader([]byte(demoDOT)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "sampled-out-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "sampled-out-1" {
		t.Errorf("X-Request-ID echo = %q, want sampled-out-1", got)
	}
	// A request without an inbound ID still gets one minted for the echo.
	resp2, _ := postLayer(t, ts, "algo=lpl&seed=2", demoDOT)
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("sampled-out request echoed no X-Request-ID")
	}
	// Neither request entered the trace ring.
	tresp, err := http.Get(ts.URL + "/traces/sampled-out-1")
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /traces/sampled-out-1 status %d, want 404", tresp.StatusCode)
	}
	lresp, err := http.Get(ts.URL + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(doc.Traces) != 0 {
		t.Errorf("trace ring holds %d traces with sampling off, want 0", len(doc.Traces))
	}
}

// TestWarmCacheEvictionAndGenerations exercises the warm cache directly:
// byte-weighted LRU eviction, oversize admission refusal, replacement
// bumping generations, and the deterministic newest-generation tie
// break in the probe.
func TestWarmCacheEvictionAndGenerations(t *testing.T) {
	mkState := func(n, l int) *core.State {
		s := &core.State{L: l, Tau: make([][]float64, n)}
		for v := range s.Tau {
			s.Tau[v] = make([]float64, l)
		}
		return s
	}
	names := func(n int, prefix string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s%d", prefix, i)
		}
		return out
	}

	c := newWarmCache(8 << 10)
	// An entry above a quarter of the budget is refused.
	c.put("big", names(40, "b"), mkState(40, 20)) // 40 rows × 20 cols × 8B > 2 KiB
	if e, b := c.stats(); e != 0 {
		t.Fatalf("oversize state admitted (%d entries, %d bytes)", e, b)
	}
	// Fill until eviction: each small state ~1 KiB.
	for i := 0; i < 12; i++ {
		c.put(fmt.Sprintf("k%d", i), names(10, fmt.Sprintf("s%d_", i)), mkState(10, 12))
	}
	entries, bytes := c.stats()
	if bytes > 8<<10 {
		t.Errorf("cache holds %d bytes over the 8 KiB budget", bytes)
	}
	if entries == 0 || entries == 12 {
		t.Errorf("eviction kept %d of 12 entries, want some but not all", entries)
	}
	if _, ok := c.get("k0"); ok {
		t.Error("oldest entry survived eviction")
	}

	// Replacement bumps the generation.
	c2 := newWarmCache(1 << 20)
	c2.put("g", names(5, "v"), mkState(5, 4))
	e1, _ := c2.get("g")
	gen1 := e1.gen
	c2.put("g", names(5, "v"), mkState(5, 4))
	e2, _ := c2.get("g")
	if e2.gen <= gen1 {
		t.Errorf("replacement generation %d not above %d", e2.gen, gen1)
	}

	// Probe tie break: two equally similar entries — the newest wins.
	c3 := newWarmCache(1 << 20)
	c3.put("old", names(6, "v"), mkState(6, 4))
	c3.put("new", names(6, "v"), mkState(6, 4))
	e, sim := c3.probe(names(6, "v"), 0.5)
	if e == nil || e.key != "new" {
		t.Fatalf("probe tie went to %+v, want the newest entry", e)
	}
	if sim != 1.0 {
		t.Errorf("identical name set similarity %v, want 1.0", sim)
	}
	// Below the threshold: nothing.
	if e, _ := c3.probe(names(6, "x"), 0.5); e != nil {
		t.Errorf("probe matched disjoint names: %+v", e)
	}
}
