package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a was just used, so inserting c evicts b.
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheOverwrite(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get(a) = %q, %v; want \"new\"", got, ok)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestResultCacheEvictionSweep(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries", c.Len())
		}
	}
	// The last 8 inserted survive.
	for i := 92; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
}
