package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, 0)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a was just used, so inserting c evicts b.
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestResultCacheOverwrite(t *testing.T) {
	c := newResultCache(2, 0)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("new")) {
		t.Fatalf("Get(a) = %q, %v; want \"new\"", got, ok)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1, 0)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestResultCacheEvictionSweep(t *testing.T) {
	c := newResultCache(8, 0)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries", c.Len())
		}
	}
	// The last 8 inserted survive.
	for i := 92; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
}

func TestResultCacheByteBudget(t *testing.T) {
	// Budget of 1000 bytes: admission limit 125; small bodies fill until
	// the byte budget evicts LRU-first.
	c := newResultCache(1000, 1000)
	for i := 0; i < 12; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 100))
	}
	if bytes, _ := c.Bytes(); bytes > 1000 {
		t.Fatalf("cached %d bytes, budget 1000", bytes)
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10 (1000/100)", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("oldest entry survived the byte budget")
	}
	if _, ok := c.Get("k11"); !ok {
		t.Fatal("newest entry evicted")
	}
}

// TestResultCacheOversizeAdmission pins the satellite's point: one giant
// body (an SVG render) is refused admission instead of evicting dozens
// of plain layering entries.
func TestResultCacheOversizeAdmission(t *testing.T) {
	c := newResultCache(1000, 1000)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 50))
	}
	c.Put("svg", make([]byte, 500)) // > 1000/8 = 125: refused
	if _, ok := c.Get("svg"); ok {
		t.Fatal("oversize body admitted")
	}
	for i := 0; i < 8; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d evicted by a refused oversize body", i)
		}
	}
	if _, oversize := c.Bytes(); oversize != 1 {
		t.Fatalf("oversize rejects = %d, want 1", oversize)
	}
}

func TestResultCacheOversizeReplacesStaleEntry(t *testing.T) {
	c := newResultCache(1000, 1000)
	c.Put("a", make([]byte, 100))
	c.maxBytes = 400 // budget shrank; the same key now exceeds admission
	c.Put("a", make([]byte, 100))
	if _, ok := c.Get("a"); ok {
		t.Fatal("stale entry survived an oversize re-put")
	}
	if bytes, _ := c.Bytes(); bytes != 0 {
		t.Fatalf("bytes = %d after removal, want 0", bytes)
	}
}

func TestResultCacheNoByteBound(t *testing.T) {
	c := newResultCache(4, -1)
	c.Put("big", make([]byte, 1<<20))
	if _, ok := c.Get("big"); !ok {
		t.Fatal("unbounded-bytes cache refused a body")
	}
}
