package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"antlayer/internal/batch"
	"antlayer/internal/obs"
	"antlayer/internal/shard"
)

// The async job API. POST /jobs accepts exactly what POST /layer accepts
// (same query parameters, same DOT/edge-list body) but answers 202 with a
// job id immediately; the layering computes on the job queue's worker
// pool. GET /jobs/{id} polls the job through queued → running →
// done|failed; a done job answers with byte-for-byte the body /layer
// would have served (the two paths share Compute and the result cache).
// DELETE /jobs/{id} cancels: a queued job fails without ever running, a
// running one has its context cancelled and the colony aborts within one
// ant walk per worker. A cancelled job reports state "failed" with a
// 499-style reason, mirroring how /layer labels a vanished client.
// GET /jobs lists every tracked job (optionally ?state=queued|running|
// done|failed); tracking is bounded by count (JobRetention) and, when
// JobExpiry is set, by age — the batch queue's background sweep.

// jobStatus is the JSON envelope for every non-done job state (and for
// POST/DELETE acknowledgements). Done jobs are served raw — the /layer
// body — so clients reuse one parser for both paths.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// TraceID correlates the job with its request trace (GET /traces/{id});
	// empty for jobs admitted through paths that do not mint traces.
	TraceID string `json:"trace_id,omitempty"`
	// Error is set for failed jobs. A cancellation reads
	// "client closed request (499): ..." whether the job was still queued
	// or already running.
	Error string `json:"error,omitempty"`
	// Poll is the URL to poll, echoed on submission for convenience.
	Poll string `json:"poll,omitempty"`
}

// handleJobs serves POST /jobs — parse and validate synchronously (bad
// requests fail now, not at poll time), then enqueue the computation —
// and GET /jobs, the job listing.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		s.handleJobList(w, r)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.httpError(w, http.StatusMethodNotAllowed, "POST a DOT or edge-list graph to /jobs (then poll GET /jobs/{id}), or GET /jobs to list")
		return
	}
	// A job's trace spans its whole life: minted (or honored) at
	// submission, finished when the job settles, so the queue wait is
	// visible in the span breakdown. Head sampling (TraceSample) decides
	// here; a sampled-out job still gets a request ID, just no trace.
	var tr *obs.Trace
	if s.sampleTrace() {
		tr = s.tracer.New(r.Header.Get("X-Request-ID"))
	}
	w.Header().Set("X-Request-ID", s.requestID(r, tr))
	parse := tr.Begin("parse")
	req, g, names, ok := s.parseLayerHTTP(w, r)
	parse.End()
	if !ok {
		s.tracer.Finish(tr)
		return
	}
	key := requestKey(req, g, names)
	gk := graphKey(g, names)
	wspan := tr.Begin("warm")
	req, key, warm, _ := s.warmPlan(req, g, names, key, gk)
	wspan.End()
	timeout := s.timeout(req)
	enqueued := tr.Since()
	job, err := s.jobs.SubmitTraced(func(ctx context.Context) ([]byte, error) {
		defer s.tracer.Finish(tr)
		tr.Observe("queue_wait", "", 0, enqueued, tr.Since()-enqueued)
		// The deadline starts when a worker picks the job up, not at
		// submission: a job is not punished for waiting out a long queue.
		ctx, cancel := context.WithTimeout(obs.NewContext(ctx, tr), timeout)
		defer cancel()
		// The shared engine of handleLayer: identical jobs running at
		// once — or a job identical to an in-flight /layer request —
		// share one computation and the result cache. No semaphore: the
		// job worker pool is the compute bound here.
		body, _, _, err := s.computeCached(ctx, key, req, g, names, gk, warm, nil)
		return body, err
	}, tr.ID(), req.Labels...)
	if err != nil {
		s.tracer.Finish(tr)
		if errors.Is(err, batch.ErrQueueFull) {
			// The hint is derived from the queue stats — backlog and
			// running jobs over the worker pool — not a constant, so
			// clients back off proportionally to the actual congestion.
			retry := s.jobs.RetryAfter()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			s.httpError(w, http.StatusTooManyRequests, "job queue full (depth %d); retry in %ds", s.cfg.JobQueueDepth, retry)
			return
		}
		s.httpError(w, http.StatusServiceUnavailable, "job queue closed: %v", err)
		return
	}
	s.log().Info("job submitted",
		"job", job.ID(), "trace", tr.ID(), "warm", warm != nil, "n", g.N(), "m", g.M(), "algo", string(req.Algo))
	s.writeJobStatus(w, http.StatusAccepted, jobStatus{
		ID:      job.ID(),
		State:   string(batch.StateQueued),
		TraceID: tr.ID(),
		Poll:    "/jobs/" + job.ID(),
	})
}

// jobListEntry is one row of the GET /jobs listing: the status envelope
// plus timestamps, so clients can spot stuck or ancient jobs without
// polling each id.
type jobListEntry struct {
	jobStatus
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// jobList is the GET /jobs response document.
type jobList struct {
	// Jobs holds the tracked jobs in submission order. Jobs evicted by
	// the retention bounds (count or age) no longer appear.
	Jobs []jobListEntry `json:"jobs"`
	// Stats is the same queue summary /metrics serves, so one GET shows
	// the listing and the gauges together.
	Stats batch.Stats `json:"stats"`
}

// handleJobList serves GET /jobs?state=queued|running|done|failed: every
// tracked job in submission order, optionally filtered by state.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	var filter batch.State
	if v := r.URL.Query().Get("state"); v != "" {
		filter = batch.State(v)
		switch filter {
		case batch.StateQueued, batch.StateRunning, batch.StateDone, batch.StateFailed:
		default:
			s.httpError(w, http.StatusBadRequest, "unknown state %q (want queued|running|done|failed)", v)
			return
		}
	}
	snaps := s.jobs.List(filter)
	list := jobList{Jobs: make([]jobListEntry, 0, len(snaps)), Stats: s.jobs.Stats()}
	for _, snap := range snaps {
		entry := jobListEntry{
			jobStatus: jobStatus{ID: snap.ID, State: string(snap.State), TraceID: snap.TraceID, Poll: "/jobs/" + snap.ID},
			Submitted: snap.Submitted,
		}
		if !snap.Started.IsZero() {
			started := snap.Started
			entry.Started = &started
		}
		if !snap.Finished.IsZero() {
			finished := snap.Finished
			entry.Finished = &finished
		}
		if snap.State == batch.StateFailed {
			entry.Error = jobFailureReason(snap)
		}
		list.Jobs = append(list.Jobs, entry)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}

// handleJob serves GET (poll) and DELETE (cancel) on /jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if base, ok := strings.CutSuffix(id, "/events"); ok && base != "" && !strings.Contains(base, "/") {
		s.handleJobEvents(w, r, base)
		return
	}
	if id == "" || strings.Contains(id, "/") {
		s.httpError(w, http.StatusNotFound, "want /jobs/{id}")
		return
	}
	job, ok := s.jobs.Get(id)
	if !ok {
		s.httpError(w, http.StatusNotFound, "no such job %q (finished jobs are retained for a bounded time)", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.writeJobSnapshot(w, job.Snapshot())
	case http.MethodDelete:
		s.jobs.Cancel(id)
		// Cancelling a queued job settles it synchronously; a running one
		// may take a moment to unwind. Either way, answer with the state
		// as it is now.
		s.writeJobSnapshot(w, job.Snapshot())
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.httpError(w, http.StatusMethodNotAllowed, "GET polls a job, DELETE cancels it")
	}
}

// writeJobSnapshot renders a job state: done jobs as the raw /layer body,
// everything else as a jobStatus envelope.
func (s *Server) writeJobSnapshot(w http.ResponseWriter, snap batch.Snapshot) {
	w.Header().Set("X-Job-State", string(snap.State))
	if snap.State == batch.StateDone {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(snap.Result)
		return
	}
	status := jobStatus{ID: snap.ID, State: string(snap.State), TraceID: snap.TraceID}
	if snap.State == batch.StateFailed {
		status.Error = jobFailureReason(snap)
	}
	s.writeJobStatus(w, http.StatusOK, status)
}

// jobFailureReason renders a failed job's error, labelling cancellations
// and deadline expiries the way /layer's status codes would: 499-style
// for a client-initiated cancel, 504-style for a deadline.
func jobFailureReason(snap batch.Snapshot) string {
	switch {
	case snap.Canceled:
		return fmt.Sprintf("client closed request (499): %v", snap.Err)
	case errors.Is(snap.Err, context.DeadlineExceeded):
		return fmt.Sprintf("deadline exceeded (504): %v", snap.Err)
	case errors.Is(snap.Err, context.Canceled):
		return fmt.Sprintf("server shutting down (503): %v", snap.Err)
	case errors.Is(snap.Err, shard.ErrRunQueueFull):
		return fmt.Sprintf("cluster run queue full (429): %v", snap.Err)
	default:
		return snap.Err.Error()
	}
}

func (s *Server) writeJobStatus(w http.ResponseWriter, code int, status jobStatus) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(status)
}
