package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"antlayer/internal/batch"
)

// Webhook subscriptions: the push model for clients that cannot hold an
// SSE connection open. POST /subscriptions with a target URL (optionally
// filtered by job id or topic label) and the daemon POSTs every matching
// job state transition to it as JSON — the same Event document the SSE
// streams carry. A delivery that fails (connection error or non-2xx) is
// retried on the worker-reconnect backoff schedule (attempt k waits
// base<<k plus a deterministic jitter, capped), a bounded number of
// times; after that the event is counted failed and delivery moves on —
// a dead endpoint never wedges the stream. Events a slow endpoint missed
// entirely (its buffer overflowed while a delivery dragged) are counted
// dropped; the receiver can detect the gap from the sequence numbers and
// re-fetch state via GET /jobs.

// webhookBackoff is the delay before retry attempt k (0-based), the
// worker-reconnect schedule: base<<k plus (k%5) sixteenths of the doubled
// delay, capped at max.
func webhookBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	d += time.Duration(attempt%5) * (d / 16)
	if d > max {
		d = max
	}
	return d
}

// webhookRequest is the POST /subscriptions body.
type webhookRequest struct {
	// URL is the delivery target; each event is POSTed to it as JSON.
	URL string `json:"url"`
	// Topic and Job filter the subscription ("" = any), exactly like the
	// SSE streams' ?topic= and /jobs/{id}/events.
	Topic string `json:"topic,omitempty"`
	Job   string `json:"job,omitempty"`
}

// webhookInfo is one subscription as GET /subscriptions reports it.
type webhookInfo struct {
	ID        string    `json:"id"`
	URL       string    `json:"url"`
	Topic     string    `json:"topic,omitempty"`
	Job       string    `json:"job,omitempty"`
	Created   time.Time `json:"created"`
	Delivered int64     `json:"delivered"`
	Retries   int64     `json:"retries"`
	Failed    int64     `json:"failed"`
	Dropped   int64     `json:"dropped"`
}

// WebhookMetrics is the /metrics webhook section: the subscription gauge
// plus delivery counters summed over all subscriptions, current and
// deleted.
type WebhookMetrics struct {
	Subscriptions int   `json:"subscriptions"`
	Delivered     int64 `json:"delivered"`
	Retries       int64 `json:"retries"`
	Failed        int64 `json:"failed"`
	Dropped       int64 `json:"dropped"`
}

// webhookSub is one registered webhook and its delivery loop's state.
type webhookSub struct {
	id                                  string
	url                                 string
	topic                               string
	job                                 string
	created                             time.Time
	sub                                 *batch.Subscription
	delivered, retries, failed, dropped atomic.Int64
}

func (ws *webhookSub) info() webhookInfo {
	return webhookInfo{
		ID: ws.id, URL: ws.url, Topic: ws.topic, Job: ws.job, Created: ws.created,
		Delivered: ws.delivered.Load(), Retries: ws.retries.Load(),
		Failed: ws.failed.Load(), Dropped: ws.dropped.Load(),
	}
}

// webhookManager owns the subscriptions and their delivery goroutines.
type webhookManager struct {
	s      *Server
	client *http.Client
	done   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	subs   map[string]*webhookSub
	nextID int
	closed bool
	// Totals survive subscription deletion so /metrics counters stay
	// monotonic.
	delivered, retries, failed, dropped atomic.Int64
}

func newWebhookManager(s *Server) *webhookManager {
	return &webhookManager{
		s:      s,
		client: &http.Client{Timeout: 10 * time.Second},
		done:   make(chan struct{}),
		subs:   make(map[string]*webhookSub),
	}
}

// add registers a webhook and starts its delivery loop.
func (m *webhookManager) add(req webhookRequest) (*webhookSub, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("server shutting down")
	}
	m.nextID++
	ws := &webhookSub{
		id:      fmt.Sprintf("wh%06d", m.nextID),
		url:     req.URL,
		topic:   req.Topic,
		job:     req.Job,
		created: time.Now(),
		// The buffer absorbs a burst while one delivery (with retries) is
		// in flight; beyond it the event layer drops and marks.
		sub: m.s.jobs.Events().Subscribe(req.Job, req.Topic, 256),
	}
	m.subs[ws.id] = ws
	m.wg.Add(1)
	go m.deliverLoop(ws)
	return ws, nil
}

// remove deletes a subscription; its delivery loop drains and exits.
func (m *webhookManager) remove(id string) bool {
	m.mu.Lock()
	ws, ok := m.subs[id]
	if ok {
		delete(m.subs, id)
	}
	m.mu.Unlock()
	if ok {
		ws.sub.Close()
	}
	return ok
}

// list returns the registered subscriptions in id order.
func (m *webhookManager) list() []webhookInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]webhookInfo, 0, len(m.subs))
	for _, ws := range m.subs {
		out = append(out, ws.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// get returns one subscription's info.
func (m *webhookManager) get(id string) (webhookInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ws, ok := m.subs[id]
	if !ok {
		return webhookInfo{}, false
	}
	return ws.info(), true
}

// Metrics snapshots the webhook section for /metrics.
func (m *webhookManager) Metrics() WebhookMetrics {
	m.mu.Lock()
	n := len(m.subs)
	m.mu.Unlock()
	return WebhookMetrics{
		Subscriptions: n,
		Delivered:     m.delivered.Load(),
		Retries:       m.retries.Load(),
		Failed:        m.failed.Load(),
		Dropped:       m.dropped.Load(),
	}
}

// Close stops every delivery loop and waits for them. The batch queue's
// Close has already closed the subscription channels by the time the
// server calls this; the done channel aborts any backoff sleep in
// progress.
func (m *webhookManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	subs := make([]*webhookSub, 0, len(m.subs))
	for _, ws := range m.subs {
		subs = append(subs, ws)
	}
	m.mu.Unlock()
	close(m.done)
	for _, ws := range subs {
		ws.sub.Close()
	}
	m.wg.Wait()
}

// deliverLoop consumes one subscription's event channel and POSTs each
// event to the target, retrying on the backoff schedule.
func (m *webhookManager) deliverLoop(ws *webhookSub) {
	defer m.wg.Done()
	for ev := range ws.sub.C() {
		m.deliver(ws, ev)
		if d := ws.sub.Dropped(); d > 0 {
			// Events the buffer could not take while we were delivering:
			// gone for this endpoint (the sequence numbers tell the
			// receiver), counted so the operator notices.
			ws.dropped.Add(d)
			m.dropped.Add(d)
		}
	}
}

// deliver POSTs one event, retrying failures WebhookRetries times on the
// backoff schedule. Returns after success, exhaustion, or shutdown.
func (m *webhookManager) deliver(ws *webhookSub, ev batch.Event) {
	body, err := json.Marshal(ev)
	if err != nil {
		ws.failed.Add(1)
		m.failed.Add(1)
		return
	}
	cfg := m.s.cfg
	for attempt := 0; attempt < cfg.WebhookRetries; attempt++ {
		if attempt > 0 {
			ws.retries.Add(1)
			m.retries.Add(1)
			select {
			case <-time.After(webhookBackoff(cfg.WebhookRetryBase, cfg.WebhookRetryMax, attempt-1)):
			case <-m.done:
				ws.failed.Add(1)
				m.failed.Add(1)
				return
			}
		}
		if m.attemptPost(ws, body, ev) {
			ws.delivered.Add(1)
			m.delivered.Add(1)
			return
		}
	}
	ws.failed.Add(1)
	m.failed.Add(1)
	m.s.log().Warn("webhook delivery abandoned",
		"subscription", ws.id, "seq", ev.Seq, "attempts", cfg.WebhookRetries)
}

// attemptPost performs one delivery attempt; any 2xx answer counts.
func (m *webhookManager) attemptPost(ws *webhookSub, body []byte, ev batch.Event) bool {
	req, err := http.NewRequest(http.MethodPost, ws.url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Antlayer-Event", string(ev.State))
	req.Header.Set("X-Antlayer-Seq", strconv.FormatUint(ev.Seq, 10))
	resp, err := m.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// handleSubscriptions serves POST /subscriptions (register a webhook) and
// GET /subscriptions (list them).
func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, struct {
			Subscriptions []webhookInfo  `json:"subscriptions"`
			Stats         WebhookMetrics `json:"stats"`
		}{s.webhooks.list(), s.webhooks.Metrics()})
	case http.MethodPost:
		var req webhookRequest
		body := http.MaxBytesReader(w, r.Body, 1<<16)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad subscription body: %v", err)
			return
		}
		u, err := url.Parse(req.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			s.httpError(w, http.StatusBadRequest, "url must be absolute http(s), got %q", req.URL)
			return
		}
		ws, err := s.webhooks.add(req)
		if err != nil {
			s.httpError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.log().Info("webhook registered",
			"subscription", ws.id, "url", ws.url, "topic", ws.topic, "job", ws.job)
		writeJSON(w, http.StatusCreated, ws.info())
	default:
		w.Header().Set("Allow", "GET, POST")
		s.httpError(w, http.StatusMethodNotAllowed, "POST registers a webhook, GET lists them")
	}
}

// handleSubscription serves GET and DELETE on /subscriptions/{id}.
func (s *Server) handleSubscription(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/subscriptions/")
	if id == "" || strings.Contains(id, "/") {
		s.httpError(w, http.StatusNotFound, "want /subscriptions/{id}")
		return
	}
	switch r.Method {
	case http.MethodGet:
		info, ok := s.webhooks.get(id)
		if !ok {
			s.httpError(w, http.StatusNotFound, "no such subscription %q", id)
			return
		}
		writeJSON(w, http.StatusOK, info)
	case http.MethodDelete:
		if !s.webhooks.remove(id) {
			s.httpError(w, http.StatusNotFound, "no such subscription %q", id)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.httpError(w, http.StatusMethodNotAllowed, "GET inspects a subscription, DELETE removes it")
	}
}

// writeJSON renders v indented, the way the daemon's other JSON documents
// are served.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
