package server

import "sync"

// flightGroup coalesces concurrent identical requests (single-flight):
// the first request for a cache key becomes the leader and computes;
// followers that arrive while it runs wait for its result instead of
// burning duplicate colony runs on identical, deterministic work.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress computation. body/err are written by the
// leader before done is closed and read by waiters only after.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join registers the caller under key: the first caller becomes the
// leader and must call finish exactly once; later callers get the
// existing flight to wait on.
func (g *flightGroup) join(key string) (leader bool, fl *flight) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.m[key]; ok {
		return false, fl
	}
	fl = &flight{done: make(chan struct{})}
	g.m[key] = fl
	return true, fl
}

// finish publishes the leader's outcome and wakes the waiters. A leader
// that succeeded must have stored the body in the result cache *before*
// calling finish — that ordering is what lets a late request that finds
// neither a cached body nor a flight conclude the work truly isn't done.
func (g *flightGroup) finish(key string, fl *flight, body []byte, err error) {
	fl.body, fl.err = body, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
}
