package server

import (
	"container/list"
	"math"
	"sort"
	"strconv"
	"sync"

	"antlayer"
	"antlayer/internal/core"
)

// warmCache is the daemon's second cache: where resultCache holds
// finished bodies keyed by the full (graph, params) hash, warmCache
// holds colony States keyed by the canonical graph hash alone (see
// graphKey), so a request for a graph the daemon has never seen in this
// exact form can still inherit the pheromone matrix of a near-identical
// one. Near-misses are found by a cheap similarity probe over vertex
// names: an inverted name→entry index counts how many vertex names the
// request shares with each cached graph, and the best entry wins when
// the overlap ratio clears the configured threshold. Clients that know
// their lineage skip the probe with the base= knob.
//
// Eviction is byte-weighted LRU against the configured budget (a
// pheromone matrix is O(N·L) float64s — a few hundred KiB for the
// corpus sizes, tens of MiB for large graphs), and a single state
// bigger than a quarter of the budget is never admitted. Storing a key
// again replaces the entry and bumps its generation; the generation is
// part of every warm result-cache key, so a body computed against an
// older state is never replayed for a newer one.
//
// Safe for concurrent use. States are stored and handed out as-is:
// Server.warmPlan remaps (copies) before a colony ever sees one, and
// everything else treats them as immutable.
type warmCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	gen      uint64
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
	index    map[string]map[*list.Element]struct{} // vertex name → entries containing it
}

type warmEntry struct {
	key    string // canonical graph hash (graphKey)
	names  []string
	tokens []string // unique vertex names, for index bookkeeping
	state  *core.State
	gen    uint64
	bytes  int64
}

func newWarmCache(maxBytes int64) *warmCache {
	return &warmCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		m:        make(map[string]*list.Element),
		index:    make(map[string]map[*list.Element]struct{}),
	}
}

// uniqueNames returns the sorted distinct vertex names — the token set
// the similarity probe votes over.
func uniqueNames(names []string) []string {
	seen := make(map[string]struct{}, len(names))
	out := make([]string, 0, len(names))
	for _, n := range names {
		if _, ok := seen[n]; !ok {
			seen[n] = struct{}{}
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// put stores (or replaces) the state for a graph. The entry's weight is
// the state's estimated resident size plus the name bytes.
func (c *warmCache) put(key string, names []string, state *core.State) {
	if c == nil || state == nil {
		return
	}
	bytes := state.MemoryBytes()
	for _, n := range names {
		bytes += int64(len(n)) + 16
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && bytes > c.maxBytes/4 {
		// One giant matrix would purge most of the working set; existing
		// entries keep serving instead.
		if el, ok := c.m[key]; ok {
			c.removeLocked(el)
		}
		return
	}
	c.gen++
	if el, ok := c.m[key]; ok {
		c.removeLocked(el)
	}
	e := &warmEntry{
		key:    key,
		names:  append([]string(nil), names...),
		tokens: uniqueNames(names),
		state:  state,
		gen:    c.gen,
		bytes:  bytes,
	}
	el := c.ll.PushFront(e)
	c.m[key] = el
	c.bytes += bytes
	for _, tok := range e.tokens {
		set := c.index[tok]
		if set == nil {
			set = make(map[*list.Element]struct{})
			c.index[tok] = set
		}
		set[el] = struct{}{}
	}
	for c.maxBytes > 0 && c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil || oldest == el {
			break
		}
		c.removeLocked(oldest)
	}
}

func (c *warmCache) removeLocked(el *list.Element) {
	e := el.Value.(*warmEntry)
	c.ll.Remove(el)
	delete(c.m, e.key)
	c.bytes -= e.bytes
	for _, tok := range e.tokens {
		if set := c.index[tok]; set != nil {
			delete(set, el)
			if len(set) == 0 {
				delete(c.index, tok)
			}
		}
	}
}

// get returns the entry for an exact graph key (the base= path) and
// marks it recently used.
func (c *warmCache) get(key string) (*warmEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*warmEntry), true
}

// probe finds the cached graph most similar to the request's vertex-name
// set: similarity is |shared names| / max(|request names|, |entry
// names|), so an identical graph scores 1 and a one-vertex edit on an
// n-vertex graph scores about (n-1)/n. The best entry at or above
// minSim wins; ties go to the newest generation, so the outcome is
// deterministic for a given cache content. Returns nil when nothing
// clears the bar.
func (c *warmCache) probe(names []string, minSim float64) (*warmEntry, float64) {
	if c == nil {
		return nil, 0
	}
	tokens := uniqueNames(names)
	if len(tokens) == 0 {
		return nil, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	votes := make(map[*list.Element]int)
	for _, tok := range tokens {
		for el := range c.index[tok] {
			votes[el]++
		}
	}
	var best *list.Element
	bestSim := 0.0
	for el, shared := range votes {
		e := el.Value.(*warmEntry)
		denom := len(tokens)
		if len(e.tokens) > denom {
			denom = len(e.tokens)
		}
		sim := float64(shared) / float64(denom)
		if best == nil || sim > bestSim ||
			(sim == bestSim && e.gen > best.Value.(*warmEntry).gen) {
			best, bestSim = el, sim
		}
	}
	if best == nil || bestSim < minSim {
		return nil, 0
	}
	c.ll.MoveToFront(best)
	return best.Value.(*warmEntry), bestSim
}

// stats returns the entry count and resident bytes for /metrics.
func (c *warmCache) stats() (entries int, bytes int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

// warmRun carries what computeCached needs to account for a warm-started
// request: the lineage (for logs and the X-Warm-Base header) and the
// tour budget the request would have burned cold, so tours_saved can be
// measured against what actually ran.
type warmRun struct {
	baseKey    string
	similarity float64
	coldTours  int
}

// warmPlan decides how a parsed request computes: cold, or warm-started
// from a cached state. For every warm-eligible request (algo aco or
// island, warm not disabled, no caller-supplied state) it flips on
// state export, so cold computes feed the warm cache. When a usable
// base state exists — named by base=, or found by the similarity probe
// — it is remapped onto the request's graph by vertex name and injected
// as ACO.Warm, the tour budget is cut to WarmToursFrac of the cold
// budget, and the stall-tours early stop is armed (unless the request
// set its own); the effective result-cache key gains the lineage
// (base key + generation) so warm bodies never collide with cold ones
// and replays of the same lineage stay byte-identical.
//
// Returns the possibly-rewritten request and key, and a non-nil
// *warmRun exactly when the request was warm-started. The bool reports
// whether the request was eligible and probed at all (for the miss
// counter).
func (s *Server) warmPlan(req Request, g *antlayer.Graph, names []string, key, gk string) (Request, string, *warmRun, bool) {
	if s.warm == nil || !req.Warm || req.ACO.Warm != nil {
		return req, key, nil, false
	}
	if req.Algo != "aco" && req.Algo != "island" {
		return req, key, nil, false
	}
	req.ACO.ExportState = true
	if _, ok := s.cache.Get(key); ok {
		// The exact body is already in the result cache: serving it beats
		// re-running even a warm colony, and exact repeats stay
		// byte-identical to their first answer. Warm planning is only for
		// requests that actually have to compute.
		return req, key, nil, false
	}
	var entry *warmEntry
	sim := 1.0
	if req.Base != "" {
		entry, _ = s.warm.get(req.Base)
	} else {
		entry, sim = s.warm.probe(names, s.cfg.WarmMinSimilarity)
	}
	if entry == nil {
		// Eligible, probed, nothing usable: a warm miss — the cold run
		// that follows will export its state and seed the next one.
		s.metrics.warmMisses.Add(1)
		return req, key, nil, true
	}
	mapping := core.MapByName(entry.names, names)
	req.ACO.Warm = entry.state.Remap(mapping, g.N())
	coldTours := req.ACO.Tours
	islands := 1
	if req.Algo == "island" {
		islands = req.options().IslandOf().Islands
	}
	warmTours := int(math.Ceil(float64(req.ACO.Tours) * s.cfg.WarmToursFrac))
	if warmTours < 1 {
		warmTours = 1
	}
	if warmTours < req.ACO.Tours {
		req.ACO.Tours = warmTours
	}
	if req.ACO.StopAfterStagnantTours == 0 && s.cfg.WarmStallTours > 0 {
		req.ACO.StopAfterStagnantTours = s.cfg.WarmStallTours
	}
	effKey := key + "|warm|" + entry.key + "|" + strconv.FormatUint(entry.gen, 10)
	return req, effKey, &warmRun{baseKey: entry.key, similarity: sim, coldTours: coldTours * islands}, true
}
