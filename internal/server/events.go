package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"antlayer/internal/batch"
)

// The push side of the job API. GET /jobs/{id}/events and GET
// /events?topic= stream job state transitions as Server-Sent Events:
// one `id:`/`event:`/`data:` block per transition, where the id is the
// event layer's global monotonic sequence number. A client that
// reconnects with a Last-Event-ID header (or ?after= — handy with curl)
// has the transitions it missed replayed from the bounded ring before
// the live stream resumes, so across one reconnect it observes every
// transition of its job exactly once, in order — as long as the gap
// still fits the ring (-event-ring). Heartbeat comments keep idle
// proxies from reaping the connection; a graceful shutdown ends every
// stream with an `event: shutdown` block (the streaming cousin of the
// 503 the request paths answer), and a vanished client just ends the
// stream (the 499 case — nothing to answer).

// sseEvent writes one Server-Sent Event block: the sequence number as
// the id (so the browser's EventSource reconnect machinery replays from
// it automatically), the state as the event name, the full event JSON as
// the data line.
func sseEvent(w http.ResponseWriter, ev batch.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.State, data)
	return err
}

// lastEventID resolves the resume point of a stream: the standard
// Last-Event-ID header (what EventSource sends on reconnect), overridden
// by an explicit ?after= query parameter (what a curl user types).
func lastEventID(r *http.Request) (uint64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if v := r.URL.Query().Get("after"); v != "" {
		raw = v
	}
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad event id %q: %v", raw, err)
	}
	return n, nil
}

// handleJobEvents serves GET /jobs/{id}/events: that job's transitions,
// ending after the terminal (done/failed/expired) event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.httpError(w, http.StatusMethodNotAllowed, "GET streams a job's events")
		return
	}
	_, tracked := s.jobs.Get(id)
	if !tracked && len(s.jobs.Events().Replay(0, id, "")) == 0 {
		s.httpError(w, http.StatusNotFound, "no such job %q (finished jobs are retained for a bounded time)", id)
		return
	}
	s.streamEvents(w, r, id, "", true)
}

// handleEvents serves GET /events?topic=: the firehose of every job's
// transitions, optionally filtered to one topic label. The stream stays
// open until the client leaves or the daemon shuts down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.httpError(w, http.StatusMethodNotAllowed, "GET streams job events (optionally ?topic=label)")
		return
	}
	s.streamEvents(w, r, "", r.URL.Query().Get("topic"), false)
}

// streamEvents is the shared SSE loop. Subscribe first, then replay the
// ring past the client's last seen sequence number, then serve live
// events — skipping anything at or below the replay high-water mark, so
// the subscribe/replay overlap can never duplicate. A slow consumer that
// the publisher marked as dropped is resynchronised by another ring
// replay from its last delivered sequence number.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, jobID, topic string, endOnTerminal bool) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	last, err := lastEventID(r)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	events := s.jobs.Events()
	sub := events.Subscribe(jobID, topic, 64)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // nginx: do not buffer the stream
	w.WriteHeader(http.StatusOK)
	s.metrics.sseStreams.Add(1)
	s.metrics.sseActive.Add(1)
	defer s.metrics.sseActive.Add(-1)

	// A reconnect whose resume point predates the ring cannot be made
	// whole; say so instead of silently skipping, so the client knows to
	// re-fetch state via GET /jobs/{id}.
	if oldest := events.OldestRetained(); last > 0 && oldest > last+1 {
		fmt.Fprintf(w, "event: gap\ndata: {\"oldest_retained\":%d,\"after\":%d}\n\n", oldest, last)
	}

	// emit delivers one event exactly once in sequence order; it reports
	// whether the stream should end (terminal event on a per-job stream).
	emit := func(ev batch.Event) (done bool, err error) {
		if ev.Seq <= last {
			return false, nil
		}
		if err := sseEvent(w, ev); err != nil {
			return true, err
		}
		last = ev.Seq
		return endOnTerminal && ev.JobID == jobID && ev.State.Terminal(), nil
	}
	replay := func() (done bool, err error) {
		for _, ev := range events.Replay(last, jobID, topic) {
			if done, err := emit(ev); done || err != nil {
				return done, err
			}
		}
		return false, nil
	}
	if done, err := replay(); done || err != nil {
		flusher.Flush()
		return
	}
	flusher.Flush()

	heartbeat := time.NewTicker(s.cfg.SSEHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok { // queue closed under us: shutdown
				fmt.Fprintf(w, "event: shutdown\ndata: {\"reason\":\"server shutting down\"}\n\n")
				flusher.Flush()
				return
			}
			done, err := emit(ev)
			if err != nil {
				return
			}
			if !done && sub.Dropped() > 0 {
				// The publisher dropped events for us while the buffer was
				// full; recover them from the ring before reading on.
				done, err = replay()
				if err != nil {
					return
				}
			}
			flusher.Flush()
			if done {
				return
			}
		case <-heartbeat.C:
			// A comment line: ignored by SSE clients, keeps proxies and
			// load balancers convinced the connection is alive.
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			// Client gone (or the server cancelled its base context): the
			// streaming analogue of 499 — nothing left to tell anyone.
			return
		case <-s.shutdownCh:
			fmt.Fprintf(w, "event: shutdown\ndata: {\"reason\":\"server shutting down\"}\n\n")
			flusher.Flush()
			return
		}
	}
}
