package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"antlayer/internal/batch"
)

// webhookReceiver is a test endpoint recording delivered events; failFirst
// makes the first n requests answer 500 to exercise the retry schedule.
type webhookReceiver struct {
	mu        sync.Mutex
	events    []batch.Event
	requests  int
	failFirst int
}

func (wr *webhookReceiver) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wr.mu.Lock()
		defer wr.mu.Unlock()
		wr.requests++
		if wr.requests <= wr.failFirst {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		var ev batch.Event
		if err := json.NewDecoder(r.Body).Decode(&ev); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		wr.events = append(wr.events, ev)
		w.WriteHeader(http.StatusNoContent)
	})
}

func (wr *webhookReceiver) snapshot() []batch.Event {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	return append([]batch.Event(nil), wr.events...)
}

// subscribeWebhook registers a webhook and returns its id.
func subscribeWebhook(t *testing.T, ts *httptest.Server, target, topic, job string) string {
	t.Helper()
	body, _ := json.Marshal(webhookRequest{URL: target, Topic: topic, Job: job})
	resp, err := http.Post(ts.URL+"/subscriptions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info webhookInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated || info.ID == "" {
		t.Fatalf("subscribe answered %d with %+v", resp.StatusCode, info)
	}
	return info.ID
}

// TestWebhookDelivery: a registered webhook receives every transition of
// a matching job as JSON POSTs, in order; the listing reports delivery
// stats; DELETE stops the flow.
func TestWebhookDelivery(t *testing.T) {
	wr := &webhookReceiver{}
	target := httptest.NewServer(wr.handler())
	defer target.Close()
	_, ts := newTestServer(t, Config{WebhookRetryBase: time.Millisecond})

	id := subscribeWebhook(t, ts, target.URL, "hooked", "")
	_, status := postJob(t, ts, "seed=11&tours=2&label=hooked", demoDOT)
	pollUntilTerminal(t, ts, status.ID)
	if _, other := postJob(t, ts, "seed=12&tours=2", demoDOT); other.ID != "" {
		pollUntilTerminal(t, ts, other.ID) // unlabeled: must not be delivered
	}

	var got []batch.Event
	deadline := time.Now().Add(10 * time.Second)
	for {
		got = wr.snapshot()
		if len(got) >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(got) != 3 {
		t.Fatalf("webhook received %d events, want 3: %+v", len(got), got)
	}
	states := []batch.State{batch.StateQueued, batch.StateRunning, batch.StateDone}
	for i, ev := range got {
		if ev.JobID != status.ID || ev.State != states[i] {
			t.Fatalf("delivery %d = %+v, want %s for %s", i, ev, states[i], status.ID)
		}
	}

	resp, err := http.Get(ts.URL + "/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Subscriptions []webhookInfo  `json:"subscriptions"`
		Stats         WebhookMetrics `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Subscriptions) != 1 || listing.Subscriptions[0].Delivered != 3 {
		t.Fatalf("listing = %+v, want one subscription with 3 deliveries", listing)
	}
	if m := metricsOf(t, ts); m.Webhooks.Subscriptions != 1 || m.Webhooks.Delivered != 3 {
		t.Fatalf("webhook metrics = %+v", m.Webhooks)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/subscriptions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE answered %d, want 204", dresp.StatusCode)
	}
	if m := metricsOf(t, ts); m.Webhooks.Subscriptions != 0 {
		t.Fatalf("subscription survived DELETE: %+v", m.Webhooks)
	}
}

// TestWebhookRetrySchedule: failed deliveries are retried on the backoff
// schedule until the endpoint recovers; the retries are counted.
func TestWebhookRetrySchedule(t *testing.T) {
	wr := &webhookReceiver{failFirst: 2}
	target := httptest.NewServer(wr.handler())
	defer target.Close()
	_, ts := newTestServer(t, Config{
		WebhookRetryBase: time.Millisecond,
		WebhookRetryMax:  5 * time.Millisecond,
		WebhookRetries:   4,
	})
	subscribeWebhook(t, ts, target.URL, "", "")
	_, status := postJob(t, ts, "seed=13&tours=2", demoDOT)
	pollUntilTerminal(t, ts, status.ID)

	deadline := time.Now().Add(10 * time.Second)
	for len(wr.snapshot()) < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	got := wr.snapshot()
	if len(got) != 3 || got[0].State != batch.StateQueued || got[2].State != batch.StateDone {
		t.Fatalf("webhook received %+v, want the full lifecycle despite failures", got)
	}
	if m := metricsOf(t, ts); m.Webhooks.Retries < 2 || m.Webhooks.Failed != 0 {
		t.Fatalf("webhook metrics after recovery = %+v, want >=2 retries, 0 failed", m.Webhooks)
	}
}

// TestWebhookGivesUpAndCounts: a permanently dead endpoint exhausts the
// retry budget; the event is counted failed and delivery moves on without
// wedging anything.
func TestWebhookGivesUpAndCounts(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "always down", http.StatusBadGateway)
	}))
	defer dead.Close()
	_, ts := newTestServer(t, Config{
		WebhookRetryBase: time.Millisecond,
		WebhookRetryMax:  2 * time.Millisecond,
		WebhookRetries:   2,
	})
	subscribeWebhook(t, ts, dead.URL, "", "")
	_, status := postJob(t, ts, "seed=14&tours=2", demoDOT)
	pollUntilTerminal(t, ts, status.ID)

	deadline := time.Now().Add(10 * time.Second)
	for metricsOf(t, ts).Webhooks.Failed < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m := metricsOf(t, ts); m.Webhooks.Failed < 3 || m.Webhooks.Delivered != 0 {
		t.Fatalf("webhook metrics = %+v, want 3 failed deliveries and none delivered", m.Webhooks)
	}
}

// TestWebhookValidation: bad bodies and bad URLs are refused at
// registration, and unknown ids answer 404.
func TestWebhookValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{"not json", `{"url":"ftp://x/hook"}`, `{"url":""}`} {
		resp, err := http.Post(ts.URL+"/subscriptions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("subscription %q answered %d, want 400", body, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/subscriptions/wh999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown subscription DELETE answered %d, want 404", resp.StatusCode)
	}
}

// TestWebhookBackoffSchedule pins the schedule against the worker
// reconnect curve it mirrors: doubling from base with deterministic
// jitter, capped at max.
func TestWebhookBackoffSchedule(t *testing.T) {
	base, max := 100*time.Millisecond, 5*time.Second
	want := []time.Duration{
		100 * time.Millisecond,    // attempt 0: base, no jitter
		212500 * time.Microsecond, // attempt 1: 200ms + 1/16
		450 * time.Millisecond,    // attempt 2: 400ms + 2/16
		950 * time.Millisecond,    // attempt 3: 800ms + 3/16
		2000 * time.Millisecond,   // attempt 4: 1600ms + 4/16
		3200 * time.Millisecond,   // attempt 5: jitter index wraps to 0
		5 * time.Second,           // attempt 6: capped
	}
	for k, w := range want {
		if got := webhookBackoff(base, max, k); got != w {
			t.Errorf("attempt %d backoff = %s, want %s", k, got, w)
		}
	}
}
