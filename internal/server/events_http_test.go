package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// The non-streaming edges of the push API: method discipline, bad resume
// cursors, and subscription inspection.

func TestEventsEndpointMethodAndResumeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Post(ts.URL+"/events", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /events: got %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
		t.Fatalf("Allow = %q, want GET", allow)
	}

	resp, err = http.Get(ts.URL + "/events?after=not-a-number")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ?after=: got %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/jobs/whatever/events", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /jobs/{id}/events: got %d, want 405", resp.StatusCode)
	}
}

func TestSubscriptionGet(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := strings.NewReader(`{"url":"http://127.0.0.1:9/hook","topic":"alpha"}`)
	resp, err := http.Post(ts.URL+"/subscriptions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var created webhookInfo
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: status %d, info %+v", resp.StatusCode, created)
	}

	resp, err = http.Get(ts.URL + "/subscriptions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET one: got %d (%s), want 200", resp.StatusCode, data)
	}
	var got webhookInfo
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != created.ID || got.URL != "http://127.0.0.1:9/hook" || got.Topic != "alpha" {
		t.Fatalf("GET one: %+v", got)
	}

	for _, path := range []string{"/subscriptions/nope", "/subscriptions/a/b"} {
		resp, err = http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: got %d, want 404", path, resp.StatusCode)
		}
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/subscriptions/"+created.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT one: got %d, want 405", resp.StatusCode)
	}
}
