package server

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"antlayer/internal/obs"
)

// getTrace fetches GET /traces/{id} and decodes the view.
func getTrace(t *testing.T, baseURL, id string) obs.TraceView {
	t.Helper()
	resp, err := http.Get(baseURL + "/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces/%s: status %d", id, resp.StatusCode)
	}
	var v obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// spanCounts tallies a trace's spans by name.
func spanCounts(v obs.TraceView) map[string]int {
	counts := make(map[string]int)
	for _, sp := range v.Spans {
		counts[sp.Name]++
	}
	return counts
}

func TestLayerTraceLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A well-formed inbound X-Request-ID is honored and echoed.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/layer?algo=lpl", strings.NewReader(demoDOT))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "my-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "my-trace-1" {
		t.Fatalf("X-Request-ID echo = %q, want my-trace-1", got)
	}

	v := getTrace(t, ts.URL, "my-trace-1")
	if !v.Finished {
		t.Error("trace not finished after the response")
	}
	counts := spanCounts(v)
	for _, name := range []string{"parse", "cache_lookup", "compute"} {
		if counts[name] == 0 {
			t.Errorf("miss trace lacks %q span: %v", name, counts)
		}
	}

	// The identical request hits the cache: its trace must show the
	// lookup but no compute (and record it without allocating — pinned in
	// internal/obs's zero-alloc test; here we pin the span shape).
	resp2, _ := postLayer(t, ts, "algo=lpl", demoDOT)
	if resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request X-Cache = %q", resp2.Header.Get("X-Cache"))
	}
	hitID := resp2.Header.Get("X-Request-ID")
	if hitID == "" || hitID == "my-trace-1" {
		t.Fatalf("minted trace ID = %q", hitID)
	}
	hit := spanCounts(getTrace(t, ts.URL, hitID))
	if hit["cache_lookup"] == 0 || hit["compute"] != 0 {
		t.Errorf("hit trace spans = %v, want cache_lookup and no compute", hit)
	}

	// A malformed inbound ID is replaced, never parroted back.
	req3, err := http.NewRequest(http.MethodPost, ts.URL+"/layer?algo=minwidth", strings.NewReader(demoDOT))
	if err != nil {
		t.Fatal(err)
	}
	req3.Header.Set("X-Request-ID", "bad id with spaces")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); !obs.ValidID(got) || strings.Contains(got, " ") {
		t.Errorf("malformed inbound ID answered %q", got)
	}
}

// TestDistributedTraceEndToEnd is the tentpole's acceptance shape: one
// distributed request over a real coordinator and two workers yields one
// trace holding the coordinator's scheduling spans and both workers'
// per-epoch spans.
func TestDistributedTraceEndToEnd(t *testing.T) {
	coord := testCluster(t, 2)
	_, ts := newTestServer(t, Config{CacheSize: -1, Coordinator: coord})

	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/layer?algo=island&islands=4&tours=3&migration-interval=1&seed=9&distributed=true",
		strings.NewReader(demoDOT))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "dist-trace")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	v := getTrace(t, ts.URL, "dist-trace")
	counts := spanCounts(v)
	for _, name := range []string{"parse", "admission", "lease", "epoch", "migrate", "assemble", "worker_epoch"} {
		if counts[name] == 0 {
			t.Errorf("distributed trace lacks %q span: %v", name, counts)
		}
	}
	if counts["admission"] != 1 || counts["lease"] != 1 || counts["assemble"] != 1 {
		t.Errorf("scheduling spans counted %v, want one admission/lease/assemble", counts)
	}
	workers := make(map[string]bool)
	for _, sp := range v.Spans {
		if sp.Name == "worker_epoch" {
			if sp.Worker == "" || sp.Epoch == 0 {
				t.Errorf("worker span missing attribution: %+v", sp)
			}
			workers[sp.Worker] = true
		}
	}
	if len(workers) != 2 {
		t.Errorf("worker spans from %d workers, want 2: %v", len(workers), workers)
	}
}

func TestTracesListEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		postLayer(t, ts, "algo=aco&tours=2&seed="+strconv.Itoa(i+1), demoDOT)
	}
	var doc struct {
		Traces []obs.TraceView `json:"traces"`
	}
	get := func(query string) []obs.TraceView {
		t.Helper()
		resp, err := http.Get(ts.URL + "/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /traces%s: status %d", query, resp.StatusCode)
		}
		doc.Traces = nil
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.Traces
	}
	all := get("")
	if len(all) != 3 {
		t.Fatalf("retained %d traces, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].DurMS < all[i].DurMS {
			t.Errorf("listing not slowest-first: %v then %v", all[i-1].DurMS, all[i].DurMS)
		}
	}
	if got := get("?limit=2"); len(got) != 2 {
		t.Errorf("limit=2 returned %d", len(got))
	}
	if got := get("?min_ms=999999"); len(got) != 0 {
		t.Errorf("min_ms filter returned %d", len(got))
	}
	for _, bad := range []string{"?limit=-1", "?limit=x", "?min_ms=-2", "?min_ms=x"} {
		resp, err := http.Get(ts.URL + "/traces" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /traces%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestTraceNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/traces/nope", "/traces/", "/traces/a/b"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestJobTraceFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs?algo=lpl", strings.NewReader(demoDOT))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "job-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var status jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") != "job-trace-1" || status.TraceID != "job-trace-1" {
		t.Fatalf("job trace not echoed: header %q, envelope %q",
			resp.Header.Get("X-Request-ID"), status.TraceID)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		pollResp, err := http.Get(ts.URL + "/jobs/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		state := pollResp.Header.Get("X-Job-State")
		pollResp.Body.Close()
		if state == "done" {
			break
		}
		if state == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", state)
		}
		time.Sleep(5 * time.Millisecond)
	}

	v := getTrace(t, ts.URL, "job-trace-1")
	if !v.Finished {
		t.Error("job trace not finished after the job settled")
	}
	counts := spanCounts(v)
	for _, name := range []string{"parse", "queue_wait", "compute"} {
		if counts[name] == 0 {
			t.Errorf("job trace lacks %q span: %v", name, counts)
		}
	}

	listResp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list jobList
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].TraceID != "job-trace-1" {
		t.Errorf("job listing lost the trace ID: %+v", list.Jobs)
	}
}

// promLine matches one sample of the text exposition format:
// name{optional labels} value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="(?:[^"\\]|\\.)*"(?:,[a-zA-Z0-9_]+="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+]+|NaN)$`)

// parseProm lint-parses a Prometheus text page: every line must be a
// well-formed HELP, TYPE or sample line; every sample's family must have
// been declared by a TYPE; counters must end in _total or be flagged.
// Returns the samples keyed by full series (name plus label block).
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	types := make(map[string]string)
	samples := make(map[string]float64)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if len(strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)) != 2 {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge") {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			types[parts[0]] = parts[1]
		default:
			m := promLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: not a valid sample: %q", i+1, line)
			}
			if _, ok := types[m[1]]; !ok {
				t.Errorf("line %d: series %q has no TYPE declaration", i+1, m[1])
			}
			if types[m[1]] == "counter" && !strings.HasSuffix(m[1], "_total") {
				t.Errorf("line %d: counter %q not named *_total", i+1, m[1])
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("line %d: bad value %q", i+1, m[3])
			}
			samples[m[1]+m[2]] = v
		}
	}
	return samples
}

// TestPrometheusExposition drives a live daemon, scrapes both formats and
// checks the Prometheus page parses cleanly and mirrors the JSON
// snapshot's counters.
func TestPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postLayer(t, ts, "algo=lpl", demoDOT)
	postLayer(t, ts, "algo=lpl", demoDOT) // one hit

	snap := mustMetrics(t, ts.URL)
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, string(page))

	for series, want := range map[string]float64{
		"daglayer_layer_requests_total":         float64(snap.LayerRequests),
		"daglayer_cache_hits_total":             float64(snap.CacheHits),
		"daglayer_cache_misses_total":           float64(snap.CacheMisses),
		"daglayer_cache_hit_ratio":              snap.CacheHitRate,
		"daglayer_tours_run_total":              float64(snap.ToursRun),
		"daglayer_job_queue_depth":              float64(snap.Jobs.Depth),
		"daglayer_latency_ms{quantile=\"0.5\"}": snap.Latency.P50,
	} {
		got, ok := samples[series]
		if !ok {
			t.Errorf("series %q missing from exposition", series)
		} else if got != want {
			t.Errorf("series %q = %v, JSON snapshot says %v", series, got, want)
		}
	}
	if _, ok := samples["daglayer_goroutines"]; !ok {
		t.Error("runtime gauges missing from exposition")
	}

	badResp, err := http.Get(ts.URL + "/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=xml: status %d, want 400", badResp.StatusCode)
	}
}

// TestPrometheusClusterSeries: a coordinator daemon's exposition carries
// the cluster block with per-worker labeled series.
func TestPrometheusClusterSeries(t *testing.T) {
	coord := testCluster(t, 2)
	_, ts := newTestServer(t, Config{CacheSize: -1, Coordinator: coord})
	postLayer(t, ts, "algo=island&islands=2&tours=2&migration-interval=1&seed=3&distributed=true", demoDOT)

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, string(page))
	if got := samples["daglayer_cluster_workers"]; got != 2 {
		t.Errorf("daglayer_cluster_workers = %v, want 2", got)
	}
	if got := samples["daglayer_cluster_runs_total"]; got != 1 {
		t.Errorf("daglayer_cluster_runs_total = %v, want 1", got)
	}
	for _, worker := range []string{"tw0", "tw1"} {
		series := `daglayer_cluster_worker_epochs_total{worker="` + worker + `"}`
		if v, ok := samples[series]; !ok || v < 1 {
			t.Errorf("per-worker series %s = %v (present=%v)", series, v, ok)
		}
	}
}

func TestPprofMountGate(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
}
