package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed Server-Sent Event block.
type sseFrame struct {
	id    uint64
	event string
	data  string
}

// openStream GETs an SSE endpoint with an optional Last-Event-ID and
// hands back the live response (caller closes).
func openStream(t *testing.T, ts *httptest.Server, path string, lastID uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s answered %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	return resp
}

// readFrames parses SSE blocks from br until max frames arrive or the
// stream ends. Comment lines (heartbeats) are counted separately.
func readFrames(t *testing.T, br *bufio.Reader, max int) (frames []sseFrame, comments int) {
	t.Helper()
	var cur sseFrame
	started := false
	for len(frames) < max {
		line, err := br.ReadString('\n')
		if err != nil {
			return frames, comments
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if started {
				frames = append(frames, cur)
				cur, started = sseFrame{}, false
			}
		case strings.HasPrefix(line, ":"):
			comments++
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			started = true
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
			started = true
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
			started = true
		}
	}
	return frames, comments
}

// TestSSEJobStreamExactlyOnceAcrossReconnect is the push contract end to
// end: a client watching /jobs/{id}/events that is killed mid-stream and
// reconnects with Last-Event-ID observes every state transition exactly
// once, in order — nothing lost in the gap, nothing replayed twice.
func TestSSEJobStreamExactlyOnceAcrossReconnect(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, FaultComputeDelay: 300 * time.Millisecond})
	_, status := postJob(t, ts, "seed=1&tours=2", demoDOT)

	// First connection: read exactly one frame (the queued event, possibly
	// already running), then kill the connection mid-lifecycle.
	resp := openStream(t, ts, "/jobs/"+status.ID+"/events", 0)
	firstFrames, _ := readFrames(t, bufio.NewReader(resp.Body), 1)
	resp.Body.Close()
	if len(firstFrames) != 1 {
		t.Fatalf("first connection read %d frames, want 1", len(firstFrames))
	}

	// Let the job finish while no one is watching, then reconnect from the
	// last seen id: the ring replays the missed transitions.
	pollUntilTerminal(t, ts, status.ID)
	resp = openStream(t, ts, "/jobs/"+status.ID+"/events", firstFrames[0].id)
	rest, _ := readFrames(t, bufio.NewReader(resp.Body), 10)
	resp.Body.Close()

	all := append(firstFrames, rest...)
	want := []string{"queued", "running", "done"}
	if len(all) != len(want) {
		t.Fatalf("observed %d transitions %+v, want %v", len(all), all, want)
	}
	var lastSeq uint64
	for i, f := range all {
		if f.event != want[i] {
			t.Fatalf("transition %d = %q, want %q (frames %+v)", i, f.event, want[i], all)
		}
		if f.id <= lastSeq {
			t.Fatalf("event id %d not increasing past %d", f.id, lastSeq)
		}
		lastSeq = f.id
		var ev struct {
			Seq   uint64 `json:"seq"`
			Job   string `json:"job"`
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data %q: %v", i, f.data, err)
		}
		if ev.Job != status.ID || ev.State != f.event || ev.Seq != f.id {
			t.Fatalf("frame %d data %+v disagrees with frame id=%d event=%s", i, ev, f.id, f.event)
		}
	}
}

// TestSSEFinishedJobReplaysAndEnds: connecting after the job already
// finished serves the whole lifecycle from the replay ring and ends the
// stream (no hanging on a job that will never transition again).
func TestSSEFinishedJobReplaysAndEnds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, status := postJob(t, ts, "seed=2&tours=2", demoDOT)
	pollUntilTerminal(t, ts, status.ID)

	resp := openStream(t, ts, "/jobs/"+status.ID+"/events", 0)
	defer resp.Body.Close()
	frames, _ := readFrames(t, bufio.NewReader(resp.Body), 10) // returns on EOF
	if len(frames) != 3 || frames[0].event != "queued" || frames[2].event != "done" {
		t.Fatalf("replayed frames = %+v, want queued/running/done", frames)
	}
}

// TestSSETopicFirehose: /events?topic= delivers only matching jobs'
// transitions; heartbeat comments flow on an idle stream.
func TestSSETopicFirehose(t *testing.T) {
	_, ts := newTestServer(t, Config{SSEHeartbeat: 30 * time.Millisecond})
	resp := openStream(t, ts, "/events?topic=red", 0)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	_, red := postJob(t, ts, "seed=3&tours=2&label=red", demoDOT)
	_, blue := postJob(t, ts, "seed=4&tours=2&label=blue", demoDOT)
	pollUntilTerminal(t, ts, red.ID)
	pollUntilTerminal(t, ts, blue.ID)

	frames, comments := readFrames(t, br, 3)
	if len(frames) != 3 {
		t.Fatalf("topic stream delivered %d frames, want 3: %+v", len(frames), frames)
	}
	for _, f := range frames {
		var ev struct {
			Job    string   `json:"job"`
			Labels []string `json:"labels"`
		}
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Job != red.ID {
			t.Fatalf("topic=red stream leaked %s's event: %+v", ev.Job, f)
		}
		if len(ev.Labels) != 1 || ev.Labels[0] != "red" {
			t.Fatalf("event labels = %v, want [red]", ev.Labels)
		}
	}
	// The stream is idle now; the next line to arrive must be a heartbeat
	// comment (the ticker fires every 30ms here).
	for comments == 0 {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended before a heartbeat arrived: %v", err)
		}
		if strings.HasPrefix(line, ":") {
			comments++
		}
	}
}

// TestSSEUnknownJob404AndBadResume: an id that was never seen answers
// 404; a garbage Last-Event-ID answers 400.
func TestSSEUnknownJob404AndBadResume(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job stream answered %d, want 404", resp.StatusCode)
	}

	_, status := postJob(t, ts, "seed=5&tours=2", demoDOT)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+status.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID answered %d, want 400", resp.StatusCode)
	}
}

// TestSSEShutdownFrame: closing the server ends open streams with an
// explicit shutdown frame — the streaming analogue of the 503 the
// request paths answer during graceful shutdown.
func TestSSEShutdownFrame(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := openStream(t, ts, "/events", 0)
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	done := make(chan []sseFrame, 1)
	go func() {
		frames, _ := readFrames(t, br, 1)
		done <- frames
	}()
	time.Sleep(50 * time.Millisecond) // let the stream enter its select
	s.Close()
	select {
	case frames := <-done:
		if len(frames) != 1 || frames[0].event != "shutdown" {
			t.Fatalf("stream ended with %+v, want a shutdown frame", frames)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end on server Close")
	}
}

// TestSSEMetricsCount: stream open/close moves the sse gauges.
func TestSSEMetricsCount(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, status := postJob(t, ts, "seed=6&tours=2", demoDOT)
	pollUntilTerminal(t, ts, status.ID)
	resp := openStream(t, ts, "/jobs/"+status.ID+"/events", 0)
	readFrames(t, bufio.NewReader(resp.Body), 10)
	resp.Body.Close()
	m := metricsOf(t, ts)
	if m.SSEStreams < 1 {
		t.Fatalf("sse_streams = %d, want >= 1", m.SSEStreams)
	}
	if m.Events.Published < 3 {
		t.Fatalf("events.published = %d, want >= 3", m.Events.Published)
	}
}
