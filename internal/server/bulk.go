package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"antlayer/internal/batch"
)

// Bulk intake: POST /jobs/bulk accepts ndjson — one /layer-shaped
// request per line, {"query": "<the /layer query string>", "graph":
// "<the DOT or edge-list body>"} — admits each line through the job
// queue's existing bound (a full queue yields a 429-style error line
// with the same Retry-After hint POST /jobs would have sent, not a
// dropped request), and streams back one ndjson line per finished job in
// completion order. In the default raw mode a succeeded job's line is
// byte-identical to the body POST /layer would have served for that
// line's request — Compute emits compact JSON plus a trailing newline,
// which is exactly one ndjson line. With ?envelope=true every line is
// instead wrapped as a bulkResult carrying the input line number and job
// id, which is what lets `daglayer batch -stream` correlate results to
// input files; failures, parse errors and queue-full rejections are
// always reported as envelope lines (they have no /layer body to be
// identical to).

// bulkLine is one input line of POST /jobs/bulk.
type bulkLine struct {
	// Query is the /layer query string for this graph (algo=..., seed=...,
	// label=..., render=... — anything POST /layer accepts).
	Query string `json:"query"`
	// Graph is the graph text itself, in the format the query names.
	Graph string `json:"graph"`
}

// bulkResult is one output line — always for failures, for every line
// under ?envelope=true.
type bulkResult struct {
	// Line is the 1-based input line this result answers.
	Line int `json:"line"`
	// Job is the job id the line was admitted under ("" when admission
	// itself failed).
	Job   string `json:"job,omitempty"`
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	// RetryAfter carries the backoff hint of a queue-full rejection, in
	// seconds — the streaming analogue of the 429 Retry-After header.
	RetryAfter int `json:"retry_after,omitempty"`
	// Body is the /layer response body of a done job (envelope mode).
	Body json.RawMessage `json:"body,omitempty"`
}

// handleBulk serves POST /jobs/bulk.
func (s *Server) handleBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.httpError(w, http.StatusMethodNotAllowed, "POST ndjson layer requests to /jobs/bulk")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	envelope := r.URL.Query().Get("envelope") == "true"
	s.metrics.bulkRequests.Add(1)
	ctx := r.Context()

	// Results flow from the admission goroutine (parse/admission errors)
	// and one waiter goroutine per admitted job (completion order is
	// whatever order the jobs finish in). The admission goroutine owns the
	// channel close: it runs the WaitGroup dry only after the last Add.
	results := make(chan bulkResult, 16)
	go s.bulkAdmit(ctx, r.Body, results)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	for res := range results {
		var line []byte
		if !envelope && res.State == string(batch.StateDone) {
			// Raw mode: the /layer body verbatim (it is newline-terminated
			// compact JSON — exactly one ndjson line).
			line = res.Body
		} else {
			line, _ = json.Marshal(res)
			line = append(line, '\n')
		}
		if _, err := w.Write(line); err != nil {
			// Client gone; the waiters notice via ctx and unwind. Keep
			// draining so the admission goroutine can finish and close.
			continue
		}
		flusher.Flush()
	}
}

// bulkAdmit reads ndjson lines from body, submits each to the job queue,
// spawns a waiter per admitted job, and closes results once every line is
// read and every waiter has reported.
func (s *Server) bulkAdmit(ctx context.Context, body io.ReadCloser, results chan<- bulkResult) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		close(results)
	}()
	emit := func(res bulkResult) {
		select {
		case results <- res:
		case <-ctx.Done():
		}
	}
	sc := bufio.NewScanner(body)
	// Each line is one /layer-shaped request; give it the same budget a
	// /layer body gets.
	sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))
	lineNo := 0
	for sc.Scan() {
		if ctx.Err() != nil {
			return
		}
		lineNo++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		job, res := s.bulkSubmitLine(lineNo, raw)
		if job == nil {
			emit(res)
			if res.State == "closed" {
				return // queue shut down: no further line can be admitted
			}
			continue
		}
		s.metrics.bulkJobs.Add(1)
		wg.Add(1)
		go func(job *batch.Job, lineNo int) {
			defer wg.Done()
			if _, err := job.Wait(ctx); err != nil && ctx.Err() != nil {
				// Client disconnected mid-stream: the result has no reader,
				// so stop burning CPU on it.
				s.jobs.Cancel(job.ID())
				return
			}
			snap := job.Snapshot()
			res := bulkResult{Line: lineNo, Job: job.ID(), State: string(snap.State)}
			if snap.State == batch.StateDone {
				res.Body = snap.Result
			} else {
				res.Error = jobFailureReason(snap)
			}
			emit(res)
		}(job, lineNo)
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		emit(bulkResult{Line: lineNo + 1, State: "failed", Error: fmt.Sprintf("reading input: %v", err)})
	}
}

// bulkSubmitLine parses one input line and admits it to the job queue.
// It returns the admitted job, or (nil, an error result line) when the
// line could not be admitted.
func (s *Server) bulkSubmitLine(lineNo int, raw []byte) (*batch.Job, bulkResult) {
	fail := func(format string, args ...any) (*batch.Job, bulkResult) {
		return nil, bulkResult{Line: lineNo, State: string(batch.StateFailed), Error: fmt.Sprintf(format, args...)}
	}
	var bl bulkLine
	if err := json.Unmarshal(raw, &bl); err != nil {
		return fail("bad line: %v", err)
	}
	query, err := url.ParseQuery(bl.Query)
	if err != nil {
		return fail("bad query: %v", err)
	}
	req, err := ParseRequest(query)
	if err != nil {
		return fail("bad request: %v", err)
	}
	if req.Distributed && s.cfg.Coordinator == nil {
		return fail("distributed=true but this daemon is not a coordinator")
	}
	g, names, err := ParseGraph(req, strings.NewReader(bl.Graph))
	if err != nil {
		return fail("bad %s input: %v", req.Format, err)
	}
	key := requestKey(req, g, names)
	gk := graphKey(g, names)
	req, key, warm, _ := s.warmPlan(req, g, names, key, gk)
	timeout := s.timeout(req)
	job, err := s.jobs.SubmitLabeled(func(ctx context.Context) ([]byte, error) {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		body, _, _, err := s.computeCached(ctx, key, req, g, names, gk, warm, nil)
		return body, err
	}, req.Labels...)
	if err != nil {
		if errors.Is(err, batch.ErrQueueFull) {
			return nil, bulkResult{
				Line: lineNo, State: string(batch.StateFailed),
				Error:      fmt.Sprintf("job queue full (depth %d)", s.cfg.JobQueueDepth),
				RetryAfter: s.jobs.RetryAfter(),
			}
		}
		return nil, bulkResult{Line: lineNo, State: "closed", Error: fmt.Sprintf("job queue closed: %v", err)}
	}
	return job, bulkResult{}
}
