package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strconv"
	"time"

	"antlayer"
	"antlayer/internal/dot"
	"antlayer/internal/obs"
)

// RenderMode selects the optional drawing embedded in a layer response.
type RenderMode string

const (
	RenderNone  RenderMode = "none"
	RenderSVG   RenderMode = "svg"
	RenderASCII RenderMode = "ascii"
)

// Request is a fully parsed and validated layering request: everything
// that determines the response body, plus the per-request timeout (which
// deliberately does not). The HTTP daemon builds one per /layer or /jobs
// call via ParseRequest; the `daglayer batch` CLI builds them from flags —
// both paths feed Compute, so a batch result file holds byte-for-byte the
// body the daemon would have served.
type Request struct {
	Format            string // dot | edges
	Algo              string // aco | island | lpl | minwidth | cg | ns
	Promote           bool
	Render            RenderMode
	DummyWidth        float64
	CGWidth           int
	ACO               antlayer.ACOParams
	Islands           int // island: colony count (0 = default)
	MigrationInterval int // island: tours between migrations (0 = default)
	// Distributed asks for algo=island to run on the shard coordinator's
	// worker fleet instead of in-process. It deliberately does not
	// parameterise the response body — the distributed archipelago is
	// byte-identical to the in-process one — so, like Workers and
	// Timeout, it is excluded from the cache key.
	Distributed bool
	// Labels are the job's topics on the async paths (/jobs, /jobs/bulk):
	// every event the job publishes carries them, so topic subscribers
	// (GET /events?topic=, webhook subscriptions) see it. They never
	// influence the computation or its body, so — like Timeout — they are
	// excluded from the cache key. Ignored by the synchronous /layer.
	Labels  []string
	Timeout time.Duration // 0 = server default
	// Warm permits the server's warm-start fast path for this request
	// (the default): a colony request may be seeded from a cached state
	// of the same or a similar graph and run on a reduced tour budget.
	// warm=false forces a cold run. Like Distributed, the knob selects
	// how the answer is computed, not what request it is, so it is
	// excluded from the cache key — but a warm-started computation is
	// cached under a lineage-suffixed key (see Server.warmPlan), never
	// under the cold key, so cold replays stay byte-identical.
	Warm bool
	// Base names the warm-start lineage explicitly: the canonical graph
	// hash (the X-Graph-Key answer of a previous request) whose cached
	// state should seed this run, skipping the similarity probe. Empty
	// means probe. Ignored when Warm is false.
	Base string
}

// DefaultRequest returns the request every unset parameter falls back to.
func DefaultRequest() Request {
	return Request{
		Format:     "dot",
		Algo:       "aco",
		Render:     RenderNone,
		DummyWidth: 1,
		CGWidth:    4,
		ACO:        antlayer.DefaultACOParams(),
		Warm:       true,
	}
}

// options maps the request onto the shared algorithm-constructor options.
func (req Request) options() antlayer.Options {
	return antlayer.Options{
		DummyWidth:        req.DummyWidth,
		CGWidth:           req.CGWidth,
		ACO:               req.ACO,
		Islands:           req.Islands,
		MigrationInterval: req.MigrationInterval,
	}
}

// ParseRequest decodes the query parameters of a /layer or /jobs request.
// Unknown parameters are rejected so that typos ("tuors=100") fail loudly
// instead of silently running with defaults.
func ParseRequest(q url.Values) (Request, error) {
	req := DefaultRequest()
	var err error
	for key, vals := range q {
		v := vals[len(vals)-1]
		switch key {
		case "format":
			req.Format = v
		case "algo":
			req.Algo = v
		case "promote":
			req.Promote, err = strconv.ParseBool(v)
		case "render":
			req.Render = RenderMode(v)
		case "dummy-width":
			req.DummyWidth, err = strconv.ParseFloat(v, 64)
		case "cg-width":
			req.CGWidth, err = strconv.Atoi(v)
		case "ants":
			req.ACO.Ants, err = strconv.Atoi(v)
		case "tours":
			req.ACO.Tours, err = strconv.Atoi(v)
		case "alpha":
			req.ACO.Alpha, err = strconv.ParseFloat(v, 64)
		case "beta":
			req.ACO.Beta, err = strconv.ParseFloat(v, 64)
		case "seed":
			req.ACO.Seed, err = strconv.ParseInt(v, 10, 64)
		case "workers":
			req.ACO.Workers, err = strconv.Atoi(v)
		case "stop-stagnant", "stall-tours": // two names, one knob
			req.ACO.StopAfterStagnantTours, err = strconv.Atoi(v)
		case "width-bound":
			req.ACO.WidthBound, err = strconv.ParseFloat(v, 64)
		case "islands":
			req.Islands, err = strconv.Atoi(v)
			if err == nil && req.Islands < 0 {
				err = fmt.Errorf("must be >= 0")
			}
		case "migration-interval":
			req.MigrationInterval, err = strconv.Atoi(v)
			if err == nil && req.MigrationInterval < 0 {
				err = fmt.Errorf("must be >= 0")
			}
		case "distributed":
			req.Distributed, err = strconv.ParseBool(v)
		case "warm":
			req.Warm, err = strconv.ParseBool(v)
		case "base":
			// A canonical graph hash (X-Graph-Key) is 64 hex characters;
			// bound rather than fully validate, so the knob stays format-
			// agnostic if the key scheme ever grows.
			if v == "" || len(v) > 128 {
				return req, fmt.Errorf("query parameter base=%q: want 1-128 characters", v)
			}
			req.Base = v
		case "label":
			// Repeatable: every value becomes a topic. Bounded so a
			// hostile request cannot pin unbounded label bytes to a job.
			for _, l := range vals {
				if l == "" || len(l) > 64 {
					return req, fmt.Errorf("query parameter label=%q: want 1-64 characters", l)
				}
			}
			if len(vals) > 8 {
				return req, fmt.Errorf("query parameter label: at most 8 labels per job, got %d", len(vals))
			}
			req.Labels = vals
		case "timeout-ms":
			var ms int64
			ms, err = strconv.ParseInt(v, 10, 64)
			if err == nil && ms <= 0 {
				err = fmt.Errorf("must be positive")
			}
			req.Timeout = time.Duration(ms) * time.Millisecond
		default:
			return req, fmt.Errorf("unknown query parameter %q", key)
		}
		if err != nil {
			return req, fmt.Errorf("query parameter %s=%q: %v", key, v, err)
		}
	}
	switch req.Format {
	case "dot", "edges":
	default:
		return req, fmt.Errorf("unknown format %q (want dot|edges)", req.Format)
	}
	switch req.Algo {
	case "aco", "island", "lpl", "minwidth", "cg", "ns":
	default:
		return req, fmt.Errorf("unknown algo %q (want aco|island|lpl|minwidth|cg|ns)", req.Algo)
	}
	switch req.Render {
	case RenderNone, RenderSVG, RenderASCII:
	default:
		return req, fmt.Errorf("unknown render %q (want none|svg|ascii)", req.Render)
	}
	if req.Distributed && req.Algo != "island" {
		return req, fmt.Errorf("distributed=true requires algo=island, got algo=%q", req.Algo)
	}
	if req.Base != "" && req.Algo != "aco" && req.Algo != "island" {
		return req, fmt.Errorf("base= requires a colony algorithm (aco|island), got algo=%q", req.Algo)
	}
	req.ACO.DummyWidth = req.DummyWidth
	return req, nil
}

// ParseGraph decodes a graph in the request's format, returning the graph
// and a per-vertex name slice (synthesised v<N> names for edge lists,
// which carry none).
func ParseGraph(req Request, body io.Reader) (*antlayer.Graph, []string, error) {
	switch req.Format {
	case "edges":
		return dot.ReadEdgeListNamed(body)
	default: // "dot", enforced by ParseRequest
		return antlayer.ReadDOT(body)
	}
}

// requestKey is the cache key: a hash over the canonical form of the graph
// (vertex count, per-vertex width and name, edges sorted by endpoint) and
// every parameter that determines the response body.
//
// Several fields are deliberately excluded. Workers: the layering is
// bitwise-identical at any worker count (PR 1, and the island model keeps
// the guarantee), so requests differing only in parallelism share a
// result. Distributed: the sharded archipelago is byte-identical to the
// in-process one at any worker-process count and partition (DESIGN.md
// §10), so a distributed request and its local twin share one entry.
// Timeout: it bounds the computation but does not parameterise it.
// Warm/Base: they select how the server may compute the answer, not what
// was asked; warm-started bodies live under a lineage-suffixed variant of
// this key (Server.warmPlan), so the bare key always names the cold body.
//
// Edge order is canonicalised, so the same graph serialised in two edge
// orders maps to one entry. Layer-width accumulation is floating-point and
// per-edge-order, so the two serialisations could in principle produce
// different (equally valid) layerings when computed from scratch; the
// cache pins whichever was computed first, which keeps responses stable —
// a feature, not a loss.
func requestKey(req Request, g *antlayer.Graph, names []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "graph=%s\n", graphKey(g, names))
	aco := req.ACO
	aco.Workers = 0
	// Warm and ExportState never parameterise the body of a *cold*
	// computation (exporting is a side channel; Warm is nil on the cold
	// path) and Warm is a pointer, whose %+v rendering would be an
	// address — nondeterministic keys. A warm-started computation *does*
	// have a different body; it is cached under this key plus a lineage
	// suffix (Server.warmPlan), never under the bare key.
	aco.Warm = nil
	aco.ExportState = false
	// The island knobs are canonicalised before hashing: for algo=island
	// the resolved values (defaults applied) go in, so ?algo=island and
	// ?algo=island&islands=4&migration-interval=2 — the same computation —
	// share one entry; for every other algorithm they are zeroed, because
	// they cannot influence the result.
	islands, interval := 0, 0
	if req.Algo == "island" {
		ip := req.options().IslandOf()
		islands, interval = ip.Islands, ip.MigrationInterval
	}
	fmt.Fprintf(h, "p algo=%s promote=%t render=%s dummyWidth=%g cgWidth=%d islands=%d interval=%d aco=%+v\n",
		req.Algo, req.Promote, req.Render, req.DummyWidth, req.CGWidth,
		islands, interval, aco)
	return hex.EncodeToString(h.Sum(nil))
}

// graphKey is the canonical hash of the graph alone — vertex count,
// per-vertex width and name, edges sorted by endpoint — shared by the
// result-cache key (which appends the parameters) and the warm-state
// cache (which is parameter-free: a pheromone matrix learned under one
// tour budget seeds a run under any other). It is echoed to clients as
// X-Graph-Key, the handle the base= knob names a lineage by.
func graphKey(g *antlayer.Graph, names []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "g n=%d\n", g.N())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(h, "v %d w=%g name=%q\n", v, g.Width(v), names[v])
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		fmt.Fprintf(h, "e %d %d\n", e.U, e.V)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// layerResponse is the JSON document /layer (and a done job) serves.
// Field order is fixed by the struct, so equal computations marshal to
// equal bytes — the property the cache-hit determinism test pins.
type layerResponse struct {
	Algo    string    `json:"algo"`
	Promote bool      `json:"promote"`
	Graph   graphInfo `json:"graph"`
	Metrics layerInfo `json:"metrics"`
	// Objective, BestTour and ToursRun are reported for algo=aco and
	// algo=island only: the colony's f = 1/(H+W) before promotion, the
	// tour that found the best walk (0 = the LPL seed stood — a
	// meaningful value, hence the pointer: omitempty would swallow it),
	// and the tours actually run, summed over islands (early stopping can
	// end a run before the configured count).
	Objective float64 `json:"objective,omitempty"`
	BestTour  *int    `json:"best_tour,omitempty"`
	ToursRun  int     `json:"tours_run,omitempty"`
	// BestIsland and Islands are reported for algo=island only: the ring
	// index that produced the layering and the archipelago size.
	BestIsland *int       `json:"best_island,omitempty"`
	Islands    int        `json:"islands,omitempty"`
	Layers     [][]string `json:"layers"`
	SVG        string     `json:"svg,omitempty"`
	ASCII      string     `json:"ascii,omitempty"`
}

type graphInfo struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
}

// layerInfo mirrors the paper's five evaluation criteria (§VII).
type layerInfo struct {
	Height      int     `json:"height"`
	WidthIncl   float64 `json:"width_incl"`
	WidthExcl   float64 `json:"width_excl"`
	DummyCount  int     `json:"dummy_count"`
	EdgeDensity int     `json:"edge_density"`
}

// IslandRunner executes an island-model run — the seam through which the
// daemon routes algo=island requests onto the shard coordinator's worker
// fleet. A nil runner means in-process. Whatever the runner, the body
// marshalled from its result is byte-identical, because the distributed
// archipelago is (DESIGN.md §10); the seam selects where the colonies
// burn CPU, never what they produce.
type IslandRunner func(ctx context.Context, g *antlayer.Graph, p antlayer.IslandParams) (*antlayer.IslandResult, error)

// Compute runs the requested algorithm under ctx and marshals the
// response body — the one JSON shape shared by POST /layer, a done
// /jobs/{id} and a `daglayer batch` result file. It reports the colony
// tours executed (0 for the polynomial algorithms) so callers can feed
// their metrics. Only the colony paths are long enough to be cancellable;
// the polynomial algorithms run to completion well inside any sane
// deadline. Island runs execute in-process; ComputeWith is the variant
// that can shard them over a worker fleet.
func Compute(ctx context.Context, req Request, g *antlayer.Graph, names []string) (body []byte, toursRun int, err error) {
	body, toursRun, _, err = ComputeWith(ctx, req, g, names, nil)
	return body, toursRun, err
}

// ComputeWith is Compute with an explicit island runner (nil =
// in-process); see IslandRunner. When the request's colony parameters
// set ExportState, the returned state is the run's final search state
// (the winning island's, for algo=island) — the daemon stores it in the
// warm cache; state is nil otherwise and for the polynomial algorithms.
// The state never appears in the body, so exporting cannot perturb the
// served bytes.
func ComputeWith(ctx context.Context, req Request, g *antlayer.Graph, names []string, runIsland IslandRunner) (body []byte, toursRun int, state *antlayer.ACOState, err error) {
	if runIsland == nil {
		runIsland = antlayer.IslandColonyRunContext
	}
	resp := layerResponse{
		Algo:    req.Algo,
		Promote: req.Promote,
		Graph:   graphInfo{Vertices: g.N(), Edges: g.M()},
	}
	var l *antlayer.Layering
	switch req.Algo {
	case "aco":
		res, err := antlayer.AntColonyRunContext(ctx, g, req.ACO)
		if err != nil {
			return nil, 0, nil, err
		}
		toursRun = len(res.History)
		state = res.State
		l = res.Layering
		if req.Promote {
			l = antlayer.Promote(l)
		}
		resp.Objective = res.Objective
		bestTour := res.BestTour
		resp.BestTour = &bestTour
		resp.ToursRun = toursRun
	case "island":
		res, err := runIsland(ctx, g, req.options().IslandOf())
		if err != nil {
			return nil, 0, nil, err
		}
		for _, st := range res.PerIsland {
			toursRun += st.ToursRun
		}
		state = res.State
		l = res.Layering
		if req.Promote {
			l = antlayer.Promote(l)
		}
		resp.Objective = res.Objective
		bestTour := res.BestTour
		resp.BestTour = &bestTour
		resp.ToursRun = toursRun
		bestIsland := res.BestIsland
		resp.BestIsland = &bestIsland
		resp.Islands = len(res.PerIsland)
	default:
		layerer, err := antlayer.LayererByName(ctx, req.Algo, req.options())
		if err != nil {
			return nil, 0, nil, err
		}
		if req.Promote {
			layerer = antlayer.WithPromotion(layerer)
		}
		l, err = layerer.Layer(g)
		if err != nil {
			return nil, 0, nil, err
		}
	}

	m := l.ComputeMetrics(req.DummyWidth)
	resp.Metrics = layerInfo{
		Height:      m.Height,
		WidthIncl:   m.WidthIncl,
		WidthExcl:   m.WidthExcl,
		DummyCount:  m.DummyCount,
		EdgeDensity: m.EdgeDensity,
	}
	resp.Layers = make([][]string, 0, len(l.Layers()))
	for _, layer := range l.Layers() {
		row := make([]string, len(layer))
		for i, v := range layer {
			row[i] = names[v]
		}
		resp.Layers = append(resp.Layers, row)
	}

	if req.Render != RenderNone {
		render := obs.FromContext(ctx).Begin("render")
		d, err := antlayer.Draw(g, fixedLayering{l}, nil)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("render: %w", err)
		}
		var buf bytes.Buffer
		switch req.Render {
		case RenderSVG:
			err = d.WriteSVG(&buf)
			resp.SVG = buf.String()
		case RenderASCII:
			err = d.WriteASCII(&buf)
			resp.ASCII = buf.String()
		}
		if err != nil {
			return nil, 0, nil, fmt.Errorf("render: %w", err)
		}
		render.End()
	}

	body, err = json.Marshal(resp)
	if err != nil {
		return nil, 0, nil, err
	}
	return append(body, '\n'), toursRun, state, nil
}

// fixedLayering adapts an already-computed layering to the Layerer
// interface so the Sugiyama pipeline renders it instead of re-running the
// algorithm (the pipeline clones acyclic inputs and normalizes the
// layering in place, hence the clone).
type fixedLayering struct{ l *antlayer.Layering }

func (f fixedLayering) Layer(*antlayer.Graph) (*antlayer.Layering, error) {
	return f.l.Clone(), nil
}
