package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/url"
	"sort"
	"strconv"
	"time"

	"antlayer"
	"antlayer/internal/dot"
)

// renderMode selects the optional drawing embedded in a /layer response.
type renderMode string

const (
	renderNone  renderMode = "none"
	renderSVG   renderMode = "svg"
	renderASCII renderMode = "ascii"
)

// layerRequest is a fully parsed and validated /layer request: everything
// that determines the response body, plus the per-request timeout (which
// deliberately does not).
type layerRequest struct {
	format     string // dot | edges
	algo       string // aco | lpl | minwidth | cg | ns
	promote    bool
	render     renderMode
	dummyWidth float64
	cgWidth    int
	aco        antlayer.ACOParams
	timeout    time.Duration // 0 = server default
}

// parseLayerQuery decodes the query parameters of a /layer request.
// Unknown parameters are rejected so that typos ("tuors=100") fail loudly
// instead of silently running with defaults.
func parseLayerQuery(q url.Values) (layerRequest, error) {
	req := layerRequest{
		format:     "dot",
		algo:       "aco",
		render:     renderNone,
		dummyWidth: 1,
		cgWidth:    4,
		aco:        antlayer.DefaultACOParams(),
	}
	var err error
	for key, vals := range q {
		v := vals[len(vals)-1]
		switch key {
		case "format":
			req.format = v
		case "algo":
			req.algo = v
		case "promote":
			req.promote, err = strconv.ParseBool(v)
		case "render":
			req.render = renderMode(v)
		case "dummy-width":
			req.dummyWidth, err = strconv.ParseFloat(v, 64)
		case "cg-width":
			req.cgWidth, err = strconv.Atoi(v)
		case "ants":
			req.aco.Ants, err = strconv.Atoi(v)
		case "tours":
			req.aco.Tours, err = strconv.Atoi(v)
		case "alpha":
			req.aco.Alpha, err = strconv.ParseFloat(v, 64)
		case "beta":
			req.aco.Beta, err = strconv.ParseFloat(v, 64)
		case "seed":
			req.aco.Seed, err = strconv.ParseInt(v, 10, 64)
		case "workers":
			req.aco.Workers, err = strconv.Atoi(v)
		case "stop-stagnant":
			req.aco.StopAfterStagnantTours, err = strconv.Atoi(v)
		case "width-bound":
			req.aco.WidthBound, err = strconv.ParseFloat(v, 64)
		case "timeout-ms":
			var ms int64
			ms, err = strconv.ParseInt(v, 10, 64)
			if err == nil && ms <= 0 {
				err = fmt.Errorf("must be positive")
			}
			req.timeout = time.Duration(ms) * time.Millisecond
		default:
			return req, fmt.Errorf("unknown query parameter %q", key)
		}
		if err != nil {
			return req, fmt.Errorf("query parameter %s=%q: %v", key, v, err)
		}
	}
	switch req.format {
	case "dot", "edges":
	default:
		return req, fmt.Errorf("unknown format %q (want dot|edges)", req.format)
	}
	switch req.algo {
	case "aco", "lpl", "minwidth", "cg", "ns":
	default:
		return req, fmt.Errorf("unknown algo %q (want aco|lpl|minwidth|cg|ns)", req.algo)
	}
	switch req.render {
	case renderNone, renderSVG, renderASCII:
	default:
		return req, fmt.Errorf("unknown render %q (want none|svg|ascii)", req.render)
	}
	req.aco.DummyWidth = req.dummyWidth
	return req, nil
}

// parseGraph decodes the request body in the request's format, returning
// the graph and a per-vertex name slice (synthesised v<N> names for edge
// lists, which carry none).
func parseGraph(req layerRequest, body io.Reader) (*antlayer.Graph, []string, error) {
	switch req.format {
	case "edges":
		return dot.ReadEdgeListNamed(body)
	default: // "dot", enforced by parseLayerQuery
		return antlayer.ReadDOT(body)
	}
}

// requestKey is the cache key: a hash over the canonical form of the graph
// (vertex count, per-vertex width and name, edges sorted by endpoint) and
// every parameter that determines the response body.
//
// Two fields are deliberately excluded. Workers: the layering is
// bitwise-identical at any worker count (PR 1), so requests differing only
// in parallelism share a result. Timeout: it bounds the computation but
// does not parameterise it.
//
// Edge order is canonicalised, so the same graph serialised in two edge
// orders maps to one entry. Layer-width accumulation is floating-point and
// per-edge-order, so the two serialisations could in principle produce
// different (equally valid) layerings when computed from scratch; the
// cache pins whichever was computed first, which keeps responses stable —
// a feature, not a loss.
func requestKey(req layerRequest, g *antlayer.Graph, names []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "g n=%d\n", g.N())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(h, "v %d w=%g name=%q\n", v, g.Width(v), names[v])
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		fmt.Fprintf(h, "e %d %d\n", e.U, e.V)
	}
	aco := req.aco
	aco.Workers = 0
	fmt.Fprintf(h, "p algo=%s promote=%t render=%s dummyWidth=%g cgWidth=%d aco=%+v\n",
		req.algo, req.promote, req.render, req.dummyWidth, req.cgWidth, aco)
	return hex.EncodeToString(h.Sum(nil))
}

// layerResponse is the JSON document /layer serves. Field order is fixed
// by the struct, so equal computations marshal to equal bytes — the
// property the cache-hit determinism test pins.
type layerResponse struct {
	Algo    string    `json:"algo"`
	Promote bool      `json:"promote"`
	Graph   graphInfo `json:"graph"`
	Metrics layerInfo `json:"metrics"`
	// Objective, BestTour and ToursRun are reported for algo=aco only:
	// the colony's f = 1/(H+W) before promotion, the tour that found the
	// best walk (0 = the LPL seed stood — a meaningful value, hence the
	// pointer: omitempty would swallow it), and the tours actually run
	// (early stopping can end the run before the configured count).
	Objective float64    `json:"objective,omitempty"`
	BestTour  *int       `json:"best_tour,omitempty"`
	ToursRun  int        `json:"tours_run,omitempty"`
	Layers    [][]string `json:"layers"`
	SVG       string     `json:"svg,omitempty"`
	ASCII     string     `json:"ascii,omitempty"`
}

type graphInfo struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
}

// layerInfo mirrors the paper's five evaluation criteria (§VII).
type layerInfo struct {
	Height      int     `json:"height"`
	WidthIncl   float64 `json:"width_incl"`
	WidthExcl   float64 `json:"width_excl"`
	DummyCount  int     `json:"dummy_count"`
	EdgeDensity int     `json:"edge_density"`
}

// fixedLayering adapts an already-computed layering to the Layerer
// interface so the Sugiyama pipeline renders it instead of re-running the
// algorithm (the pipeline clones acyclic inputs and normalizes the
// layering in place, hence the clone).
type fixedLayering struct{ l *antlayer.Layering }

func (f fixedLayering) Layer(*antlayer.Graph) (*antlayer.Layering, error) {
	return f.l.Clone(), nil
}
