package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"antlayer/internal/batch"
	"antlayer/internal/obs"
	"antlayer/internal/shard"
)

// These golden tests pin the exact JSON field names of the /metrics and
// /cluster documents. The loadgen scraper (internal/chaos) and any
// external dashboard key off these names; renaming a field is an API
// break and must show up as a diff here, not as a silently-zero metric
// in a chaos report.

const metricsGolden = `{
  "uptime_seconds": 12.5,
  "requests_total": 100,
  "layer_requests": 80,
  "cache_hits": 40,
  "cache_misses": 20,
  "cache_hit_rate": 0.6666666666666666,
  "cache_entries": 20,
  "cache_bytes": 4096,
  "cache_oversize_rejects": 1,
  "warm_hits": 9,
  "warm_misses": 4,
  "warm_tours_saved": 270,
  "warm_entries": 6,
  "warm_bytes": 8192,
  "coalesced": 5,
  "errors": 3,
  "timeouts": 2,
  "tours_run": 1234,
  "in_flight": 1,
  "latency_ms": {
    "count": 80,
    "p50": 1.5,
    "p99": 9.75
  },
  "distributed_runs": 7,
  "distributed_fallbacks": 1,
  "sse_streams": 6,
  "sse_active": 2,
  "bulk_requests": 3,
  "bulk_jobs": 12,
  "jobs": {
    "submitted": 30,
    "rejected": 4,
    "queued": 2,
    "running": 1,
    "done": 25,
    "failed": 2,
    "canceled": 1,
    "expired": 3,
    "depth": 64,
    "workers": 8
  },
  "events": {
    "published": 90,
    "last_seq": 90,
    "dropped": 5,
    "subscribers": 2,
    "ring_len": 90
  },
  "webhooks": {
    "subscriptions": 1,
    "delivered": 40,
    "retries": 3,
    "failed": 1,
    "dropped": 2
  },
  "cluster": {
    "workers": 2,
    "idle_workers": 1,
    "runs": 7,
    "run_errors": 1,
    "runs_in_flight": 1,
    "peak_concurrent_runs": 2,
    "runs_queued": 1,
    "run_queue_bound": 16,
    "runs_rejected": 2,
    "dispatch_ms": {
      "count": 7,
      "p50_ms": 0.5,
      "p99_ms": 4.25
    },
    "epochs": 21,
    "migrations": 14,
    "heartbeat_expels": 1,
    "heartbeat_timeout_ms": 10000,
    "per_worker": [
      {
        "id": 1,
        "name": "w1",
        "state": "leased",
        "run": 5,
        "islands": 2,
        "epochs": 21,
        "mean_epoch_ms": 3.25,
        "max_epoch_ms": 11.5,
        "heartbeats": 42,
        "last_seen_age_ms": 120.5
      }
    ]
  },
  "runtime": {
    "goroutines": 12,
    "heap_alloc_bytes": 1048576,
    "heap_sys_bytes": 4194304,
    "heap_objects": 2048,
    "next_gc_bytes": 2097152,
    "gc_cycles": 3,
    "gc_pause_total_ms": 0.75
  }
}`

// TestMetricsSnapshotGoldenShape marshals a fully populated snapshot and
// compares it byte-for-byte against the pinned document.
func TestMetricsSnapshotGoldenShape(t *testing.T) {
	snap := MetricsSnapshot{
		UptimeSeconds:        12.5,
		RequestsTotal:        100,
		LayerRequests:        80,
		CacheHits:            40,
		CacheMisses:          20,
		CacheHitRate:         2.0 / 3.0,
		CacheEntries:         20,
		CacheBytes:           4096,
		CacheOversizeRejects: 1,
		WarmHits:             9,
		WarmMisses:           4,
		WarmToursSaved:       270,
		WarmEntries:          6,
		WarmBytes:            8192,
		Coalesced:            5,
		Errors:               3,
		Timeouts:             2,
		ToursRun:             1234,
		InFlight:             1,
		Latency:              LatencyQuantile{Count: 80, P50: 1.5, P99: 9.75},
		DistributedRuns:      7,
		DistributedFallbacks: 1,
		SSEStreams:           6,
		SSEActive:            2,
		BulkRequests:         3,
		BulkJobs:             12,
		Jobs: batch.Stats{
			Submitted: 30, Rejected: 4, Queued: 2, Running: 1,
			Done: 25, Failed: 2, Canceled: 1, Expired: 3, Depth: 64, Workers: 8,
		},
		Events: batch.EventStats{
			Published: 90, LastSeq: 90, Dropped: 5, Subscribers: 2, RingLen: 90,
		},
		Webhooks: WebhookMetrics{
			Subscriptions: 1, Delivered: 40, Retries: 3, Failed: 1, Dropped: 2,
		},
		Cluster: &shard.ClusterMetrics{
			Workers: 2, IdleWorkers: 1, Runs: 7, RunErrors: 1,
			RunsInFlight: 1, PeakConcurrentRuns: 2, RunsQueued: 1,
			RunQueueBound: 16, RunsRejected: 2,
			DispatchMs: shard.DispatchMetrics{Count: 7, P50Ms: 0.5, P99Ms: 4.25},
			Epochs:     21, Migrations: 14,
			HeartbeatExpels: 1, HeartbeatTimeoutMs: 10000,
			PerWorker: []shard.WorkerMetrics{{
				ID: 1, Name: "w1", State: "leased", Run: 5, Islands: 2, Epochs: 21,
				MeanEpochMs: 3.25, MaxEpochMs: 11.5,
				Heartbeats: 42, LastSeenAgeMs: 120.5,
			}},
		},
		Runtime: obs.RuntimeStats{
			Goroutines: 12, HeapAllocBytes: 1 << 20, HeapSysBytes: 4 << 20,
			HeapObjects: 2048, NextGCBytes: 2 << 20, GCCycles: 3,
			GCPauseTotalMS: 0.75,
		},
	}
	got, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != metricsGolden {
		t.Errorf("/metrics JSON shape drifted:\n got: %s\nwant: %s", got, metricsGolden)
	}
}

// TestLiveMetricsServeGoldenKeys spot-checks that a real daemon's
// /metrics and /cluster documents carry exactly the pinned top-level
// keys — catching a handler that stops using MetricsSnapshot as much as
// a renamed field.
func TestLiveMetricsServeGoldenKeys(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	// "cluster" is omitempty and absent on a non-coordinator daemon.
	var want []string
	for _, line := range strings.Split(metricsGolden, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, `"`) || !strings.HasSuffix(strings.SplitN(line, ":", 2)[0], `"`) {
			continue
		}
		key := strings.Trim(strings.SplitN(line, ":", 2)[0], `" `)
		switch key {
		case "uptime_seconds", "requests_total", "layer_requests", "cache_hits",
			"cache_misses", "cache_hit_rate", "cache_entries", "cache_bytes",
			"cache_oversize_rejects", "warm_hits", "warm_misses",
			"warm_tours_saved", "warm_entries", "warm_bytes",
			"coalesced", "errors", "timeouts",
			"tours_run", "in_flight", "latency_ms", "distributed_runs",
			"distributed_fallbacks", "sse_streams", "sse_active",
			"bulk_requests", "bulk_jobs", "jobs", "events", "webhooks", "runtime":
			want = append(want, key)
		}
	}
	for _, key := range want {
		if _, ok := doc[key]; !ok {
			t.Errorf("/metrics missing pinned key %q", key)
		}
	}
	if len(doc) != len(want) {
		got := make([]string, 0, len(doc))
		for k := range doc {
			got = append(got, k)
		}
		t.Errorf("/metrics has %d top-level keys, pinned %d: %v", len(doc), len(want), got)
	}
}

const clusterGolden = `{
  "workers": 1,
  "idle_workers": 1,
  "runs": 3,
  "run_errors": 0,
  "runs_in_flight": 0,
  "peak_concurrent_runs": 1,
  "runs_queued": 0,
  "run_queue_bound": 16,
  "runs_rejected": 0,
  "dispatch_ms": {
    "count": 3,
    "p50_ms": 0.25,
    "p99_ms": 1.5
  },
  "epochs": 9,
  "migrations": 6,
  "heartbeat_expels": 0,
  "heartbeat_timeout_ms": 10000,
  "per_worker": [
    {
      "id": 2,
      "name": "solo",
      "state": "idle",
      "islands": 4,
      "epochs": 9,
      "mean_epoch_ms": 0.5,
      "max_epoch_ms": 2,
      "heartbeats": 9,
      "last_seen_age_ms": 33
    }
  ]
}`

// TestClusterMetricsGoldenShape pins the /cluster document — the same
// struct the /metrics "cluster" block embeds. The idle worker's "run"
// field is absent (omitempty): lease attribution only renders while a
// run holds the worker.
func TestClusterMetricsGoldenShape(t *testing.T) {
	cm := shard.ClusterMetrics{
		Workers: 1, IdleWorkers: 1, Runs: 3, RunErrors: 0,
		PeakConcurrentRuns: 1, RunQueueBound: 16,
		DispatchMs: shard.DispatchMetrics{Count: 3, P50Ms: 0.25, P99Ms: 1.5},
		Epochs:     9, Migrations: 6,
		HeartbeatExpels: 0, HeartbeatTimeoutMs: 10000,
		PerWorker: []shard.WorkerMetrics{{
			ID: 2, Name: "solo", State: "idle", Islands: 4, Epochs: 9,
			MeanEpochMs: 0.5, MaxEpochMs: 2, Heartbeats: 9, LastSeenAgeMs: 33,
		}},
	}
	got, err := json.MarshalIndent(cm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != clusterGolden {
		t.Errorf("/cluster JSON shape drifted:\n got: %s\nwant: %s", got, clusterGolden)
	}
}
