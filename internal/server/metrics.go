package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"antlayer/internal/batch"
	"antlayer/internal/obs"
	"antlayer/internal/shard"
)

// latencyWindow is how many recent /layer latencies the quantile estimates
// are computed over.
const latencyWindow = 1024

// serverMetrics aggregates the daemon's observability counters. All
// counters are monotonically increasing except inFlight (a gauge). Each
// Server owns its metrics instance, so tests can run many servers in one
// process — the reason these are plain atomics instead of package-global
// expvar registrations, which panic on re-registration.
type serverMetrics struct {
	start time.Time

	requests      atomic.Int64 // every HTTP request the mux saw
	layerRequests atomic.Int64 // POST /layer requests
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64 // computed-and-stored bodies, not failed lookups
	coalesced     atomic.Int64 // requests served by an identical in-flight compute
	errors        atomic.Int64 // /layer requests answered with a 4xx/5xx
	timeouts      atomic.Int64 // /layer requests answered 504
	toursRun      atomic.Int64 // colony tours executed (cache hits run zero)
	inFlight      atomic.Int64 // /layer requests currently being computed
	distRuns      atomic.Int64 // island runs served by the worker fleet
	distFallbacks atomic.Int64 // distributed requests computed in-process (no workers)
	sseStreams    atomic.Int64 // SSE streams opened (per-job and firehose)
	sseActive     atomic.Int64 // SSE streams currently connected (gauge)
	bulkRequests  atomic.Int64 // POST /jobs/bulk requests
	bulkJobs      atomic.Int64 // jobs admitted through /jobs/bulk lines
	// Warm-start accounting: hits are requests served through a warm
	// lineage (computed, coalesced or replayed), misses are warm-eligible
	// requests for which no usable state was cached, toursSaved is the
	// difference between the cold tour budgets of warm-started
	// computations and the tours they actually ran.
	warmHits       atomic.Int64
	warmMisses     atomic.Int64
	warmToursSaved atomic.Int64

	mu       sync.Mutex
	latRing  [latencyWindow]time.Duration // recent /layer latencies
	latNext  int
	latCount int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{start: time.Now()}
}

// observeLatency records one /layer request duration (hits and misses
// alike: the hit/miss split is what makes the p50 interesting).
func (m *serverMetrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.latRing[m.latNext] = d
	m.latNext = (m.latNext + 1) % latencyWindow
	m.latCount++
	m.mu.Unlock()
}

// quantiles returns nearest-rank p50 and p99 over the retained window, in
// milliseconds.
func (m *serverMetrics) quantiles() (count int64, p50, p99 float64) {
	m.mu.Lock()
	n := int(m.latCount)
	if n > latencyWindow {
		n = latencyWindow
	}
	buf := make([]time.Duration, n)
	copy(buf, m.latRing[:n])
	count = m.latCount
	m.mu.Unlock()
	if n == 0 {
		return count, 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	rank := func(q float64) float64 {
		i := int(q * float64(n-1))
		return float64(buf[i].Nanoseconds()) / 1e6
	}
	return count, rank(0.50), rank(0.99)
}

// MetricsSnapshot is the JSON document /metrics serves. CacheMisses
// counts computed-and-stored responses — a request that fails or times
// out before producing a body is counted under Errors/Timeouts only — so
// CacheHitRate (hits / (hits + misses)) describes serviceable traffic.
// Coalesced counts requests answered by an identical concurrent
// computation (single-flight); they ran no colony and sit outside the
// hit/miss split.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	RequestsTotal int64   `json:"requests_total"`
	LayerRequests int64   `json:"layer_requests"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	CacheEntries  int     `json:"cache_entries"`
	// CacheBytes is the total body bytes the LRU currently holds (the
	// size-aware eviction keeps it under the configured budget);
	// CacheOversizeRejects counts bodies refused admission because one
	// entry would have displaced too much of the working set.
	CacheBytes           int64 `json:"cache_bytes"`
	CacheOversizeRejects int64 `json:"cache_oversize_rejects"`
	// The warm-start fast path (see DESIGN.md §15): WarmHits counts
	// requests served through a warm lineage, WarmMisses warm-eligible
	// requests that found no usable state, WarmToursSaved the colony
	// tours the warm starts avoided (cold budget minus tours actually
	// run, summed over warm computations). WarmEntries/WarmBytes gauge
	// the warm-state cache.
	WarmHits       int64           `json:"warm_hits"`
	WarmMisses     int64           `json:"warm_misses"`
	WarmToursSaved int64           `json:"warm_tours_saved"`
	WarmEntries    int             `json:"warm_entries"`
	WarmBytes      int64           `json:"warm_bytes"`
	Coalesced      int64           `json:"coalesced"`
	Errors         int64           `json:"errors"`
	Timeouts       int64           `json:"timeouts"`
	ToursRun       int64           `json:"tours_run"`
	InFlight       int64           `json:"in_flight"`
	Latency        LatencyQuantile `json:"latency_ms"`
	// DistributedRuns counts island runs served by the shard worker
	// fleet; DistributedFallbacks counts distributed=true requests that
	// ran in-process because no workers were registered (the bytes are
	// identical either way — the fallback costs locality, not
	// correctness).
	DistributedRuns      int64 `json:"distributed_runs"`
	DistributedFallbacks int64 `json:"distributed_fallbacks"`
	// SSEStreams counts event streams opened over the daemon's lifetime;
	// SSEActive is the currently-connected gauge. BulkRequests counts
	// POST /jobs/bulk calls; BulkJobs the jobs their lines admitted.
	SSEStreams   int64 `json:"sse_streams"`
	SSEActive    int64 `json:"sse_active"`
	BulkRequests int64 `json:"bulk_requests"`
	BulkJobs     int64 `json:"bulk_jobs"`
	// Jobs summarises the async /jobs queue: submitted/rejected totals,
	// the queued/running gauges (queue depth is the queued gauge against
	// the depth bound), and per-outcome counters.
	Jobs batch.Stats `json:"jobs"`
	// Events summarises the push layer: transitions published, the newest
	// sequence number, subscriber-side drops, and the replay ring.
	Events batch.EventStats `json:"events"`
	// Webhooks summarises registered webhook subscriptions and their
	// delivery counters.
	Webhooks WebhookMetrics `json:"webhooks"`
	// Cluster is the shard coordinator's snapshot — fleet size, runs,
	// epochs, migrations, per-shard epoch latency. Present only on a
	// coordinator daemon.
	Cluster *shard.ClusterMetrics `json:"cluster,omitempty"`
	// Runtime is the Go runtime's health at snapshot time: goroutines,
	// heap gauges and cumulative GC work (see obs.ReadRuntime).
	Runtime obs.RuntimeStats `json:"runtime"`
}

// LatencyQuantile summarises the recent /layer latency distribution.
type LatencyQuantile struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

func (m *serverMetrics) snapshot(cacheEntries int, cacheBytes, cacheOversize int64, warmEntries int, warmBytes int64, jobs batch.Stats, events batch.EventStats, webhooks WebhookMetrics, cluster *shard.ClusterMetrics, rt obs.RuntimeStats) MetricsSnapshot {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	count, p50, p99 := m.quantiles()
	return MetricsSnapshot{
		UptimeSeconds:        time.Since(m.start).Seconds(),
		RequestsTotal:        m.requests.Load(),
		LayerRequests:        m.layerRequests.Load(),
		CacheHits:            hits,
		CacheMisses:          misses,
		CacheHitRate:         rate,
		CacheEntries:         cacheEntries,
		CacheBytes:           cacheBytes,
		CacheOversizeRejects: cacheOversize,
		WarmHits:             m.warmHits.Load(),
		WarmMisses:           m.warmMisses.Load(),
		WarmToursSaved:       m.warmToursSaved.Load(),
		WarmEntries:          warmEntries,
		WarmBytes:            warmBytes,
		Coalesced:            m.coalesced.Load(),
		Errors:               m.errors.Load(),
		Timeouts:             m.timeouts.Load(),
		ToursRun:             m.toursRun.Load(),
		InFlight:             m.inFlight.Load(),
		Latency:              LatencyQuantile{Count: count, P50: p50, P99: p99},
		DistributedRuns:      m.distRuns.Load(),
		DistributedFallbacks: m.distFallbacks.Load(),
		SSEStreams:           m.sseStreams.Load(),
		SSEActive:            m.sseActive.Load(),
		BulkRequests:         m.bulkRequests.Load(),
		BulkJobs:             m.bulkJobs.Load(),
		Jobs:                 jobs,
		Events:               events,
		Webhooks:             webhooks,
		Cluster:              cluster,
		Runtime:              rt,
	}
}
