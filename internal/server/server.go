// Package server exposes the layering algorithms as a long-running HTTP
// service: POST a DOT or edge-list graph to /layer and get the layering,
// the paper's quality metrics and optionally an SVG/ASCII drawing back as
// JSON — or submit the same request asynchronously to /jobs and poll.
//
// The daemon is built for repeated heavy traffic:
//
//   - Results are cached in an LRU keyed by the canonical (graph, params)
//     hash. Colony runs are bitwise-deterministic (PR 1), so a hit returns
//     exactly the bytes a recomputation would produce — repeated graphs
//     are free. /layer and /jobs share the cache.
//   - A semaphore bounds the number of concurrently computing /layer
//     requests; waiting requests hold no worker resources and honour
//     their deadline while queued.
//   - POST /jobs enqueues the request on a bounded job queue (202 + job
//     id; 429 when the backlog is full) worked by a fixed pool, so
//     clients submit many graphs without holding a connection open per
//     request. GET /jobs/{id} polls — a done job answers with exactly
//     the body /layer would have served — and DELETE /jobs/{id} cancels
//     through the colony's context plumbing.
//   - Every computation runs under a deadline (server default,
//     per-request override, hard cap) threaded into the colony's tour
//     loop via context.Context; an expired deadline aborts the run within
//     one ant walk per worker and answers 504 (or fails the job).
//   - /healthz for liveness plus build info, /metrics for counters
//     (requests, cache hit rate, tours run, p50/p99 latency, job-queue
//     depth and per-state counts), graceful shutdown via Serve's context.
//
// Start it with `daglayer serve`.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"antlayer"
	"antlayer/internal/batch"
	"antlayer/internal/buildinfo"
	"antlayer/internal/obs"
	"antlayer/internal/shard"

	"log/slog"
)

// Config tunes the daemon. The zero value is usable: every field falls
// back to the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe. Default ":8645".
	Addr string
	// CacheSize is the LRU capacity in responses. 0 means the default
	// (256); negative disables caching.
	CacheSize int
	// CacheMaxBytes is the LRU's body-byte budget: entries are evicted
	// until total cached bytes fit, and a single body larger than an
	// eighth of the budget is never admitted (so one giant SVG cannot
	// purge dozens of plain layering entries). 0 means the default
	// (64 MiB); negative disables the byte bound (entry-counted only).
	CacheMaxBytes int64
	// MaxConcurrent bounds the /layer requests computing at once; further
	// requests queue (holding no CPU) until a slot or their deadline.
	// 0 means GOMAXPROCS.
	MaxConcurrent int
	// DefaultTimeout bounds a /layer request that sends no timeout-ms.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout-ms override. Default 2m.
	MaxTimeout time.Duration
	// MaxBodyBytes caps the request body. Default 8 MiB.
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve waits for in-flight requests
	// after its context is cancelled. Default 10s.
	ShutdownGrace time.Duration
	// JobWorkers is the worker-pool size of the async /jobs queue.
	// 0 means GOMAXPROCS.
	JobWorkers int
	// JobQueueDepth bounds how many submitted jobs may wait for a worker;
	// POST /jobs beyond it answers 429. 0 means 64.
	JobQueueDepth int
	// JobRetention bounds how many finished jobs stay pollable; the
	// oldest is evicted first. 0 means 256.
	JobRetention int
	// JobExpiry, when positive, additionally evicts finished jobs older
	// than this (a retention sweep runs in the background). 0 keeps jobs
	// until the count bound evicts them.
	JobExpiry time.Duration
	// EventRing bounds how many job state transitions the event layer
	// retains for SSE replay after a reconnect (Last-Event-ID). 0 means
	// 1024.
	EventRing int
	// SSEHeartbeat is the interval between comment heartbeats on idle
	// event streams, keeping proxies from reaping the connection.
	// Default 15s.
	SSEHeartbeat time.Duration
	// WebhookRetries bounds delivery attempts per webhook event (the
	// first try plus retries). 0 means 4.
	WebhookRetries int
	// WebhookRetryBase seeds the webhook retry backoff schedule (the
	// worker-reconnect schedule: attempt k waits base<<k, jittered
	// deterministically, capped at WebhookRetryMax). Defaults 100ms / 5s.
	WebhookRetryBase time.Duration
	WebhookRetryMax  time.Duration
	// FaultComputeDelay is a test-only fault hook: every computation (a
	// /layer miss or a job picked up by a worker) sleeps this long before
	// running the colony. The chaos harness uses it to make latency and
	// queue pressure reproducible — a deterministic "slow backend" —
	// without touching the algorithms. Leave zero in production.
	FaultComputeDelay time.Duration
	// TraceRing bounds how many recent request traces GET /traces can
	// reconstruct; TraceSlowest is the slowest-N retention list that
	// survives ring churn. 0 means the defaults (256 / 32); negative
	// TraceSlowest disables the slowest list.
	TraceRing    int
	TraceSlowest int
	// TraceSample is the probability a /layer or /jobs request mints a
	// trace (head sampling): 1 traces everything, 0.01 one in a hundred.
	// Sampled-out requests still echo an X-Request-ID (honored or
	// minted), they just record no spans and never enter the trace ring —
	// the knob that keeps high-rps warm traffic from churning it.
	// 0 means the default (1.0); negative disables tracing entirely.
	TraceSample float64
	// WarmCacheBytes budgets the warm-start state cache — prior runs'
	// pheromone matrices keyed by canonical graph hash, the fast path
	// for repeat-with-edits traffic. 0 means the default (64 MiB);
	// negative disables warm starting altogether.
	WarmCacheBytes int64
	// WarmToursFrac is the fraction of the requested tour budget a
	// warm-started run gets (the warm colony resumes near the target, so
	// it needs far fewer tours; stall-tours early stop trims the rest).
	// 0 means the default (1/3); values are clamped to (0, 1].
	WarmToursFrac float64
	// WarmStallTours is the StopAfterStagnantTours value injected into
	// warm-started runs that did not set their own, converting the
	// reduced budget into actual early exits. 0 means the default (3);
	// negative injects nothing.
	WarmStallTours int
	// WarmMinSimilarity is the vertex-name overlap ratio a cached graph
	// must reach for the similarity probe to warm-start from it
	// (|shared| / max(|a|, |b|)). 0 means the default (0.5); the
	// explicit base= knob bypasses the threshold.
	WarmMinSimilarity float64
	// EnablePprof mounts net/http/pprof under /debug/pprof. Off by
	// default: the profiling endpoints expose internals and cost CPU
	// when scraped, so production daemons opt in deliberately
	// (`daglayer serve -pprof`).
	EnablePprof bool
	// Coordinator, when non-nil, makes this daemon the archipelago's
	// coordinator: requests with distributed=true run algo=island sharded
	// over the coordinator's registered workers (byte-identical to the
	// in-process run), /cluster reports the fleet, and /metrics grows a
	// cluster section. The caller owns the coordinator's listener
	// lifecycle (see cmd/daglayer serve -coordinator).
	Coordinator *shard.Coordinator
	// Log receives structured request and lifecycle lines. Nil discards.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8645"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 64 << 20
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 256
	}
	if c.EventRing <= 0 {
		c.EventRing = 1024
	}
	if c.SSEHeartbeat <= 0 {
		c.SSEHeartbeat = 15 * time.Second
	}
	if c.WebhookRetries <= 0 {
		c.WebhookRetries = 4
	}
	if c.WebhookRetryBase <= 0 {
		c.WebhookRetryBase = 100 * time.Millisecond
	}
	if c.WebhookRetryMax <= 0 {
		c.WebhookRetryMax = 5 * time.Second
	}
	if c.TraceSample == 0 {
		c.TraceSample = 1
	}
	if c.TraceSample > 1 {
		c.TraceSample = 1
	}
	if c.WarmCacheBytes == 0 {
		c.WarmCacheBytes = 64 << 20
	}
	if c.WarmToursFrac <= 0 || c.WarmToursFrac > 1 {
		c.WarmToursFrac = 1.0 / 3.0
	}
	if c.WarmStallTours == 0 {
		c.WarmStallTours = 3
	}
	if c.WarmMinSimilarity <= 0 {
		c.WarmMinSimilarity = 0.5
	}
	return c
}

// Server is the layering daemon. Create with New, mount via Handler, or
// run with Serve/ListenAndServe.
type Server struct {
	cfg   Config
	cache *resultCache
	// warm is the warm-start state cache (nil when disabled): prior
	// colony states keyed by canonical graph hash, probed by vertex-name
	// similarity. See warm.go.
	warm     *warmCache
	flights  *flightGroup
	metrics  *serverMetrics
	jobs     *batch.Queue
	webhooks *webhookManager
	tracer   *obs.Tracer
	sem      chan struct{}
	mux      *http.ServeMux
	// shuttingDown flips when Serve begins graceful shutdown, so aborted
	// in-flight requests are answered 503 rather than blamed on the client.
	shuttingDown atomic.Bool
	// shutdownCh is closed (once) when shutdown begins, so long-lived SSE
	// streams end promptly with a shutdown frame instead of riding out
	// their heartbeat interval against a dying listener.
	shutdownCh   chan struct{}
	shutdownOnce sync.Once
}

// New builds a Server from cfg (zero value fine; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize, cfg.CacheMaxBytes),
		flights: newFlightGroup(),
		metrics: newServerMetrics(),
		tracer:  obs.NewTracer(cfg.TraceRing, cfg.TraceSlowest),
		jobs: batch.New(batch.Config{
			Workers:     cfg.JobWorkers,
			Depth:       cfg.JobQueueDepth,
			Retain:      cfg.JobRetention,
			ExpireAfter: cfg.JobExpiry,
			EventRing:   cfg.EventRing,
		}),
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		shutdownCh: make(chan struct{}),
	}
	if cfg.WarmCacheBytes > 0 {
		s.warm = newWarmCache(cfg.WarmCacheBytes)
	}
	s.webhooks = newWebhookManager(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/layer", s.handleLayer)
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/jobs/bulk", s.handleBulk)
	s.mux.HandleFunc("/jobs/", s.handleJob)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/subscriptions", s.handleSubscriptions)
	s.mux.HandleFunc("/subscriptions/", s.handleSubscription)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/cluster", s.handleCluster)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/traces/", s.handleTrace)
	if cfg.EnablePprof {
		// Mounted explicitly on the daemon's own mux — importing
		// net/http/pprof registers on DefaultServeMux, which this server
		// never serves, so nothing leaks when the flag is off.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Close releases the server's background resources — the job queue's
// worker pool (cancelling whatever is queued or running), the webhook
// delivery goroutines, and every open SSE stream. Serve calls it during
// graceful shutdown; call it directly when using Handler without Serve.
func (s *Server) Close() {
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
	s.jobs.Close()
	s.webhooks.Close()
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// ShutdownGrace to finish, and any request still computing after the grace
// period has its context cancelled so the colony aborts instead of running
// to its own deadline. It returns nil after a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Request contexts descend from base, so cancelling it aborts every
	// in-flight colony (the tour loop observes the context; see
	// core.Colony.RunContext).
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	hs := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return base },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.shuttingDown.Store(true)
	// End the SSE streams first: Shutdown waits for in-flight requests,
	// and an event stream is in flight until told to stop.
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	err := hs.Shutdown(sctx)
	cancelBase() // abort whatever outlived the grace period
	s.Close()    // stop the job workers; queued and running jobs fail as cancelled
	if err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}

// ListenAndServe listens on Config.Addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.log().Info("listening", "addr", ln.Addr().String())
	return s.Serve(ctx, ln)
}

// Metrics returns a point-in-time snapshot of the daemon's counters.
func (s *Server) Metrics() MetricsSnapshot {
	var cluster *shard.ClusterMetrics
	if s.cfg.Coordinator != nil {
		cm := s.cfg.Coordinator.Metrics()
		cluster = &cm
	}
	cacheBytes, cacheOversize := s.cache.Bytes()
	warmEntries, warmBytes := s.warm.stats()
	return s.metrics.snapshot(s.cache.Len(), cacheBytes, cacheOversize, warmEntries, warmBytes, s.jobs.Stats(), s.jobs.Events().Stats(), s.webhooks.Metrics(), cluster, obs.ReadRuntime())
}

// log returns the structured logger (never nil).
func (s *Server) log() *slog.Logger {
	if s.cfg.Log != nil {
		return s.cfg.Log
	}
	return obs.Discard()
}

// healthzResponse is the JSON /healthz serves: liveness plus the build
// description of the running binary, so deployed instances can be told
// apart from the outside.
type healthzResponse struct {
	Status string         `json:"status"`
	Build  buildinfo.Info `json:"build"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(healthzResponse{Status: "ok", Build: buildinfo.Get()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Metrics())
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = writeProm(w, s.Metrics())
	default:
		s.httpError(w, http.StatusBadRequest, "unknown format %q (want json|prometheus)", format)
	}
}

// handleCluster reports the shard coordinator's fleet and per-shard
// counters, so operators can watch workers register and epochs flow
// without grepping logs.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Coordinator == nil {
		s.httpError(w, http.StatusNotFound, "this daemon is not a coordinator (start it with -coordinator)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.cfg.Coordinator.Metrics())
}

// httpError answers status with a plain-text message and counts it.
func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.errors.Add(1)
	if status == http.StatusGatewayTimeout {
		s.metrics.timeouts.Add(1)
	}
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// parseLayerHTTP decodes the query and body of a /layer or /jobs request,
// answering the error response itself; ok reports whether the caller got
// a usable request.
func (s *Server) parseLayerHTTP(w http.ResponseWriter, r *http.Request) (req Request, g *antlayer.Graph, names []string, ok bool) {
	req, err := ParseRequest(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return req, nil, nil, false
	}
	if req.Distributed && s.cfg.Coordinator == nil {
		s.httpError(w, http.StatusBadRequest, "distributed=true but this daemon is not a coordinator (start it with -coordinator)")
		return req, nil, nil, false
	}
	g, names, err = ParseGraph(req, http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "graph larger than %d bytes", tooLarge.Limit)
			return req, nil, nil, false
		}
		s.httpError(w, http.StatusBadRequest, "bad %s input: %v", req.Format, err)
		return req, nil, nil, false
	}
	return req, g, names, true
}

// computeCached serves a request body from the cache, an identical
// in-flight computation, or a fresh Compute — the one engine behind the
// synchronous /layer handler and the async job closure, which is what
// makes their bodies byte-identical by construction.
//
// Cache, then single-flight: if an identical request is already
// computing, wait for its result instead of running a duplicate colony.
// A successful leader stores to the cache before releasing its flight,
// so a new leader's re-check through the loop cannot miss a completed
// result. acquire, when non-nil, runs after winning flight leadership
// and before computing (the /layer compute semaphore; jobs pass nil —
// their worker pool is the bound); it returns a release callback or
// ctx's error.
//
// source is "hit", "coalesced" or "miss" on success; stage names what
// was happening when err struck, in the vocabulary deadlineError logs.
//
// gk is the request's canonical graph hash (graphKey): a computation
// that exported a warm-start state files it there. warm is non-nil when
// the caller's warmPlan warm-started the request (key and req are then
// already the rewritten ones); it drives the warm hit and tours-saved
// accounting — a warm "hit" is any request served through a warm
// lineage, whether the body was computed, coalesced or replayed.
func (s *Server) computeCached(ctx context.Context, key string, req Request, g *antlayer.Graph, names []string, gk string, warm *warmRun, acquire func(context.Context) (func(), error)) (body []byte, source, stage string, err error) {
	tr := obs.FromContext(ctx)
	for {
		lookup := tr.Begin("cache_lookup")
		body, ok := s.cache.Get(key)
		lookup.End()
		if ok {
			s.metrics.cacheHits.Add(1)
			if warm != nil {
				s.metrics.warmHits.Add(1)
			}
			return body, "hit", "", nil
		}
		leader, fl := s.flights.join(key)
		if !leader {
			waitStart := tr.Since()
			select {
			case <-fl.done:
				tr.Observe("coalesce_wait", "", 0, waitStart, tr.Since()-waitStart)
				if fl.err == nil {
					s.metrics.coalesced.Add(1)
					if warm != nil {
						s.metrics.warmHits.Add(1)
					}
					return fl.body, "coalesced", "", nil
				}
				// The leader failed — possibly on a deadline shorter
				// than ours. Loop: re-check the cache, then try leading.
				continue
			case <-ctx.Done():
				tr.Observe("coalesce_wait", "", 0, waitStart, tr.Since()-waitStart)
				return nil, "", "waiting on an identical in-flight request", ctx.Err()
			}
		}
		release := func() {}
		if acquire != nil {
			queueStart := tr.Since()
			release, err = acquire(ctx)
			tr.Observe("queue_wait", "", 0, queueStart, tr.Since()-queueStart)
			if err != nil {
				s.flights.finish(key, fl, nil, err)
				return nil, "", "queued for a compute slot", err
			}
		}
		s.metrics.inFlight.Add(1)
		if d := s.cfg.FaultComputeDelay; d > 0 {
			// Injected latency (chaos testing only); honours the deadline
			// like any real computation would.
			select {
			case <-time.After(d):
			case <-ctx.Done():
				s.metrics.inFlight.Add(-1)
				release()
				s.flights.finish(key, fl, nil, ctx.Err())
				return nil, "", "computing", ctx.Err()
			}
		}
		computeStart := tr.Since()
		body, toursRun, state, err := ComputeWith(ctx, req, g, names, s.islandRunner(req))
		tr.Observe("compute", "", 0, computeStart, tr.Since()-computeStart)
		s.metrics.toursRun.Add(int64(toursRun))
		s.metrics.inFlight.Add(-1)
		release()
		if err != nil {
			s.flights.finish(key, fl, nil, err)
			return nil, "", "computing", err
		}
		if state != nil && gk != "" && warm == nil {
			// File a cold run's final state under the graph it solved, so
			// the next request for this graph — or an edit of it — can
			// warm-start. Only cold runs publish: they are the stable
			// anchors of a lineage. If warm runs republished their own
			// states, every replay would probe its own fresher entry,
			// shift the generation-stamped result key, and recompute —
			// answers would drift instead of replaying byte-identically.
			// When an edit chain wanders far enough from its anchor that
			// the similarity probe misses, the cold run that follows
			// re-anchors it.
			s.warm.put(gk, names, state)
		}
		if warm != nil {
			s.metrics.warmHits.Add(1)
			if saved := int64(warm.coldTours - toursRun); saved > 0 {
				s.metrics.warmToursSaved.Add(saved)
			}
		}
		s.cache.Put(key, body)
		// The miss is counted only now, when a body was computed and
		// stored: the hit rate then describes serviceable traffic,
		// undistorted by requests that failed or timed out before
		// producing anything.
		s.metrics.cacheMisses.Add(1)
		s.flights.finish(key, fl, body, nil)
		return body, "miss", "", nil
	}
}

// islandRunner resolves where an algo=island request burns its CPU: on
// the shard coordinator's worker fleet when the request asked to be
// distributed and workers are registered, in-process otherwise (nil).
// An empty fleet falls back to the local archipelago rather than failing
// the request — the bytes are identical either way, so availability wins
// — and the fallback is counted so operators notice a fleet that never
// fills. A full admission queue (shard.ErrRunQueueFull) does NOT fall
// back: the cluster is saturated, so shedding the request with 429 +
// Retry-After beats piling the work onto the coordinator's own CPU.
func (s *Server) islandRunner(req Request) IslandRunner {
	if !req.Distributed || s.cfg.Coordinator == nil {
		return nil
	}
	if s.cfg.Coordinator.Workers() == 0 {
		s.metrics.distFallbacks.Add(1)
		s.log().Warn("distributed request with no registered workers; running in-process")
		return nil
	}
	return func(ctx context.Context, g *antlayer.Graph, p antlayer.IslandParams) (*antlayer.IslandResult, error) {
		res, err := s.cfg.Coordinator.RunIsland(ctx, g, p)
		if errors.Is(err, shard.ErrNoWorkers) {
			// The fleet drained between the check and the run.
			s.metrics.distFallbacks.Add(1)
			s.log().Warn("worker fleet drained mid-request; running in-process",
				"trace", obs.FromContext(ctx).ID())
			return antlayer.IslandColonyRunContext(ctx, g, p)
		}
		if err == nil {
			s.metrics.distRuns.Add(1)
		}
		return res, err
	}
}

// sampleTrace decides whether a request mints a trace, per
// Config.TraceSample. The sampling RNG is deliberately outside the
// deterministic seed discipline: it selects which requests are observed,
// never what any of them compute.
func (s *Server) sampleTrace() bool {
	switch sample := s.cfg.TraceSample; {
	case sample >= 1:
		return true
	case sample <= 0:
		return false
	default:
		return rand.Float64() < sample
	}
}

// requestID resolves the X-Request-ID echo: the trace's ID when one was
// minted, otherwise the inbound header when well-formed, otherwise a
// fresh ID — so sampled-out requests still correlate in logs and
// upstream proxies.
func (s *Server) requestID(r *http.Request, tr *obs.Trace) string {
	if tr != nil {
		return tr.ID()
	}
	if id := r.Header.Get("X-Request-ID"); obs.ValidID(id) {
		return id
	}
	return obs.NewID()
}

// acquireSem is the /layer compute bound: the semaphore caps computation,
// not connections — a queued request costs one blocked goroutine and
// still honours its deadline.
func (s *Server) acquireSem(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleLayer is the daemon's synchronous endpoint: parse, then serve
// through the shared cache/single-flight/compute engine under the
// semaphore and the request deadline.
func (s *Server) handleLayer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.httpError(w, http.StatusMethodNotAllowed, "POST a DOT or edge-list graph to /layer")
		return
	}
	s.metrics.layerRequests.Add(1)
	start := time.Now()
	defer func() { s.metrics.observeLatency(time.Since(start)) }()

	// One trace per sampled request: the inbound X-Request-ID is honored
	// when well-formed (so callers and upstream proxies can correlate),
	// minted otherwise, and always echoed — even when head sampling
	// (Config.TraceSample) decides this request records no spans, so
	// correlation never depends on the sampling verdict. A nil trace is
	// inert everywhere downstream (obs.Trace is nil-safe).
	var tr *obs.Trace
	if s.sampleTrace() {
		tr = s.tracer.New(r.Header.Get("X-Request-ID"))
		defer s.tracer.Finish(tr)
	}
	w.Header().Set("X-Request-ID", s.requestID(r, tr))

	parse := tr.Begin("parse")
	req, g, names, ok := s.parseLayerHTTP(w, r)
	parse.End()
	if !ok {
		return
	}
	key := requestKey(req, g, names)
	gk := graphKey(g, names)
	w.Header().Set("X-Cache-Key", key)
	// The graph's canonical hash is the handle a client passes back as
	// base= to name this graph as the warm-start lineage of its next
	// edit.
	w.Header().Set("X-Graph-Key", gk)

	wspan := tr.Begin("warm")
	req, key, warm, probed := s.warmPlan(req, g, names, key, gk)
	wspan.End()
	switch {
	case warm != nil:
		w.Header().Set("X-Warm", "hit")
		w.Header().Set("X-Warm-Base", warm.baseKey)
	case probed:
		w.Header().Set("X-Warm", "miss")
	}

	ctx, cancel := context.WithTimeout(obs.NewContext(r.Context(), tr), s.timeout(req))
	defer cancel()

	body, source, stage, err := s.computeCached(ctx, key, req, g, names, gk, warm, s.acquireSem)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.deadlineError(w, r, err, stage)
			return
		}
		if errors.Is(err, shard.ErrRunQueueFull) {
			// The cluster scheduler's admission queue is at bound. The hint
			// is derived from the scheduler's stats — pending runs over
			// dispatch slots, scaled by observed run duration — so clients
			// back off proportionally to the actual congestion.
			retry := s.cfg.Coordinator.RetryAfterSeconds()
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			s.httpError(w, http.StatusTooManyRequests, "distributed run queue full; retry in %ds", retry)
			return
		}
		s.httpError(w, http.StatusBadRequest, "layering failed: %v", err)
		return
	}
	s.log().Info("layer served",
		"trace", tr.ID(), "source", source, "warm", warm != nil, "n", g.N(), "m", g.M(),
		"algo", string(req.Algo), "dur", time.Since(start).Round(time.Microsecond))
	s.writeBody(w, body, source)
}

// timeout resolves a request's computation deadline: the server default,
// overridden per-request, capped by MaxTimeout.
func (s *Server) timeout(req Request) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if req.Timeout > 0 {
		timeout = req.Timeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// deadlineError maps a context error: 504 when the request's deadline
// passed, 503 when a graceful shutdown aborted the work, and otherwise —
// the client itself vanished mid-request — 499 in the nginx convention.
func (s *Server) deadlineError(w http.ResponseWriter, r *http.Request, err error, stage string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.httpError(w, http.StatusGatewayTimeout, "deadline exceeded while %s", stage)
	case s.shuttingDown.Load():
		s.httpError(w, http.StatusServiceUnavailable, "server shutting down while %s", stage)
	default:
		s.httpError(w, 499, "client closed request while %s", stage)
	}
}

func (s *Server) writeBody(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus)
	_, _ = w.Write(body)
}
