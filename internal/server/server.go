// Package server exposes the layering algorithms as a long-running HTTP
// service: POST a DOT or edge-list graph to /layer and get the layering,
// the paper's quality metrics and optionally an SVG/ASCII drawing back as
// JSON.
//
// The daemon is built for repeated heavy traffic:
//
//   - Results are cached in an LRU keyed by the canonical (graph, params)
//     hash. Colony runs are bitwise-deterministic (PR 1), so a hit returns
//     exactly the bytes a recomputation would produce — repeated graphs
//     are free.
//   - A semaphore bounds the number of concurrently computing requests;
//     waiting requests hold no worker resources and honour their deadline
//     while queued.
//   - Every request runs under a deadline (server default, per-request
//     override, hard cap) threaded into the colony's tour loop via
//     context.Context; an expired deadline aborts the run within one ant
//     walk per worker and answers 504.
//   - /healthz for liveness, /metrics for counters (requests, cache hit
//     rate, tours run, p50/p99 latency), graceful shutdown via Serve's
//     context.
//
// Start it with `daglayer serve`.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"antlayer"
)

// Config tunes the daemon. The zero value is usable: every field falls
// back to the documented default.
type Config struct {
	// Addr is the listen address for ListenAndServe. Default ":8645".
	Addr string
	// CacheSize is the LRU capacity in responses. 0 means the default
	// (256); negative disables caching.
	CacheSize int
	// MaxConcurrent bounds the /layer requests computing at once; further
	// requests queue (holding no CPU) until a slot or their deadline.
	// 0 means GOMAXPROCS.
	MaxConcurrent int
	// DefaultTimeout bounds a /layer request that sends no timeout-ms.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout-ms override. Default 2m.
	MaxTimeout time.Duration
	// MaxBodyBytes caps the request body. Default 8 MiB.
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve waits for in-flight requests
	// after its context is cancelled. Default 10s.
	ShutdownGrace time.Duration
	// Log receives one line per /layer request. Nil discards.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8645"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}

// Server is the layering daemon. Create with New, mount via Handler, or
// run with Serve/ListenAndServe.
type Server struct {
	cfg     Config
	cache   *resultCache
	flights *flightGroup
	metrics *serverMetrics
	sem     chan struct{}
	mux     *http.ServeMux
	// shuttingDown flips when Serve begins graceful shutdown, so aborted
	// in-flight requests are answered 503 rather than blamed on the client.
	shuttingDown atomic.Bool
}

// New builds a Server from cfg (zero value fine; see Config).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		flights: newFlightGroup(),
		metrics: newServerMetrics(),
		sem:     make(chan struct{}, cfg.MaxConcurrent),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/layer", s.handleLayer)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
}

// Serve accepts connections on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// ShutdownGrace to finish, and any request still computing after the grace
// period has its context cancelled so the colony aborts instead of running
// to its own deadline. It returns nil after a clean shutdown.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Request contexts descend from base, so cancelling it aborts every
	// in-flight colony (the tour loop observes the context; see
	// core.Colony.RunContext).
	base, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	hs := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return base },
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.shuttingDown.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	err := hs.Shutdown(sctx)
	cancelBase() // abort whatever outlived the grace period
	if err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	<-errc // always http.ErrServerClosed after Shutdown
	return nil
}

// ListenAndServe listens on Config.Addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.logf("listening on %s", ln.Addr())
	return s.Serve(ctx, ln)
}

// Metrics returns a point-in-time snapshot of the daemon's counters.
func (s *Server) Metrics() MetricsSnapshot {
	return s.metrics.snapshot(s.cache.Len())
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Metrics())
}

// httpError answers status with a plain-text message and counts it.
func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.errors.Add(1)
	if status == http.StatusGatewayTimeout {
		s.metrics.timeouts.Add(1)
	}
	http.Error(w, fmt.Sprintf(format, args...), status)
}

// handleLayer is the daemon's main endpoint: parse, consult the cache,
// otherwise compute under the semaphore and the request deadline.
func (s *Server) handleLayer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.httpError(w, http.StatusMethodNotAllowed, "POST a DOT or edge-list graph to /layer")
		return
	}
	s.metrics.layerRequests.Add(1)
	start := time.Now()
	defer func() { s.metrics.observeLatency(time.Since(start)) }()

	req, err := parseLayerQuery(r.URL.Query())
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	g, names, err := parseGraph(req, http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.httpError(w, http.StatusRequestEntityTooLarge, "graph larger than %d bytes", tooLarge.Limit)
			return
		}
		s.httpError(w, http.StatusBadRequest, "bad %s input: %v", req.format, err)
		return
	}

	key := requestKey(req, g, names)
	w.Header().Set("X-Cache-Key", key)

	timeout := s.cfg.DefaultTimeout
	if req.timeout > 0 {
		timeout = req.timeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Cache, then single-flight: if an identical request is already
	// computing, wait for its result instead of running a duplicate
	// colony. A successful leader stores to the cache before releasing
	// its flight, so a new leader's re-check through this loop cannot
	// miss a completed result.
	var fl *flight
	for {
		if body, ok := s.cache.Get(key); ok {
			s.metrics.cacheHits.Add(1)
			s.logf("layer hit  n=%d m=%d algo=%s %s", g.N(), g.M(), req.algo, time.Since(start).Round(time.Microsecond))
			s.writeBody(w, body, "hit")
			return
		}
		var leader bool
		leader, fl = s.flights.join(key)
		if leader {
			break
		}
		select {
		case <-fl.done:
			if fl.err == nil {
				s.metrics.coalesced.Add(1)
				s.logf("layer coalesced n=%d m=%d algo=%s %s", g.N(), g.M(), req.algo, time.Since(start).Round(time.Microsecond))
				s.writeBody(w, fl.body, "coalesced")
				return
			}
			// The leader failed — possibly on a deadline shorter than
			// ours. Loop: re-check the cache, then try leading.
		case <-ctx.Done():
			s.deadlineError(w, r, ctx.Err(), "waiting on an identical in-flight request")
			return
		}
	}

	// The semaphore bounds computation, not connections: a queued request
	// costs one blocked goroutine and still honours its deadline.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.flights.finish(key, fl, nil, ctx.Err())
		s.deadlineError(w, r, ctx.Err(), "queued for a compute slot")
		return
	}

	s.metrics.inFlight.Add(1)
	body, err := s.compute(ctx, req, g, names)
	s.metrics.inFlight.Add(-1)
	if err != nil {
		s.flights.finish(key, fl, nil, err)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.deadlineError(w, r, err, "computing")
			return
		}
		s.httpError(w, http.StatusBadRequest, "layering failed: %v", err)
		return
	}
	s.cache.Put(key, body)
	// The miss is counted only now, when a body was computed and stored:
	// the hit rate then describes serviceable traffic, undistorted by
	// requests that failed or timed out before producing anything.
	s.metrics.cacheMisses.Add(1)
	s.flights.finish(key, fl, body, nil)
	s.logf("layer miss n=%d m=%d algo=%s %s", g.N(), g.M(), req.algo, time.Since(start).Round(time.Microsecond))
	s.writeBody(w, body, "miss")
}

// deadlineError maps a context error: 504 when the request's deadline
// passed, 503 when a graceful shutdown aborted the work, and otherwise —
// the client itself vanished mid-request — 499 in the nginx convention.
func (s *Server) deadlineError(w http.ResponseWriter, r *http.Request, err error, stage string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.httpError(w, http.StatusGatewayTimeout, "deadline exceeded while %s", stage)
	case s.shuttingDown.Load():
		s.httpError(w, http.StatusServiceUnavailable, "server shutting down while %s", stage)
	default:
		s.httpError(w, 499, "client closed request while %s", stage)
	}
}

func (s *Server) writeBody(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus)
	_, _ = w.Write(body)
}

// compute runs the requested algorithm under ctx and marshals the
// response. Only the ACO path is long enough to be cancellable; the
// polynomial algorithms run to completion well inside any sane deadline.
func (s *Server) compute(ctx context.Context, req layerRequest, g *antlayer.Graph, names []string) ([]byte, error) {
	resp := layerResponse{
		Algo:    req.algo,
		Promote: req.promote,
		Graph:   graphInfo{Vertices: g.N(), Edges: g.M()},
	}
	var l *antlayer.Layering
	if req.algo == "aco" {
		res, err := antlayer.AntColonyRunContext(ctx, g, req.aco)
		if err != nil {
			return nil, err
		}
		s.metrics.toursRun.Add(int64(len(res.History)))
		l = res.Layering
		if req.promote {
			l = antlayer.Promote(l)
		}
		resp.Objective = res.Objective
		bestTour := res.BestTour
		resp.BestTour = &bestTour
		resp.ToursRun = len(res.History)
	} else {
		layerer, err := antlayer.LayererByName(ctx, req.algo, req.dummyWidth, req.cgWidth, req.aco)
		if err != nil {
			return nil, err
		}
		if req.promote {
			layerer = antlayer.WithPromotion(layerer)
		}
		l, err = layerer.Layer(g)
		if err != nil {
			return nil, err
		}
	}

	m := l.ComputeMetrics(req.dummyWidth)
	resp.Metrics = layerInfo{
		Height:      m.Height,
		WidthIncl:   m.WidthIncl,
		WidthExcl:   m.WidthExcl,
		DummyCount:  m.DummyCount,
		EdgeDensity: m.EdgeDensity,
	}
	resp.Layers = make([][]string, 0, len(l.Layers()))
	for _, layer := range l.Layers() {
		row := make([]string, len(layer))
		for i, v := range layer {
			row[i] = names[v]
		}
		resp.Layers = append(resp.Layers, row)
	}

	if req.render != renderNone {
		d, err := antlayer.Draw(g, fixedLayering{l}, nil)
		if err != nil {
			return nil, fmt.Errorf("render: %w", err)
		}
		var buf bytes.Buffer
		switch req.render {
		case renderSVG:
			err = d.WriteSVG(&buf)
			resp.SVG = buf.String()
		case renderASCII:
			err = d.WriteASCII(&buf)
			resp.ASCII = buf.String()
		}
		if err != nil {
			return nil, fmt.Errorf("render: %w", err)
		}
	}

	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}
