package server

import (
	"io"

	"antlayer/internal/obs"
)

// writeProm renders a MetricsSnapshot in the Prometheus text exposition
// format (0.0.4). It is a pure function of the snapshot — the same
// counters /metrics serves as JSON, one series per scalar field, with the
// coordinator's per-worker rows becoming worker-labeled series — so the
// two formats can never drift (DESIGN.md §14 has the full mapping).
//
// Naming follows the Prometheus conventions: a `daglayer_` namespace,
// `_total` on monotonic counters, base units in the name (`_seconds`,
// `_bytes`); the JSON snapshot's millisecond quantiles stay milliseconds
// with an explicit `_ms` suffix rather than being rescaled, so a value
// seen in one format can be grepped in the other.
func writeProm(w io.Writer, m MetricsSnapshot) error {
	p := obs.NewProm(w)

	p.Family("daglayer_uptime_seconds", "gauge", "Seconds since the daemon started.")
	p.Value("daglayer_uptime_seconds", m.UptimeSeconds)
	p.Family("daglayer_requests_total", "counter", "HTTP requests served, all endpoints.")
	p.Value("daglayer_requests_total", float64(m.RequestsTotal))
	p.Family("daglayer_layer_requests_total", "counter", "POST /layer requests.")
	p.Value("daglayer_layer_requests_total", float64(m.LayerRequests))

	p.Family("daglayer_cache_hits_total", "counter", "Layer responses served from the result cache.")
	p.Value("daglayer_cache_hits_total", float64(m.CacheHits))
	p.Family("daglayer_cache_misses_total", "counter", "Layer responses computed and stored.")
	p.Value("daglayer_cache_misses_total", float64(m.CacheMisses))
	p.Family("daglayer_cache_hit_ratio", "gauge", "Hits over hits plus misses.")
	p.Value("daglayer_cache_hit_ratio", m.CacheHitRate)
	p.Family("daglayer_cache_entries", "gauge", "Bodies the result cache currently holds.")
	p.Value("daglayer_cache_entries", float64(m.CacheEntries))
	p.Family("daglayer_cache_bytes", "gauge", "Body bytes the result cache currently holds.")
	p.Value("daglayer_cache_bytes", float64(m.CacheBytes))
	p.Family("daglayer_cache_oversize_rejects_total", "counter", "Bodies refused cache admission for size.")
	p.Value("daglayer_cache_oversize_rejects_total", float64(m.CacheOversizeRejects))
	p.Family("daglayer_coalesced_total", "counter", "Requests served by an identical in-flight computation.")
	p.Value("daglayer_coalesced_total", float64(m.Coalesced))

	p.Family("daglayer_warm_hits_total", "counter", "Requests served through a warm-start lineage.")
	p.Value("daglayer_warm_hits_total", float64(m.WarmHits))
	p.Family("daglayer_warm_misses_total", "counter", "Warm-eligible requests that found no usable state.")
	p.Value("daglayer_warm_misses_total", float64(m.WarmMisses))
	p.Family("daglayer_warm_tours_saved_total", "counter", "Colony tours avoided by warm starts.")
	p.Value("daglayer_warm_tours_saved_total", float64(m.WarmToursSaved))
	p.Family("daglayer_warm_entries", "gauge", "States the warm cache currently holds.")
	p.Value("daglayer_warm_entries", float64(m.WarmEntries))
	p.Family("daglayer_warm_bytes", "gauge", "Resident bytes of the warm cache.")
	p.Value("daglayer_warm_bytes", float64(m.WarmBytes))

	p.Family("daglayer_errors_total", "counter", "Requests answered with a 4xx or 5xx status.")
	p.Value("daglayer_errors_total", float64(m.Errors))
	p.Family("daglayer_timeouts_total", "counter", "Layer requests answered 504.")
	p.Value("daglayer_timeouts_total", float64(m.Timeouts))
	p.Family("daglayer_tours_run_total", "counter", "Ant colony tours executed.")
	p.Value("daglayer_tours_run_total", float64(m.ToursRun))
	p.Family("daglayer_in_flight", "gauge", "Layer requests currently computing.")
	p.Value("daglayer_in_flight", float64(m.InFlight))

	p.Family("daglayer_latency_observations_total", "counter", "Layer latencies observed.")
	p.Value("daglayer_latency_observations_total", float64(m.Latency.Count))
	p.Family("daglayer_latency_ms", "gauge", "Recent /layer latency quantiles in milliseconds.")
	p.ValueL("daglayer_latency_ms", m.Latency.P50, "quantile", "0.5")
	p.ValueL("daglayer_latency_ms", m.Latency.P99, "quantile", "0.99")

	p.Family("daglayer_distributed_runs_total", "counter", "Island runs served by the worker fleet.")
	p.Value("daglayer_distributed_runs_total", float64(m.DistributedRuns))
	p.Family("daglayer_distributed_fallbacks_total", "counter", "Distributed requests computed in-process.")
	p.Value("daglayer_distributed_fallbacks_total", float64(m.DistributedFallbacks))

	p.Family("daglayer_sse_streams_total", "counter", "Event streams opened.")
	p.Value("daglayer_sse_streams_total", float64(m.SSEStreams))
	p.Family("daglayer_sse_active", "gauge", "Event streams currently connected.")
	p.Value("daglayer_sse_active", float64(m.SSEActive))
	p.Family("daglayer_bulk_requests_total", "counter", "POST /jobs/bulk requests.")
	p.Value("daglayer_bulk_requests_total", float64(m.BulkRequests))
	p.Family("daglayer_bulk_jobs_total", "counter", "Jobs admitted through bulk intake lines.")
	p.Value("daglayer_bulk_jobs_total", float64(m.BulkJobs))

	p.Family("daglayer_jobs_submitted_total", "counter", "Jobs admitted to the async queue.")
	p.Value("daglayer_jobs_submitted_total", float64(m.Jobs.Submitted))
	p.Family("daglayer_jobs_rejected_total", "counter", "Job submissions refused with queue-full.")
	p.Value("daglayer_jobs_rejected_total", float64(m.Jobs.Rejected))
	p.Family("daglayer_jobs_queued", "gauge", "Jobs waiting for a worker.")
	p.Value("daglayer_jobs_queued", float64(m.Jobs.Queued))
	p.Family("daglayer_jobs_running", "gauge", "Jobs currently executing.")
	p.Value("daglayer_jobs_running", float64(m.Jobs.Running))
	p.Family("daglayer_jobs_done_total", "counter", "Jobs finished successfully.")
	p.Value("daglayer_jobs_done_total", float64(m.Jobs.Done))
	p.Family("daglayer_jobs_failed_total", "counter", "Jobs finished in failure (cancellations included).")
	p.Value("daglayer_jobs_failed_total", float64(m.Jobs.Failed))
	p.Family("daglayer_jobs_canceled_total", "counter", "Jobs canceled by clients.")
	p.Value("daglayer_jobs_canceled_total", float64(m.Jobs.Canceled))
	p.Family("daglayer_jobs_expired_total", "counter", "Terminal jobs evicted by the age sweep.")
	p.Value("daglayer_jobs_expired_total", float64(m.Jobs.Expired))
	p.Family("daglayer_job_queue_depth", "gauge", "Backlog bound the job queue enforces.")
	p.Value("daglayer_job_queue_depth", float64(m.Jobs.Depth))
	p.Family("daglayer_job_workers", "gauge", "Workers draining the job queue.")
	p.Value("daglayer_job_workers", float64(m.Jobs.Workers))

	p.Family("daglayer_events_published_total", "counter", "Job lifecycle events published.")
	p.Value("daglayer_events_published_total", float64(m.Events.Published))
	p.Family("daglayer_events_last_seq", "gauge", "Sequence number of the newest event.")
	p.Value("daglayer_events_last_seq", float64(m.Events.LastSeq))
	p.Family("daglayer_events_dropped_total", "counter", "Events dropped by full subscriber buffers.")
	p.Value("daglayer_events_dropped_total", float64(m.Events.Dropped))
	p.Family("daglayer_event_subscribers", "gauge", "Current event subscriptions.")
	p.Value("daglayer_event_subscribers", float64(m.Events.Subscribers))
	p.Family("daglayer_event_ring_len", "gauge", "Events the replay ring retains.")
	p.Value("daglayer_event_ring_len", float64(m.Events.RingLen))

	p.Family("daglayer_webhook_subscriptions", "gauge", "Registered webhook subscriptions.")
	p.Value("daglayer_webhook_subscriptions", float64(m.Webhooks.Subscriptions))
	p.Family("daglayer_webhook_delivered_total", "counter", "Webhook deliveries that got a 2xx.")
	p.Value("daglayer_webhook_delivered_total", float64(m.Webhooks.Delivered))
	p.Family("daglayer_webhook_retries_total", "counter", "Webhook delivery retries.")
	p.Value("daglayer_webhook_retries_total", float64(m.Webhooks.Retries))
	p.Family("daglayer_webhook_failed_total", "counter", "Webhook deliveries abandoned after retries.")
	p.Value("daglayer_webhook_failed_total", float64(m.Webhooks.Failed))
	p.Family("daglayer_webhook_dropped_total", "counter", "Webhook events dropped by full delivery buffers.")
	p.Value("daglayer_webhook_dropped_total", float64(m.Webhooks.Dropped))

	p.Family("daglayer_goroutines", "gauge", "Goroutines currently live.")
	p.Value("daglayer_goroutines", float64(m.Runtime.Goroutines))
	p.Family("daglayer_heap_alloc_bytes", "gauge", "Bytes of live heap objects.")
	p.Value("daglayer_heap_alloc_bytes", float64(m.Runtime.HeapAllocBytes))
	p.Family("daglayer_heap_sys_bytes", "gauge", "Heap bytes obtained from the OS.")
	p.Value("daglayer_heap_sys_bytes", float64(m.Runtime.HeapSysBytes))
	p.Family("daglayer_heap_objects", "gauge", "Live heap objects.")
	p.Value("daglayer_heap_objects", float64(m.Runtime.HeapObjects))
	p.Family("daglayer_next_gc_bytes", "gauge", "Heap size that triggers the next GC cycle.")
	p.Value("daglayer_next_gc_bytes", float64(m.Runtime.NextGCBytes))
	p.Family("daglayer_gc_cycles_total", "counter", "Completed GC cycles.")
	p.Value("daglayer_gc_cycles_total", float64(m.Runtime.GCCycles))
	p.Family("daglayer_gc_pause_ms_total", "counter", "Cumulative GC stop-the-world pause, milliseconds.")
	p.Value("daglayer_gc_pause_ms_total", m.Runtime.GCPauseTotalMS)

	if c := m.Cluster; c != nil {
		p.Family("daglayer_cluster_workers", "gauge", "Workers registered with the coordinator.")
		p.Value("daglayer_cluster_workers", float64(c.Workers))
		p.Family("daglayer_cluster_idle_workers", "gauge", "Registered workers not leased to a run.")
		p.Value("daglayer_cluster_idle_workers", float64(c.IdleWorkers))
		p.Family("daglayer_cluster_runs_total", "counter", "Distributed runs completed.")
		p.Value("daglayer_cluster_runs_total", float64(c.Runs))
		p.Family("daglayer_cluster_run_errors_total", "counter", "Distributed runs that failed.")
		p.Value("daglayer_cluster_run_errors_total", float64(c.RunErrors))
		p.Family("daglayer_cluster_runs_in_flight", "gauge", "Runs holding worker leases right now.")
		p.Value("daglayer_cluster_runs_in_flight", float64(c.RunsInFlight))
		p.Family("daglayer_cluster_peak_concurrent_runs", "gauge", "Concurrency high-water mark.")
		p.Value("daglayer_cluster_peak_concurrent_runs", float64(c.PeakConcurrentRuns))
		p.Family("daglayer_cluster_runs_queued", "gauge", "Admitted runs awaiting dispatch.")
		p.Value("daglayer_cluster_runs_queued", float64(c.RunsQueued))
		p.Family("daglayer_cluster_run_queue_bound", "gauge", "Admission queue bound.")
		p.Value("daglayer_cluster_run_queue_bound", float64(c.RunQueueBound))
		p.Family("daglayer_cluster_runs_rejected_total", "counter", "Admissions refused with queue-full.")
		p.Value("daglayer_cluster_runs_rejected_total", float64(c.RunsRejected))
		p.Family("daglayer_cluster_dispatch_observations_total", "counter", "Dispatch waits observed.")
		p.Value("daglayer_cluster_dispatch_observations_total", float64(c.DispatchMs.Count))
		p.Family("daglayer_cluster_dispatch_ms", "gauge", "Recent queue-to-lease wait quantiles, milliseconds.")
		p.ValueL("daglayer_cluster_dispatch_ms", c.DispatchMs.P50Ms, "quantile", "0.5")
		p.ValueL("daglayer_cluster_dispatch_ms", c.DispatchMs.P99Ms, "quantile", "0.99")
		p.Family("daglayer_cluster_epochs_total", "counter", "Epoch barriers completed across all runs.")
		p.Value("daglayer_cluster_epochs_total", float64(c.Epochs))
		p.Family("daglayer_cluster_migrations_total", "counter", "Elite migrations routed around the ring.")
		p.Value("daglayer_cluster_migrations_total", float64(c.Migrations))
		p.Family("daglayer_cluster_heartbeat_expels_total", "counter", "Workers expelled by the liveness reaper.")
		p.Value("daglayer_cluster_heartbeat_expels_total", float64(c.HeartbeatExpels))
		p.Family("daglayer_cluster_heartbeat_timeout_ms", "gauge", "Silence budget before a worker is expelled.")
		p.Value("daglayer_cluster_heartbeat_timeout_ms", c.HeartbeatTimeoutMs)

		if len(c.PerWorker) > 0 {
			p.Family("daglayer_cluster_worker_leased", "gauge", "1 when the worker is leased to a run, 0 when idle.")
			for _, wm := range c.PerWorker {
				leased := 0.0
				if wm.State != "idle" {
					leased = 1
				}
				p.ValueL("daglayer_cluster_worker_leased", leased, "worker", wm.Name)
			}
			p.Family("daglayer_cluster_worker_epochs_total", "counter", "Epoch barriers answered, per worker.")
			for _, wm := range c.PerWorker {
				p.ValueL("daglayer_cluster_worker_epochs_total", float64(wm.Epochs), "worker", wm.Name)
			}
			p.Family("daglayer_cluster_worker_mean_epoch_ms", "gauge", "Mean barrier wait, per worker, milliseconds.")
			for _, wm := range c.PerWorker {
				p.ValueL("daglayer_cluster_worker_mean_epoch_ms", wm.MeanEpochMs, "worker", wm.Name)
			}
			p.Family("daglayer_cluster_worker_max_epoch_ms", "gauge", "Worst barrier wait, per worker, milliseconds.")
			for _, wm := range c.PerWorker {
				p.ValueL("daglayer_cluster_worker_max_epoch_ms", wm.MaxEpochMs, "worker", wm.Name)
			}
			p.Family("daglayer_cluster_worker_heartbeats_total", "counter", "Liveness frames received, per worker.")
			for _, wm := range c.PerWorker {
				p.ValueL("daglayer_cluster_worker_heartbeats_total", float64(wm.Heartbeats), "worker", wm.Name)
			}
			p.Family("daglayer_cluster_worker_last_seen_age_ms", "gauge", "Silence since the worker's last frame, milliseconds.")
			for _, wm := range c.PerWorker {
				p.ValueL("daglayer_cluster_worker_last_seen_age_ms", wm.LastSeenAgeMs, "worker", wm.Name)
			}
		}
	}

	return p.Err()
}
