package exact

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/longestpath"
)

func TestMinimizeDiamond(t *testing.T) {
	g := dag.New(4)
	g.MustAddEdge(3, 2)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	res, err := Minimize(g, Options{DummyWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatal("search not exhausted")
	}
	// Optimum: the LPL layering itself (H=3, W=2).
	if res.Objective != 5 {
		t.Fatalf("objective = %g, want 5", res.Objective)
	}
	if err := res.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeEdgeless(t *testing.T) {
	// 6 isolated vertices: optimum spreads them into a 2x3 or 3x2 block
	// (H+W = 5).
	g := dag.New(6)
	res, err := Minimize(g, Options{DummyWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 5 {
		t.Fatalf("objective = %g, want 5", res.Objective)
	}
}

func TestMinimizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(5)
		g := dag.New(n)
		for tries := 0; tries < n*2; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u < v {
				u, v = v, u
			}
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		res, err := Minimize(g, Options{DummyWidth: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Proven {
			t.Fatal("not proven on tiny instance")
		}
		want := bruteMinObjective(g, 1)
		if res.Objective != want {
			t.Fatalf("n=%d m=%d: exact %g, brute force %g", n, g.M(), res.Objective, want)
		}
	}
}

// bruteMinObjective enumerates every assignment into layers 1..n.
func bruteMinObjective(g *dag.Graph, wd float64) float64 {
	n := g.N()
	assign := make([]int, n)
	best := 1e18
	var rec func(v int)
	rec = func(v int) {
		if v == n {
			for _, e := range g.Edges() {
				if assign[e.U] <= assign[e.V] {
					return
				}
			}
			if obj := objective(g, assign, wd); obj < best {
				best = obj
			}
			return
		}
		for l := 1; l <= n; l++ {
			assign[v] = l
			rec(v + 1)
		}
	}
	rec(0)
	return best
}

func TestMinimizeLowerBoundsHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 8; trial++ {
		g, err := graphgen.Generate(graphgen.Config{N: 9, EdgeFactor: 1.3, Connected: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Minimize(g, Options{DummyWidth: 1})
		if err != nil {
			t.Fatal(err)
		}
		lpl, _ := longestpath.Layer(g)
		lplObj := float64(lpl.Height()) + lpl.WidthIncludingDummies(1)
		if res.Objective > lplObj+1e-9 {
			t.Fatalf("exact %g worse than LPL %g", res.Objective, lplObj)
		}
		aco, err := core.Layer(context.Background(), g, core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if g := Gap(res, aco, 1); g < -1e-9 {
			t.Fatalf("negative gap %g: heuristic beat the proven optimum", g)
		}
	}
}

func TestMinimizeTooLarge(t *testing.T) {
	if _, err := Minimize(dag.New(MaxVertices+1), Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestMinimizeCyclic(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 0)
	if _, err := Minimize(g, Options{}); err == nil {
		t.Fatal("cyclic input accepted")
	}
}

func TestMinimizeNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	g, err := graphgen.Generate(graphgen.Config{N: 12, EdgeFactor: 1.2, Connected: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimize(g, Options{DummyWidth: 1, NodeLimit: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatal("claimed proven despite node limit")
	}
	// The incumbent (LPL) is still a valid answer.
	if err := res.Layering.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeEmptyAndSingle(t *testing.T) {
	res, err := Minimize(dag.New(0), Options{})
	if err != nil || !res.Proven {
		t.Fatalf("empty: %v proven=%v", err, res.Proven)
	}
	res, err = Minimize(dag.New(1), Options{DummyWidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 2 { // H=1, W=1
		t.Fatalf("single vertex objective = %g", res.Objective)
	}
}
