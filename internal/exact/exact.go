// Package exact solves the compact-layering objective H + W (height plus
// width including dummy vertices) to optimality by branch and bound, for
// small instances.
//
// The paper's reference [11] (Nikolov's PhD thesis) treats DAG layering
// with width and height constraints as an integer program; minimum-width
// layering subject to minimum height is NP-complete, so no polynomial
// algorithm is expected. This solver exists to measure the heuristics'
// optimality gap on small graphs (experiment E11 in DESIGN.md): it
// enumerates layer assignments in topological order with feasibility
// propagation and prunes on a lower bound of the objective.
package exact

import (
	"errors"
	"fmt"

	"antlayer/internal/dag"
	"antlayer/internal/layering"
	"antlayer/internal/longestpath"
)

// ErrTooLarge reports an instance beyond the solver's size limit.
var ErrTooLarge = errors.New("exact: instance too large for exact solving")

// MaxVertices bounds the instance size the solver accepts; beyond this the
// search space is hopeless and callers should use the heuristics.
const MaxVertices = 16

// Options configures the solver.
type Options struct {
	// DummyWidth is the width of a dummy vertex.
	DummyWidth float64
	// MaxLayers bounds the layer count explored; 0 means n layers (the
	// same search space the ant colony uses).
	MaxLayers int
	// NodeLimit aborts the search after this many search nodes (0 = no
	// limit). When hit, the best solution found so far is returned with
	// Result.Proven == false.
	NodeLimit int64
}

// Result carries the optimum (or incumbent) layering and solver stats.
type Result struct {
	Layering  *layering.Layering
	Objective float64 // H + W including dummies
	Nodes     int64   // search nodes expanded
	Proven    bool    // true when the search space was exhausted
}

// Minimize finds a layering of g minimising H + W·(incl. dummies).
func Minimize(g *dag.Graph, opts Options) (*Result, error) {
	n := g.N()
	if n > MaxVertices {
		return nil, fmt.Errorf("%w: %d vertices (limit %d)", ErrTooLarge, n, MaxVertices)
	}
	if opts.DummyWidth <= 0 {
		opts.DummyWidth = 1
	}
	if n == 0 {
		return &Result{Layering: layering.FromAssignment(g, nil), Proven: true}, nil
	}
	maxH := opts.MaxLayers
	if maxH <= 0 || maxH > n {
		maxH = n
	}

	// Topological order: assigning vertices sources-first means every
	// vertex's predecessors are placed when it is reached, bounding its
	// layer from above.
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}

	// Incumbent: the LPL layering (already feasible), which also provides
	// the initial upper bound.
	lpl, err := longestpath.Layer(g)
	if err != nil {
		return nil, err
	}
	s := &solver{
		g:      g,
		opts:   opts,
		maxH:   maxH,
		order:  order,
		assign: make([]int, n),
		widths: make([]float64, maxH+1),
		best:   lpl.Assignment(),
	}
	s.bestObj = objective(g, s.best, opts.DummyWidth)
	// minBelow[v] = longest path to a sink: v cannot go below that + 1.
	toSink, err := g.LongestPathToSink()
	if err != nil {
		return nil, err
	}
	s.minLayer = make([]int, n)
	for v, d := range toSink {
		s.minLayer[v] = d + 1
	}

	proven := s.search(0)

	l := layering.FromAssignment(g, s.best)
	l.Normalize()
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("exact: internal error, invalid incumbent: %w", err)
	}
	return &Result{
		Layering:  l,
		Objective: objective(g, s.best, opts.DummyWidth),
		Nodes:     s.nodes,
		Proven:    proven,
	}, nil
}

// objective computes H + W(incl. dummies) of a full assignment.
func objective(g *dag.Graph, assign []int, wd float64) float64 {
	l := layering.FromAssignment(g, append([]int(nil), assign...))
	l.Normalize()
	return float64(l.Height()) + l.WidthIncludingDummies(wd)
}

type solver struct {
	g        *dag.Graph
	opts     Options
	maxH     int
	order    []int
	minLayer []int     // lowest feasible layer per vertex (longest path)
	assign   []int     // partial assignment, 0 = unassigned
	widths   []float64 // real-vertex width per layer so far (1-based)
	best     []int
	bestObj  float64
	nodes    int64
}

// search assigns order[idx..]; returns false when the node limit aborted
// the search (so optimality is unproven).
func (s *solver) search(idx int) bool {
	s.nodes++
	if s.opts.NodeLimit > 0 && s.nodes > s.opts.NodeLimit {
		return false
	}
	if idx == len(s.order) {
		if obj := objective(s.g, s.assign, s.opts.DummyWidth); obj < s.bestObj {
			s.bestObj = obj
			copy(s.best, s.assign)
		}
		return true
	}
	v := s.order[idx]
	// Predecessors are all assigned (topological order): v must sit at
	// least one below the lowest predecessor.
	hi := s.maxH
	for _, u := range s.g.Pred(v) {
		if s.assign[u]-1 < hi {
			hi = s.assign[u] - 1
		}
	}
	lo := s.minLayer[v]
	proven := true
	for l := lo; l <= hi; l++ {
		s.assign[v] = l
		s.widths[l] += s.g.Width(v)
		if s.bound(idx) < s.bestObj {
			if !s.search(idx + 1) {
				proven = false
			}
		}
		s.widths[l] -= s.g.Width(v)
		s.assign[v] = 0
		if !proven {
			break
		}
	}
	return proven
}

// bound returns a lower bound on the objective of any completion: the
// current maximum real-vertex layer width (dummies and unassigned vertices
// only add width) plus the minimum achievable height (the graph's longest
// path + 1, since normalization removes empty layers the bound on H is the
// LPL height of the whole graph... we use the number of distinct occupied
// layers so far, which any completion can only keep or grow).
func (s *solver) bound(idx int) float64 {
	maxW := 0.0
	occupied := 0
	for l := 1; l <= s.maxH; l++ {
		if s.widths[l] > 0 {
			occupied++
		}
		if s.widths[l] > maxW {
			maxW = s.widths[l]
		}
	}
	h := occupied
	if min := s.minHeightAll(); min > h {
		h = min
	}
	return float64(h) + maxW
}

// minHeightAll is the minimum possible final height: longest path + 1.
func (s *solver) minHeightAll() int {
	min := 0
	for _, m := range s.minLayer {
		if m > min {
			min = m
		}
	}
	return min
}

// Gap measures a heuristic layering against the proven optimum: it returns
// (heuristic - optimal) / optimal for the H+W objective. Both layerings
// must belong to the same graph.
func Gap(optimal *Result, heuristic *layering.Layering, dummyWidth float64) float64 {
	h := float64(heuristic.Height()) + heuristic.WidthIncludingDummies(dummyWidth)
	if optimal.Objective == 0 {
		return 0
	}
	return (h - optimal.Objective) / optimal.Objective
}
