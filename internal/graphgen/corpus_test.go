package graphgen

import "testing"

func TestGroupSizes(t *testing.T) {
	sizes := GroupSizes()
	if len(sizes) != GroupCount {
		t.Fatalf("groups = %d, want %d", len(sizes), GroupCount)
	}
	total := 0
	for i, s := range sizes {
		total += s
		if s != 67 && s != 68 {
			t.Fatalf("group %d size %d", i, s)
		}
	}
	if total != TotalGraphs {
		t.Fatalf("total = %d, want %d", total, TotalGraphs)
	}
}

func TestGroupVertices(t *testing.T) {
	if GroupVertices(0) != 10 || GroupVertices(18) != 100 {
		t.Fatalf("group vertices: %d, %d", GroupVertices(0), GroupVertices(18))
	}
}

func TestCorpusSample(t *testing.T) {
	groups, err := CorpusSample(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != GroupCount {
		t.Fatalf("groups = %d", len(groups))
	}
	for i, gr := range groups {
		if gr.Vertices != GroupVertices(i) {
			t.Fatalf("group %d vertices = %d", i, gr.Vertices)
		}
		if len(gr.Graphs) != 3 {
			t.Fatalf("group %d sample = %d, want 3", i, len(gr.Graphs))
		}
		for _, g := range gr.Graphs {
			if g.N() != gr.Vertices {
				t.Fatalf("graph n=%d in group %d", g.N(), gr.Vertices)
			}
			if !g.IsAcyclic() || !g.IsWeaklyConnected() {
				t.Fatal("corpus graph invalid")
			}
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a, err := CorpusSample(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorpusSample(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i].Graphs {
			if !a[i].Graphs[j].Equal(b[i].Graphs[j]) {
				t.Fatal("corpus not deterministic")
			}
		}
	}
}

func TestCorpusFullSizeHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus generation in -short mode")
	}
	groups, err := Corpus(7)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(groups)
	if st.Graphs != TotalGraphs {
		t.Fatalf("full corpus = %d graphs, want %d", st.Graphs, TotalGraphs)
	}
	if st.MinVertices != 10 || st.MaxVertices != 100 {
		t.Fatalf("vertex range [%d,%d], want [10,100]", st.MinVertices, st.MaxVertices)
	}
	// The corpus substitutes the AT&T set's sparse profile (m/n ~ 1.4).
	if st.MeanEdgeFactor < 1.2 || st.MeanEdgeFactor > 1.6 {
		t.Fatalf("mean edge factor = %.2f, want ~1.4", st.MeanEdgeFactor)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if st.Graphs != 0 || st.MeanEdgeFactor != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}
