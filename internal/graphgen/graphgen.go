// Package graphgen generates the synthetic benchmark corpus.
//
// The paper evaluated on 1277 directed graphs from the AT&T collection at
// graphdrawing.org, divided into 19 groups by vertex count (10 to 100 in
// steps of 5). That collection cannot be redistributed here, so this
// package substitutes a deterministic, seeded corpus with the same group
// structure and a matching structural profile: sparse weakly-connected DAGs
// with an edge/vertex ratio around 1.4 and small vertex degrees, which is
// the regime of the AT&T graphs. DESIGN.md §4 documents the substitution.
package graphgen

import (
	"fmt"
	"math/rand"

	"antlayer/internal/dag"
)

// Config parameterises a single random DAG.
type Config struct {
	// N is the number of vertices (>= 1).
	N int
	// EdgeFactor targets m ≈ EdgeFactor·N edges (clamped to what a simple
	// DAG admits). Values around 1.3–1.6 match sparse graph-drawing
	// corpora. Values below (N-1)/N still produce the connecting tree.
	EdgeFactor float64
	// MaxDegree caps the total degree of every vertex; 0 means unlimited.
	// Benchmark corpora rarely exceed degree 6 at these sizes.
	MaxDegree int
	// Connected forces the result to be weakly connected by first building
	// a random spanning tree.
	Connected bool
}

// DefaultConfig mirrors the corpus profile for n vertices.
func DefaultConfig(n int) Config {
	return Config{N: n, EdgeFactor: 1.4, MaxDegree: 6, Connected: true}
}

// Generate builds a random DAG per cfg using rng. The graph is acyclic by
// construction: every edge points from a higher vertex id to a lower one,
// so any layering question is non-trivial while acyclicity is guaranteed.
func Generate(cfg Config, rng *rand.Rand) (*dag.Graph, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("graphgen: N must be >= 1, got %d", cfg.N)
	}
	if cfg.EdgeFactor < 0 {
		return nil, fmt.Errorf("graphgen: EdgeFactor must be >= 0, got %g", cfg.EdgeFactor)
	}
	if cfg.MaxDegree < 0 {
		return nil, fmt.Errorf("graphgen: MaxDegree must be >= 0, got %d", cfg.MaxDegree)
	}
	n := cfg.N
	g := dag.New(n)
	degreeOK := func(v int) bool {
		return cfg.MaxDegree == 0 || g.Degree(v) < cfg.MaxDegree
	}
	if cfg.Connected && n > 1 {
		// Random spanning tree: vertex i attaches to a random lower vertex,
		// with the edge directed i -> j so ids still orient the DAG.
		for i := 1; i < n; i++ {
			j := rng.Intn(i)
			g.MustAddEdge(i, j)
		}
	}
	target := int(cfg.EdgeFactor*float64(n) + 0.5)
	maxEdges := n * (n - 1) / 2
	if target > maxEdges {
		target = maxEdges
	}
	// Rejection-sample extra edges; bail out after enough misses so dense
	// requests near the simple-DAG limit still terminate.
	misses := 0
	for g.M() < target && misses < 50*n+1000 {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			misses++
			continue
		}
		if u < v {
			u, v = v, u
		}
		if g.HasEdge(u, v) || !degreeOK(u) || !degreeOK(v) {
			misses++
			continue
		}
		g.MustAddEdge(u, v)
		misses = 0
	}
	return g, nil
}

// Layered builds a random DAG whose vertices are pre-assigned to `layers`
// ranks with edges only between consecutive ranks (probability p per pair).
// Useful for tests that need graphs with known minimum height.
func Layered(n, layers int, p float64, rng *rand.Rand) (*dag.Graph, error) {
	if n < 1 || layers < 1 || layers > n {
		return nil, fmt.Errorf("graphgen: need 1 <= layers <= n, got n=%d layers=%d", n, layers)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graphgen: p must be in [0,1], got %g", p)
	}
	g := dag.New(n)
	rank := make([]int, n)
	// Every rank gets at least one vertex; the rest are spread randomly.
	for i := 0; i < layers; i++ {
		rank[i] = i
	}
	for i := layers; i < n; i++ {
		rank[i] = rng.Intn(layers)
	}
	rng.Shuffle(n, func(i, j int) { rank[i], rank[j] = rank[j], rank[i] })
	// Edges point from higher rank to lower rank (rank = layer-1).
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if rank[u] == rank[v]+1 && rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	// Guarantee each non-bottom vertex an outgoing edge so the rank is the
	// true longest-path layer for at least one witness per rank.
	for u := 0; u < n; u++ {
		if rank[u] == 0 || g.OutDegree(u) > 0 {
			continue
		}
		cands := []int{}
		for v := 0; v < n; v++ {
			if rank[v] == rank[u]-1 {
				cands = append(cands, v)
			}
		}
		g.MustAddEdge(u, cands[rng.Intn(len(cands))])
	}
	return g, nil
}

// SeriesParallel builds a random two-terminal series-parallel DAG with
// exactly n vertices (n >= 2). Starting from the single edge source →
// sink, each step picks a random edge (u, v) and either series-splits it
// (replace with u → w → v) or parallel-composes it (add a disjoint
// two-edge path u → w → v beside it), each adding one vertex; pSeries is
// the probability of the series step. Series-parallel DAGs model
// structured workflows (fork/join task graphs, arithmetic expression
// DAGs) and stress a layerer differently from the sparse random profile:
// heights and widths are coupled through the nesting structure, so greedy
// layer choices propagate. The graph has ~1 + (1+(1-pSeries))·(n-2)
// edges, acyclic by construction.
func SeriesParallel(n int, pSeries float64, rng *rand.Rand) (*dag.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graphgen: SeriesParallel needs n >= 2, got %d", n)
	}
	if pSeries < 0 || pSeries > 1 {
		return nil, fmt.Errorf("graphgen: pSeries must be in [0,1], got %g", pSeries)
	}
	// Vertex 0 is the source and vertex 1 the sink; every composition
	// step appends one vertex. Edges live in a mutable list because a
	// series split replaces an edge, which dag.Graph does not support.
	edges := []dag.Edge{{U: 0, V: 1}}
	for w := 2; w < n; w++ {
		i := rng.Intn(len(edges))
		e := edges[i]
		if rng.Float64() < pSeries {
			edges[i] = dag.Edge{U: e.U, V: w}
			edges = append(edges, dag.Edge{U: w, V: e.V})
		} else {
			edges = append(edges, dag.Edge{U: e.U, V: w}, dag.Edge{U: w, V: e.V})
		}
	}
	g := dag.New(n)
	for _, e := range edges {
		g.MustAddEdge(e.U, e.V)
	}
	return g, nil
}

// Pipeline builds a long-edge-heavy "pipeline" DAG with n vertices: a
// deep sequence of stages (about n/3 of them, so depth grows linearly
// with n rather than the ~sqrt(n) of Layered) whose vertices feed the
// next stage — plus bypass edges that skip many stages at once, the way
// software pipelines carry forwarded values, residual connections or
// spilled operands past intermediate stages. pLong is the probability
// that an edge is such a bypass (its target stage is uniform over all
// lower stages, so the expected span grows with depth).
//
// The family exists because the other corpus profiles are short-edge
// dominated: in a proper layering of a Pipeline graph the dummy vertices
// induced by the bypass edges outnumber the real vertices (the
// long-edge-heavy regime where dummy width dominates the width
// objective), which stresses exactly the part of the objective — the
// per-crossed-layer dummy accounting of Algorithm 5 — that sparse
// corpora leave cold.
//
// Structure: stage s (1-based, stage 1 = sinks) holds >= 1 vertex;
// vertex ids ascend with the stage, so every edge points from a higher
// id to a lower one and the graph is acyclic by construction. A backbone
// chain through the first vertex of every stage keeps the stage count
// equal to the longest-path height; every vertex above stage 1 gets one
// or two out-edges, and every vertex below the top stage is guaranteed
// an in-edge so nothing floats free of the pipeline.
func Pipeline(n int, pLong float64, rng *rand.Rand) (*dag.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graphgen: Pipeline needs n >= 2, got %d", n)
	}
	if pLong < 0 || pLong > 1 {
		return nil, fmt.Errorf("graphgen: pLong must be in [0,1], got %g", pLong)
	}
	depth := n / 3
	if depth < 2 {
		depth = 2
	}
	// Stage sizes: one guaranteed vertex per stage, the rest spread
	// uniformly.
	size := make([]int, depth)
	for i := range size {
		size[i] = 1
	}
	for i := 0; i < n-depth; i++ {
		size[rng.Intn(depth)]++
	}
	// Ids ascend with the stage: members[s] lists stage s's vertices.
	members := make([][]int, depth)
	id := 0
	for s := range members {
		members[s] = make([]int, size[s])
		for j := range members[s] {
			members[s][j] = id
			id++
		}
	}
	g := dag.New(n)
	// Backbone: first member of each stage chains to the stage below, so
	// the longest path spans all stages.
	for s := 1; s < depth; s++ {
		g.MustAddEdge(members[s][0], members[s-1][0])
	}
	for s := 1; s < depth; s++ {
		for _, u := range members[s] {
			k := 1
			if rng.Float64() < 0.5 {
				k = 2
			}
			for e := 0; e < k; e++ {
				t := s - 1 // default: feed the next stage
				if rng.Float64() < pLong {
					t = rng.Intn(s) // bypass: any lower stage
				}
				v := members[t][rng.Intn(len(members[t]))]
				if !g.HasEdge(u, v) {
					g.MustAddEdge(u, v)
				}
			}
		}
	}
	// No vertex below the top floats without an input.
	for s := 0; s < depth-1; s++ {
		for _, v := range members[s] {
			if g.InDegree(v) > 0 {
				continue
			}
			u := members[s+1][rng.Intn(len(members[s+1]))]
			if !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g, nil
}

// Path returns the path graph v_{n-1} -> ... -> v_0.
func Path(n int) *dag.Graph {
	g := dag.New(n)
	for i := n - 1; i > 0; i-- {
		g.MustAddEdge(i, i-1)
	}
	return g
}

// Tree returns a random out-tree with edges directed towards the root
// (vertex 0), i.e. the root is the unique sink.
func Tree(n int, rng *rand.Rand) *dag.Graph {
	g := dag.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i))
	}
	return g
}

// CompleteBipartite returns K_{a,b} with all edges from the a-side
// (vertices 0..a-1) to the b-side (vertices a..a+b-1)... directed so the
// a-side sits above: edges a-side -> b-side.
func CompleteBipartite(a, b int) *dag.Graph {
	g := dag.New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}
