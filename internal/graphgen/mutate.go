package graphgen

import (
	"fmt"
	"math/rand"

	"antlayer/internal/dag"
)

// This file generates *edit scripts*: small seeded mutations of an
// existing DAG that keep vertex names stable across the edit. The warm-
// start machinery (core.State, server warm cache) carries pheromone
// state between runs by matching vertex names, so a benchmark or chaos
// scenario that wants realistic repeat-with-edits traffic needs graphs
// that really are "the previous graph, lightly edited" — not fresh
// samples from the same distribution. Mutate is that generator;
// DeltaChain strings its output into the chains the delta corpus family
// and the edit-stream chaos scenario replay.

// EditOp is the kind of one graph edit.
type EditOp string

const (
	// EditAddEdge adds one edge between two existing vertices, oriented
	// so the graph stays acyclic.
	EditAddEdge EditOp = "add-edge"
	// EditRemoveEdge removes one existing edge.
	EditRemoveEdge EditOp = "remove-edge"
	// EditAddLeaf adds one fresh vertex with a single edge to or from an
	// existing vertex.
	EditAddLeaf EditOp = "add-leaf"
	// EditRemoveLeaf removes one vertex of degree <= 1 (and its edge).
	EditRemoveLeaf EditOp = "remove-leaf"
)

// Edit records one applied mutation, in vertex names (names are the
// stable identity across edits; indices shift when vertices go away).
// For edge edits U -> V is the edge; for leaf edits U is the leaf and V
// its neighbour ("" for an isolated leaf removal).
type Edit struct {
	Op EditOp `json:"op"`
	U  string `json:"u"`
	V  string `json:"v,omitempty"`
}

// Mutate applies `edits` random edits to (g, names) and returns the
// edited graph, its name table and the script that was applied. The
// input graph is not modified. Vertices keep their names across the
// edit (indices may shift when a leaf is removed); added leaves get
// fresh "m<k>" names that never collide with existing ones. The result
// is acyclic by construction — added edges are oriented along the
// existing reachability order — and deterministic in (g, names, edits,
// rng state).
func Mutate(g *dag.Graph, names []string, edits int, rng *rand.Rand) (*dag.Graph, []string, []Edit, error) {
	if g == nil {
		return nil, nil, nil, fmt.Errorf("graphgen: Mutate needs a graph")
	}
	if len(names) != g.N() {
		return nil, nil, nil, fmt.Errorf("graphgen: Mutate: %d names for %d vertices", len(names), g.N())
	}
	if edits < 0 {
		return nil, nil, nil, fmt.Errorf("graphgen: Mutate: edits must be >= 0, got %d", edits)
	}
	// Mutable working copy: a name list and an index-pair edge list.
	// dag.Graph is append-only, so edits happen here and the graph is
	// rebuilt once at the end.
	nodes := append([]string(nil), names...)
	edges := g.Edges()
	used := make(map[string]struct{}, len(nodes))
	for _, n := range nodes {
		used[n] = struct{}{}
	}
	freshSeq := 0
	fresh := func() string {
		for {
			name := fmt.Sprintf("m%d", freshSeq)
			freshSeq++
			if _, ok := used[name]; !ok {
				used[name] = struct{}{}
				return name
			}
		}
	}
	script := make([]Edit, 0, edits)
	ops := []EditOp{EditAddEdge, EditRemoveEdge, EditAddLeaf, EditRemoveLeaf}
	for len(script) < edits {
		applied := false
		// One rng draw picks the op; infeasible ops fall through to the
		// next in rotation so the loop always terminates (add-leaf is
		// always feasible).
		start := rng.Intn(len(ops))
		for k := 0; k < len(ops) && !applied; k++ {
			switch ops[(start+k)%len(ops)] {
			case EditAddEdge:
				if e, ok := tryAddEdge(nodes, &edges, rng); ok {
					script = append(script, e)
					applied = true
				}
			case EditRemoveEdge:
				if len(edges) > 0 {
					i := rng.Intn(len(edges))
					e := edges[i]
					edges = append(edges[:i], edges[i+1:]...)
					script = append(script, Edit{Op: EditRemoveEdge, U: nodes[e.U], V: nodes[e.V]})
					applied = true
				}
			case EditAddLeaf:
				leaf := fresh()
				nodes = append(nodes, leaf)
				id := len(nodes) - 1
				t := rng.Intn(id)
				if rng.Intn(2) == 0 {
					edges = append(edges, dag.Edge{U: id, V: t})
				} else {
					edges = append(edges, dag.Edge{U: t, V: id})
				}
				script = append(script, Edit{Op: EditAddLeaf, U: leaf, V: nodes[t]})
				applied = true
			case EditRemoveLeaf:
				if e, ok := tryRemoveLeaf(&nodes, &edges, used, rng); ok {
					script = append(script, e)
					applied = true
				}
			}
		}
	}
	out := dag.New(len(nodes))
	for _, e := range edges {
		out.MustAddEdge(e.U, e.V)
	}
	return out, nodes, script, nil
}

// tryAddEdge samples vertex pairs until it finds one with no edge in
// either direction, then orients the new edge along the existing
// reachability order so no cycle can form. Gives up (graph too small or
// effectively complete) after a bounded number of misses.
func tryAddEdge(nodes []string, edges *[]dag.Edge, rng *rand.Rand) (Edit, bool) {
	n := len(nodes)
	if n < 2 {
		return Edit{}, false
	}
	has := make(map[[2]int]struct{}, len(*edges))
	succ := make(map[int][]int, n)
	for _, e := range *edges {
		has[[2]int{e.U, e.V}] = struct{}{}
		succ[e.U] = append(succ[e.U], e.V)
	}
	for tries := 0; tries < 8*n+32; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if _, ok := has[[2]int{u, v}]; ok {
			continue
		}
		if _, ok := has[[2]int{v, u}]; ok {
			continue
		}
		// u -> v closes a cycle exactly when v already reaches u; flip
		// the edge in that case (v -> u then runs along the existing
		// order). Both directions cannot be unsafe — that would be a
		// cycle already.
		if reaches(succ, v, u, n) {
			u, v = v, u
		}
		*edges = append(*edges, dag.Edge{U: u, V: v})
		return Edit{Op: EditAddEdge, U: nodes[u], V: nodes[v]}, true
	}
	return Edit{}, false
}

// reaches reports whether `from` reaches `to` over succ (iterative DFS).
func reaches(succ map[int][]int, from, to, n int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, n)
	stack := []int{from}
	seen[from] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range succ[v] {
			if w == to {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}

// tryRemoveLeaf removes a random vertex of degree <= 1 together with
// its incident edge, keeping at least one vertex in the graph.
func tryRemoveLeaf(nodes *[]string, edges *[]dag.Edge, used map[string]struct{}, rng *rand.Rand) (Edit, bool) {
	n := len(*nodes)
	if n < 2 {
		return Edit{}, false
	}
	degree := make([]int, n)
	for _, e := range *edges {
		degree[e.U]++
		degree[e.V]++
	}
	var leaves []int
	for v := 0; v < n; v++ {
		if degree[v] <= 1 {
			leaves = append(leaves, v)
		}
	}
	if len(leaves) == 0 {
		return Edit{}, false
	}
	r := leaves[rng.Intn(len(leaves))]
	edit := Edit{Op: EditRemoveLeaf, U: (*nodes)[r]}
	kept := (*edges)[:0]
	for _, e := range *edges {
		if e.U == r || e.V == r {
			if e.U == r {
				edit.V = (*nodes)[e.V]
			} else {
				edit.V = (*nodes)[e.U]
			}
			continue
		}
		if e.U > r {
			e.U--
		}
		if e.V > r {
			e.V--
		}
		kept = append(kept, e)
	}
	*edges = kept
	delete(used, (*nodes)[r])
	*nodes = append((*nodes)[:r], (*nodes)[r+1:]...)
	return edit, true
}

// DeltaChain generates a chain of `length` graphs: a Sparse base with n
// vertices named "v0".."v<n-1>", then length-1 successive Mutate steps
// of `edits` edits each. Chains model repeat-with-edits traffic — the
// workload the warm-start path exists for — and are deterministic in
// (seed, n, length, edits).
func DeltaChain(seed int64, n, length, edits int) ([]*dag.Graph, [][]string, error) {
	if length < 1 {
		return nil, nil, fmt.Errorf("graphgen: DeltaChain needs length >= 1, got %d", length)
	}
	rng := rand.New(rand.NewSource(seed))
	base, err := Generate(DefaultConfig(n), rng)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, base.N())
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	graphs := []*dag.Graph{base}
	tables := [][]string{names}
	for len(graphs) < length {
		g, nm, _, err := Mutate(graphs[len(graphs)-1], tables[len(tables)-1], edits, rng)
		if err != nil {
			return nil, nil, err
		}
		graphs = append(graphs, g)
		tables = append(tables, nm)
	}
	return graphs, tables, nil
}
