package graphgen

import (
	"fmt"
	"math/rand"

	"antlayer/internal/dag"
)

// Corpus mirrors the paper's benchmark set: 1277 graphs in 19 groups with
// vertex counts 10, 15, ..., 100 (§VII).
const (
	// GroupCount is the number of vertex-count groups.
	GroupCount = 19
	// MinVertices and GroupStep define the group sizes 10, 15, ..., 100.
	MinVertices = 10
	GroupStep   = 5
	// TotalGraphs is the corpus size; 1277 = 19·67 + 4, so the first four
	// groups hold 68 graphs and the rest 67.
	TotalGraphs = 1277
)

// Group is one vertex-count bucket of the corpus.
type Group struct {
	// Vertices is the vertex count shared by all graphs of the group.
	Vertices int
	// Graphs holds the group's DAGs.
	Graphs []*dag.Graph
}

// GroupSizes returns how many graphs each of the 19 groups holds; the
// counts sum to TotalGraphs.
func GroupSizes() []int {
	sizes := make([]int, GroupCount)
	base := TotalGraphs / GroupCount
	rem := TotalGraphs % GroupCount
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return sizes
}

// GroupVertices returns the vertex count of group i (0-based).
func GroupVertices(i int) int { return MinVertices + i*GroupStep }

// Family selects the structural profile of a generated corpus. The default
// Sparse family substitutes the AT&T benchmark set; the others exist for
// sensitivity studies (how do the algorithms behave on trees, pre-layered
// or denser graphs?).
type Family int

const (
	// Sparse is the default AT&T-like profile: weakly connected random
	// DAGs with m/n ≈ 1.4 and bounded degree.
	Sparse Family = iota
	// Trees are random out-trees directed towards a unique sink.
	Trees
	// LayeredFamily pre-assigns vertices to ~sqrt(n) ranks with edges
	// between consecutive ranks only.
	LayeredFamily
	// Dense doubles the edge factor of Sparse (m/n ≈ 2.8).
	Dense
	// SeriesParallelFamily builds two-terminal series-parallel DAGs
	// (random series/parallel compositions, see SeriesParallel) — the
	// structured fork/join workload the island experiments widen scenario
	// coverage with.
	SeriesParallelFamily
	// PipelineFamily builds deep staged DAGs with stage-skipping bypass
	// edges (see Pipeline): the long-edge-heavy regime where the dummy
	// vertices induced by edge spans outnumber the real vertices, so
	// dummy width dominates the width objective.
	PipelineFamily
	// DeltaFamily builds edit chains: each group's first graph is a
	// Sparse base and every following graph is the previous one with a
	// few Mutate edits — the repeat-with-edits workload the warm-start
	// serving path targets. Unlike the other families, graphs within a
	// group are deliberately correlated.
	DeltaFamily
)

func (f Family) String() string {
	switch f {
	case Sparse:
		return "sparse"
	case Trees:
		return "trees"
	case LayeredFamily:
		return "layered"
	case Dense:
		return "dense"
	case SeriesParallelFamily:
		return "series-parallel"
	case PipelineFamily:
		return "pipeline"
	case DeltaFamily:
		return "delta"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// ParseFamily maps a CLI name to a Family.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "sparse", "":
		return Sparse, nil
	case "trees":
		return Trees, nil
	case "layered":
		return LayeredFamily, nil
	case "dense":
		return Dense, nil
	case "series-parallel", "sp":
		return SeriesParallelFamily, nil
	case "pipeline":
		return PipelineFamily, nil
	case "delta":
		return DeltaFamily, nil
	default:
		return Sparse, fmt.Errorf("graphgen: unknown corpus family %q (want sparse|trees|layered|dense|series-parallel|pipeline|delta)", s)
	}
}

// generate builds one graph of the family with n vertices.
func (f Family) generate(n int, rng *rand.Rand) (*dag.Graph, error) {
	switch f {
	case Trees:
		return Tree(n, rng), nil
	case LayeredFamily:
		layers := 2
		for layers*layers < n {
			layers++
		}
		return Layered(n, layers, 0.3, rng)
	case Dense:
		return Generate(Config{N: n, EdgeFactor: 2.8, MaxDegree: 10, Connected: true}, rng)
	case SeriesParallelFamily:
		// An even series/parallel mix keeps both the nesting depth and the
		// parallel fan-out growing with n.
		return SeriesParallel(n, 0.5, rng)
	case PipelineFamily:
		// A 0.4 bypass share makes dummy vertices dominate (mean edge
		// span grows with depth) while most edges stay stage-adjacent.
		return Pipeline(n, 0.4, rng)
	default:
		return Generate(DefaultConfig(n), rng)
	}
}

// Corpus generates the full 1277-graph benchmark corpus deterministically
// from the seed.
func Corpus(seed int64) ([]Group, error) {
	return CorpusSample(seed, 0)
}

// CorpusSample generates the Sparse corpus with at most perGroup graphs
// per group (0 means the full group size). Experiments that only need
// statistical shape use small samples to stay fast.
func CorpusSample(seed int64, perGroup int) ([]Group, error) {
	return CorpusFamily(seed, perGroup, Sparse)
}

// CorpusFamily generates a corpus of the given family with the same group
// structure as the paper's benchmark set.
func CorpusFamily(seed int64, perGroup int, family Family) ([]Group, error) {
	rng := rand.New(rand.NewSource(seed))
	sizes := GroupSizes()
	groups := make([]Group, GroupCount)
	for i := range groups {
		n := GroupVertices(i)
		count := sizes[i]
		if perGroup > 0 && perGroup < count {
			count = perGroup
		}
		groups[i].Vertices = n
		groups[i].Graphs = make([]*dag.Graph, count)
		// Delta chains carry per-graph name tables through the group; the
		// other families are memoryless.
		var chainNames []string
		for j := range groups[i].Graphs {
			var g *dag.Graph
			var err error
			if family == DeltaFamily && j > 0 {
				// Three edits per step: small enough that the chain stays
				// near the base (high warm similarity), large enough that
				// every step really recomputes.
				g, chainNames, _, err = Mutate(groups[i].Graphs[j-1], chainNames, 3, rng)
			} else {
				g, err = family.generate(n, rng)
				if family == DeltaFamily {
					chainNames = make([]string, g.N())
					for v := range chainNames {
						chainNames[v] = fmt.Sprintf("v%d", v)
					}
				}
			}
			if err != nil {
				return nil, fmt.Errorf("graphgen: corpus group %d graph %d: %w", i, j, err)
			}
			groups[i].Graphs[j] = g
		}
	}
	return groups, nil
}

// CorpusStats summarises a corpus for logging and tests.
type CorpusStats struct {
	Groups         int
	Graphs         int
	MinVertices    int
	MaxVertices    int
	MeanEdgeFactor float64
}

// Stats computes summary statistics over the groups.
func Stats(groups []Group) CorpusStats {
	st := CorpusStats{Groups: len(groups)}
	totalFactor, totalGraphs := 0.0, 0
	for _, gr := range groups {
		for _, g := range gr.Graphs {
			totalGraphs++
			totalFactor += float64(g.M()) / float64(g.N())
			if st.MinVertices == 0 || g.N() < st.MinVertices {
				st.MinVertices = g.N()
			}
			if g.N() > st.MaxVertices {
				st.MaxVertices = g.N()
			}
		}
	}
	st.Graphs = totalGraphs
	if totalGraphs > 0 {
		st.MeanEdgeFactor = totalFactor / float64(totalGraphs)
	}
	return st
}
