package graphgen

import (
	"testing"
)

func TestParseFamily(t *testing.T) {
	cases := map[string]Family{
		"sparse":  Sparse,
		"":        Sparse,
		"trees":   Trees,
		"layered": LayeredFamily,
		"dense":   Dense,
	}
	for in, want := range cases {
		got, err := ParseFamily(in)
		if err != nil || got != want {
			t.Errorf("ParseFamily(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestFamilyStrings(t *testing.T) {
	for f, want := range map[Family]string{
		Sparse: "sparse", Trees: "trees", LayeredFamily: "layered", Dense: "dense",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if Family(99).String() == "" {
		t.Error("unknown family has empty string")
	}
}

func TestCorpusFamilies(t *testing.T) {
	for _, fam := range []Family{Sparse, Trees, LayeredFamily, Dense} {
		groups, err := CorpusFamily(3, 2, fam)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if len(groups) != GroupCount {
			t.Fatalf("%v: groups = %d", fam, len(groups))
		}
		for _, gr := range groups {
			for _, g := range gr.Graphs {
				if g.N() != gr.Vertices {
					t.Fatalf("%v: n=%d in group %d", fam, g.N(), gr.Vertices)
				}
				if !g.IsAcyclic() {
					t.Fatalf("%v: cyclic corpus graph", fam)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("%v: %v", fam, err)
				}
			}
		}
	}
}

func TestFamilyProfiles(t *testing.T) {
	trees, err := CorpusFamily(3, 2, Trees)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range trees {
		for _, g := range gr.Graphs {
			if g.M() != g.N()-1 {
				t.Fatalf("tree with %d edges for %d vertices", g.M(), g.N())
			}
		}
	}
	dense, err := CorpusFamily(3, 2, Dense)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := CorpusFamily(3, 2, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	if Stats(dense).MeanEdgeFactor <= Stats(sparse).MeanEdgeFactor {
		t.Fatalf("dense factor %.2f not above sparse %.2f",
			Stats(dense).MeanEdgeFactor, Stats(sparse).MeanEdgeFactor)
	}
}
