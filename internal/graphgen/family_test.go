package graphgen

import (
	"fmt"
	"math/rand"
	"testing"

	"antlayer/internal/longestpath"
)

func TestParseFamily(t *testing.T) {
	cases := map[string]Family{
		"sparse":   Sparse,
		"":         Sparse,
		"trees":    Trees,
		"layered":  LayeredFamily,
		"dense":    Dense,
		"pipeline": PipelineFamily,
	}
	for in, want := range cases {
		got, err := ParseFamily(in)
		if err != nil || got != want {
			t.Errorf("ParseFamily(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestFamilyStrings(t *testing.T) {
	for f, want := range map[Family]string{
		Sparse: "sparse", Trees: "trees", LayeredFamily: "layered", Dense: "dense",
		SeriesParallelFamily: "series-parallel", PipelineFamily: "pipeline",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if Family(99).String() == "" {
		t.Error("unknown family has empty string")
	}
}

func TestCorpusFamilies(t *testing.T) {
	for _, fam := range []Family{Sparse, Trees, LayeredFamily, Dense, SeriesParallelFamily, PipelineFamily} {
		groups, err := CorpusFamily(3, 2, fam)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if len(groups) != GroupCount {
			t.Fatalf("%v: groups = %d", fam, len(groups))
		}
		for _, gr := range groups {
			for _, g := range gr.Graphs {
				if g.N() != gr.Vertices {
					t.Fatalf("%v: n=%d in group %d", fam, g.N(), gr.Vertices)
				}
				if !g.IsAcyclic() {
					t.Fatalf("%v: cyclic corpus graph", fam)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("%v: %v", fam, err)
				}
			}
		}
	}
}

func TestFamilyProfiles(t *testing.T) {
	trees, err := CorpusFamily(3, 2, Trees)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range trees {
		for _, g := range gr.Graphs {
			if g.M() != g.N()-1 {
				t.Fatalf("tree with %d edges for %d vertices", g.M(), g.N())
			}
		}
	}
	dense, err := CorpusFamily(3, 2, Dense)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := CorpusFamily(3, 2, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	if Stats(dense).MeanEdgeFactor <= Stats(sparse).MeanEdgeFactor {
		t.Fatalf("dense factor %.2f not above sparse %.2f",
			Stats(dense).MeanEdgeFactor, Stats(sparse).MeanEdgeFactor)
	}
}

// TestSeriesParallelStructure pins the generator's invariants: a unique
// source and sink (the two terminals), an edge count within the
// composition bounds, acyclicity, and determinism for a fixed seed.
func TestSeriesParallelStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{2, 3, 10, 60} {
		g, err := SeriesParallel(n, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n {
			t.Fatalf("n=%d: got %d vertices", n, g.N())
		}
		if !g.IsAcyclic() {
			t.Fatalf("n=%d: cyclic", n)
		}
		sources, sinks := 0, 0
		for v := 0; v < g.N(); v++ {
			if g.InDegree(v) == 0 {
				sources++
			}
			if g.OutDegree(v) == 0 {
				sinks++
			}
		}
		if sources != 1 || sinks != 1 {
			t.Fatalf("n=%d: %d sources, %d sinks; want 1 and 1", n, sources, sinks)
		}
		// Every step adds 1 (series) or 2 (parallel) edges to the initial 1.
		if min, max := 1+(n-2), 1+2*(n-2); g.M() < min || g.M() > max {
			t.Fatalf("n=%d: %d edges outside [%d,%d]", n, g.M(), min, max)
		}
	}

	a, err := SeriesParallel(40, 0.5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SeriesParallel(40, 0.5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Edges()) != fmt.Sprint(b.Edges()) {
		t.Fatal("same seed produced different series-parallel graphs")
	}

	// pSeries=1 is a pure path; pSeries=0 maximises parallel branches.
	path, err := SeriesParallel(20, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if path.M() != 19 {
		t.Fatalf("pure series: %d edges, want 19", path.M())
	}
	wide, err := SeriesParallel(20, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if wide.M() != 1+2*18 {
		t.Fatalf("pure parallel: %d edges, want %d", wide.M(), 1+2*18)
	}

	for _, bad := range []struct {
		n int
		p float64
	}{{1, 0.5}, {5, -0.1}, {5, 1.1}} {
		if _, err := SeriesParallel(bad.n, bad.p, rng); err == nil {
			t.Errorf("SeriesParallel(%d, %g) accepted", bad.n, bad.p)
		}
	}
}

// TestPipelineLongEdgeHeavy pins the pipeline family's reason to exist:
// under a longest-path layering the dummy vertices induced by bypass
// edges outnumber the real vertices (dummy width dominates), and the
// graph is deep — the stage count, not ~sqrt(n), sets the height.
func TestPipelineLongEdgeHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{40, 80} {
		g, err := Pipeline(n, 0.4, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsAcyclic() {
			t.Fatal("pipeline graph cyclic")
		}
		l, err := longestpath.Layer(g)
		if err != nil {
			t.Fatal(err)
		}
		m := l.ComputeMetrics(1)
		if m.Height < n/3 {
			t.Errorf("n=%d: height %d, want >= %d (deep stages)", n, m.Height, n/3)
		}
		if m.DummyCount <= n {
			t.Errorf("n=%d: %d dummies for %d vertices; want dummy-dominated", n, m.DummyCount, n)
		}
		// Every vertex below the top participates (no floating sources
		// beyond stage tops).
		iso := 0
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) == 0 {
				iso++
			}
		}
		if iso > 0 {
			t.Errorf("n=%d: %d isolated vertices", n, iso)
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Pipeline(1, 0.4, rng); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Pipeline(10, -0.1, rng); err == nil {
		t.Error("negative pLong accepted")
	}
	if _, err := Pipeline(10, 1.1, rng); err == nil {
		t.Error("pLong > 1 accepted")
	}
	// Tiny pipelines still build.
	g, err := Pipeline(2, 1, rng)
	if err != nil || g.N() != 2 {
		t.Fatalf("Pipeline(2): %v", err)
	}
}
