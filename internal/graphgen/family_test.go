package graphgen

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestParseFamily(t *testing.T) {
	cases := map[string]Family{
		"sparse":  Sparse,
		"":        Sparse,
		"trees":   Trees,
		"layered": LayeredFamily,
		"dense":   Dense,
	}
	for in, want := range cases {
		got, err := ParseFamily(in)
		if err != nil || got != want {
			t.Errorf("ParseFamily(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestFamilyStrings(t *testing.T) {
	for f, want := range map[Family]string{
		Sparse: "sparse", Trees: "trees", LayeredFamily: "layered", Dense: "dense",
		SeriesParallelFamily: "series-parallel",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if Family(99).String() == "" {
		t.Error("unknown family has empty string")
	}
}

func TestCorpusFamilies(t *testing.T) {
	for _, fam := range []Family{Sparse, Trees, LayeredFamily, Dense, SeriesParallelFamily} {
		groups, err := CorpusFamily(3, 2, fam)
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		if len(groups) != GroupCount {
			t.Fatalf("%v: groups = %d", fam, len(groups))
		}
		for _, gr := range groups {
			for _, g := range gr.Graphs {
				if g.N() != gr.Vertices {
					t.Fatalf("%v: n=%d in group %d", fam, g.N(), gr.Vertices)
				}
				if !g.IsAcyclic() {
					t.Fatalf("%v: cyclic corpus graph", fam)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("%v: %v", fam, err)
				}
			}
		}
	}
}

func TestFamilyProfiles(t *testing.T) {
	trees, err := CorpusFamily(3, 2, Trees)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range trees {
		for _, g := range gr.Graphs {
			if g.M() != g.N()-1 {
				t.Fatalf("tree with %d edges for %d vertices", g.M(), g.N())
			}
		}
	}
	dense, err := CorpusFamily(3, 2, Dense)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := CorpusFamily(3, 2, Sparse)
	if err != nil {
		t.Fatal(err)
	}
	if Stats(dense).MeanEdgeFactor <= Stats(sparse).MeanEdgeFactor {
		t.Fatalf("dense factor %.2f not above sparse %.2f",
			Stats(dense).MeanEdgeFactor, Stats(sparse).MeanEdgeFactor)
	}
}

// TestSeriesParallelStructure pins the generator's invariants: a unique
// source and sink (the two terminals), an edge count within the
// composition bounds, acyclicity, and determinism for a fixed seed.
func TestSeriesParallelStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{2, 3, 10, 60} {
		g, err := SeriesParallel(n, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n {
			t.Fatalf("n=%d: got %d vertices", n, g.N())
		}
		if !g.IsAcyclic() {
			t.Fatalf("n=%d: cyclic", n)
		}
		sources, sinks := 0, 0
		for v := 0; v < g.N(); v++ {
			if g.InDegree(v) == 0 {
				sources++
			}
			if g.OutDegree(v) == 0 {
				sinks++
			}
		}
		if sources != 1 || sinks != 1 {
			t.Fatalf("n=%d: %d sources, %d sinks; want 1 and 1", n, sources, sinks)
		}
		// Every step adds 1 (series) or 2 (parallel) edges to the initial 1.
		if min, max := 1+(n-2), 1+2*(n-2); g.M() < min || g.M() > max {
			t.Fatalf("n=%d: %d edges outside [%d,%d]", n, g.M(), min, max)
		}
	}

	a, err := SeriesParallel(40, 0.5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SeriesParallel(40, 0.5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Edges()) != fmt.Sprint(b.Edges()) {
		t.Fatal("same seed produced different series-parallel graphs")
	}

	// pSeries=1 is a pure path; pSeries=0 maximises parallel branches.
	path, err := SeriesParallel(20, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if path.M() != 19 {
		t.Fatalf("pure series: %d edges, want 19", path.M())
	}
	wide, err := SeriesParallel(20, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if wide.M() != 1+2*18 {
		t.Fatalf("pure parallel: %d edges, want %d", wide.M(), 1+2*18)
	}

	for _, bad := range []struct {
		n int
		p float64
	}{{1, 0.5}, {5, -0.1}, {5, 1.1}} {
		if _, err := SeriesParallel(bad.n, bad.p, rng); err == nil {
			t.Errorf("SeriesParallel(%d, %g) accepted", bad.n, bad.p)
		}
	}
}
