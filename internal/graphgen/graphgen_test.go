package graphgen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for i := 0; i < 30; i++ {
		n := 2 + rng.Intn(60)
		g, err := Generate(DefaultConfig(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n {
			t.Fatalf("N = %d, want %d", g.N(), n)
		}
		if !g.IsAcyclic() {
			t.Fatal("generated graph cyclic")
		}
		if !g.IsWeaklyConnected() {
			t.Fatal("Connected config produced disconnected graph")
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	bad := []Config{
		{N: 0},
		{N: -3},
		{N: 5, EdgeFactor: -1},
		{N: 5, MaxDegree: -2},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg, rng); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", cfg)
		}
	}
}

func TestGenerateDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	cfg := Config{N: 50, EdgeFactor: 3, MaxDegree: 4, Connected: false}
	g, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 4 {
			t.Fatalf("vertex %d degree %d > bound", v, g.Degree(v))
		}
	}
}

func TestGenerateEdgeTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	cfg := Config{N: 60, EdgeFactor: 1.4, Connected: true}
	g, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := 84 // round(1.4 * 60)
	if g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
}

func TestGenerateDense(t *testing.T) {
	// Requesting more edges than a simple DAG admits must terminate and
	// clamp.
	rng := rand.New(rand.NewSource(64))
	g, err := Generate(Config{N: 6, EdgeFactor: 100}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() > 15 {
		t.Fatalf("M = %d exceeds simple-DAG maximum 15", g.M())
	}
	if !g.IsAcyclic() {
		t.Fatal("dense generation produced cycle")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultConfig(40), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(40), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
	c, err := Generate(DefaultConfig(40), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	g, err := Layered(30, 5, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsAcyclic() {
		t.Fatal("layered graph cyclic")
	}
	dist, err := g.LongestPathToSink()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dist {
		if d >= 5 {
			t.Fatalf("path length %d >= layers 5", d)
		}
	}
}

func TestLayeredErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	if _, err := Layered(5, 0, 0.5, rng); err == nil {
		t.Fatal("layers=0 accepted")
	}
	if _, err := Layered(5, 6, 0.5, rng); err == nil {
		t.Fatal("layers>n accepted")
	}
	if _, err := Layered(5, 2, 1.5, rng); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestPath(t *testing.T) {
	g := Path(5)
	if g.M() != 4 {
		t.Fatalf("path edges = %d", g.M())
	}
	dist, _ := g.LongestPathToSink()
	if dist[4] != 4 {
		t.Fatalf("path length = %d, want 4", dist[4])
	}
}

func TestTree(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := Tree(20, rng)
	if g.M() != 19 {
		t.Fatalf("tree edges = %d, want 19", g.M())
	}
	if !g.IsWeaklyConnected() || !g.IsAcyclic() {
		t.Fatal("tree not connected acyclic")
	}
	sinks := g.Sinks()
	if len(sinks) != 1 || sinks[0] != 0 {
		t.Fatalf("tree sinks = %v, want [0]", sinks)
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K(3,4): n=%d m=%d", g.N(), g.M())
	}
	if !g.IsAcyclic() {
		t.Fatal("K(3,4) cyclic")
	}
}

func TestGenerateAcyclicProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := rand.New(rand.NewSource(seed))
		g, err := Generate(Config{N: n, EdgeFactor: 2, Connected: true}, rng)
		if err != nil {
			return false
		}
		return g.IsAcyclic() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
