package graphgen

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMutateInvariants: for many seeds and edit counts, the edited graph
// is a valid acyclic DAG, its name table matches its vertex count with
// no duplicate names, and the script length equals the requested edits.
func TestMutateInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base, err := Generate(DefaultConfig(20), rng)
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, base.N())
		for i := range names {
			names[i] = fmt.Sprintf("v%d", i)
		}
		g, nm := base, names
		for step := 0; step < 5; step++ {
			edits := 1 + int(seed)%7
			var script []Edit
			g, nm, script, err = Mutate(g, nm, edits, rng)
			if err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if len(script) != edits {
				t.Fatalf("seed %d step %d: %d edits applied, want %d", seed, step, len(script), edits)
			}
			if len(nm) != g.N() {
				t.Fatalf("seed %d step %d: %d names for %d vertices", seed, step, len(nm), g.N())
			}
			seen := make(map[string]bool, len(nm))
			for _, n := range nm {
				if seen[n] {
					t.Fatalf("seed %d step %d: duplicate name %q", seed, step, n)
				}
				seen[n] = true
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if !g.IsAcyclic() {
				t.Fatalf("seed %d step %d: mutation introduced a cycle", seed, step)
			}
		}
	}
}

// TestMutateDeterministic: the same (graph, names, edits, rng seed)
// yields the same graph, name table and script.
func TestMutateDeterministic(t *testing.T) {
	base, err := Generate(DefaultConfig(30), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, base.N())
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	run := func() (string, string) {
		g, nm, script, err := Mutate(base, names, 8, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		return g.String() + fmt.Sprint(nm), fmt.Sprint(script)
	}
	g1, s1 := run()
	g2, s2 := run()
	if g1 != g2 || s1 != s2 {
		t.Errorf("Mutate is not deterministic:\n%s\n%s\nscripts:\n%s\n%s", g1, g2, s1, s2)
	}
}

// TestMutateDoesNotModifyInput: the input graph and name slice are
// untouched.
func TestMutateDoesNotModifyInput(t *testing.T) {
	base, err := Generate(DefaultConfig(15), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, base.N())
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i)
	}
	before := base.String() + fmt.Sprint(names)
	if _, _, _, err := Mutate(base, names, 10, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
	if after := base.String() + fmt.Sprint(names); after != before {
		t.Errorf("Mutate modified its input:\nbefore: %s\nafter: %s", before, after)
	}
}

// TestDeltaChainOverlap: consecutive chain graphs share most of their
// vertex names — the property the warm-start similarity probe keys on.
func TestDeltaChainOverlap(t *testing.T) {
	graphs, tables, err := DeltaChain(7, 40, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(graphs) != 6 || len(tables) != 6 {
		t.Fatalf("chain length %d/%d, want 6", len(graphs), len(tables))
	}
	for i := 1; i < len(tables); i++ {
		prev := make(map[string]bool, len(tables[i-1]))
		for _, n := range tables[i-1] {
			prev[n] = true
		}
		shared := 0
		for _, n := range tables[i] {
			if prev[n] {
				shared++
			}
		}
		max := len(tables[i])
		if len(tables[i-1]) > max {
			max = len(tables[i-1])
		}
		if sim := float64(shared) / float64(max); sim < 0.8 {
			t.Errorf("step %d: name overlap %.2f, want >= 0.8 (2 edits on 40 vertices)", i, sim)
		}
	}
}

// TestDeltaFamilyCorpus: the delta family produces valid, deterministic
// groups whose graphs stay near the group's nominal vertex count.
func TestDeltaFamilyCorpus(t *testing.T) {
	groups, err := CorpusFamily(11, 4, DeltaFamily)
	if err != nil {
		t.Fatal(err)
	}
	groups2, err := CorpusFamily(11, 4, DeltaFamily)
	if err != nil {
		t.Fatal(err)
	}
	for i, gr := range groups {
		for j, g := range gr.Graphs {
			if err := g.Validate(); err != nil {
				t.Fatalf("group %d graph %d: %v", i, j, err)
			}
			if !g.IsAcyclic() {
				t.Fatalf("group %d graph %d: cyclic", i, j)
			}
			// 3 edits per step, 3 steps: drift is bounded.
			if d := g.N() - gr.Vertices; d < -9 || d > 9 {
				t.Errorf("group %d graph %d: %d vertices, nominal %d", i, j, g.N(), gr.Vertices)
			}
			if !g.Equal(groups2[i].Graphs[j]) {
				t.Errorf("group %d graph %d: delta corpus is not deterministic", i, j)
			}
		}
	}
}
