package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("Mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev single != 0")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Fatalf("StdDev = %g, want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("Median(nil)")
	}
	if !almost(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !almost(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Fatal("even median")
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median sorted its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2) || !almost(s.Median, 2) || s.Min != 1 || s.Max != 3 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestMinLEMedianLEMax(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip non-finite and near-overflow values: averaging two
			// ~1e308 medians overflows, which is outside the harness's
			// domain (metrics are small positive numbers).
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		m := Median(xs)
		return Min(xs) <= m && m <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFigureTable(t *testing.T) {
	f := Figure{
		Title:  "Fig X",
		XLabel: "n",
		YLabel: "width",
		X:      []int{10, 20},
		Series: []Series{
			{Name: "LPL", Y: []float64{5, 9.5}},
			{Name: "AntColony", Y: []float64{4, 8}},
		},
	}
	var buf bytes.Buffer
	if err := f.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X", "LPL", "AntColony", "9.50", "20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestSeriesByName(t *testing.T) {
	f := Figure{Series: []Series{{Name: "a"}, {Name: "b"}}}
	if f.SeriesByName("b") == nil || f.SeriesByName("zz") != nil {
		t.Fatal("SeriesByName lookup wrong")
	}
}

func TestWriteAlignedWidths(t *testing.T) {
	var buf bytes.Buffer
	err := WriteAligned(&buf, []string{"a", "long-header"}, [][]string{{"wide-cell", "1"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All lines align to the same width (leading padding included).
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned table:\n%s", buf.String())
	}
}
