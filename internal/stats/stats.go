// Package stats provides the aggregation and table formatting used by the
// experiment harness: per-group means over the corpus and aligned text
// tables mirroring the paper's figure series.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary bundles the usual descriptive statistics.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Median  float64
	Max          float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// Series is one named line of a figure: Y[i] is the mean value for group i.
type Series struct {
	Name string
	Y    []float64
}

// Figure is a reproduced paper figure: per-group x values (vertex counts)
// and one series per algorithm.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []int
	Series []Series
}

// SeriesByName returns the series with the given name, or nil.
func (f *Figure) SeriesByName(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// WriteTable writes the figure as an aligned text table, one row per x.
func (f *Figure) WriteTable(w io.Writer) error {
	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	rows := make([][]string, len(f.X))
	for i, x := range f.X {
		row := make([]string, 0, len(headers))
		row = append(row, fmt.Sprintf("%d", x))
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
		}
		rows[i] = row
	}
	if _, err := fmt.Fprintf(w, "%s (%s)\n", f.Title, f.YLabel); err != nil {
		return err
	}
	return WriteAligned(w, headers, rows)
}

// WriteAligned writes rows under headers with space-aligned columns.
func WriteAligned(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
