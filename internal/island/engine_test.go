package island

import (
	"context"
	"encoding/json"
	"math"
	"sort"
	"sync"
	"testing"

	"antlayer/internal/core"
	"antlayer/internal/dag"
)

// migratorFunc adapts a function to the Migrator interface.
type migratorFunc func(ctx context.Context, epoch int, local []Elite) ([]Elite, bool, error)

func (f migratorFunc) Exchange(ctx context.Context, epoch int, local []Elite) ([]Elite, bool, error) {
	return f(ctx, epoch, local)
}

// TestExplicitRingMatchesDefault pins that Params.Migrator is a true
// seam: injecting the ring explicitly changes nothing.
func TestExplicitRingMatchesDefault(t *testing.T) {
	g := testGraph(t, 50, 21)
	p := DefaultParams()
	p.Colony.Tours = 6
	p.Colony.Seed = 5

	want, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Migrator = NewRing(p.Islands)
	got, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Errorf("explicit ring diverged:\n got %s\nwant %s", fingerprint(got), fingerprint(want))
	}
}

// TestRecordingMigratorSeesFullRing drives a run through a wrapping
// migrator and checks the contract: sequential epochs, one elite per
// island in ring order every epoch, done islands still emitting.
func TestRecordingMigratorSeesFullRing(t *testing.T) {
	g := testGraph(t, 40, 9)
	p := DefaultParams()
	p.Colony.Tours = 6
	ring := NewRing(p.Islands)
	epochs := 0
	p.Migrator = migratorFunc(func(ctx context.Context, epoch int, local []Elite) ([]Elite, bool, error) {
		epochs++
		if epoch != epochs {
			t.Errorf("epoch %d delivered out of order (want %d)", epoch, epochs)
		}
		if len(local) != p.Islands {
			t.Errorf("epoch %d: %d elites, want %d", epoch, len(local), p.Islands)
		}
		for i, e := range local {
			if e.Island != i {
				t.Errorf("epoch %d: elite %d is for island %d", epoch, i, e.Island)
			}
			if len(e.Assign) != g.N() {
				t.Errorf("epoch %d: island %d elite covers %d vertices", epoch, i, len(e.Assign))
			}
		}
		return ring.Exchange(ctx, epoch, local)
	})
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Tours=6, interval=2 → 3 epochs; the last barrier sees every island
	// done and ends the run without a migration.
	if epochs != 3 {
		t.Errorf("migrator saw %d epochs, want 3", epochs)
	}
	if res.Migrations != 2 {
		t.Errorf("migrations = %d, want 2", res.Migrations)
	}
}

// partitionBarrier is a miniature in-process coordinator: P engines (one
// per partition) exchange elites through it exactly the way distributed
// workers exchange them through the shard coordinator — collect all
// partitions at the barrier, shift along the global ring, answer each
// partition positionally. It prototypes the transport semantics the
// network implementation must preserve.
type partitionBarrier struct {
	k     int
	parts [][]int

	mu         sync.Mutex
	cond       *sync.Cond
	epoch      int
	arrived    int
	elites     map[int]Elite // island -> elite, current epoch
	incoming   map[int][]Elite
	cont       bool
	migrations int
}

func newPartitionBarrier(k int, parts [][]int) *partitionBarrier {
	b := &partitionBarrier{k: k, parts: parts, elites: make(map[int]Elite)}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// forPartition returns the Migrator a given partition's engine drives
// against.
func (b *partitionBarrier) forPartition(pi int) Migrator {
	return migratorFunc(func(_ context.Context, epoch int, local []Elite) ([]Elite, bool, error) {
		b.mu.Lock()
		defer b.mu.Unlock()
		for _, e := range local {
			b.elites[e.Island] = e
		}
		b.arrived++
		if b.arrived == len(b.parts) {
			// Last partition in: play the ring for everyone.
			cont := false
			for _, e := range b.elites {
				if !e.Done {
					cont = true
				}
			}
			b.cont = cont
			b.incoming = make(map[int][]Elite)
			if cont && b.k > 1 {
				for qi, islands := range b.parts {
					in := make([]Elite, len(islands))
					for j, i := range islands {
						in[j] = b.elites[(i-1+b.k)%b.k]
					}
					b.incoming[qi] = in
				}
				b.migrations++
			}
			b.arrived = 0
			b.elites = make(map[int]Elite)
			b.epoch = epoch
			b.cond.Broadcast()
		} else {
			for b.epoch != epoch {
				b.cond.Wait()
			}
		}
		return b.incoming[pi], b.cont, nil
	})
}

// runPartitioned runs the archipelago as P independent engines over the
// given partition, joined only by the barrier — the in-process model of
// a multi-process run — and assembles the combined result.
func runPartitioned(t *testing.T, g *dag.Graph, p Params, parts [][]int) *Result {
	t.Helper()
	b := newPartitionBarrier(p.Islands, parts)
	var wg sync.WaitGroup
	reports := make([][]Report, len(parts))
	errs := make([]error, len(parts))
	migs := make([]int, len(parts))
	for pi, islands := range parts {
		wg.Add(1)
		go func(pi int, islands []int) {
			defer wg.Done()
			e, err := NewEngine(g, p, islands)
			if err != nil {
				errs[pi] = err
				return
			}
			migs[pi], errs[pi] = Drive(context.Background(), e, b.forPartition(pi))
			if errs[pi] != nil {
				return
			}
			reports[pi], errs[pi] = e.Finalize()
		}(pi, islands)
	}
	wg.Wait()
	for pi, err := range errs {
		if err != nil {
			t.Fatalf("partition %d: %v", pi, err)
		}
	}
	var all []Report
	for _, r := range reports {
		all = append(all, r...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Island < all[j].Island })
	res, err := Assemble(g, p, all, b.migrations)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPartitionedEnginesMatchInProcess is the Migrator seam's golden
// determinism test: splitting the archipelago over separate engines —
// any number of them, any contiguous partition — produces bitwise the
// result of the single-process run. This is the property the distributed
// transport inherits (internal/shard adds only serialization, which is
// exact for ints and float64s).
func TestPartitionedEnginesMatchInProcess(t *testing.T) {
	g := testGraph(t, 60, 23)
	p := DefaultParams()
	p.Colony.Tours = 6
	p.Colony.Seed = 77
	p.Islands = 5
	p.MigrationInterval = 2
	// Stagger island finishes so partitions hold a mix of live and done
	// islands across epochs.
	p.Colony.StopAfterStagnantTours = 3

	want, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	partitions := [][][]int{
		{{0, 1, 2, 3, 4}},
		{{0, 1, 2}, {3, 4}},
		{{0}, {1, 2}, {3}, {4}},
		{{0}, {1}, {2}, {3}, {4}},
	}
	for _, parts := range partitions {
		got := runPartitioned(t, g, p, parts)
		if fingerprint(got) != fingerprint(want) {
			t.Errorf("partition %v diverged:\n got %s\nwant %s", parts, fingerprint(got), fingerprint(want))
		}
	}
}

func TestNewEngineValidation(t *testing.T) {
	g := testGraph(t, 10, 1)
	p := DefaultParams()
	cases := map[string][]int{
		"out of range": {0, 4},
		"negative":     {-1},
		"duplicate":    {1, 1},
	}
	for name, local := range cases {
		if _, err := NewEngine(g, p, local); err == nil {
			t.Errorf("%s: accepted %v", name, local)
		}
	}
	bad := p
	bad.Islands = 0
	if _, err := NewEngine(g, bad, nil); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAssembleValidation(t *testing.T) {
	g := testGraph(t, 5, 2)
	p := DefaultParams()
	if _, err := Assemble(g, p, nil, 0); err == nil {
		t.Error("empty report set accepted")
	}
	if _, err := Assemble(g, p, []Report{{Island: 1}}, 0); err == nil {
		t.Error("out-of-order reports accepted")
	}
	if _, err := Assemble(g, p, []Report{{Island: 0, Objective: 1, Assign: []int{1}}}, 0); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestAbsorbValidation(t *testing.T) {
	g := testGraph(t, 10, 3)
	p := DefaultParams()
	p.Islands = 2
	e, err := NewEngine(g, p, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Absorb(nil); err != nil {
		t.Errorf("empty absorb: %v", err)
	}
	if err := e.Absorb(make([]Elite, 1)); err == nil {
		t.Error("mismatched absorb accepted")
	}
	if !e.Live() {
		t.Error("fresh engine not live")
	}
}

// TestWireTypesRoundTripExactly pins that Elite and Report survive JSON
// bit-exactly — the property that lets the network transport promise the
// same layerings as the in-process ring.
func TestWireTypesRoundTripExactly(t *testing.T) {
	e := Elite{Island: 3, Assign: []int{1, 4, 2}, Objective: 1.0 / 30, Done: true}
	blob, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var got Elite
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Objective) != math.Float64bits(e.Objective) {
		t.Errorf("objective bits changed: %x vs %x", math.Float64bits(got.Objective), math.Float64bits(e.Objective))
	}
	r := Report{
		Island: 1, Seed: -42, Objective: 0.1 + 0.2, BestTour: 3, ToursRun: 6,
		Assign: []int{2, 1}, Height: 2, Width: 3.3000000000000003,
		History: []core.TourStats{{Tour: 1, BestObjective: 1.0 / 7, MeanObjective: 0.30000000000000004}},
	}
	blob, err = json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var gr Report
	if err := json.Unmarshal(blob, &gr); err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"objective": {gr.Objective, r.Objective},
		"width":     {gr.Width, r.Width},
		"hist-best": {gr.History[0].BestObjective, r.History[0].BestObjective},
		"hist-mean": {gr.History[0].MeanObjective, r.History[0].MeanObjective},
	} {
		if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
			t.Errorf("%s bits changed", name)
		}
	}
}
