package island

import (
	"context"
	"fmt"
	"sync"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Elite is one island's contribution to an epoch barrier: its best
// stretched-space assignment so far and the objective that earned it. The
// struct is wire-shaped (the shard transport ships it as JSON verbatim);
// int and float64 fields round-trip bit-exactly through encoding/json, so
// a migrated elite deposits the same pheromone on the far side of a
// network as it would in process.
type Elite struct {
	// Island is the emitting island's global ring index.
	Island int `json:"island"`
	// Assign is the island's best layer assignment so far, in the
	// stretched search space (one 1-based layer per vertex).
	Assign []int `json:"assign,omitempty"`
	// Objective is the assignment's f = 1/(H+W).
	Objective float64 `json:"objective"`
	// Done reports that the island has finished its run (tour budget
	// exhausted or the stagnation rule fired); its elite is final.
	Done bool `json:"done,omitempty"`
}

// Migrator owns the epoch barrier and the elite exchange of an
// archipelago run — the seam that decides whether the islands live in one
// process (Ring) or are sharded across machines (internal/shard). The
// Engine on either side of the seam is identical, which is what keeps the
// distributed archipelago bitwise-identical to the in-process one.
type Migrator interface {
	// Exchange submits the local islands' elites for one epoch and blocks
	// until every island of the archipelago — local or not — has reached
	// the barrier. It returns the elites to absorb (incoming[j] is
	// deposited into the j-th local island; empty means no deposit this
	// epoch, e.g. a single-island archipelago) and cont, which reports
	// whether any island anywhere is still live. cont == false ends the
	// run with no deposit, matching the in-process loop, which breaks
	// before migrating once every island is done.
	Exchange(ctx context.Context, epoch int, local []Elite) (incoming []Elite, cont bool, err error)
}

// Ring is the in-process Migrator: the classic unidirectional elite ring
// over all K islands of the archipelago. Island i's elite emigrates to
// island (i+1) mod K; a single-island ring exchanges nothing (an island
// never deposits its own elite onto itself). Exchange is pure computation
// — the epoch barrier is the Engine's WaitGroup, which has already fired
// by the time Exchange runs.
type Ring struct {
	k int
}

// NewRing returns the ring migrator for an archipelago of k islands.
func NewRing(k int) *Ring { return &Ring{k: k} }

// Exchange implements Migrator over the full archipelago: local must hold
// every island's elite in ring order.
func (r *Ring) Exchange(_ context.Context, _ int, local []Elite) ([]Elite, bool, error) {
	if len(local) != r.k {
		return nil, false, fmt.Errorf("island: ring of %d islands got %d elites", r.k, len(local))
	}
	cont := false
	for _, e := range local {
		if !e.Done {
			cont = true
			break
		}
	}
	if !cont {
		return nil, false, nil
	}
	if r.k == 1 {
		return nil, true, nil
	}
	incoming := make([]Elite, r.k)
	for i := range incoming {
		incoming[i] = local[(i-1+r.k)%r.k]
	}
	return incoming, true, nil
}

// Report is the serializable outcome of one island, emitted by
// Engine.Finalize and reassembled into a Result by Assemble. Like Elite
// it is wire-shaped: every field survives a JSON round trip bit-exactly,
// so a coordinator can rebuild the winning layering from a worker's
// report byte-identically to a local Finalize.
type Report struct {
	// Island is the global ring index.
	Island int `json:"island"`
	// Seed is the island's derived colony seed.
	Seed int64 `json:"seed"`
	// Objective is the island's best f = 1/(H+W).
	Objective float64 `json:"objective"`
	// BestTour is the island-local tour that found its best walk (0 = the
	// LPL seed stood).
	BestTour int `json:"best_tour"`
	// ToursRun counts the tours the island executed.
	ToursRun int `json:"tours_run"`
	// Assign is the normalized layer assignment of the island's best
	// layering (empty layers removed) and Height/Width its metrics at the
	// run's DummyWidth.
	Assign []int   `json:"assign"`
	Height int     `json:"height"`
	Width  float64 `json:"width"`
	// History holds the island's per-tour statistics.
	History []core.TourStats `json:"history,omitempty"`
	// State is the island's final search state, present only when the
	// run's Colony.ExportState asked for it. Like every other field it
	// round-trips through JSON bit-exactly, so a distributed run's
	// winning state warm-starts the next run byte-identically to an
	// in-process one.
	State *core.State `json:"state,omitempty"`
}

// Engine is the pure epoch engine: the slice of an archipelago's islands
// that lives in this process. It steps its islands in tour slices of
// MigrationInterval, emits their elites at each barrier, absorbs foreign
// elites through core.Colony.DepositElite, and finalizes into Reports.
// Everything topological — who talks to whom, and when the archipelago as
// a whole is done — lives behind the Migrator seam; the Engine never
// assumes its islands are the whole ring.
type Engine struct {
	g        *dag.Graph
	p        Params
	local    []int // global indices of the islands this engine owns
	colonies []*core.Colony
	seeds    []int64
	done     []bool
}

// NewEngine builds the colonies for the given global island indices.
// Island i's colony seed is core.SubSeed(p.Colony.Seed, i) regardless of
// which engine (process) hosts it, so any partition of the ring over any
// number of engines walks the very same ants.
func NewEngine(g *dag.Graph, p Params, local []int) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(local))
	for _, i := range local {
		if i < 0 || i >= p.Islands {
			return nil, fmt.Errorf("island: local island %d outside ring [0,%d)", i, p.Islands)
		}
		if seen[i] {
			return nil, fmt.Errorf("island: local island %d listed twice", i)
		}
		seen[i] = true
	}
	e := &Engine{
		g:        g,
		p:        p,
		local:    append([]int(nil), local...),
		colonies: make([]*core.Colony, len(local)),
		seeds:    make([]int64, len(local)),
		done:     make([]bool, len(local)),
	}
	for j, i := range e.local {
		cp := p.Colony
		cp.Seed = core.SubSeed(p.Colony.Seed, i)
		e.seeds[j] = cp.Seed
		c, err := core.NewColony(g, cp)
		if err != nil {
			return nil, err
		}
		e.colonies[j] = c
	}
	return e, nil
}

// Step runs one epoch: every live local island advances MigrationInterval
// tours, concurrently — each colony owns all its state and its internal
// worker pool is already schedule-independent — and the WaitGroup is the
// local half of the epoch barrier. It returns every local island's elite
// (done islands keep emitting their final elite so the ring stays fed
// until the whole archipelago finishes). Errors are reported for the
// lowest-index island so the message does not depend on which goroutine
// lost the race to a cancelled context.
func (e *Engine) Step(ctx context.Context) ([]Elite, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(e.local))
	for j := range e.colonies {
		if e.done[j] {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			e.done[j], errs[j] = e.colonies[j].StepContext(ctx, e.p.MigrationInterval)
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("island %d: %w", e.local[j], err)
		}
	}
	elites := make([]Elite, len(e.local))
	for j, c := range e.colonies {
		assign, obj := c.Best()
		elites[j] = Elite{Island: e.local[j], Assign: assign, Objective: obj, Done: e.done[j]}
	}
	return elites, nil
}

// Live reports whether any local island is still running.
func (e *Engine) Live() bool {
	for _, d := range e.done {
		if !d {
			return true
		}
	}
	return false
}

// Absorb deposits incoming[j] into the j-th local island. Islands that
// already stopped receive no deposit — their matrix is dead weight — but
// still occupy their slot so positions line up. An empty slice (no
// migration this epoch) is a no-op.
func (e *Engine) Absorb(incoming []Elite) error {
	if len(incoming) == 0 {
		return nil
	}
	if len(incoming) != len(e.local) {
		return fmt.Errorf("island: %d incoming elites for %d local islands", len(incoming), len(e.local))
	}
	for j, c := range e.colonies {
		if e.done[j] {
			continue
		}
		src := incoming[j]
		if err := c.DepositElite(src.Assign, src.Objective); err != nil {
			return fmt.Errorf("island %d: migration: %w", e.local[j], err)
		}
	}
	return nil
}

// Finalize normalizes every local island's best layering into its Report,
// in local order. Call it once, after the epoch loop is over.
func (e *Engine) Finalize() ([]Report, error) {
	reports := make([]Report, len(e.local))
	for j, c := range e.colonies {
		r, err := c.Finalize()
		if err != nil {
			return nil, fmt.Errorf("island %d: %w", e.local[j], err)
		}
		reports[j] = Report{
			Island:    e.local[j],
			Seed:      e.seeds[j],
			Objective: r.Objective,
			BestTour:  r.BestTour,
			ToursRun:  len(r.History),
			Assign:    r.Layering.Assignment(),
			Height:    r.Height,
			Width:     r.Width,
			History:   r.History,
			State:     r.State,
		}
	}
	return reports, nil
}

// Drive runs the epoch loop over an engine and a migrator: step the local
// islands, exchange elites at the barrier, absorb the incoming ones,
// until the migrator reports the archipelago is globally done. It returns
// how many epochs ended in a migration (an exchange that actually fed the
// ring — single-island archipelagos never migrate).
func Drive(ctx context.Context, e *Engine, m Migrator) (migrations int, err error) {
	for epoch := 1; ; epoch++ {
		elites, err := e.Step(ctx)
		if err != nil {
			return migrations, err
		}
		incoming, cont, err := m.Exchange(ctx, epoch, elites)
		if err != nil {
			return migrations, err
		}
		if !cont {
			return migrations, nil
		}
		if err := e.Absorb(incoming); err != nil {
			return migrations, err
		}
		if len(incoming) > 0 {
			migrations++
		}
	}
}

// Assemble reassembles a Result from the complete set of island reports,
// in ring order (reports[i].Island must equal i), under the run's
// parameters (p.Colony.DummyWidth weighs the dummy vertices). It is the
// one place the winner is chosen — highest objective, ties to the lowest
// ring index — for the in-process and the distributed archipelago alike.
// Because reports may have crossed a network, the winning layering is
// revalidated and its Height/Width are recomputed from the assignment
// rather than trusted from the wire (the recomputation runs the same
// code path as the worker's Finalize over an identical layering, so the
// values are bit-identical when the report is honest). The Objective is
// necessarily trusted: it was measured in the stretched search space,
// which normalization has already collapsed.
func Assemble(g *dag.Graph, p Params, reports []Report, migrations int) (*Result, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("island: no island reports to assemble")
	}
	res := &Result{Migrations: migrations, PerIsland: make([]IslandStats, len(reports))}
	best := -1
	for i := range reports {
		r := &reports[i]
		if r.Island != i {
			return nil, fmt.Errorf("island: report %d is for island %d; want the full ring in order", i, r.Island)
		}
		res.PerIsland[i] = IslandStats{
			Island:    r.Island,
			Seed:      r.Seed,
			Objective: r.Objective,
			BestTour:  r.BestTour,
			ToursRun:  r.ToursRun,
		}
		if best < 0 || r.Objective > res.Objective {
			best = i
			l := layering.FromAssignment(g, append([]int(nil), r.Assign...))
			if err := l.Validate(); err != nil {
				return nil, fmt.Errorf("island %d: invalid reported layering: %w", r.Island, err)
			}
			res.Result = core.Result{
				Layering:  l,
				Objective: r.Objective,
				Height:    l.Height(),
				Width:     l.WidthIncludingDummies(p.Colony.DummyWidth),
				BestTour:  r.BestTour,
				History:   r.History,
				// The winning island's state is the one the next warm
				// start resumes from — it is the matrix that produced
				// the served layering.
				State: r.State,
			}
		}
	}
	res.BestIsland = best
	return res, nil
}
