package island

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/layering"
)

func testGraph(t testing.TB, n int, seed int64) *dag.Graph {
	t.Helper()
	g, err := graphgen.Generate(graphgen.DefaultConfig(n), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fingerprint renders everything observable about a result into one string,
// including the exact float bits of the objective, so two runs compare
// bitwise rather than approximately.
func fingerprint(res *Result) string {
	s := fmt.Sprintf("obj=%x best=%d tour=%d migrations=%d layers=%v",
		math.Float64bits(res.Objective), res.BestIsland, res.BestTour,
		res.Migrations, res.Layering.Layers())
	for _, st := range res.PerIsland {
		s += fmt.Sprintf(";i%d seed=%d obj=%x tours=%d", st.Island, st.Seed,
			math.Float64bits(st.Objective), st.ToursRun)
	}
	return s
}

// TestIslandDeterministicAcrossWorkers pins the island model's core
// guarantee: the archipelago's outcome is a pure function of (graph,
// Params) — bitwise-identical at any per-colony worker count and under
// any goroutine schedule.
func TestIslandDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t, 60, 11)
	base := DefaultParams()
	base.Colony.Tours = 6
	base.Colony.Seed = 42
	base.Islands = 4
	base.MigrationInterval = 2

	var want string
	for _, workers := range []int{1, 4, 8} {
		p := base
		p.Colony.Workers = workers
		res, err := Run(context.Background(), g, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.Layering.Validate(); err != nil {
			t.Fatalf("workers=%d: invalid layering: %v", workers, err)
		}
		got := fingerprint(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d diverged:\n got %s\nwant %s", workers, got, want)
		}
	}
}

// TestIslandImprovesOnSingleColony compares the archipelago against one
// colony given the same total tour budget (Islands × Tours tours of Ants
// walks each) over a one-graph-per-group corpus sample: the aggregate
// cost H+W must match or improve. Independent seeds plus elitist
// migration is a restart strategy with cooperation, so it should never
// lose the aggregate even when a single graph goes either way.
func TestIslandImprovesOnSingleColony(t *testing.T) {
	groups, err := graphgen.CorpusSample(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ip := DefaultParams()
	ip.Colony.Tours = 5
	ip.Colony.Workers = 1
	ip.Islands = 4
	ip.MigrationInterval = 2

	sp := ip.Colony
	sp.Tours = ip.Colony.Tours * ip.Islands // equal total tours

	costOf := func(l *layering.Layering) float64 {
		return float64(l.Height()) + l.WidthIncludingDummies(1)
	}
	var islandCost, singleCost float64
	for _, gr := range groups {
		for _, g := range gr.Graphs {
			ires, err := Run(context.Background(), g, ip)
			if err != nil {
				t.Fatal(err)
			}
			sres, err := core.Run(context.Background(), g, sp)
			if err != nil {
				t.Fatal(err)
			}
			islandCost += costOf(ires.Layering)
			singleCost += costOf(sres.Layering)
		}
	}
	t.Logf("aggregate cost H+W: island=%.1f single=%.1f", islandCost, singleCost)
	if islandCost > singleCost {
		t.Errorf("island aggregate cost %.1f worse than single colony %.1f at equal total tours",
			islandCost, singleCost)
	}
}

// TestIslandSingleIslandMatchesColony: with K = 1 the archipelago is
// exactly one colony seeded with SubSeed(master, 0).
func TestIslandSingleIslandMatchesColony(t *testing.T) {
	g := testGraph(t, 40, 7)
	p := DefaultParams()
	p.Islands = 1
	p.Colony.Seed = 99
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("single island migrated %d times", res.Migrations)
	}
	cp := p.Colony
	cp.Seed = core.SubSeed(p.Colony.Seed, 0)
	want, err := core.Run(context.Background(), g, cp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != want.Objective || fmt.Sprint(res.Layering.Layers()) != fmt.Sprint(want.Layering.Layers()) {
		t.Errorf("K=1 island diverged from the equivalent colony: %v vs %v", res.Objective, want.Objective)
	}
}

// TestIslandNoMigrationIsIndependentRestarts: an interval at or past the
// tour count never reaches a migration barrier with live islands.
func TestIslandNoMigrationWhenIntervalCoversRun(t *testing.T) {
	g := testGraph(t, 30, 5)
	p := DefaultParams()
	p.Colony.Tours = 4
	p.MigrationInterval = 4
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Errorf("interval=tours still migrated %d times", res.Migrations)
	}
	for _, st := range res.PerIsland {
		if st.ToursRun != p.Colony.Tours {
			t.Errorf("island %d ran %d tours, want %d", st.Island, st.ToursRun, p.Colony.Tours)
		}
	}
}

func TestIslandValidate(t *testing.T) {
	g := dag.New(2)
	g.MustAddEdge(1, 0)
	cases := []func(*Params){
		func(p *Params) { p.Islands = 0 },
		func(p *Params) { p.MigrationInterval = 0 },
		func(p *Params) { p.Colony.Ants = 0 },
	}
	for i, mutate := range cases {
		p := DefaultParams()
		mutate(&p)
		if _, err := Run(context.Background(), g, p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestIslandEmptyGraph(t *testing.T) {
	res, err := Run(context.Background(), dag.New(0), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Layering == nil || len(res.Layering.Layers()) != 0 {
		t.Fatalf("empty graph result: %+v", res)
	}
}

func TestIslandCancellation(t *testing.T) {
	g := testGraph(t, 80, 13)
	p := DefaultParams()
	p.Colony.Tours = 100000
	p.Colony.Ants = 8
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, g, p); err == nil {
		t.Fatal("cancelled island run succeeded")
	}
}

// TestIslandEarlyStoppingStaggers: islands may stop at different epochs
// under the stagnation rule; the run must survive that and report each
// island's true tour count.
func TestIslandEarlyStopping(t *testing.T) {
	g := testGraph(t, 30, 17)
	p := DefaultParams()
	p.Colony.Tours = 40
	p.Colony.StopAfterStagnantTours = 3
	p.MigrationInterval = 2
	res, err := Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.PerIsland {
		if st.ToursRun < 1 || st.ToursRun > p.Colony.Tours {
			t.Errorf("island %d ran %d tours, outside [1,%d]", st.Island, st.ToursRun, p.Colony.Tours)
		}
	}
}

func TestLayerConvenience(t *testing.T) {
	g := testGraph(t, 20, 3)
	l, err := Layer(context.Background(), g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}
