// Package island implements an island-model multi-colony search on top of
// the paper's ant colony (package core).
//
// K independent colonies ("islands") search the same stretched layer
// space concurrently, each from its own SplitMix64-derived master seed.
// Every MigrationInterval tours the islands synchronize at a barrier and
// each island's elite layering (its best-so-far assignment) migrates to
// its ring neighbour, seeding the neighbour's pheromone matrix through
// core.Colony.DepositElite — the classic coarse-grained parallel ACO
// topology (a unidirectional ring with elitist emigrants). Migration
// biases a neighbour towards a good foreign solution without overwriting
// its own search state, so the islands cooperate while their pheromone
// populations stay diverse.
//
// Determinism: the run is a pure function of (graph, Params). Island i's
// colony seed is core.SubSeed(Seed, i); every epoch is a barrier (all
// islands finish their tour slice before any elite is read); elites are
// collected and deposited in island order by the coordinating goroutine
// alone. No RNG stream, pheromone matrix or scratch buffer is ever shared
// between islands, so the result is bitwise-identical at any
// Params.Colony.Workers setting and under any goroutine schedule — the
// same guarantee the single colony gives, lifted to the archipelago.
package island

import (
	"context"
	"fmt"
	"sync"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Params configures an island run. The zero value is not valid; start
// from DefaultParams.
type Params struct {
	// Colony configures every island's colony: each island runs
	// Colony.Tours tours with Colony.Ants ants, so an island run spends
	// Islands × Tours × Ants walks in total. Colony.Seed is the master
	// seed the per-island seeds are derived from.
	Colony core.Params
	// Islands is the number of colonies K (>= 1). With K = 1 the run
	// degenerates to a single colony and no migration happens.
	Islands int
	// MigrationInterval is how many tours every island runs between two
	// migration barriers (>= 1). An interval at or above Colony.Tours
	// means the islands never exchange anything — independent restarts.
	MigrationInterval int
}

// DefaultParams returns the paper's colony defaults wrapped in a 4-island
// ring migrating every 2 tours.
func DefaultParams() Params {
	return Params{Colony: core.DefaultParams(), Islands: 4, MigrationInterval: 2}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	if err := p.Colony.Validate(); err != nil {
		return err
	}
	if p.Islands < 1 {
		return fmt.Errorf("island: Islands must be >= 1, got %d", p.Islands)
	}
	if p.MigrationInterval < 1 {
		return fmt.Errorf("island: MigrationInterval must be >= 1, got %d", p.MigrationInterval)
	}
	return nil
}

// IslandStats summarises one island's contribution to a run.
type IslandStats struct {
	// Island is the island's index (0-based ring position).
	Island int
	// Seed is the island's derived colony seed.
	Seed int64
	// Objective is the island's best f = 1/(H+W).
	Objective float64
	// BestTour is the island-local tour that found its best walk (0 = the
	// LPL seed stood).
	BestTour int
	// ToursRun counts the tours the island executed (early stopping can
	// end an island before the others).
	ToursRun int
}

// Result is the outcome of an island run: the winning island's colony
// result plus per-island statistics.
type Result struct {
	core.Result
	// BestIsland is the index of the island that produced Layering; ties
	// on the objective go to the lowest index, so the value is as
	// deterministic as the layering itself.
	BestIsland int
	// Migrations counts the migration barriers at which elites moved.
	Migrations int
	// PerIsland holds one entry per island, in ring order.
	PerIsland []IslandStats
}

// Run executes an island-model search over g under ctx and returns the
// best layering found by any island. Cancellation follows
// core.Colony.RunContext: the first cancelled island aborts the whole run
// with an error wrapping ctx.Err().
func Run(ctx context.Context, g *dag.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	k := p.Islands
	colonies := make([]*core.Colony, k)
	seeds := make([]int64, k)
	for i := range colonies {
		cp := p.Colony
		cp.Seed = core.SubSeed(p.Colony.Seed, i)
		seeds[i] = cp.Seed
		c, err := core.NewColony(g, cp)
		if err != nil {
			return nil, err
		}
		colonies[i] = c
	}

	res := &Result{PerIsland: make([]IslandStats, k)}
	done := make([]bool, k)
	errs := make([]error, k)
	for {
		// Epoch: every live island advances MigrationInterval tours. The
		// islands run concurrently — each colony owns all its state, and
		// its internal worker pool is already schedule-independent — and
		// the WaitGroup is the migration barrier.
		var wg sync.WaitGroup
		for i := range colonies {
			if done[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				done[i], errs[i] = colonies[i].StepContext(ctx, p.MigrationInterval)
			}(i)
		}
		wg.Wait()
		// Report the lowest-index error so the message does not depend on
		// which goroutine lost the race to the cancelled context.
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("island %d: %w", i, err)
			}
		}
		live := 0
		for i := range done {
			if !done[i] {
				live++
			}
		}
		if live == 0 {
			break
		}
		// Migration: island i's elite emigrates to ring neighbour
		// (i+1) mod K. Elites are snapshotted before any deposit, so the
		// exchange reflects the barrier state, not a half-migrated one.
		// Islands that already stopped still emit their elite (it is
		// final) but receive no deposit — their matrix is dead weight.
		if k > 1 {
			type elite struct {
				assign []int
				obj    float64
			}
			elites := make([]elite, k)
			for i, c := range colonies {
				elites[i].assign, elites[i].obj = c.Best()
			}
			for i, c := range colonies {
				if done[i] {
					continue
				}
				src := elites[(i-1+k)%k]
				if err := c.DepositElite(src.assign, src.obj); err != nil {
					return nil, fmt.Errorf("island %d: migration: %w", i, err)
				}
			}
			res.Migrations++
		}
	}

	best := -1
	for i, c := range colonies {
		r, err := c.Finalize()
		if err != nil {
			return nil, fmt.Errorf("island %d: %w", i, err)
		}
		res.PerIsland[i] = IslandStats{
			Island:    i,
			Seed:      seeds[i],
			Objective: r.Objective,
			BestTour:  r.BestTour,
			ToursRun:  len(r.History),
		}
		if best < 0 || r.Objective > res.Objective {
			best = i
			res.Result = *r
		}
	}
	res.BestIsland = best
	return res, nil
}

// Layer is the package-level convenience mirroring core.Layer: run the
// archipelago and return only the layering.
func Layer(ctx context.Context, g *dag.Graph, p Params) (*layering.Layering, error) {
	res, err := Run(ctx, g, p)
	if err != nil {
		return nil, err
	}
	return res.Layering, nil
}
