// Package island implements an island-model multi-colony search on top of
// the paper's ant colony (package core).
//
// K independent colonies ("islands") search the same stretched layer
// space concurrently, each from its own SplitMix64-derived master seed.
// Every MigrationInterval tours the islands synchronize at a barrier and
// each island's elite layering (its best-so-far assignment) migrates to
// its ring neighbour, seeding the neighbour's pheromone matrix through
// core.Colony.DepositElite — the classic coarse-grained parallel ACO
// topology (a unidirectional ring with elitist emigrants). Migration
// biases a neighbour towards a good foreign solution without overwriting
// its own search state, so the islands cooperate while their pheromone
// populations stay diverse.
//
// The package is split along the paper's natural parallel boundary:
//
//   - Engine is the pure epoch engine — it steps a set of islands in
//     tour slices, emits their elites at each barrier, absorbs foreign
//     elites, and finalizes per-island Reports. It never knows the ring
//     topology or where the other islands live.
//   - Migrator owns the barrier and the elite exchange. Ring is the
//     in-process implementation; internal/shard implements the same
//     interface over a network so the archipelago spans processes, with
//     a coordinator playing the ring and one Engine per worker process.
//
// Determinism: the run is a pure function of (graph, Params). Island i's
// colony seed is core.SubSeed(Seed, i); every epoch is a barrier (all
// islands finish their tour slice before any elite is read); elites are
// exchanged in ring order at the barrier and deposited only there. No RNG
// stream, pheromone matrix or scratch buffer is ever shared between
// islands, so the result is bitwise-identical at any
// Params.Colony.Workers setting, under any goroutine schedule, and — the
// distributed extension — for any partition of the islands over any
// number of worker processes: the per-island work is the same wherever
// the island is hosted, and the barrier makes every epoch's exchange see
// the same elites. See DESIGN.md §10.
package island

import (
	"context"
	"fmt"

	"antlayer/internal/core"
	"antlayer/internal/dag"
	"antlayer/internal/layering"
)

// Params configures an island run. The zero value is not valid; start
// from DefaultParams.
type Params struct {
	// Colony configures every island's colony: each island runs
	// Colony.Tours tours with Colony.Ants ants, so an island run spends
	// Islands × Tours × Ants walks in total. Colony.Seed is the master
	// seed the per-island seeds are derived from. Colony.Warm, when set,
	// warm-starts every island from the same carried state (each island
	// copies the values out; the State itself is never mutated), and
	// Colony.ExportState makes each Report carry its island's final
	// state — both ride the run frame unchanged when the archipelago is
	// sharded over a worker fleet, so distributed runs warm-start
	// byte-identically to in-process ones.
	Colony core.Params
	// Islands is the number of colonies K (>= 1). With K = 1 the run
	// degenerates to a single colony and no migration happens.
	Islands int
	// MigrationInterval is how many tours every island runs between two
	// migration barriers (>= 1). An interval at or above Colony.Tours
	// means the islands never exchange anything — independent restarts.
	MigrationInterval int
	// Migrator, when non-nil, replaces the in-process ring: Run drives
	// all Islands locally but routes every epoch's elite exchange through
	// it. This is the pluggable-transport seam — tests inject fakes here,
	// and custom topologies (or transports) plug in without touching the
	// engine. Leave nil for the default Ring. The field is excluded from
	// serialization: a transport is process-local wiring, not a search
	// parameter, and it never influences the layering produced.
	Migrator Migrator `json:"-"`
}

// DefaultParams returns the paper's colony defaults wrapped in a 4-island
// ring migrating every 2 tours.
func DefaultParams() Params {
	return Params{Colony: core.DefaultParams(), Islands: 4, MigrationInterval: 2}
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	if err := p.Colony.Validate(); err != nil {
		return err
	}
	if p.Islands < 1 {
		return fmt.Errorf("island: Islands must be >= 1, got %d", p.Islands)
	}
	if p.MigrationInterval < 1 {
		return fmt.Errorf("island: MigrationInterval must be >= 1, got %d", p.MigrationInterval)
	}
	return nil
}

// IslandStats summarises one island's contribution to a run.
type IslandStats struct {
	// Island is the island's index (0-based ring position).
	Island int
	// Seed is the island's derived colony seed.
	Seed int64
	// Objective is the island's best f = 1/(H+W).
	Objective float64
	// BestTour is the island-local tour that found its best walk (0 = the
	// LPL seed stood).
	BestTour int
	// ToursRun counts the tours the island executed (early stopping can
	// end an island before the others).
	ToursRun int
}

// Result is the outcome of an island run: the winning island's colony
// result plus per-island statistics.
type Result struct {
	core.Result
	// BestIsland is the index of the island that produced Layering; ties
	// on the objective go to the lowest index, so the value is as
	// deterministic as the layering itself.
	BestIsland int
	// Migrations counts the migration barriers at which elites moved.
	Migrations int
	// PerIsland holds one entry per island, in ring order.
	PerIsland []IslandStats
}

// Run executes an island-model search over g under ctx and returns the
// best layering found by any island: an Engine over all p.Islands
// islands, driven against p.Migrator (default: the in-process Ring).
// Cancellation follows core.Colony.RunContext: the first cancelled island
// aborts the whole run with an error wrapping ctx.Err().
func Run(ctx context.Context, g *dag.Graph, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	local := make([]int, p.Islands)
	for i := range local {
		local[i] = i
	}
	e, err := NewEngine(g, p, local)
	if err != nil {
		return nil, err
	}
	m := p.Migrator
	if m == nil {
		m = NewRing(p.Islands)
	}
	migrations, err := Drive(ctx, e, m)
	if err != nil {
		return nil, err
	}
	reports, err := e.Finalize()
	if err != nil {
		return nil, err
	}
	return Assemble(g, p, reports, migrations)
}

// Layer is the package-level convenience mirroring core.Layer: run the
// archipelago and return only the layering.
func Layer(ctx context.Context, g *dag.Graph, p Params) (*layering.Layering, error) {
	res, err := Run(ctx, g, p)
	if err != nil {
		return nil, err
	}
	return res.Layering, nil
}
