package island

import (
	"context"
	"testing"
)

// BenchmarkIslandMigratorOverhead pins the cost of the Migrator seam on
// the in-process path: the same workload as the public BenchmarkIsland
// (100 vertices, 4 islands × 4 tours of 8 sequential ants, migration
// every 2 tours) driven through Run with the ring injected explicitly
// via Params.Migrator — the interface-dispatch route a custom transport
// takes. Compared against BenchmarkIsland in the CI baseline, it shows
// the indirection adds no measurable cost over the direct call.
func BenchmarkIslandMigratorOverhead(b *testing.B) {
	g := testGraph(b, 100, 100)
	p := DefaultParams()
	p.Colony.Ants = 8
	p.Colony.Tours = 4
	p.Colony.Workers = 1
	p.Islands = 4
	p.MigrationInterval = 2
	p.Migrator = NewRing(p.Islands)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), g, p); err != nil {
			b.Fatal(err)
		}
	}
}
