package shard

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/island"
	"antlayer/internal/obs"
)

// errAborted tags a run the coordinator told the worker to drop; the
// worker returns to idle without reporting.
var errAborted = errors.New("shard: run aborted by coordinator")

// defaultHeartbeatInterval is how often an idle or computing worker tells
// the coordinator it is alive. A quarter of the coordinator's default
// liveness timeout, plus margin.
const defaultHeartbeatInterval = 2 * time.Second

// FaultPlan is a test-only fault-injection hook: the chaos harness (and
// the shard failure tests) use it to make a worker misbehave at an exact,
// reproducible point in the epoch protocol. Production workers run with a
// nil plan. The Die* faults fire at most once per Worker, so a worker
// restarted by a reconnect loop rejoins healthy instead of dying forever.
type FaultPlan struct {
	// EpochDelay sleeps this long before answering each epoch barrier —
	// a deterministic "slow worker" that drags every epoch of every run.
	EpochDelay time.Duration
	// DieAtEpoch, when positive, closes the coordinator connection
	// instead of sending that epoch's frame: death mid-epoch, while the
	// coordinator is blocked at the barrier.
	DieAtEpoch int
	// DieAfterMigrate, when positive, closes the connection right after
	// consuming the migrate frame of that epoch: death between migrate
	// and finish, after the coordinator committed the exchange.
	DieAfterMigrate int
}

// WorkerConfig tunes a Worker. The zero value is usable.
type WorkerConfig struct {
	// Name identifies the worker in the coordinator's logs and metrics.
	// Empty means the coordinator assigns "worker-<id>".
	Name string
	// Secret is the shared cluster secret presented at registration.
	// Must match the coordinator's when one is configured there; a
	// mismatch is a clean registration failure.
	Secret string
	// HeartbeatInterval is how often the worker sends a liveness frame —
	// also while computing an epoch, so a slow shard is distinguishable
	// from a dead one. 0 means the default (2s); negative disables
	// heartbeats (the coordinator's reaper will then expel the worker
	// unless its timeout is disabled too).
	HeartbeatInterval time.Duration
	// OnRegister, when non-nil, is called after each successful
	// registration with the coordinator-assigned worker id. The reconnect
	// backoff in `daglayer worker` resets on it.
	OnRegister func(id int)
	// Fault injects test-only faults; nil (always, in production) means
	// a healthy worker.
	Fault *FaultPlan
	// Log receives run-lifecycle lines. Nil discards.
	Log *slog.Logger
}

// Worker hosts island slices for a coordinator: it dials, registers, and
// then serves runs until the connection drops or the context is done.
// One Worker serves one coordinator connection at a time; each run gets
// a fresh island.Engine, so no state leaks between runs.
type Worker struct {
	cfg WorkerConfig
	// faultFired latches the one-shot Die* faults (see FaultPlan).
	faultFired atomic.Bool
}

// NewWorker builds a Worker (zero-value config fine).
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = defaultHeartbeatInterval
	}
	if cfg.Log == nil {
		cfg.Log = obs.Discard()
	}
	return &Worker{cfg: cfg}
}

// lockedConn serialises frame writes on a worker connection between the
// run exchange and the background heartbeat goroutine. Reads need no
// lock: the Run loop is the only reader.
type lockedConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (lc *lockedConn) write(m *message) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return writeFrame(lc.conn, m)
}

// Run dials the coordinator at addr, registers, and serves runs until
// ctx is cancelled (returns nil) or the connection fails (returns the
// error; callers typically back off and redial).
func (w *Worker) Run(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: dial coordinator %s: %w", addr, err)
	}
	defer conn.Close()
	// Unblock any pending read/write when ctx is cancelled.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	lc := &lockedConn{conn: conn}
	if err := lc.write(&message{Type: msgHello, Name: w.cfg.Name, Auth: w.cfg.Secret}); err != nil {
		return err
	}
	var welcome message
	if err := readFrame(conn, &welcome); err != nil || welcome.Type != msgWelcome {
		if ctx.Err() != nil {
			return nil
		}
		if err == nil && welcome.Type == msgError {
			return fmt.Errorf("shard: registration with %s rejected: %s", addr, welcome.Error)
		}
		return fmt.Errorf("shard: registration with %s failed (got %v, err %v)", addr, welcome.Type, err)
	}
	name := w.cfg.Name
	if name == "" {
		// Mirror the coordinator's assigned name so the worker's span and
		// log attributes join against the coordinator's metrics.
		name = fmt.Sprintf("worker-%d", welcome.WorkerID)
	}
	w.cfg.Log.Info("registered with coordinator", "coordinator", addr, "worker", name, "worker_id", welcome.WorkerID)
	if w.cfg.OnRegister != nil {
		w.cfg.OnRegister(welcome.WorkerID)
	}

	// Heartbeat: a liveness frame every interval, whatever the worker is
	// doing — computing an epoch included. A write failure just stops the
	// beat; the Run loop's read surfaces the broken connection.
	if w.cfg.HeartbeatInterval > 0 {
		go func() {
			t := time.NewTicker(w.cfg.HeartbeatInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					if err := lc.write(&message{Type: msgHeartbeat}); err != nil {
						return
					}
				}
			}
		}()
	}

	for {
		var m message
		if err := readFrame(conn, &m); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("shard: coordinator connection lost: %w", err)
		}
		switch m.Type {
		case msgRun:
			if err := w.serveRun(ctx, lc, &m, name); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
		case msgError:
			// A stray abort for a run this worker already left; ignore.
		default:
			// Unknown frame while idle: tolerate (forward compatibility).
		}
	}
}

// serveRun executes one assigned run. Worker-side failures are reported
// to the coordinator in-band and leave the connection usable; only
// transport failures propagate (and end the connection). The worker
// measures its per-epoch compute into a local trace whose clock starts
// here; the report frame carries those spans back for the coordinator
// to rebase onto the request trace.
func (w *Worker) serveRun(ctx context.Context, lc *lockedConn, run *message, name string) error {
	start := time.Now()
	tr := obs.NewTrace(run.TraceID)
	reports, err := w.computeRun(ctx, lc, run, tr, name)
	if err != nil {
		if errors.Is(err, errAborted) {
			w.cfg.Log.Info("run aborted by coordinator", "seq", run.Seq, "trace", run.TraceID)
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		// In-band failure: tell the coordinator and stay registered.
		w.cfg.Log.Warn("run failed", "seq", run.Seq, "trace", run.TraceID, "err", err)
		return lc.write(&message{Type: msgError, Seq: run.Seq, Error: err.Error()})
	}
	if err := lc.write(&message{Type: msgReport, Seq: run.Seq, Reports: reports, Spans: tr.Spans()}); err != nil {
		return err
	}
	w.cfg.Log.Info("run complete", "seq", run.Seq, "trace", run.TraceID,
		"islands", len(reports), "dur", time.Since(start).Round(time.Millisecond))
	return nil
}

// computeRun builds the engine for the assigned slice and drives it
// against the network migrator until the coordinator says the
// archipelago is done.
func (w *Worker) computeRun(ctx context.Context, lc *lockedConn, run *message, tr *obs.Trace, name string) ([]island.Report, error) {
	if run.Graph == nil || run.Params == nil {
		return nil, fmt.Errorf("shard: run frame missing graph or params")
	}
	g, err := dag.FromSnapshot(*run.Graph)
	if err != nil {
		return nil, err
	}
	e, err := island.NewEngine(g, *run.Params, run.Islands)
	if err != nil {
		return nil, err
	}
	m := &netMigrator{worker: w, lc: lc, seq: run.Seq, tr: tr, name: name}
	if _, err := island.Drive(ctx, e, m); err != nil {
		return nil, err
	}
	return e.Finalize()
}

// netMigrator is the worker-side Migrator: the epoch barrier and the
// elite exchange live on the far side of the coordinator connection.
type netMigrator struct {
	worker *Worker
	lc     *lockedConn
	seq    uint64

	// Span measurement: tr's clock starts at the run frame; last is the
	// offset at which the previous Exchange returned, so the stretch up
	// to the next Exchange call is this epoch's compute time.
	tr   *obs.Trace
	name string
	last time.Duration
}

// die executes a one-shot connection-killing fault: close the socket so
// the coordinator sees the death exactly where the plan placed it.
func (m *netMigrator) die(where string, epoch int) error {
	m.lc.conn.Close()
	return fmt.Errorf("shard: fault injection: dying %s (epoch %d)", where, epoch)
}

// Exchange sends the local elites and blocks until the coordinator's
// barrier answers — with the incoming elites (migrate), the end of the
// run (finish), or an abort (error).
func (m *netMigrator) Exchange(ctx context.Context, epoch int, local []island.Elite) ([]island.Elite, bool, error) {
	if f := m.worker.cfg.Fault; f != nil {
		if f.EpochDelay > 0 {
			select {
			case <-time.After(f.EpochDelay):
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		if f.DieAtEpoch == epoch && m.worker.faultFired.CompareAndSwap(false, true) {
			return nil, false, m.die("mid-epoch", epoch)
		}
	}
	// The stretch since the previous barrier answer is this epoch's
	// compute (fault delays included — they simulate slow compute).
	now := m.tr.Since()
	m.tr.Observe("worker_epoch", m.name, epoch, m.last, now-m.last)
	if err := m.lc.write(&message{Type: msgEpoch, Seq: m.seq, Epoch: epoch, Elites: local}); err != nil {
		return nil, false, err
	}
	for {
		var reply message
		if err := readFrame(m.lc.conn, &reply); err != nil {
			if ctx.Err() != nil {
				return nil, false, fmt.Errorf("shard: exchange aborted: %w", ctx.Err())
			}
			return nil, false, err
		}
		if reply.Seq != m.seq {
			continue // frame from another run; not ours
		}
		switch reply.Type {
		case msgMigrate:
			if f := m.worker.cfg.Fault; f != nil && f.DieAfterMigrate == epoch && m.worker.faultFired.CompareAndSwap(false, true) {
				return nil, false, m.die("after migrate", epoch)
			}
			m.last = m.tr.Since()
			return reply.Elites, true, nil
		case msgFinish:
			return nil, false, nil
		case msgError:
			return nil, false, fmt.Errorf("%w: %s", errAborted, reply.Error)
		default:
			return nil, false, fmt.Errorf("shard: protocol: unexpected %s frame at the barrier", reply.Type)
		}
	}
}
