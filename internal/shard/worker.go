package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/island"
)

// errAborted tags a run the coordinator told the worker to drop; the
// worker returns to idle without reporting.
var errAborted = errors.New("shard: run aborted by coordinator")

// WorkerConfig tunes a Worker. The zero value is usable.
type WorkerConfig struct {
	// Name identifies the worker in the coordinator's logs and metrics.
	// Empty means the coordinator assigns "worker-<id>".
	Name string
	// Log receives run-lifecycle lines. Nil discards.
	Log *log.Logger
}

// Worker hosts island slices for a coordinator: it dials, registers, and
// then serves runs until the connection drops or the context is done.
// One Worker serves one coordinator connection at a time; each run gets
// a fresh island.Engine, so no state leaks between runs.
type Worker struct {
	cfg WorkerConfig
}

// NewWorker builds a Worker (zero-value config fine).
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		w.cfg.Log.Printf(format, args...)
	}
}

// Run dials the coordinator at addr, registers, and serves runs until
// ctx is cancelled (returns nil) or the connection fails (returns the
// error; callers typically back off and redial).
func (w *Worker) Run(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("shard: dial coordinator %s: %w", addr, err)
	}
	defer conn.Close()
	// Unblock any pending read/write when ctx is cancelled.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-done:
		}
	}()

	if err := writeFrame(conn, &message{Type: msgHello, Name: w.cfg.Name}); err != nil {
		return err
	}
	var welcome message
	if err := readFrame(conn, &welcome); err != nil || welcome.Type != msgWelcome {
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("shard: registration with %s failed (got %v, err %v)", addr, welcome.Type, err)
	}
	w.logf("registered with coordinator %s as worker %d", addr, welcome.WorkerID)

	for {
		var m message
		if err := readFrame(conn, &m); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("shard: coordinator connection lost: %w", err)
		}
		switch m.Type {
		case msgRun:
			if err := w.serveRun(ctx, conn, &m); err != nil {
				if ctx.Err() != nil {
					return nil
				}
				return err
			}
		case msgError:
			// A stray abort for a run this worker already left; ignore.
		default:
			// Unknown frame while idle: tolerate (forward compatibility).
		}
	}
}

// serveRun executes one assigned run. Worker-side failures are reported
// to the coordinator in-band and leave the connection usable; only
// transport failures propagate (and end the connection).
func (w *Worker) serveRun(ctx context.Context, conn net.Conn, run *message) error {
	start := time.Now()
	reports, err := w.computeRun(ctx, conn, run)
	if err != nil {
		if errors.Is(err, errAborted) {
			w.logf("run seq=%d aborted by coordinator", run.Seq)
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		// In-band failure: tell the coordinator and stay registered.
		w.logf("run seq=%d failed: %v", run.Seq, err)
		return writeFrame(conn, &message{Type: msgError, Seq: run.Seq, Error: err.Error()})
	}
	if err := writeFrame(conn, &message{Type: msgReport, Seq: run.Seq, Reports: reports}); err != nil {
		return err
	}
	w.logf("run seq=%d: %d islands reported in %s", run.Seq, len(reports), time.Since(start).Round(time.Millisecond))
	return nil
}

// computeRun builds the engine for the assigned slice and drives it
// against the network migrator until the coordinator says the
// archipelago is done.
func (w *Worker) computeRun(ctx context.Context, conn net.Conn, run *message) ([]island.Report, error) {
	if run.Graph == nil || run.Params == nil {
		return nil, fmt.Errorf("shard: run frame missing graph or params")
	}
	g, err := dag.FromSnapshot(*run.Graph)
	if err != nil {
		return nil, err
	}
	e, err := island.NewEngine(g, *run.Params, run.Islands)
	if err != nil {
		return nil, err
	}
	m := &netMigrator{conn: conn, seq: run.Seq}
	if _, err := island.Drive(ctx, e, m); err != nil {
		return nil, err
	}
	return e.Finalize()
}

// netMigrator is the worker-side Migrator: the epoch barrier and the
// elite exchange live on the far side of the coordinator connection.
type netMigrator struct {
	conn net.Conn
	seq  uint64
}

// Exchange sends the local elites and blocks until the coordinator's
// barrier answers — with the incoming elites (migrate), the end of the
// run (finish), or an abort (error).
func (m *netMigrator) Exchange(ctx context.Context, epoch int, local []island.Elite) ([]island.Elite, bool, error) {
	if err := writeFrame(m.conn, &message{Type: msgEpoch, Seq: m.seq, Epoch: epoch, Elites: local}); err != nil {
		return nil, false, err
	}
	for {
		var reply message
		if err := readFrame(m.conn, &reply); err != nil {
			if ctx.Err() != nil {
				return nil, false, fmt.Errorf("shard: exchange aborted: %w", ctx.Err())
			}
			return nil, false, err
		}
		if reply.Seq != m.seq {
			continue // frame from another run; not ours
		}
		switch reply.Type {
		case msgMigrate:
			return reply.Elites, true, nil
		case msgFinish:
			return nil, false, nil
		case msgError:
			return nil, false, fmt.Errorf("%w: %s", errAborted, reply.Error)
		default:
			return nil, false, fmt.Errorf("shard: protocol: unexpected %s frame at the barrier", reply.Type)
		}
	}
}
