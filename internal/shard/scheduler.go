package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/island"
	"antlayer/internal/obs"
)

// ErrRunQueueFull reports a distributed run rejected at admission because
// the pending-run queue is at its bound. The HTTP layer maps it to 429
// with a stats-derived Retry-After (see Coordinator.RetryAfterSeconds).
var ErrRunQueueFull = errors.New("shard: run queue full")

// defaultQueueDepth bounds the pending-run queue when CoordinatorConfig
// leaves QueueDepth zero.
const defaultQueueDepth = 16

// dispatchWindow is how many recent time-to-dispatch samples the
// dispatch_ms quantiles in Metrics summarise.
const dispatchWindow = 256

// Run lifecycle states, guarded by the Coordinator's mu. A run moves
// queued → dispatched → settled, with one loop back (dispatched → queued
// when its lease is exhausted and it re-enters the queue).
const (
	runQueued = iota
	runDispatched
	runSettled
)

// runOutcome is the settled result of a pendingRun, delivered exactly
// once on its done channel.
type runOutcome struct {
	res *island.Result
	err error
}

// pendingRun is one admitted distributed run flowing through the
// scheduler: admission order, the request itself, and the channel the
// outcome is delivered on.
type pendingRun struct {
	// admit is the admission sequence number — the queue's FIFO order and
	// its deterministic tie-break. A run keeps its admit number when it is
	// requeued after lease exhaustion, so it re-enters ahead of every run
	// admitted after it.
	admit uint64
	ctx   context.Context
	g     *dag.Graph
	p     island.Params

	// Guarded by the Coordinator's mu.
	state        int
	enqueuedAt   time.Time // last (re-)admission; dispatch latency measures from here
	dispatchedAt time.Time

	done chan runOutcome // buffered 1; receives exactly one outcome
}

// RunIsland executes the island run distributed over leased workers and
// returns the assembled result — byte-identical to island.Run(ctx, g, p)
// by construction, whatever the fleet shape and whatever else is running
// concurrently (each run's engines live on its own disjoint worker
// subset). The run is admitted to a bounded FIFO queue and dispatched as
// soon as min(p.Islands, fleet) workers are idle; ErrRunQueueFull
// reports the queue at bound, ErrNoWorkers an empty fleet. A worker
// failure mid-run expels the worker and retries on the lease's
// survivors; when the lease is exhausted the run re-enters the queue at
// its original position.
func (c *Coordinator) RunIsland(ctx context.Context, g *dag.Graph, p island.Params) (*island.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Migrator = nil // transport wiring never crosses the wire
	r, err := c.submit(ctx, g, p)
	if err != nil {
		return nil, err
	}
	select {
	case out := <-r.done:
		return out.res, out.err
	case <-ctx.Done():
		if c.cancelQueued(r) {
			return nil, fmt.Errorf("shard: run cancelled while queued: %w", ctx.Err())
		}
		// Already dispatched: the run's ctx watchdog aborts it promptly.
		out := <-r.done
		return out.res, out.err
	}
}

// submit admits a run to the scheduler. It returns ErrNoWorkers on an
// empty fleet (the caller falls back in-process) and ErrRunQueueFull when
// the run cannot dispatch immediately and the queue is at bound.
func (c *Coordinator) submit(ctx context.Context, g *dag.Graph, p island.Params) (*pendingRun, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.workers) == 0 {
		return nil, ErrNoWorkers
	}
	c.admit++
	r := &pendingRun{
		admit:      c.admit,
		ctx:        ctx,
		g:          g,
		p:          p,
		state:      runQueued,
		enqueuedAt: time.Now(),
		done:       make(chan runOutcome, 1),
	}
	c.queue = append(c.queue, r) // newest admission: already in admit order
	c.dispatchLocked()
	if r.state == runQueued && len(c.queue) > c.queueDepth() {
		// Could not dispatch and the queue was already at bound; r is
		// necessarily the tail, so rejecting it keeps FIFO intact.
		c.queue = c.queue[:len(c.queue)-1]
		r.state = runSettled
		c.rejected.Add(1)
		return nil, ErrRunQueueFull
	}
	return r, nil
}

func (c *Coordinator) queueDepth() int {
	switch {
	case c.cfg.QueueDepth > 0:
		return c.cfg.QueueDepth
	case c.cfg.QueueDepth < 0:
		return 0 // no waiting: dispatch immediately or reject
	default:
		return defaultQueueDepth
	}
}

// cancelQueued removes a still-queued run from the queue. It reports
// false when the run has already been dispatched (or settled), in which
// case the caller must wait for the outcome instead.
func (c *Coordinator) cancelQueued(r *pendingRun) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.state != runQueued {
		return false
	}
	for i, q := range c.queue {
		if q == r {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	r.state = runSettled
	return true
}

// idleLocked returns the idle (unleased) workers sorted by id. The sort
// keeps leases stable and partitions reproducible; it has no bearing on
// results (any partition yields the same bytes).
func (c *Coordinator) idleLocked() []*workerConn {
	ws := make([]*workerConn, 0, len(c.workers))
	for _, w := range c.workers {
		if w.lease == 0 {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].id < ws[j].id })
	return ws
}

// dispatchLocked drains the head of the queue while runs can start:
// strict FIFO, so a small run never jumps an older large one (leases
// always return, so the head never starves). Each dispatched run leases
// min(K, fleet) idle workers — the lease is sized against the *current*
// fleet, which is how worker join/leave rebalances pending runs while
// in-flight runs keep the lease they started with. Callers hold c.mu.
func (c *Coordinator) dispatchLocked() {
	for len(c.queue) > 0 {
		r := c.queue[0]
		if r.ctx.Err() != nil {
			// Dead before dispatch: settle without spending workers on it.
			c.queue = c.queue[1:]
			c.settleRunLocked(r, runOutcome{err: fmt.Errorf("shard: run cancelled while queued: %w", r.ctx.Err())})
			continue
		}
		if c.cfg.MaxConcurrentRuns > 0 && c.running >= c.cfg.MaxConcurrentRuns {
			return
		}
		need := r.p.Islands
		if n := len(c.workers); need > n {
			need = n
		}
		if need == 0 {
			return // empty fleet; expel's drain settles the queue
		}
		idle := c.idleLocked()
		if len(idle) < need {
			return
		}
		lease := idle[:need:need]
		for _, w := range lease {
			w.lease = r.admit
		}
		c.queue = c.queue[1:]
		r.state = runDispatched
		r.dispatchedAt = time.Now()
		if tr := obs.FromContext(r.ctx); tr != nil {
			// Admission span: how long the run waited in the queue for its
			// lease — the queue-position wait and the lease wait are one
			// event here (dispatch fires the moment enough workers idle).
			tr.Observe("admission", "", 0, r.enqueuedAt.Sub(tr.Start()), r.dispatchedAt.Sub(r.enqueuedAt))
		}
		c.running++
		if c.running > c.peakRunning {
			c.peakRunning = c.running
		}
		c.dispatchMs[c.dispatchCount%dispatchWindow] = float64(r.dispatchedAt.Sub(r.enqueuedAt).Nanoseconds()) / 1e6
		c.dispatchCount++
		go c.launch(r, lease)
	}
}

// execute drives one dispatched run to an outcome: runOnce within the
// lease, retrying on the lease's survivors after a worker failure, and
// requeueing (at the run's original admission position) when the lease is
// exhausted. This is Coordinator.launch in production; the scheduler
// benchmark substitutes a stub to measure pure dispatch machinery.
func (c *Coordinator) execute(r *pendingRun, lease []*workerConn) {
	for {
		res, err := c.runOnce(r.ctx, lease, r.g, r.p)
		if err == nil {
			c.runs.Add(1)
			c.settleRun(r, lease, runOutcome{res: res})
			return
		}
		c.runErrors.Add(1)
		if r.ctx.Err() != nil || !errors.Is(err, errWorkerFailure) {
			c.settleRun(r, lease, runOutcome{err: err})
			return
		}
		// Worker failure: the offender was expelled from the registry.
		// Narrow the lease to the survivors and retry — the partition
		// invariance makes the retry byte-identical, so the failure costs
		// time, never answers.
		c.mu.Lock()
		live := lease[:0]
		for _, w := range lease {
			if c.workers[w.id] == w {
				live = append(live, w)
			}
		}
		lease = live
		if len(lease) > 0 {
			c.mu.Unlock()
			c.cfg.Log.Warn("run failed; retrying on lease survivors",
				"run", r.admit, "trace", obs.FromContext(r.ctx).ID(), "err", err, "survivors", len(lease))
			continue
		}
		// Lease exhausted. Re-enter the queue at the original admission
		// position — unless the fleet is empty, where ErrNoWorkers lets
		// the caller fall back in-process.
		c.running--
		if len(c.workers) == 0 {
			c.settleRunLocked(r, runOutcome{err: ErrNoWorkers})
			c.mu.Unlock()
			return
		}
		c.cfg.Log.Warn("run lost its whole lease; requeueing",
			"run", r.admit, "trace", obs.FromContext(r.ctx).ID(), "err", err)
		r.state = runQueued
		r.enqueuedAt = time.Now()
		c.requeueLocked(r)
		c.dispatchLocked()
		c.mu.Unlock()
		return
	}
}

// requeueLocked inserts r into the queue by admission order, so a
// requeued run resumes ahead of everything admitted after it.
func (c *Coordinator) requeueLocked(r *pendingRun) {
	i := sort.Search(len(c.queue), func(i int) bool { return c.queue[i].admit > r.admit })
	c.queue = append(c.queue, nil)
	copy(c.queue[i+1:], c.queue[i:])
	c.queue[i] = r
}

// settleRun releases the run's lease, delivers the outcome, and gives the
// freed workers to the next queued run — the overlap point where one
// run's finish phase meets the next's dispatch.
func (c *Coordinator) settleRun(r *pendingRun, lease []*workerConn, out runOutcome) {
	if tr := obs.FromContext(r.ctx); tr != nil && !r.dispatchedAt.IsZero() {
		// Lease span: how long the run held workers, dispatch to settle
		// (retries on lease survivors included).
		tr.Observe("lease", "", 0, r.dispatchedAt.Sub(tr.Start()), time.Since(r.dispatchedAt))
	}
	c.mu.Lock()
	for _, w := range lease {
		if c.workers[w.id] == w && w.lease == r.admit {
			w.lease = 0
		}
	}
	c.running--
	c.settleRunLocked(r, out)
	c.dispatchLocked()
	c.mu.Unlock()
}

// settleRunLocked marks the run settled and delivers its outcome (done is
// buffered, so the send cannot block under mu). Idempotent.
func (c *Coordinator) settleRunLocked(r *pendingRun, out runOutcome) {
	if r.state == runSettled {
		return
	}
	r.state = runSettled
	if out.err == nil && !r.dispatchedAt.IsZero() {
		c.runDurTotal += time.Since(r.dispatchedAt)
		c.runsDone++
	}
	r.done <- out
}

// fleetChangedLocked reacts to a registry change: a join can dispatch a
// waiting run (or shrink a pending run's needed lease); a leave that
// empties the fleet fails every queued run with ErrNoWorkers so callers
// fall back in-process.
func (c *Coordinator) fleetChangedLocked() {
	if len(c.workers) == 0 {
		for _, r := range c.queue {
			c.settleRunLocked(r, runOutcome{err: ErrNoWorkers})
		}
		c.queue = c.queue[:0]
		return
	}
	c.dispatchLocked()
}

// RetryAfterSeconds estimates when queue capacity frees up, for 429
// Retry-After headers: pending work over dispatch slots, scaled by the
// observed mean run duration, clamped to [1, 30] seconds.
func (c *Coordinator) RetryAfterSeconds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	pending := len(c.queue) + c.running
	if pending == 0 {
		return 1
	}
	mean := time.Second
	if c.runsDone > 0 {
		mean = c.runDurTotal / time.Duration(c.runsDone)
	}
	slots := len(c.workers)
	if c.cfg.MaxConcurrentRuns > 0 && slots > c.cfg.MaxConcurrentRuns {
		slots = c.cfg.MaxConcurrentRuns
	}
	if slots < 1 {
		slots = 1
	}
	secs := int(math.Ceil(float64(pending) * mean.Seconds() / float64(slots)))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// dispatchQuantilesLocked summarises the recent time-to-dispatch window
// (nearest-rank, like the server's latency quantiles).
func (c *Coordinator) dispatchQuantilesLocked() (count int64, p50, p99 float64) {
	count = c.dispatchCount
	n := int(count)
	if n > dispatchWindow {
		n = dispatchWindow
	}
	if n == 0 {
		return 0, 0, 0
	}
	lat := make([]float64, n)
	copy(lat, c.dispatchMs[:n])
	sort.Float64s(lat)
	rank := func(q float64) float64 {
		i := int(q * float64(n))
		if i >= n {
			i = n - 1
		}
		return lat[i]
	}
	return count, rank(0.50), rank(0.99)
}
