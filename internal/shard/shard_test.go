package shard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/graphgen"
	"antlayer/internal/island"
)

func testGraph(t testing.TB, n int, seed int64) *dag.Graph {
	t.Helper()
	g, err := graphgen.Generate(graphgen.DefaultConfig(n), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fingerprint mirrors the island package's test fingerprint: everything
// observable about a result, floats by exact bits.
func fingerprint(res *island.Result) string {
	s := fmt.Sprintf("obj=%x best=%d tour=%d migrations=%d layers=%v",
		math.Float64bits(res.Objective), res.BestIsland, res.BestTour,
		res.Migrations, res.Layering.Layers())
	for _, st := range res.PerIsland {
		s += fmt.Sprintf(";i%d seed=%d obj=%x tours=%d", st.Island, st.Seed,
			math.Float64bits(st.Objective), st.ToursRun)
	}
	return s
}

// cluster starts a coordinator plus workers on loopback and waits for
// registration. The returned cancel tears everything down.
func cluster(t *testing.T, workers int) (*Coordinator, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCoordinator(CoordinatorConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ctx, ln) }()
	addr := ln.Addr().String()
	for i := 0; i < workers; i++ {
		w := NewWorker(WorkerConfig{Name: fmt.Sprintf("w%d", i)})
		// Reconnect loop mirroring `daglayer worker -retry`: an expelled
		// worker redials and rejoins the fleet.
		go func() {
			for ctx.Err() == nil {
				_ = w.Run(ctx, addr)
				select {
				case <-ctx.Done():
					return
				case <-time.After(10 * time.Millisecond):
				}
			}
		}()
	}
	waitWorkers(t, c, workers)
	return c, cancel
}

func waitWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Workers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d workers (have %d)", n, c.Workers())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDistributedMatchesInProcess is the headline invariant: for the same
// (graph, Params) the distributed archipelago returns a result
// bitwise-identical to the in-process island run, at any worker count
// and partition — here the full single-shard run, an uneven 2-way split,
// a 3-way split, and one-island-per-process.
func TestDistributedMatchesInProcess(t *testing.T) {
	g := testGraph(t, 60, 23)
	p := island.DefaultParams()
	p.Colony.Tours = 6
	p.Colony.Seed = 77
	p.Islands = 5
	p.MigrationInterval = 2
	p.Colony.StopAfterStagnantTours = 3 // stagger island finishes

	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5} {
		c, cancel := cluster(t, workers)
		res, err := c.RunIsland(context.Background(), g, p)
		if err != nil {
			cancel()
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := fingerprint(res); got != fingerprint(want) {
			t.Errorf("workers=%d diverged:\n got %s\nwant %s", workers, got, fingerprint(want))
		}
		m := c.Metrics()
		if m.Runs != 1 || m.RunErrors != 0 {
			t.Errorf("workers=%d: runs=%d errors=%d", workers, m.Runs, m.RunErrors)
		}
		if m.Migrations != int64(want.Migrations) {
			t.Errorf("workers=%d: coordinator counted %d migrations, result says %d", workers, m.Migrations, want.Migrations)
		}
		if len(m.PerWorker) != workers {
			t.Errorf("workers=%d: %d per-worker metrics", workers, len(m.PerWorker))
		} else if m.PerWorker[0].Epochs == 0 || m.PerWorker[0].MeanEpochMs < 0 {
			t.Errorf("workers=%d: empty shard latency metrics: %+v", workers, m.PerWorker[0])
		}
		cancel()
	}
}

// TestDistributedReusesFleet runs twice on one fleet: the second run must
// not be confused by the first one's state (seq discipline, fresh
// engines per run).
func TestDistributedReusesFleet(t *testing.T) {
	c, cancel := cluster(t, 2)
	defer cancel()
	g := testGraph(t, 40, 3)
	p := island.DefaultParams()
	p.Colony.Tours = 4
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		res, err := c.RunIsland(context.Background(), g, p)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if fingerprint(res) != fingerprint(want) {
			t.Errorf("run %d diverged", run)
		}
	}
	if m := c.Metrics(); m.Runs != 2 {
		t.Errorf("runs = %d, want 2", m.Runs)
	}
}

func TestRunIslandNoWorkers(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	g := testGraph(t, 10, 1)
	_, err := c.RunIsland(context.Background(), g, island.DefaultParams())
	if err != ErrNoWorkers {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestRunIslandValidatesParams(t *testing.T) {
	c, cancel := cluster(t, 1)
	defer cancel()
	p := island.DefaultParams()
	p.Islands = 0
	if _, err := c.RunIsland(context.Background(), testGraph(t, 10, 1), p); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestWorkerFailureRetriesOnSurvivors kills one worker's connection
// while the fleet is idle; the reader goroutine must notice the death
// immediately (no run required), expel the worker, and the next run must
// succeed on the survivor, byte-identically and without a failed attempt.
func TestWorkerFailureRetriesOnSurvivors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := NewCoordinator(CoordinatorConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ctx, ln) }()
	addr := ln.Addr().String()

	dying, killWorker := context.WithCancel(ctx)
	go func() { _ = NewWorker(WorkerConfig{Name: "doomed"}).Run(dying, addr) }()
	waitWorkers(t, c, 1)
	go func() { _ = NewWorker(WorkerConfig{Name: "survivor"}).Run(ctx, addr) }()
	waitWorkers(t, c, 2)
	killWorker()
	// The reader goroutine sees the closed connection and expels the dead
	// worker without waiting for a run to trip over it.
	waitWorkers(t, c, 1)

	g := testGraph(t, 40, 7)
	p := island.DefaultParams()
	p.Colony.Tours = 4
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIsland(context.Background(), g, p)
	if err != nil {
		t.Fatalf("run after worker death: %v", err)
	}
	if fingerprint(res) != fingerprint(want) {
		t.Error("post-failure run diverged from in-process result")
	}
	if c.Workers() != 1 {
		t.Errorf("fleet size = %d after expulsion, want 1", c.Workers())
	}
	if m := c.Metrics(); m.RunErrors != 0 {
		t.Errorf("run_errors = %d; the idle death should cost no run attempt", m.RunErrors)
	}
}

// TestRunIslandHonoursContext cancels the request mid-run; the run must
// fail promptly and the fleet must survive for the next request.
func TestRunIslandHonoursContext(t *testing.T) {
	c, cancel := cluster(t, 2)
	defer cancel()
	g := testGraph(t, 80, 13)
	p := island.DefaultParams()
	p.Colony.Tours = 100000
	p.Colony.Ants = 8
	ctx, cancelRun := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancelRun()
	if _, err := c.RunIsland(ctx, g, p); err == nil {
		t.Fatal("cancelled distributed run succeeded")
	}
	// Fleet must still work.
	waitWorkers(t, c, 2)
	p.Colony.Tours = 2
	if _, err := c.RunIsland(context.Background(), g, p); err != nil {
		t.Fatalf("fleet unusable after cancelled run: %v", err)
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		k, w int
		want [][]int
	}{
		{4, 2, [][]int{{0, 1}, {2, 3}}},
		{5, 2, [][]int{{0, 1, 2}, {3, 4}}},
		{5, 3, [][]int{{0, 1}, {2, 3}, {4}}},
		{3, 3, [][]int{{0}, {1}, {2}}},
		{1, 1, [][]int{{0}}},
	}
	for _, c := range cases {
		if got := partition(c.k, c.w); !reflect.DeepEqual(got, c.want) {
			t.Errorf("partition(%d,%d) = %v, want %v", c.k, c.w, got, c.want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sent := message{Type: msgEpoch, Seq: 9, Epoch: 3, Elites: []island.Elite{{Island: 1, Assign: []int{1, 2}, Objective: 0.25}}}
	go func() { _ = writeFrame(a, &sent) }()
	var got message
	if err := readFrame(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sent) {
		t.Errorf("round trip: %+v != %+v", got, sent)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		hdr := []byte{0xff, 0xff, 0xff, 0xff}
		_, _ = a.Write(hdr)
	}()
	var m message
	if err := readFrame(b, &m); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// TestHandshakeRejectsSilentConnection: a connection that never says
// hello is dropped after the handshake deadline, not parked forever.
// (Uses a short-lived coordinator so the 10s production deadline is not
// on the test's critical path — the test only checks the connection is
// not registered.)
func TestHandshakeRejectsNonHello(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := NewCoordinator(CoordinatorConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ctx, ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &message{Type: msgEpoch}); err != nil {
		t.Fatal(err)
	}
	// The coordinator must close the connection without registering it.
	var m message
	if err := readFrame(conn, &m); err == nil {
		t.Fatalf("got %s frame, want closed connection", m.Type)
	}
	if c.Workers() != 0 {
		t.Errorf("non-hello connection registered")
	}
}
