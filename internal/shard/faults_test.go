package shard

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"antlayer/internal/island"
)

// faultCluster starts a coordinator plus a mix of healthy and faulty
// workers on loopback. Faulty workers run WITHOUT a reconnect loop, so a
// fired Die* fault removes them from the fleet for good — the shape of a
// crashed process.
func faultCluster(t *testing.T, cfg CoordinatorConfig, healthy int, faults []*FaultPlan) (*Coordinator, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	c := NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ctx, ln) }()
	addr := ln.Addr().String()
	for i, f := range faults {
		w := NewWorker(WorkerConfig{Name: fmt.Sprintf("faulty%d", i), Fault: f})
		go func() { _ = w.Run(ctx, addr) }()
		waitWorkers(t, c, i+1)
	}
	for i := 0; i < healthy; i++ {
		w := NewWorker(WorkerConfig{Name: fmt.Sprintf("healthy%d", i)})
		go func() {
			for ctx.Err() == nil {
				_ = w.Run(ctx, addr)
				select {
				case <-ctx.Done():
					return
				case <-time.After(10 * time.Millisecond):
				}
			}
		}()
		waitWorkers(t, c, len(faults)+i+1)
	}
	return c, cancel
}

func faultParams() island.Params {
	p := island.DefaultParams()
	p.Islands = 4
	p.Colony.Tours = 6
	p.Colony.Seed = 31
	p.MigrationInterval = 2
	return p
}

// runExpectingRetry runs distributed, asserting the result stays
// byte-identical to the in-process run and that exactly wantErrors failed
// attempts (expel-and-retry rounds) were burned.
func runExpectingRetry(t *testing.T, c *Coordinator, wantErrors int64) {
	t.Helper()
	g := testGraph(t, 50, 11)
	p := faultParams()
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIsland(context.Background(), g, p)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if fingerprint(res) != fingerprint(want) {
		t.Error("post-retry result diverged from the in-process run")
	}
	if m := c.Metrics(); m.RunErrors != wantErrors {
		t.Errorf("run_errors = %d, want %d", m.RunErrors, wantErrors)
	}
}

// TestWorkerDiesMidEpoch: a worker vanishes instead of answering the
// epoch-2 barrier; the coordinator must expel it mid-run and the retry on
// the survivor must stay byte-identical.
func TestWorkerDiesMidEpoch(t *testing.T) {
	c, cancel := faultCluster(t, CoordinatorConfig{}, 1, []*FaultPlan{{DieAtEpoch: 2}})
	defer cancel()
	runExpectingRetry(t, c, 1)
}

// TestWorkerDiesBetweenMigrateAndFinish: the worker consumes the migrate
// frame of epoch 1 — the coordinator has committed the exchange — and
// then dies before the next barrier. The run must be retried on the
// survivor, byte-identically.
func TestWorkerDiesBetweenMigrateAndFinish(t *testing.T) {
	c, cancel := faultCluster(t, CoordinatorConfig{}, 1, []*FaultPlan{{DieAfterMigrate: 1}})
	defer cancel()
	runExpectingRetry(t, c, 1)
}

// TestTwoWorkersDieSameEpoch: two of three workers die at the same epoch
// barrier. The coordinator expels them sequentially — one expel per
// failed attempt — and the second retry, down to the lone survivor,
// still produces the byte-identical result.
func TestTwoWorkersDieSameEpoch(t *testing.T) {
	c, cancel := faultCluster(t, CoordinatorConfig{}, 1,
		[]*FaultPlan{{DieAtEpoch: 2}, {DieAtEpoch: 2}})
	defer cancel()
	// Attempt 1: both doomed workers die at epoch 2 → first failure
	// aborts, expels one. Attempt 2: the other doomed worker dies again
	// (its fault never fired — the abort happened first) or already died;
	// either way at most two failed attempts precede the clean run.
	g := testGraph(t, 50, 11)
	p := faultParams()
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIsland(context.Background(), g, p)
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if fingerprint(res) != fingerprint(want) {
		t.Error("post-retry result diverged from the in-process run")
	}
	m := c.Metrics()
	if m.RunErrors < 1 || m.RunErrors > 2 {
		t.Errorf("run_errors = %d, want 1 or 2 (sequential expels)", m.RunErrors)
	}
	if m.Workers != 1 {
		t.Errorf("fleet = %d after both deaths, want the lone survivor", m.Workers)
	}
}

// TestSlowWorkerStillCorrect: an EpochDelay-injected slow worker drags
// the barrier but never corrupts it; the per-shard epoch latency metrics
// must show the drag.
func TestSlowWorkerStillCorrect(t *testing.T) {
	const delay = 30 * time.Millisecond
	c, cancel := faultCluster(t, CoordinatorConfig{}, 1, []*FaultPlan{{EpochDelay: delay}})
	defer cancel()
	g := testGraph(t, 50, 11)
	p := faultParams()
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIsland(context.Background(), g, p)
	if err != nil {
		t.Fatalf("distributed run with slow worker: %v", err)
	}
	if fingerprint(res) != fingerprint(want) {
		t.Error("slow-worker result diverged from the in-process run")
	}
	m := c.Metrics()
	if m.RunErrors != 0 {
		t.Errorf("run_errors = %d, want 0 (slow is not dead)", m.RunErrors)
	}
	var slowMax float64
	for _, wm := range m.PerWorker {
		if strings.HasPrefix(wm.Name, "faulty") {
			slowMax = wm.MaxEpochMs
		}
	}
	if slowMax < float64(delay.Milliseconds()) {
		t.Errorf("slow shard max epoch = %.1fms, want >= %dms", slowMax, delay.Milliseconds())
	}
}

// TestHeartbeatLiveness: workers heartbeat, the coordinator counts the
// beats, and a worker that goes silent (heartbeats disabled, no frames)
// is expelled by the reaper within the timeout — without any run
// touching it.
func TestHeartbeatLiveness(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: 300 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ctx, ln) }()
	addr := ln.Addr().String()

	// A chatty worker beating well inside the timeout...
	chatty := NewWorker(WorkerConfig{Name: "chatty", HeartbeatInterval: 50 * time.Millisecond})
	go func() { _ = chatty.Run(ctx, addr) }()
	waitWorkers(t, c, 1)
	// ...and a mute one that registers and then never speaks again.
	mute := NewWorker(WorkerConfig{Name: "mute", HeartbeatInterval: -1})
	go func() { _ = mute.Run(ctx, addr) }()
	waitWorkers(t, c, 2)

	// The reaper must expel the mute worker and keep the chatty one.
	deadline := time.Now().Add(5 * time.Second)
	for c.Workers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("mute worker never expelled (fleet %d)", c.Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := c.Metrics()
	if m.HeartbeatExpels != 1 {
		t.Errorf("heartbeat_expels = %d, want 1", m.HeartbeatExpels)
	}
	if m.HeartbeatTimeoutMs != 300 {
		t.Errorf("heartbeat_timeout_ms = %v, want 300", m.HeartbeatTimeoutMs)
	}
	if len(m.PerWorker) != 1 || m.PerWorker[0].Name != "chatty" {
		t.Fatalf("surviving fleet = %+v, want just chatty", m.PerWorker)
	}
	if m.PerWorker[0].Heartbeats == 0 {
		t.Error("chatty worker's heartbeats were not counted")
	}

	// The survivor still serves runs.
	g := testGraph(t, 30, 5)
	p := island.DefaultParams()
	p.Colony.Tours = 3
	if _, err := c.RunIsland(context.Background(), g, p); err != nil {
		t.Fatalf("run on surviving fleet: %v", err)
	}
}

// TestHeartbeatsFlowDuringLongEpochs: a worker stuck in a slow epoch
// (EpochDelay beyond the liveness timeout) must NOT be expelled — the
// background heartbeat distinguishes slow from dead.
func TestHeartbeatsFlowDuringLongEpochs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := NewCoordinator(CoordinatorConfig{HeartbeatTimeout: 200 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = c.Serve(ctx, ln) }()
	w := NewWorker(WorkerConfig{
		Name:              "slowpoke",
		HeartbeatInterval: 40 * time.Millisecond,
		Fault:             &FaultPlan{EpochDelay: 500 * time.Millisecond},
	})
	go func() { _ = w.Run(ctx, ln.Addr().String()) }()
	waitWorkers(t, c, 1)

	g := testGraph(t, 30, 5)
	p := island.DefaultParams()
	p.Islands = 2
	p.Colony.Tours = 2
	want, err := island.Run(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunIsland(context.Background(), g, p)
	if err != nil {
		t.Fatalf("slow epochs got the worker expelled: %v", err)
	}
	if fingerprint(res) != fingerprint(want) {
		t.Error("result diverged")
	}
	if m := c.Metrics(); m.HeartbeatExpels != 0 {
		t.Errorf("heartbeat_expels = %d, want 0 (slow is not dead)", m.HeartbeatExpels)
	}
}
