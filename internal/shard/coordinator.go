package shard

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"antlayer/internal/dag"
	"antlayer/internal/island"
	"antlayer/internal/obs"
)

// ErrNoWorkers reports a distributed run attempted with an empty fleet.
var ErrNoWorkers = errors.New("shard: no workers registered")

// errWorkerFailure tags run errors attributable to a worker (connection
// died, protocol violation, worker-side failure); RunIsland expels the
// worker and retries on the survivors — the partition invariance makes
// the retry byte-identical, so a failure costs time, never answers.
var errWorkerFailure = errors.New("shard: worker failure")

// handshakeTimeout bounds how long an accepted connection may take to say
// hello, so a port-scanner cannot hold an accept slot open.
const handshakeTimeout = 10 * time.Second

// defaultHeartbeatTimeout is how long a worker may go silent before the
// liveness reaper expels it. Workers heartbeat every 2s by default, so
// the default tolerates four missed beats.
const defaultHeartbeatTimeout = 10 * time.Second

// CoordinatorConfig tunes a Coordinator. The zero value is usable.
type CoordinatorConfig struct {
	// HeartbeatTimeout is how long a worker may go without sending any
	// frame (heartbeats included) before the liveness reaper expels it —
	// the defence against workers that die without closing their
	// connection (network partition, frozen host). 0 means the default
	// (10s); negative disables liveness expulsion.
	HeartbeatTimeout time.Duration
	// QueueDepth bounds the pending-run queue: runs that cannot dispatch
	// immediately wait here, FIFO; past the bound RunIsland returns
	// ErrRunQueueFull. 0 means the default (16); negative disables
	// waiting entirely (dispatch immediately or reject).
	QueueDepth int
	// MaxConcurrentRuns caps how many runs may hold leases at once, on
	// top of the natural limit of idle workers. 0 means no extra cap.
	MaxConcurrentRuns int
	// Secret, when non-empty, requires every registering worker to
	// present the same shared secret in its hello frame. A mismatch is
	// a clean rejection (error frame + close), never an expel.
	Secret string
	// Log receives registration and run-lifecycle lines. Nil discards.
	Log *slog.Logger
}

// readResult is one routed frame (or the read error that ended the
// connection) handed from a worker's reader goroutine to the run that
// owns the worker.
type readResult struct {
	m   message
	err error
}

// workerConn is one registered worker: its connection, the reader
// goroutine's routing state, and the latency bookkeeping /metrics
// reports per shard.
type workerConn struct {
	id   int
	name string
	conn net.Conn

	// Guarded by the owning Coordinator's mu.
	lease      uint64 // admission number of the run leasing the worker; 0 = idle
	islands    int    // size of the last run assignment
	epochs     int64
	epochTotal time.Duration
	epochMax   time.Duration
	lastSeen   time.Time       // last frame of any kind (liveness)
	beats      int64           // heartbeat frames received
	sink       chan readResult // non-nil while a run owns the worker
	sinkDone   chan struct{}   // closed when the owning run unwinds
}

// Coordinator owns the distributed archipelago's ring: workers register
// with it, and RunIsland partitions an island run across them, plays the
// epoch barrier and the ring exchange, and assembles the result. Create
// with NewCoordinator, serve with Serve (or ListenAndServe), stop by
// cancelling Serve's context.
//
// Every registered worker's connection is owned by a dedicated reader
// goroutine: heartbeats update the liveness clock, run frames are routed
// to the run that claimed the worker, and a read failure (the worker
// died) surfaces immediately — to the owning run mid-run, or as an
// instant expulsion while idle — instead of waiting for the next run to
// block on the dead connection. A background reaper additionally expels
// workers that go silent past HeartbeatTimeout, catching deaths that
// never close the socket.
//
// Internally the Coordinator is two layers. The registry/lease layer
// owns the worker set: each run leases a disjoint subset sized
// min(islands, fleet), keeps it for the run's lifetime (retries
// included), and returns it on settle. The scheduler layer owns the
// bounded FIFO admission queue and dispatches the head as soon as
// enough idle workers exist, so independent runs proceed concurrently
// on disjoint leases — one run's finish overlaps the next's first
// epoch. Worker join/leave re-evaluates only pending runs; in-flight
// runs keep their lease (see scheduler.go).
type Coordinator struct {
	cfg CoordinatorConfig

	mu      sync.Mutex
	workers map[int]*workerConn
	nextID  int
	seq     uint64 // wire sequence: fresh per run attempt, tags frames

	// Scheduler state, guarded by mu (see scheduler.go).
	queue         []*pendingRun // pending runs in admission order
	admit         uint64        // admission sequence: queue order tie-break
	running       int           // runs currently holding leases
	peakRunning   int           // high-water mark of running
	runDurTotal   time.Duration // wall time of completed runs (Retry-After)
	runsDone      int64
	dispatchMs    [dispatchWindow]float64 // time-to-dispatch ring, ms
	dispatchCount int64
	// launch starts a dispatched run on its lease; c.execute in
	// production, substituted by the scheduler benchmark.
	launch func(r *pendingRun, lease []*workerConn)

	runs       atomic.Int64
	runErrors  atomic.Int64
	rejected   atomic.Int64
	epochs     atomic.Int64
	migrations atomic.Int64
	beatExpels atomic.Int64
}

// NewCoordinator builds a Coordinator (zero-value config fine).
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.HeartbeatTimeout == 0 {
		cfg.HeartbeatTimeout = defaultHeartbeatTimeout
	}
	if cfg.Log == nil {
		cfg.Log = obs.Discard()
	}
	c := &Coordinator{cfg: cfg, workers: make(map[int]*workerConn)}
	c.launch = c.execute
	return c
}

// Serve accepts worker registrations on ln until ctx is cancelled, then
// closes the listener and every registered worker connection. It also
// runs the liveness reaper (see CoordinatorConfig.HeartbeatTimeout).
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
		c.mu.Lock()
		for id, w := range c.workers {
			w.conn.Close()
			delete(c.workers, id)
		}
		c.fleetChangedLocked() // fail queued runs: the fleet is gone
		c.mu.Unlock()
	}()
	if c.cfg.HeartbeatTimeout > 0 {
		go c.reapLoop(done)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("shard: accept: %w", err)
		}
		go c.handshake(conn)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.cfg.Log.Info("coordinator listening", "addr", ln.Addr().String())
	return c.Serve(ctx, ln)
}

// reapLoop periodically expels workers that have gone silent past the
// heartbeat timeout. Expelling closes the connection, so a run blocked on
// the dead worker's barrier read unblocks and retries on the survivors.
func (c *Coordinator) reapLoop(done <-chan struct{}) {
	tick := c.cfg.HeartbeatTimeout / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			c.reap(now)
		}
	}
}

// reap expels every worker whose last frame is older than the heartbeat
// timeout and reports how many went.
func (c *Coordinator) reap(now time.Time) int {
	c.mu.Lock()
	var stale []*workerConn
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			stale = append(stale, w)
		}
	}
	c.mu.Unlock()
	for _, w := range stale {
		c.beatExpels.Add(1)
		c.cfg.Log.Warn("worker silent past heartbeat timeout; expelling",
			"worker", w.name, "worker_id", w.id, "timeout", c.cfg.HeartbeatTimeout)
		c.expel(w)
	}
	return len(stale)
}

// handshake runs the hello/welcome exchange (verifying the shared
// secret when one is configured), registers the worker, and starts its
// reader goroutine. Registration can dispatch a waiting run.
func (c *Coordinator) handshake(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(handshakeTimeout))
	var m message
	if err := readFrame(conn, &m); err != nil || m.Type != msgHello {
		conn.Close()
		return
	}
	if c.cfg.Secret != "" && !secretsEqual(m.Auth, c.cfg.Secret) {
		// A clean rejection, not an expel: the peer never joined the
		// fleet. The error frame tells an honestly misconfigured worker
		// why, without leaking anything about the expected secret.
		c.cfg.Log.Warn("registration rejected: bad cluster secret", "remote", conn.RemoteAddr().String())
		_ = writeFrame(conn, &message{Type: msgError, Error: "registration rejected: bad cluster secret"})
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	c.mu.Lock()
	c.nextID++
	w := &workerConn{id: c.nextID, name: m.Name, conn: conn, lastSeen: time.Now()}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.id)
	}
	c.workers[w.id] = w
	n := len(c.workers)
	c.mu.Unlock()
	if err := writeFrame(conn, &message{Type: msgWelcome, WorkerID: w.id}); err != nil {
		c.expel(w)
		return
	}
	c.cfg.Log.Info("worker registered", "worker", w.name, "worker_id", w.id,
		"remote", conn.RemoteAddr().String(), "fleet", n)
	go c.readLoop(w)
	// The fleet grew: a pending run may now have enough idle workers.
	c.mu.Lock()
	c.dispatchLocked()
	c.mu.Unlock()
}

// secretsEqual compares cluster secrets in constant time; hashing first
// keeps the comparison length-independent, so neither the content nor
// the length of the configured secret leaks through timing.
func secretsEqual(got, want string) bool {
	g := sha256.Sum256([]byte(got))
	w := sha256.Sum256([]byte(want))
	return subtle.ConstantTimeCompare(g[:], w[:]) == 1
}

// readLoop owns every read on a worker's connection. Heartbeats feed the
// liveness clock; run frames are routed to the run that claimed the
// worker (frames between runs — stragglers of an aborted run — are
// discarded); a read error is handed to the owning run, if any, and the
// worker is expelled. The loop exits exactly when the worker is no
// longer usable, so a registered worker always has a live reader.
func (c *Coordinator) readLoop(w *workerConn) {
	for {
		var m message
		err := readFrame(w.conn, &m)
		c.mu.Lock()
		w.lastSeen = time.Now()
		if err == nil && m.Type == msgHeartbeat {
			w.beats++
			c.mu.Unlock()
			continue
		}
		sink, sinkDone := w.sink, w.sinkDone
		c.mu.Unlock()
		if err == nil {
			if sink != nil {
				select {
				case sink <- readResult{m: m}:
				case <-sinkDone: // the run unwound first; drop the frame
				}
			}
			continue
		}
		// Broken connection (or a read poisoned by the cancellation
		// watchdog): expel first so no new run can claim the worker, then
		// hand the error to the run that was reading it.
		c.expel(w)
		if sink != nil {
			select {
			case sink <- readResult{err: err}:
			case <-sinkDone:
			}
		}
		return
	}
}

// expel removes a worker from the fleet and closes its connection. Safe
// to call more than once for the same worker. The registry change
// re-evaluates pending runs: a smaller fleet can shrink the lease the
// queue head needs, and an emptied fleet fails the queue over to the
// in-process fallback.
func (c *Coordinator) expel(w *workerConn) {
	c.mu.Lock()
	_, present := c.workers[w.id]
	delete(c.workers, w.id)
	n := len(c.workers)
	if present {
		c.fleetChangedLocked()
	}
	c.mu.Unlock()
	w.conn.Close()
	if present {
		c.cfg.Log.Warn("worker expelled", "worker", w.name, "worker_id", w.id, "fleet", n)
	}
}

// Workers returns the current fleet size.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// partition splits islands 0..k-1 contiguously over w workers: the first
// k%w shards get one extra island, mirroring the corpus group split.
func partition(k, w int) [][]int {
	parts := make([][]int, w)
	base, rem := k/w, k%w
	next := 0
	for i := range parts {
		size := base
		if i < rem {
			size++
		}
		parts[i] = make([]int, size)
		for j := range parts[i] {
			parts[i][j] = next
			next++
		}
	}
	return parts
}

// runOnce drives one distributed run over the workers of its lease. Any
// worker-attributable failure expels the offender, aborts the others
// back to idle, and returns an error wrapping errWorkerFailure. The
// lease is sized min(islands, fleet) at dispatch, so every leased
// worker hosts at least one island — no worker sits out a run it is
// claimed by.
func (c *Coordinator) runOnce(ctx context.Context, ws []*workerConn, g *dag.Graph, p island.Params) (*island.Result, error) {
	k := p.Islands
	parts := partition(k, len(ws))
	tr := obs.FromContext(ctx)

	// Claim the workers: each gets a fresh frame sink the reader routes
	// into for the duration of the run. runDone releases any reader
	// caught mid-route when the run unwinds.
	runDone := make(chan struct{})
	sinks := make([]chan readResult, len(ws))
	c.mu.Lock()
	c.seq++
	seq := c.seq
	for i, w := range ws {
		w.islands = len(parts[i])
		sinks[i] = make(chan readResult, 4)
		w.sink, w.sinkDone = sinks[i], runDone
	}
	c.mu.Unlock()
	defer func() {
		close(runDone)
		c.mu.Lock()
		for _, w := range ws {
			w.sink, w.sinkDone = nil, nil
		}
		c.mu.Unlock()
	}()

	// ctx watchdog: poison every read so a cancelled request cannot hang
	// the barrier; the deadline is cleared again when the run unwinds.
	stop := make(chan struct{})
	var watchdog sync.WaitGroup
	watchdog.Add(1)
	go func() {
		defer watchdog.Done()
		select {
		case <-ctx.Done():
			now := time.Now()
			for _, w := range ws {
				_ = w.conn.SetReadDeadline(now)
			}
		case <-stop:
		}
	}()
	defer func() {
		close(stop)
		watchdog.Wait()
		for _, w := range ws {
			_ = w.conn.SetReadDeadline(time.Time{})
		}
	}()

	// abort returns the failure after expelling the offender (if any) and
	// telling every other worker to drop the run.
	abort := func(failed *workerConn, err error) error {
		for _, w := range ws {
			if w == failed {
				continue
			}
			_ = w.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			_ = writeFrame(w.conn, &message{Type: msgError, Seq: seq, Error: err.Error()})
			_ = w.conn.SetWriteDeadline(time.Time{})
		}
		if failed != nil {
			c.expel(failed)
			return fmt.Errorf("%w: worker %d (%s): %v", errWorkerFailure, failed.id, failed.name, err)
		}
		return err
	}

	// abortCancelled is the ctx-cancellation abort: the watchdog may have
	// poisoned a read mid-frame, leaving a connection's byte stream
	// desynchronized (a partially consumed frame cannot be resumed), so
	// every connection this run touched is expelled rather than parked.
	// Workers redial with backoff and rejoin the fleet cleanly.
	abortCancelled := func() error {
		err := abort(nil, fmt.Errorf("shard: run aborted: %w", ctx.Err()))
		for _, w := range ws {
			c.expel(w)
		}
		return err
	}

	// next reads the worker's next routed frame for this run, skipping
	// stragglers of an aborted earlier run.
	next := func(i int) (message, error) {
		for {
			r := <-sinks[i]
			if r.err != nil {
				return message{}, r.err
			}
			if r.m.Seq != seq {
				continue
			}
			return r.m, nil
		}
	}

	snap := g.Snapshot()
	// dispatched[i] is the trace offset at which worker i's run frame
	// went out — the rebase point for the spans its report brings back
	// (the worker's clock starts when the frame arrives, one network
	// hop later; cross-process offsets are approximate by that hop).
	dispatched := make([]time.Duration, len(ws))
	for i, w := range ws {
		dispatched[i] = tr.Since()
		run := &message{Type: msgRun, Seq: seq, Graph: &snap, Params: &p, Islands: parts[i], TraceID: tr.ID()}
		if err := writeFrame(w.conn, run); err != nil {
			return nil, abort(w, err)
		}
	}

	migrations := 0
	for epoch := 1; ; epoch++ {
		// Barrier: collect one epoch frame per worker. Reads run
		// concurrently so one slow worker delays, not serializes, the
		// rest; the elapsed time per worker is the per-shard epoch
		// latency /metrics reports.
		barrierStart := tr.Since()
		frames := make([]message, len(ws))
		errs := make([]error, len(ws))
		durs := make([]time.Duration, len(ws))
		var wg sync.WaitGroup
		for i := range ws {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				m, err := next(i)
				if err != nil {
					errs[i] = err
					return
				}
				if m.Type == msgError {
					errs[i] = fmt.Errorf("worker-side failure: %s", m.Error)
					return
				}
				if m.Type != msgEpoch || m.Epoch != epoch {
					errs[i] = fmt.Errorf("protocol: want epoch %d, got %s/%d", epoch, m.Type, m.Epoch)
					return
				}
				frames[i] = m
				durs[i] = time.Since(start)
			}(i)
		}
		wg.Wait()
		tr.Observe("epoch", "", epoch, barrierStart, tr.Since()-barrierStart)
		for i, err := range errs {
			if err != nil {
				if ctx.Err() != nil {
					return nil, abortCancelled()
				}
				return nil, abort(ws[i], err)
			}
		}
		c.epochs.Add(1)
		c.mu.Lock()
		for i, w := range ws {
			w.epochs++
			w.epochTotal += durs[i]
			if durs[i] > w.epochMax {
				w.epochMax = durs[i]
			}
		}
		c.mu.Unlock()

		// Assemble the global elite vector in ring order.
		elites := make([]island.Elite, k)
		seen := make([]bool, k)
		for i := range ws {
			if len(frames[i].Elites) != len(parts[i]) {
				return nil, abort(ws[i], fmt.Errorf("protocol: %d elites for %d islands", len(frames[i].Elites), len(parts[i])))
			}
			for _, e := range frames[i].Elites {
				if e.Island < 0 || e.Island >= k || seen[e.Island] {
					return nil, abort(ws[i], fmt.Errorf("protocol: bad elite island %d", e.Island))
				}
				seen[e.Island] = true
				elites[e.Island] = e
			}
		}
		cont := false
		for _, e := range elites {
			if !e.Done {
				cont = true
				break
			}
		}
		if !cont {
			break
		}
		// The ring turns: island i's incoming elite is island (i-1+k)%k's,
		// delivered positionally per worker. A single-island archipelago
		// exchanges nothing (matching island.Ring).
		migrateStart := tr.Since()
		for i, w := range ws {
			migrate := &message{Type: msgMigrate, Seq: seq, Epoch: epoch}
			if k > 1 {
				incoming := make([]island.Elite, len(parts[i]))
				for j, isl := range parts[i] {
					incoming[j] = elites[(isl-1+k)%k]
				}
				migrate.Elites = incoming
			}
			if err := writeFrame(w.conn, migrate); err != nil {
				return nil, abort(w, err)
			}
		}
		tr.Observe("migrate", "", epoch, migrateStart, tr.Since()-migrateStart)
		if k > 1 {
			migrations++
			c.migrations.Add(1)
		}
	}

	// Finish: collect every worker's reports and assemble.
	for _, w := range ws {
		if err := writeFrame(w.conn, &message{Type: msgFinish, Seq: seq}); err != nil {
			return nil, abort(w, err)
		}
	}
	reports := make([]island.Report, 0, k)
	for i, w := range ws {
		m, err := next(i)
		if err != nil {
			if ctx.Err() != nil {
				return nil, abortCancelled()
			}
			return nil, abort(w, err)
		}
		if m.Type == msgError {
			return nil, abort(w, fmt.Errorf("worker-side failure: %s", m.Error))
		}
		if m.Type != msgReport || len(m.Reports) != len(parts[i]) {
			return nil, abort(w, fmt.Errorf("protocol: want %d reports, got %s/%d", len(parts[i]), m.Type, len(m.Reports)))
		}
		reports = append(reports, m.Reports...)
		tr.Merge(m.Spans, dispatched[i])
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Island < reports[j].Island })
	assemble := tr.Begin("assemble")
	res, err := island.Assemble(g, p, reports, migrations)
	assemble.End()
	if err != nil {
		return nil, abort(nil, err)
	}
	return res, nil
}

// WorkerMetrics is one shard's observability record.
type WorkerMetrics struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// State is the lease state: "idle", or "leased" to a run, with Run
	// naming the leasing run's admission number.
	State string `json:"state"`
	Run   uint64 `json:"run,omitempty"`
	// Islands is the size of the worker's slice in the last run it
	// participated in.
	Islands int `json:"islands"`
	// Epochs counts the epoch barriers the worker has answered;
	// MeanEpochMs and MaxEpochMs summarise how long the coordinator
	// waited for it at those barriers.
	Epochs      int64   `json:"epochs"`
	MeanEpochMs float64 `json:"mean_epoch_ms"`
	MaxEpochMs  float64 `json:"max_epoch_ms"`
	// Heartbeats counts the liveness frames received from the worker;
	// LastSeenAgeMs is how long ago the coordinator last heard anything
	// from it (the liveness reaper expels workers past the timeout).
	Heartbeats    int64   `json:"heartbeats"`
	LastSeenAgeMs float64 `json:"last_seen_age_ms"`
}

// DispatchMetrics summarises the scheduler's time-to-dispatch: how long
// admitted runs waited in the queue before workers were leased to them,
// nearest-rank quantiles over the recent window.
type DispatchMetrics struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// ClusterMetrics is the coordinator's observability snapshot, served by
// the daemon's /metrics and /cluster endpoints.
type ClusterMetrics struct {
	Workers int `json:"workers"`
	// IdleWorkers counts registered workers not currently leased to a
	// run; Workers - IdleWorkers are held by the runs in flight.
	IdleWorkers int   `json:"idle_workers"`
	Runs        int64 `json:"runs"`
	RunErrors   int64 `json:"run_errors"`
	// Scheduler state: runs holding leases right now, the concurrency
	// high-water mark, queued runs awaiting dispatch against the queue
	// bound, and admissions rejected with ErrRunQueueFull.
	RunsInFlight       int             `json:"runs_in_flight"`
	PeakConcurrentRuns int             `json:"peak_concurrent_runs"`
	RunsQueued         int             `json:"runs_queued"`
	RunQueueBound      int             `json:"run_queue_bound"`
	RunsRejected       int64           `json:"runs_rejected"`
	DispatchMs         DispatchMetrics `json:"dispatch_ms"`
	Epochs             int64           `json:"epochs"`
	Migrations         int64           `json:"migrations"`
	// HeartbeatExpels counts workers expelled by the liveness reaper for
	// going silent past HeartbeatTimeoutMs (run-time failures expel
	// through the run path and are not counted here).
	HeartbeatExpels    int64           `json:"heartbeat_expels"`
	HeartbeatTimeoutMs float64         `json:"heartbeat_timeout_ms"`
	PerWorker          []WorkerMetrics `json:"per_worker,omitempty"`
}

// Metrics returns a point-in-time snapshot of the coordinator's counters.
func (c *Coordinator) Metrics() ClusterMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := ClusterMetrics{
		Workers:            len(c.workers),
		Runs:               c.runs.Load(),
		RunErrors:          c.runErrors.Load(),
		RunsInFlight:       c.running,
		PeakConcurrentRuns: c.peakRunning,
		RunsQueued:         len(c.queue),
		RunQueueBound:      c.queueDepth(),
		RunsRejected:       c.rejected.Load(),
		Epochs:             c.epochs.Load(),
		Migrations:         c.migrations.Load(),
		HeartbeatExpels:    c.beatExpels.Load(),
	}
	m.DispatchMs.Count, m.DispatchMs.P50Ms, m.DispatchMs.P99Ms = c.dispatchQuantilesLocked()
	if c.cfg.HeartbeatTimeout > 0 {
		m.HeartbeatTimeoutMs = float64(c.cfg.HeartbeatTimeout.Nanoseconds()) / 1e6
	}
	now := time.Now()
	ids := make([]int, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := c.workers[id]
		wm := WorkerMetrics{
			ID: w.id, Name: w.name, State: "idle", Islands: w.islands, Epochs: w.epochs,
			Heartbeats:    w.beats,
			LastSeenAgeMs: float64(now.Sub(w.lastSeen).Nanoseconds()) / 1e6,
		}
		if w.lease != 0 {
			wm.State, wm.Run = "leased", w.lease
		} else {
			m.IdleWorkers++
		}
		if w.epochs > 0 {
			wm.MeanEpochMs = float64(w.epochTotal.Nanoseconds()) / float64(w.epochs) / 1e6
			wm.MaxEpochMs = float64(w.epochMax.Nanoseconds()) / 1e6
		}
		m.PerWorker = append(m.PerWorker, wm)
	}
	return m
}
